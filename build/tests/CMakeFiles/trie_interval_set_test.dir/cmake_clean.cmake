file(REMOVE_RECURSE
  "CMakeFiles/trie_interval_set_test.dir/trie_interval_set_test.cpp.o"
  "CMakeFiles/trie_interval_set_test.dir/trie_interval_set_test.cpp.o.d"
  "trie_interval_set_test"
  "trie_interval_set_test.pdb"
  "trie_interval_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trie_interval_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
