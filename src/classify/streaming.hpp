// Online detection for operational deployment: the conclusion notes that
// "every network on the inter-domain Internet can opt to apply [the
// method] to filter its incoming traffic, or to detect spoofing". The
// StreamingDetector consumes flows one at a time, maintains rolling
// per-member class counters over a sliding window and raises alerts when
// a member's spoofed-class rate spikes above its baseline.
//
// Degraded-mode contract (for live feeds, which are reordered and
// adversarial rather than neat):
//
//  - Timestamps may arrive out of order up to `reorder_skew_seconds`; a
//    bounded buffer re-sorts them before they reach the windows. Flows
//    later than the skew are dropped and counted, never silently folded
//    into the wrong window.
//  - Window accounting expects nondecreasing timestamps. Any regression
//    that still reaches the accounting (skew 0 = buffer disabled) is
//    dropped and counted in health().regressions instead of corrupting
//    the window (the historical behaviour left unsortable samples
//    stranded in the deque forever).
//  - Memory is bounded by `max_members` (deterministic idle-member
//    eviction: least-recently-active, ties to the smallest ASN) and
//    `max_window_samples` per member (oldest samples retire early), so
//    a member flood or a million-member scan degrades accuracy
//    measurably — visible in health() — instead of OOMing.
//
// Everything is a pure function of the ingested flow sequence: no wall
// clock, no hash-order dependence, so two runs over the same (possibly
// corrupted) feed produce bit-identical alerts and health counters.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "classify/batch_kernels.hpp"
#include "classify/classifier.hpp"
#include "net/flow.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::net {
class FlowBatch;
}

namespace spoofscope::classify {

class FlatClassifier;

/// An alert raised by the streaming detector.
struct SpoofingAlert {
  Asn member = net::kNoAsn;
  std::uint32_t ts = 0;            ///< when the threshold was crossed
  TrafficClass dominant_class = TrafficClass::kInvalid;
  double spoofed_packets_in_window = 0;
  double window_share = 0;         ///< spoofed share of the member's window

  friend bool operator==(const SpoofingAlert&, const SpoofingAlert&) = default;
};

/// Detection knobs.
struct StreamingParams {
  std::uint32_t window_seconds = 3600;  ///< sliding window length
  /// Minimum sampled spoofed packets within the window to alert.
  double min_spoofed_packets = 50;
  /// Minimum spoofed share of the member's own window traffic to alert.
  double min_share = 0.05;
  /// Per-member cooldown between alerts.
  std::uint32_t cooldown_seconds = 6 * 3600;

  // Degraded-mode knobs. The defaults preserve the historical behaviour
  // (no reorder buffer, unbounded state).
  /// Tolerated timestamp disorder. 0 disables the reorder buffer: flows
  /// go straight to the windows and any ts regression is dropped and
  /// counted. >0 buffers flows until the high-water timestamp has moved
  /// `reorder_skew_seconds` past them, releasing in (ts, arrival) order.
  std::uint32_t reorder_skew_seconds = 0;
  /// Hard cap on buffered flows (0 = unbounded). Overflow force-releases
  /// the earliest buffered flow, counted in health().forced_releases.
  std::size_t max_reorder_records = 4096;
  /// Hard cap on tracked members (0 = unbounded). Admitting a new member
  /// at the cap evicts the least-recently-active one (ties: smallest
  /// ASN), counted in health().member_evictions.
  std::size_t max_members = 0;
  /// Hard cap on window samples per member (0 = unbounded). Overflow
  /// retires the member's oldest sample early, counted in
  /// health().sample_evictions.
  std::size_t max_window_samples = 0;

  /// Batch-classification kernel for the flat engine (ingest_batch
  /// classifies whole batches through it; the kernels are proven
  /// bit-identical, so — like the engine choice — this is excluded from
  /// config_hash() and checkpoints stay portable across kernels).
  SimdKernel simd = SimdKernel::kAuto;
};

/// Degradation counters: how far the detector had to deviate from the
/// ideal unbounded, perfectly-ordered computation.
struct DetectorHealth {
  std::uint64_t regressions = 0;       ///< dropped at the windows: ts went backwards
  std::uint64_t late_drops = 0;        ///< dropped at the buffer: later than skew
  std::uint64_t forced_releases = 0;   ///< reorder buffer overflowed its cap
  std::uint64_t member_evictions = 0;  ///< members evicted at max_members
  std::uint64_t sample_evictions = 0;  ///< samples retired at max_window_samples
  std::size_t reorder_depth = 0;       ///< currently buffered flows
  std::size_t max_reorder_depth = 0;   ///< high-water buffered flows
  std::size_t tracked_members = 0;     ///< currently tracked members
  std::size_t max_window_depth = 0;    ///< high-water samples in any one window

  friend bool operator==(const DetectorHealth&, const DetectorHealth&) = default;
};

/// Machine-readable form for monitoring pipelines (flat object keyed by
/// the field names above).
std::string to_json(const DetectorHealth& health);

/// Update-stream cursor a checkpoint carries alongside the detector
/// state: how many update messages had been applied to the plane at the
/// cut (and the plane epoch, for diagnostics). `detect --resume` replays
/// exactly updates [0, updates_applied) before continuing, so the
/// resumed plane matches the cut bit for bit.
struct DetectorCheckpointExtra {
  std::uint64_t updates_applied = 0;
  std::uint64_t plane_epoch = 0;

  friend bool operator==(const DetectorCheckpointExtra&,
                         const DetectorCheckpointExtra&) = default;
};

/// Stateful single-pass detector. Feed flows via ingest(); alerts are
/// delivered through the callback. Call flush() (or use run()) after the
/// last flow to drain the reorder buffer.
class StreamingDetector {
 public:
  using AlertFn = std::function<void(const SpoofingAlert&)>;

  /// `classifier` must outlive the detector; `space_idx` selects the
  /// inference method (typically FULL+org).
  StreamingDetector(const Classifier& classifier, std::size_t space_idx,
                    StreamingParams params = {});

  /// Flat-engine variant: identical alerts (the engines are proven
  /// bit-identical), O(1) per-flow classification cost.
  StreamingDetector(const FlatClassifier& classifier, std::size_t space_idx,
                    StreamingParams params = {});

  /// Processes one flow; invokes `on_alert` zero or more times (buffered
  /// flows may be released and alert on this call).
  void ingest(const net::FlowRecord& flow, const AlertFn& on_alert);

  /// Batch variant: ingests a FlowBatch's flows in lane order, so alerts
  /// and health counters are identical to per-record ingest of the same
  /// records.
  void ingest_batch(const net::FlowBatch& batch, const AlertFn& on_alert);

  /// Drains the reorder buffer at end of stream; a no-op when the buffer
  /// is disabled or empty.
  void flush(const AlertFn& on_alert);

  /// Repoints the detector at a different compiled plane (the service's
  /// wholesale plane republish): detection state — windows, reorder
  /// buffer, health, cursor — is untouched, buffered flows are
  /// reclassified against the new plane (the same resolve-at-release
  /// rule sync_plane_epoch() applies to in-place patches), and the
  /// epoch baseline is taken from the new object. The caller owns the
  /// lifetime of `plane` and must not call this concurrently with
  /// ingest. Rebinding a trie-engine detector switches it to the flat
  /// engine; the engines are proven bit-identical, and config_hash()
  /// deliberately excludes the engine, so checkpoints stay valid.
  void rebind(const FlatClassifier& plane);

  /// Convenience: run over a whole trace (including flush), collecting
  /// all alerts.
  std::vector<SpoofingAlert> run(std::span<const net::FlowRecord> flows);

  /// Flows processed so far.
  std::uint64_t processed() const { return processed_; }

  /// Degradation snapshot (cheap; counters plus current depths).
  DetectorHealth health() const;

  /// 64-bit FNV-1a over the detection configuration (StreamingParams +
  /// space index). Checkpoints embed it and restore() refuses a
  /// snapshot taken under a different configuration. The engine is
  /// deliberately excluded: trie and flat are proven bit-identical, so
  /// checkpoints are portable across engines.
  std::uint64_t config_hash() const;

  /// Crash-safe checkpoint: atomically persists the complete detection
  /// state — windows, reorder buffer, eviction index (rebuilt on load),
  /// health counters, stream cursor, config hash — so a restored
  /// detector continues bit-identically to the uninterrupted run.
  /// Throws std::runtime_error on I/O failure. (Defined in the state
  /// library; link spoofscope_state to use checkpoints.)
  void save(const std::string& path) const;

  /// Full-checkpoint save carrying the update-stream cursor (written as
  /// an additive section; checkpoints without it restore with a
  /// zero-valued extra).
  void save(const std::string& path, const DetectorCheckpointExtra& extra) const;

  /// Restores a checkpoint written by save(). Returns true on success.
  /// On damage, truncation or config mismatch: strict throws
  /// (state::SnapshotError), skip accounts the ErrorKind in `stats`
  /// (when given), resets to fresh state and returns false — detection
  /// restarts cleanly rather than running on half-loaded state.
  bool restore(const std::string& path,
               util::ErrorPolicy policy = util::ErrorPolicy::kStrict,
               util::IngestStats* stats = nullptr);

  /// restore() variant that also recovers the update-stream cursor (left
  /// zero-valued when the checkpoint predates it).
  bool restore(const std::string& path, util::ErrorPolicy policy,
               util::IngestStats* stats, DetectorCheckpointExtra* extra_out);

  /// Delta checkpoint: persists only what changed since the last full
  /// save()/save_delta()/clear_dirty() — stream cursor and health, the
  /// windows of members touched since the baseline, the members evicted
  /// since the baseline, and the (small, bounded) reorder buffer. The
  /// delta embeds `chain_seq` and `parent_digest` so apply_delta() can
  /// refuse an out-of-order or cross-chain file. Returns the FNV-1a-64
  /// digest of the written file image (the next link's parent digest)
  /// and resets the dirty baseline. (Defined in the state library.)
  std::uint64_t save_delta(const std::string& path,
                           const DetectorCheckpointExtra& extra,
                           std::uint64_t chain_seq, std::uint64_t parent_digest);

  /// Applies one delta image on top of the current state. Validates the
  /// config hash, chain sequence number and parent digest, decodes the
  /// whole delta before mutating anything (a damaged file leaves the
  /// detector at the previous cut), then replays it: dirty windows are
  /// replaced wholesale, removed members erased, stream cursor and
  /// reorder buffer overwritten. Throws state::SnapshotError on damage
  /// or chain mismatch; `origin` labels error messages.
  void apply_delta(std::span<const std::uint8_t> bytes,
                   const std::string& origin, std::uint64_t expected_seq,
                   std::uint64_t expected_parent_digest,
                   DetectorCheckpointExtra* extra_out = nullptr);

  /// Resets the delta baseline: subsequent save_delta() calls diff
  /// against the state as of this call. Invoke after a successful full
  /// save() (save() itself is const and leaves the baseline alone;
  /// save_delta() resets it on success).
  void clear_dirty();

 private:
  struct Sample {
    std::uint32_t ts;
    std::uint32_t packets;
    TrafficClass cls;
  };
  struct MemberWindow {
    std::deque<Sample> samples;
    double spoofed = 0;           ///< spoofed-class packets in window
    double total = 0;             ///< all packets in window
    double per_class[kNumClasses] = {0, 0, 0, 0};
    std::uint32_t last_alert_ts = 0;
    std::uint32_t last_seen_ts = 0;  ///< drives idle eviction
    bool alerted_once = false;
  };
  struct Pending {
    net::FlowRecord flow;
    /// Classified at ingest (classification is a pure per-flow function,
    /// so computing it before or after buffering is equivalent — doing
    /// it at ingest lets ingest_batch classify whole batches through the
    /// SIMD kernels). Recomputed on checkpoint restore.
    TrafficClass cls = TrafficClass::kInvalid;
    std::uint64_t seq;  ///< arrival order; stabilizes equal timestamps
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.flow.ts != b.flow.ts) return a.flow.ts > b.flow.ts;
      return a.seq > b.seq;
    }
  };

  /// Per-flow classification on whichever engine is configured.
  TrafficClass classify_one(const net::FlowRecord& flow) const;
  /// ingest() with the class already resolved (the batch path classifies
  /// up front through the SIMD kernels).
  void ingest_classified(const net::FlowRecord& flow, TrafficClass cls,
                         const AlertFn& on_alert);
  /// Window accounting + alerting for one in-order flow.
  void account(const net::FlowRecord& flow, TrafficClass cls,
               const AlertFn& on_alert);
  /// Pops the earliest buffered flow into account().
  void release_one(const AlertFn& on_alert);
  /// Evicts the least-recently-active member (ties: smallest ASN).
  void evict_idle_member();
  /// Keeps the idle-eviction index in sync with a member's activity.
  void touch_member(Asn member, MemberWindow& w, std::uint32_t ts);
  /// Back to the freshly-constructed state (config and engine kept).
  void reset_state();
  /// Reclassifies buffered flows when the flat plane's epoch moved
  /// (apply_updates() patched it while flows sat in the reorder buffer):
  /// a flow's class is resolved against the plane in force when it
  /// *leaves* the buffer, matching what classify-at-release would do.
  void sync_plane_epoch();

  const Classifier* classifier_ = nullptr;   // exactly one engine is set
  const FlatClassifier* flat_ = nullptr;
  std::size_t space_idx_;
  StreamingParams params_;
  std::unordered_map<Asn, MemberWindow> windows_;
  /// (last_seen_ts, member) ordered index over windows_ for O(log n)
  /// deterministic idle eviction.
  std::set<std::pair<std::uint32_t, Asn>> idle_index_;
  /// Binary min-heap on (ts, seq) via PendingLater (std::push_heap /
  /// std::pop_heap; top is front()). A plain vector rather than
  /// std::priority_queue so sync_plane_epoch() can rewrite `cls` in
  /// place — cls is not part of the ordering, so the heap stays valid.
  std::vector<Pending> pending_;
  std::uint32_t watermark_ = 0;       ///< max ts seen by the buffer
  std::uint32_t last_released_ts_ = 0;
  std::uint64_t seq_ = 0;
  bool saw_any_ = false;              ///< watermark_ is meaningful
  bool released_any_ = false;         ///< last_released_ts_ is meaningful
  std::uint64_t processed_ = 0;
  DetectorHealth health_;
  std::vector<Label> batch_labels_;  ///< ingest_batch scratch (flat engine)
  std::uint64_t last_plane_epoch_ = 0;  ///< plane epoch pending_ was classified under
  /// Delta baseline: members whose window changed / that were evicted
  /// since the last clear_dirty(). Maintained unconditionally (a few
  /// hash operations per flow) so full and resumed runs track
  /// identically.
  std::unordered_set<Asn> dirty_members_;
  std::unordered_set<Asn> removed_members_;
};

}  // namespace spoofscope::classify
