// Binary trace container and (de)serialization for flow records, so that
// generated workloads can be persisted and re-analyzed without re-running
// the generator.
//
// Format v2 (current): fixed little-endian header guarded by an FNV-1a
// checksum, then fixed-size records each carrying their own checksum, so
// bit damage anywhere in the stream is detectable. v1 streams (no
// checksums) are still readable; bit flips in them are undetectable by
// construction, but skip mode applies a structural plausibility check per
// record so even a damaged v1 stream resyncs to the surviving tail.
//
// Two reading modes (util::ErrorPolicy):
//   kStrict  first malformed byte throws (historical behaviour);
//   kSkip    corrupted records are quarantined and counted in an
//            IngestStats; after a checksum failure the reader resyncs by
//            sliding one byte at a time until a record validates again,
//            so a localized splice/flip costs only the records it hit.
//
// The decode state machine itself lives in net/trace_format.hpp and is
// shared with the mmap-backed reader (net/mapped_trace.hpp), so both
// sources deliver bit-identical records and stats for the same bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/trace_format.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::net {

class FlowBatch;

/// Metadata describing how a trace was captured.
struct TraceMeta {
  std::uint32_t sampling_rate = 10000;       ///< 1-out-of-N packet sampling
  std::uint32_t window_seconds = kFourWeeks; ///< measurement window length
  std::uint64_t seed = 0;                    ///< generator seed (0 = real capture)

  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

/// An in-memory flow trace: metadata plus the sampled flow records.
struct Trace {
  TraceMeta meta;
  std::vector<FlowRecord> flows;

  /// Extrapolation factor from sampled to estimated real counts.
  double scale() const { return static_cast<double>(meta.sampling_rate); }
};

/// Writes a trace in spoofscope binary format v2. Throws
/// std::runtime_error on stream failure.
void write_trace(std::ostream& out, const Trace& trace);

/// Incremental, bounded-memory trace reader: parses the header up front
/// and yields records via next() or next_batch(), so arbitrarily large
/// traces can be processed without materializing a flow vector.
///
/// Strict policy: any malformed input throws std::runtime_error, exactly
/// like read_trace. Skip policy: malformed input is accounted in `stats`
/// (never thrown); a broken header yields an empty record stream, and a
/// broken record starts a byte-wise resync to the next valid record.
class TraceReader {
 public:
  /// Reads and validates the header. `in` and `stats` (optional) must
  /// outlive the reader.
  explicit TraceReader(std::istream& in,
                       util::ErrorPolicy policy = util::ErrorPolicy::kStrict,
                       util::IngestStats* stats = nullptr);

  /// Header metadata (default-constructed if the header was rejected in
  /// skip mode).
  const TraceMeta& meta() const { return meta_; }

  /// Record count the header declared (0 if the header was rejected).
  std::uint64_t declared_count() const { return declared_; }

  /// True if the header parsed and validated.
  bool header_ok() const { return header_ok_; }

  /// Next record, or std::nullopt at end of stream. Strict mode throws
  /// on malformed input; skip mode never throws.
  std::optional<FlowRecord> next();

  /// Clears `out` and refills it with up to `max_records` records,
  /// reusing its lane buffers. Returns the number of records delivered;
  /// 0 means end of stream. Interleaving next() and next_batch() calls
  /// is allowed — together they deliver exactly the record sequence a
  /// pure next() loop would.
  std::size_t next_batch(FlowBatch& out, std::size_t max_records);

  /// Ingest accounting so far (always valid; internal stats are used when
  /// none were supplied).
  const util::IngestStats& stats() const { return *stats_; }

 private:
  void refill();

  std::istream* in_;
  util::ErrorPolicy policy_;
  util::IngestStats own_stats_;
  util::IngestStats* stats_;
  TraceMeta meta_;
  std::uint64_t declared_ = 0;
  bool header_ok_ = false;
  bool done_ = false;
  bool eof_ = false;
  format::RecordScanner scanner_;
  std::vector<std::uint8_t> buf_;  ///< refilled window over the record stream
  std::size_t pos_ = 0;            ///< consumed prefix of buf_
};

/// Reads a whole trace written by write_trace (v1 or v2). Strict policy
/// throws std::runtime_error on malformed input (bad magic, checksum
/// mismatch, truncated records, unsupported version); skip policy
/// returns the surviving records and accounts losses in `stats`.
Trace read_trace(std::istream& in, util::ErrorPolicy policy,
                 util::IngestStats* stats = nullptr);

/// Strict-mode convenience (historical signature).
Trace read_trace(std::istream& in);

}  // namespace spoofscope::net
