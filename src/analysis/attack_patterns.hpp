// Sec 7 / Fig 11: selective vs. random spoofing, NTP amplification
// strategies and the measured amplification effect.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "analysis/member_stats.hpp"

namespace spoofscope::analysis {

/// Fig 11a: histogram over destinations of (#distinct source IPs /
/// #packets). A value near 0 means few sources send everything
/// (selective spoofing / amplification triggers); near 1 means every
/// packet has a fresh source (random spoofing floods).
struct SrcRatioHistogram {
  std::size_t bins = 10;
  /// fractions[class][bin]; bins cover [0,1] left-closed.
  std::array<std::vector<double>, kNumClasses> fractions;
  /// Number of qualifying destinations per class.
  std::array<std::size_t, kNumClasses> destinations{};
};

SrcRatioHistogram src_per_dst_ratio(std::span<const net::FlowRecord> flows,
                                    std::span<const Label> labels,
                                    std::size_t space_idx,
                                    std::uint32_t min_sampled_packets = 50,
                                    std::size_t bins = 10);

/// One victim of NTP amplification (a source address of Invalid NTP
/// trigger traffic), with its per-amplifier packet distribution.
struct NtpVictim {
  net::Ipv4Addr victim;
  std::uint64_t trigger_packets = 0;
  std::size_t amplifiers = 0;
  /// Packets per contacted amplifier, descending (Fig 11b series).
  std::vector<std::uint64_t> packets_per_amplifier;
  /// Gini coefficient of the distribution: ~0 = uniform spraying,
  /// -> 1 = concentrated on few amplifiers.
  double concentration = 0;
};

/// Aggregated NTP amplification analysis over Invalid UDP/123 traffic.
struct NtpAnalysis {
  std::uint64_t trigger_packets = 0;
  std::size_t distinct_victims = 0;       ///< trigger source IPs
  std::size_t contributing_members = 0;
  std::size_t amplifiers_contacted = 0;   ///< distinct destinations
  double top_member_share = 0;            ///< paper: 91.94%
  double top5_member_share = 0;           ///< paper: 97.86%
  std::vector<NtpVictim> top_victims;     ///< by trigger packets
  /// Share of all Invalid UDP packets destined to port 123 (paper: >90%).
  double invalid_udp_ntp_share = 0;
};

NtpAnalysis analyze_ntp(std::span<const net::FlowRecord> flows,
                        std::span<const Label> labels, std::size_t space_idx,
                        std::size_t top_victims = 10);

/// Fig 11c: trigger vs response volume over time, for (victim, amplifier)
/// pairs where both directions were observed.
struct AmplificationTimeseries {
  std::uint32_t bin_seconds = 3600;
  std::vector<double> packets_to_amplifier;
  std::vector<double> packets_from_amplifier;
  std::vector<double> bytes_to_amplifier;
  std::vector<double> bytes_from_amplifier;

  /// Overall byte amplification factor (response bytes / trigger bytes).
  double amplification_factor() const;
  /// Packet-count symmetry (response pkts / trigger pkts), ~1 for NTP.
  double packet_ratio() const;
};

AmplificationTimeseries amplification_effect(
    std::span<const net::FlowRecord> flows, std::span<const Label> labels,
    std::size_t space_idx, std::uint32_t window_seconds,
    std::uint32_t bin_seconds = 3600);

/// Sec 7: overlap of the contacted amplifiers with an independent scan
/// (the ZMap NTP dataset in the paper).
std::size_t amplifier_scan_overlap(std::span<const net::Ipv4Addr> contacted,
                                   std::span<const net::Ipv4Addr> scan);

}  // namespace spoofscope::analysis
