# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for net_ipv4_test.
