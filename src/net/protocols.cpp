#include "net/protocols.hpp"

namespace spoofscope::net {

std::string proto_name(Proto p) {
  switch (p) {
    case Proto::kIcmp: return "ICMP";
    case Proto::kTcp: return "TCP";
    case Proto::kUdp: return "UDP";
  }
  return "P" + std::to_string(static_cast<int>(p));
}

std::string port_service_name(std::uint16_t port) {
  switch (port) {
    case ports::kHttp: return "http";
    case ports::kHttps: return "https";
    case ports::kNtp: return "ntp";
    case ports::kSteam: return "steam";
    case ports::kItalkGame: return "game-10100";
    case ports::kCod: return "game-28960";
    default: return "other";
  }
}

bool is_tracked_port(std::uint16_t port) {
  switch (port) {
    case ports::kHttp:
    case ports::kHttps:
    case ports::kNtp:
    case ports::kSteam:
    case ports::kItalkGame:
    case ports::kCod:
      return true;
    default:
      return false;
  }
}

}  // namespace spoofscope::net
