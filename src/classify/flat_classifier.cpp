#include "classify/flat_classifier.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "net/bogon.hpp"
#include "net/flow_batch.hpp"

namespace spoofscope::classify {

namespace {

/// Blocks (/24 indices) per paint stripe: each stripe is one /8.
constexpr std::size_t kStripeBlocks = std::size_t{1} << 16;
constexpr std::size_t kNumStripes = std::size_t{1} << 8;

/// One base-table paint: /24 blocks [begin, end] (inclusive, both inside
/// a single stripe) take `entry`. Stored per stripe in global paint
/// order, so applying a stripe's ops sequentially reproduces exactly what
/// the historical single-pass paint produced there.
struct PaintOp {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t entry = 0;
};

/// Read-only prefetch hint; no-op on toolchains without the builtin.
#if defined(__GNUC__) || defined(__clang__)
inline void prefetch_ro(const void* p) { __builtin_prefetch(p, 0, 1); }
#else
inline void prefetch_ro(const void*) {}
#endif

/// How many records ahead the batch kernels request the base-table line.
/// Far enough that the miss resolves before use, near enough to stay
/// inside any realistic batch.
constexpr std::size_t kPrefetchDistance = 16;

/// Little-endian 8-byte lane load; folds to a plain load on LE hosts
/// while keeping the digest host-independent.
std::uint64_t load_lane64(const std::uint8_t* p) {
  std::uint64_t w = 0;
  for (int b = 7; b >= 0; --b) w = w << 8 | p[b];
  return w;
}

std::uint64_t fnv64(std::uint64_t h, const void* data, std::size_t n) {
  // FNV-1a-64 over four interleaved stripes of little-endian 8-byte
  // lanes, chained back into `h` at the end so calls still compose.
  // Per stripe step, xor + odd multiply stay bijective and every input
  // byte lands in exactly one stripe, so sensitivity to any single
  // damaged byte is unchanged; the stripes break the serial multiply
  // dependency chain. plane_digest() walks the ~90 MiB plane on every
  // cache-validated load, so this is load-bearing for cold-start time.
  constexpr std::uint64_t kPrime = 1099511628211ull;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t s0 = h;
  std::uint64_t s1 = s0 * kPrime;
  std::uint64_t s2 = s1 * kPrime;
  std::uint64_t s3 = s2 * kPrime;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    s0 = (s0 ^ load_lane64(p + i)) * kPrime;
    s1 = (s1 ^ load_lane64(p + i + 8)) * kPrime;
    s2 = (s2 ^ load_lane64(p + i + 16)) * kPrime;
    s3 = (s3 ^ load_lane64(p + i + 24)) * kPrime;
  }
  for (; i + 8 <= n; i += 8) s0 = (s0 ^ load_lane64(p + i)) * kPrime;
  for (; i < n; ++i) s0 = (s0 ^ p[i]) * kPrime;
  std::uint64_t out = (s0 ^ s1) * kPrime;
  out = (out ^ s2) * kPrime;
  out = (out ^ s3) * kPrime;
  return (out ^ n) * kPrime;
}

}  // namespace

Label FlatClassifier::uniform_label(std::size_t num_spaces, TrafficClass c) {
  Label label = 0;
  for (std::size_t i = 0; i < num_spaces; ++i) {
    label |= static_cast<Label>(c) << (2 * i);
  }
  return label;
}

void FlatClassifier::rebuild_probe() {
  std::size_t probe_cap = 16;
  while (probe_cap < members_.size() * 2) probe_cap <<= 1;
  probe_mask_ = static_cast<std::uint32_t>(probe_cap - 1);
  probe_keys_.assign(probe_cap, 0);
  probe_slots_.assign(probe_cap, MemberView::kNoSlot);
  for (std::size_t slot = 0; slot < members_.size(); ++slot) {
    std::uint32_t h =
        (static_cast<std::uint32_t>(members_[slot]) * 2654435761u) &
        probe_mask_;
    while (probe_slots_[h] != MemberView::kNoSlot) {
      h = (h + 1) & probe_mask_;
    }
    probe_keys_[h] = members_[slot];
    probe_slots_[h] = static_cast<std::uint32_t>(slot);
  }
}

FlatClassifier FlatClassifier::compile(const Classifier& source) {
  return compile_impl(source, nullptr);
}

FlatClassifier FlatClassifier::compile(const Classifier& source,
                                       util::ThreadPool& pool) {
  return compile_impl(source, &pool);
}

FlatClassifier FlatClassifier::compile_impl(const Classifier& source,
                                            util::ThreadPool* pool) {
  FlatClassifier flat;
  flat.table_ = &source.table();
  flat.spaces_.reserve(source.space_count());
  for (std::size_t i = 0; i < source.space_count(); ++i) {
    flat.spaces_.push_back(source.shared_space(i));
  }
  flat.all_bogon_ = uniform_label(flat.spaces_.size(), TrafficClass::kBogon);
  flat.all_unrouted_ = uniform_label(flat.spaces_.size(), TrafficClass::kUnrouted);
  flat.all_invalid_ = uniform_label(flat.spaces_.size(), TrafficClass::kInvalid);

  const bgp::RoutingTable& table = *flat.table_;

  // --- base-class table ------------------------------------------------
  // Paint routed prefixes in ascending length order so more-specifics
  // overwrite their covering blocks (the DIR-24-8 full expansion of the
  // FIB), then the bogon ranges (the classification cascade checks bogons
  // first, and every /8–/24 bogon covers whole /24 blocks). Prefixes
  // longer than /24 break per-/24 homogeneity: their blocks become
  // overflow entries that re-run the exact trie lookups per address.
  //
  // The paint is organized as per-/8-stripe op lists: stripes are
  // disjoint, so they fan out across the pool, and because every op lands
  // in exactly one stripe in global paint order, the painted bytes are
  // bit-identical to the historical sequential single-pass fill. The
  // table memory starts uninitialized; each stripe zero-fills only the
  // lanes no op paints (zero == kKindUnrouted), so no entry is ever
  // written twice just to satisfy initialization.
  std::vector<std::pair<net::Prefix, std::uint32_t>> routed;
  routed.reserve(table.prefix_count());
  table.visit_prefixes([&](bgp::RoutingTable::PrefixId pid,
                           const net::Prefix& p) { routed.emplace_back(p, pid); });
  std::sort(routed.begin(), routed.end(),
            [](const auto& a, const auto& b) {
              return a.first.length() < b.first.length();
            });

  std::vector<std::vector<PaintOp>> stripe_ops(kNumStripes);
  const auto add_op = [&](std::size_t first_block, std::size_t last_block,
                          std::uint32_t entry) {
    for (std::size_t s = first_block / kStripeBlocks;
         s <= last_block / kStripeBlocks; ++s) {
      const std::size_t lo = std::max(first_block, s * kStripeBlocks);
      const std::size_t hi = std::min(last_block, (s + 1) * kStripeBlocks - 1);
      stripe_ops[s].push_back({static_cast<std::uint32_t>(lo),
                               static_cast<std::uint32_t>(hi), entry});
    }
  };
  for (const auto& [p, pid] : routed) {
    if (p.length() <= 24) {
      add_op(p.first() >> 8, p.last() >> 8, (kKindRouted << kKindShift) | pid);
    } else {
      ++flat.stats_.overflow_prefixes;
      add_op(p.first() >> 8, p.first() >> 8, kKindOverflow << kKindShift);
    }
  }
  for (const auto& p : net::bogon_prefixes()) {
    flat.bogons_.insert(p);
    if (p.length() <= 24) {
      add_op(p.first() >> 8, p.last() >> 8, kKindBogon << kKindShift);
    } else {
      ++flat.stats_.overflow_prefixes;
      add_op(p.first() >> 8, p.first() >> 8, kKindOverflow << kKindShift);
    }
  }

  static_assert(kBaseEntries == kNumStripes * kStripeBlocks);
  flat.base_.reset(new std::uint32_t[kBaseEntries]);
  flat.base_view_ = flat.base_.get();
  std::array<std::size_t, kNumStripes> overflow_per_stripe{};
  const auto paint_stripes = [&](std::size_t stripe_begin,
                                 std::size_t stripe_end) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> covered;
    for (std::size_t s = stripe_begin; s < stripe_end; ++s) {
      std::uint32_t* stripe = flat.base_.get() + s * kStripeBlocks;
      const auto& ops = stripe_ops[s];
      if (ops.empty()) {
        std::fill(stripe, stripe + kStripeBlocks, 0u);
        continue;
      }
      // Zero exactly the gaps between painted ranges, then apply the ops
      // in paint order (later ops overwrite earlier ones, as before).
      covered.clear();
      covered.reserve(ops.size());
      const std::uint32_t stripe_base = static_cast<std::uint32_t>(s * kStripeBlocks);
      for (const auto& op : ops) {
        covered.emplace_back(op.begin - stripe_base, op.end - stripe_base);
      }
      std::sort(covered.begin(), covered.end());
      std::size_t next = 0;
      for (const auto& [lo, hi] : covered) {
        if (lo > next) std::fill(stripe + next, stripe + lo, 0u);
        if (std::size_t{hi} + 1 > next) next = std::size_t{hi} + 1;
      }
      if (next < kStripeBlocks) std::fill(stripe + next, stripe + kStripeBlocks, 0u);
      for (const auto& op : ops) {
        std::fill(stripe + (op.begin - stripe_base),
                  stripe + (op.end - stripe_base) + 1, op.entry);
      }
      std::size_t overflow = 0;
      for (std::size_t i = 0; i < kStripeBlocks; ++i) {
        if ((stripe[i] >> kKindShift) == kKindOverflow) ++overflow;
      }
      overflow_per_stripe[s] = overflow;
    }
  };
  if (pool) {
    pool->parallel_for(0, kNumStripes, paint_stripes);
  } else {
    paint_stripes(0, kNumStripes);
  }
  for (const std::size_t c : overflow_per_stripe) flat.stats_.overflow_slots += c;

  // --- per (member, prefix) membership records --------------------------
  // Slot order is the sorted union of every space's members, so the
  // compiled plane is independent of hash-map iteration order.
  for (const auto& space : flat.spaces_) {
    const auto asns = space->members();
    flat.members_.insert(flat.members_.end(), asns.begin(), asns.end());
  }
  std::sort(flat.members_.begin(), flat.members_.end());
  flat.members_.erase(std::unique(flat.members_.begin(), flat.members_.end()),
                      flat.members_.end());

  flat.rebuild_probe();

  const std::size_t num_spaces = flat.spaces_.size();
  flat.num_prefixes_ = table.prefix_count();
  // One zeroed element of tail padding keeps the vector kernels' 32-bit
  // record gathers in bounds at the last real record; every size that
  // shapes behaviour (digest, snapshot save, stats) counts
  // members * prefixes explicitly.
  const std::size_t record_count = flat.members_.size() * flat.num_prefixes_;
  flat.records_.assign(record_count + 1, 0);
  flat.records_view_ = flat.records_.data();
  flat.records_gather_safe_ = true;
  flat.fallback_.assign(flat.members_.size() * num_spaces, nullptr);

  // Address-ordered prefix ranges: each (member, space) row is built by a
  // single merge scan of this list against the member's sorted disjoint
  // interval set — O(prefixes + intervals) per row instead of two
  // binary searches per (row, prefix) pair.
  struct PrefixRange {
    std::uint32_t first;
    std::uint32_t last;
    std::uint32_t pid;
  };
  std::vector<PrefixRange> ordered;
  ordered.reserve(flat.num_prefixes_);
  table.visit_prefixes([&](bgp::RoutingTable::PrefixId pid, const net::Prefix& p) {
    ordered.push_back({p.first(), p.last(), pid});
  });
  std::sort(ordered.begin(), ordered.end(),
            [](const PrefixRange& a, const PrefixRange& b) {
              return a.first != b.first ? a.first < b.first : a.last < b.last;
            });

  // Each member's record row (all methods interleaved) is written by
  // exactly one lane, so the fan-out is race-free and deterministic.
  const auto build_rows = [&](std::size_t slot_begin, std::size_t slot_end) {
    for (std::size_t slot = slot_begin; slot < slot_end; ++slot) {
      const Asn member = flat.members_[slot];
      std::uint16_t* row = flat.records_.data() + slot * flat.num_prefixes_;
      for (std::size_t s = 0; s < num_spaces; ++s) {
        const trie::IntervalSet* space = flat.spaces_[s]->space_of(member);
        if (!space || space->empty()) continue;
        const auto& ivs = space->intervals();
        const std::uint16_t full_bit = static_cast<std::uint16_t>(1u << s);
        const std::uint16_t part_bit = static_cast<std::uint16_t>(1u << (8 + s));
        std::size_t j = 0;
        for (const auto& pr : ordered) {
          // Intervals ending before this prefix can never cover a later
          // one either (prefixes are visited in ascending first()).
          while (j < ivs.size() && ivs[j].hi < pr.first) ++j;
          if (j == ivs.size()) break;
          if (ivs[j].lo > pr.last) continue;  // gap: no overlap
          // ivs[j] is the only interval that can contain pr.first, so
          // full coverage is decidable from it alone; any other overlap
          // is partial.
          if (ivs[j].lo <= pr.first && ivs[j].hi >= pr.last) {
            row[pr.pid] |= full_bit;
          } else {
            row[pr.pid] |= part_bit;
            flat.fallback_[slot * num_spaces + s] = space;
          }
        }
      }
    }
  };
  if (pool) {
    pool->parallel_for(0, flat.members_.size(), build_rows);
  } else {
    build_rows(0, flat.members_.size());
  }

  for (const auto* fb : flat.fallback_) {
    if (fb) ++flat.stats_.partial_rows;
  }
  flat.stats_.table_bytes = kBaseEntries * sizeof(std::uint32_t);
  flat.stats_.bitset_bytes = record_count * sizeof(std::uint16_t);
  flat.stats_.prefixes = flat.num_prefixes_;
  flat.stats_.members = flat.members_.size();
  return flat;
}

FlatClassifier::MemberView FlatClassifier::member_view(Asn member) const {
  return view_for(member, slot_of(member));
}

TrafficClass FlatClassifier::class_in_space(net::Ipv4Addr src,
                                            std::uint32_t pid,
                                            std::uint32_t slot,
                                            std::size_t space_idx) const {
  const std::uint16_t rec = records_view_[slot * num_prefixes_ + pid];
  if (rec & (1u << space_idx)) return TrafficClass::kValid;
  if ((rec & (1u << (8 + space_idx))) &&
      fallback_[slot * spaces_.size() + space_idx]->contains(src)) {
    return TrafficClass::kValid;
  }
  return TrafficClass::kInvalid;
}

Label FlatClassifier::classify_routed(net::Ipv4Addr src, std::uint32_t pid,
                                      const MemberView& view) const {
  if (!view.known()) return all_invalid_;
  const std::uint16_t rec = records_view_[view.slot_ * num_prefixes_ + pid];
  std::uint32_t valid = rec & 0xFFu;
  if (std::uint32_t partial = rec >> 8; partial != 0) [[unlikely]] {
    const trie::IntervalSet* const* fb =
        fallback_.data() + view.slot_ * spaces_.size();
    do {
      const int s = std::countr_zero(partial);
      if (fb[s]->contains(src)) valid |= 1u << s;
      partial &= partial - 1;
    } while (partial != 0);
  }
  // Spread the valid mask's bit m to bit 2m; ORed over the all-Invalid
  // pattern this flips Invalid (0b10) to Valid (0b11) per method.
  std::uint32_t x = valid;
  x = (x | (x << 4)) & 0x0F0Fu;
  x = (x | (x << 2)) & 0x3333u;
  x = (x | (x << 1)) & 0x5555u;
  return static_cast<Label>(all_invalid_ | x);
}

Label FlatClassifier::classify_overflow(net::Ipv4Addr src,
                                        const MemberView& view) const {
  // Exact lane for /24 blocks broken by a longer-than-/24 prefix: re-run
  // the cascade's trie lookups per address. A live (patched) plane
  // resolves against its own route set — the source table is stale once
  // apply_updates has run.
  if (bogons_.covers(src)) return all_bogon_;
  const auto pid = live_ ? live_covering_prefix(src)
                         : table_->covering_prefix(src);
  if (!pid) return all_unrouted_;
  return classify_routed(src, *pid, view);
}

Label FlatClassifier::classify_all(net::Ipv4Addr src,
                                   const MemberView& view) const {
  const std::uint32_t entry = base_view_[src.value() >> 8];
  switch (entry >> kKindShift) {
    case kKindUnrouted: return all_unrouted_;
    case kKindBogon: return all_bogon_;
    case kKindRouted: return classify_routed(src, entry & kPayloadMask, view);
    default: return classify_overflow(src, view);
  }
}

TrafficClass FlatClassifier::classify(net::Ipv4Addr src, const MemberView& view,
                                      std::size_t space_idx) const {
  const std::uint32_t entry = base_view_[src.value() >> 8];
  switch (entry >> kKindShift) {
    case kKindUnrouted: return TrafficClass::kUnrouted;
    case kKindBogon: return TrafficClass::kBogon;
    case kKindRouted:
      return view.known() ? class_in_space(src, entry & kPayloadMask,
                                           view.slot_, space_idx)
                          : TrafficClass::kInvalid;
    default:
      return Classifier::unpack(classify_overflow(src, view), space_idx);
  }
}

template <typename GetSrc, typename GetMember>
void FlatClassifier::classify_kernel(std::size_t begin, std::size_t end,
                                     GetSrc&& src_at, GetMember&& member_at,
                                     Label* out,
                                     std::size_t prefetch_distance) const {
  // Member views are memoized per distinct ASN (unordered_map values are
  // pointer-stable), with a last-member fast path for runs; base-table
  // reads are prefetched a fixed distance ahead so consecutive random
  // /24 lookups overlap instead of serializing on memory latency.
  std::unordered_map<Asn, MemberView> views;
  const std::uint32_t* base = base_view_;
  Asn last_member = net::kNoAsn;
  const MemberView* last_view = nullptr;
  for (std::size_t i = begin; i < end; ++i) {
    if (i + prefetch_distance < end && prefetch_distance != 0) {
      prefetch_ro(base + (src_at(i + prefetch_distance) >> 8));
    }
    const Asn member = member_at(i);
    if (member != last_member || last_view == nullptr) {
      auto it = views.find(member);
      if (it == views.end()) it = views.emplace(member, member_view(member)).first;
      last_member = member;
      last_view = &it->second;
    }
    out[i] = classify_all(net::Ipv4Addr(src_at(i)), *last_view);
  }
}

void FlatClassifier::kernel_scalar(const std::uint32_t* src, const Asn* member,
                                   std::size_t n, Label* out,
                                   std::size_t prefetch_distance) const {
  classify_kernel(
      0, n, [src](std::size_t i) { return src[i]; },
      [member](std::size_t i) { return member[i]; }, out, prefetch_distance);
}

void FlatClassifier::resolve_pending(const std::uint32_t* src,
                                     const Asn* member,
                                     const std::uint32_t* entry,
                                     const std::uint32_t* slot,
                                     const std::uint32_t* pending,
                                     std::size_t n_pending, Label* out) const {
  for (std::size_t p = 0; p < n_pending; ++p) {
    const std::uint32_t i = pending[p];
    const MemberView view = view_for(member[i], slot[i]);
    const std::uint32_t e = entry[i];
    out[i] = (e >> kKindShift) == kKindOverflow
                 ? classify_overflow(net::Ipv4Addr(src[i]), view)
                 : classify_routed(net::Ipv4Addr(src[i]), e & kPayloadMask,
                                   view);
  }
}

SimdKernel FlatClassifier::effective_kernel(SimdKernel requested) const {
  const SimdKernel kernel = resolve_simd_kernel(requested);
  if (kernel == SimdKernel::kAvx2 &&
      members_.size() * num_prefixes_ >= (std::size_t{1} << 31)) {
    return SimdKernel::kScalar;
  }
  return kernel;
}

void FlatClassifier::run_kernel(SimdKernel kernel, const std::uint32_t* src,
                                const Asn* member, std::size_t n,
                                Label* out) const {
  switch (kernel) {
#if SPOOFSCOPE_KERNEL_AVX2
    case SimdKernel::kAvx2:
      kernel_avx2(src, member, n, out);
      return;
#endif
#if SPOOFSCOPE_KERNEL_NEON
    case SimdKernel::kNeon:
      kernel_neon(src, member, n, out);
      return;
#endif
    default:
      kernel_scalar(src, member, n, out, kPrefetchDistance);
      return;
  }
}

void FlatClassifier::classify_batch(const net::FlowBatch& batch,
                                    std::span<Label> out) const {
  classify_batch(batch, out, SimdKernel::kAuto);
}

void FlatClassifier::classify_batch(const net::FlowBatch& batch,
                                    std::span<Label> out,
                                    SimdKernel kernel) const {
  if (out.size() != batch.size()) {
    throw std::invalid_argument("classify_batch: label span size mismatch");
  }
  run_kernel(effective_kernel(kernel), batch.src().data(),
             batch.member_in().data(), batch.size(), out.data());
}

void FlatClassifier::classify_batch(const net::FlowBatch& batch,
                                    std::span<Label> out,
                                    util::ThreadPool& pool) const {
  classify_batch(batch, out, pool, SimdKernel::kAuto);
}

void FlatClassifier::classify_batch(const net::FlowBatch& batch,
                                    std::span<Label> out,
                                    util::ThreadPool& pool,
                                    SimdKernel kernel) const {
  if (out.size() != batch.size()) {
    throw std::invalid_argument("classify_batch: label span size mismatch");
  }
  const SimdKernel resolved = effective_kernel(kernel);
  const std::uint32_t* src = batch.src().data();
  const Asn* member = batch.member_in().data();
  Label* labels = out.data();
  pool.parallel_for(0, batch.size(), [&](std::size_t b, std::size_t e) {
    run_kernel(resolved, src + b, member + b, e - b, labels + b);
  });
}

void FlatClassifier::classify_batch_scalar(const net::FlowBatch& batch,
                                           std::span<Label> out,
                                           std::size_t prefetch_distance) const {
  if (out.size() != batch.size()) {
    throw std::invalid_argument("classify_batch: label span size mismatch");
  }
  kernel_scalar(batch.src().data(), batch.member_in().data(), batch.size(),
                out.data(), prefetch_distance);
}

std::vector<Label> FlatClassifier::classify_batch(
    const net::FlowBatch& batch) const {
  std::vector<Label> labels(batch.size());
  classify_batch(batch, labels);
  return labels;
}

void FlatClassifier::classify_records(std::span<const net::FlowRecord> flows,
                                      std::span<Label> out) const {
  classify_records(flows, out, SimdKernel::kAuto);
}

void FlatClassifier::classify_records(std::span<const net::FlowRecord> flows,
                                      std::span<Label> out,
                                      SimdKernel kernel) const {
  if (out.size() != flows.size()) {
    throw std::invalid_argument("classify_records: label span size mismatch");
  }
  const SimdKernel resolved = effective_kernel(kernel);
  if (resolved == SimdKernel::kScalar) {
    classify_kernel(
        0, flows.size(),
        [flows](std::size_t i) { return flows[i].src.value(); },
        [flows](std::size_t i) { return flows[i].member_in; }, out.data(),
        kPrefetchDistance);
    return;
  }
  // Vector kernels read SoA lanes: repack the AoS records tile-wise. The
  // copies are linear streams — a small cost against the gather savings.
  constexpr std::size_t kPackTile = 4096;
  thread_local std::vector<std::uint32_t> src_lane;
  thread_local std::vector<Asn> member_lane;
  src_lane.resize(kPackTile);
  member_lane.resize(kPackTile);
  for (std::size_t t = 0; t < flows.size(); t += kPackTile) {
    const std::size_t m = std::min(kPackTile, flows.size() - t);
    for (std::size_t i = 0; i < m; ++i) {
      src_lane[i] = flows[t + i].src.value();
      member_lane[i] = flows[t + i].member_in;
    }
    run_kernel(resolved, src_lane.data(), member_lane.data(), m,
               out.data() + t);
  }
}

std::uint64_t FlatClassifier::plane_digest() const {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv64(h, base_view_, kBaseEntries * sizeof(std::uint32_t));
  h = fnv64(h, records_view_,
            members_.size() * num_prefixes_ * sizeof(std::uint16_t));
  h = fnv64(h, members_.data(), members_.size() * sizeof(Asn));
  const std::uint64_t np = num_prefixes_;
  h = fnv64(h, &np, sizeof np);
  for (const auto* fb : fallback_) {
    // Pointer values vary run to run; only presence shapes behaviour.
    const std::uint8_t present = fb != nullptr ? 1 : 0;
    h = fnv64(h, &present, 1);
  }
  const std::uint64_t ov = stats_.overflow_slots;
  h = fnv64(h, &ov, sizeof ov);
  return h;
}

std::vector<Label> classify_trace(const FlatClassifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  SimdKernel kernel) {
  std::vector<Label> labels(flows.size());
  classifier.classify_records(flows, labels, kernel);
  return labels;
}

std::vector<Label> classify_trace(const FlatClassifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  util::ThreadPool& pool, SimdKernel kernel) {
  std::vector<Label> labels(flows.size());
  Label* out = labels.data();
  pool.parallel_for(0, flows.size(), [&](std::size_t b, std::size_t e) {
    classifier.classify_records(flows.subspan(b, e - b),
                                std::span<Label>(out + b, e - b), kernel);
  });
  return labels;
}

}  // namespace spoofscope::classify
