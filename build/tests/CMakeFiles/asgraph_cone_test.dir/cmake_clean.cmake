file(REMOVE_RECURSE
  "CMakeFiles/asgraph_cone_test.dir/asgraph_cone_test.cpp.o"
  "CMakeFiles/asgraph_cone_test.dir/asgraph_cone_test.cpp.o.d"
  "asgraph_cone_test"
  "asgraph_cone_test.pdb"
  "asgraph_cone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asgraph_cone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
