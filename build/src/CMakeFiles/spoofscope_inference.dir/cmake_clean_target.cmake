file(REMOVE_RECURSE
  "libspoofscope_inference.a"
)
