// The IXP vantage point: a layer-2 fabric with ~700 member ASes whose
// mutual traffic is monitored with random 1-out-of-N packet sampling
// (Sec 4.1). The Ixp object selects members from the topology, assigns
// their traffic weights and route-server usage, and carries the sampling
// configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ixp/member.hpp"
#include "topo/topology.hpp"

namespace spoofscope::ixp {

struct IxpParams {
  /// Number of member ASes (capped by eligible ASes in the topology).
  std::size_t member_count = 700;
  /// Fraction of members peering via the route server.
  double route_server_fraction = 0.85;
  /// Packet sampling: 1 out of N (the paper's N = 10000).
  std::uint32_t sampling_rate = 10000;
  /// Relative propensity of each business type to join the IXP,
  /// indexed by topo::BusinessType (NSP, ISP, Hosting, Content, Other).
  double join_weight[topo::kNumBusinessTypes] = {0.7, 1.0, 1.0, 1.0, 0.5};
};

/// Immutable IXP description.
class Ixp {
 public:
  /// Selects members and assigns weights. Deterministic in
  /// (topology, params, seed).
  static Ixp build(const topo::Topology& topo, const IxpParams& params,
                   std::uint64_t seed);

  const std::vector<Member>& members() const { return members_; }
  std::size_t member_count() const { return members_.size(); }

  bool is_member(Asn asn) const { return index_.count(asn) > 0; }

  /// Member record; nullptr for non-members.
  const Member* find(Asn asn) const;

  /// All member ASNs (selection order).
  std::vector<Asn> member_asns() const;

  /// Members feeding the route server (the RS collector's feeder list).
  std::vector<Asn> route_server_feeders() const;

  std::uint32_t sampling_rate() const { return sampling_rate_; }

 private:
  std::vector<Member> members_;
  std::unordered_map<Asn, std::size_t> index_;
  std::uint32_t sampling_rate_ = 10000;
};

}  // namespace spoofscope::ixp
