// Bounded-memory streaming analysis builders — the report-side twin of
// classify::AggregateBuilder (DESIGN.md §12). Every analysis the
// `report` command computes (member stats, Venn, filtering strategies,
// port mix, traffic characteristics, attack patterns, NTP amplification,
// incidents, Table 1 aggregates) gains an incremental builder with an
// `add(batch, labels)` / `finish()` shape, fed straight from
// net::MappedTrace + net::FlowBatch lanes. State is bounded:
//
//  - per-key accumulators (members, destinations, victims, amplifier
//    sets, incident clusters) live in BoundedTable, which applies the
//    same deterministic LRU discipline StreamingDetector uses for
//    member windows: at the cap, the least-recently-touched entry is
//    evicted (ties: smallest key), and every eviction is counted;
//  - distribution summaries (packet-size CDFs) use the mergeable
//    util::QuantileSketch instead of materialized sample vectors;
//  - time series bins are fixed by the window length (or grow with the
//    observed timestamps — O(duration / bin), not O(flows)).
//
// Determinism contract: every builder is a pure function of the record
// sequence it was fed — no hash-order or wall-clock dependence — so
// results are bit-identical regardless of where batch boundaries fall,
// and finish() may be called mid-stream (the builder stays usable).
// With unbounded limits (the default), every exact analysis reproduces
// the retained in-memory oracle functions bit-identically; sketched
// quantiles carry a pinned rank-error bound. merge() folds another
// builder in; because all exact accumulations are order-free integer
// sums, a chunk-order merge reduction equals the sequential pass
// bit-identically for everything but the sketches (which stay within
// their combined error bound). tests/analysis_streaming_oracle_test.cpp
// pins all of this differentially.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/attack_patterns.hpp"
#include "analysis/filtering_strategy.hpp"
#include "analysis/incidents.hpp"
#include "analysis/member_stats.hpp"
#include "analysis/portmix.hpp"
#include "analysis/traffic_char.hpp"
#include "analysis/venn.hpp"
#include "classify/pipeline.hpp"
#include "net/flow_batch.hpp"
#include "util/stats.hpp"

namespace spoofscope::analysis {

/// Deterministic bounded key->value accumulator table. Mirrors the
/// StreamingDetector member-window discipline: admitting a new key at
/// the cap evicts the least-recently-touched entry (recency is a
/// logical sequence number — a pure function of the touch sequence —
/// with ties broken towards the smallest key), and evictions are
/// counted so degraded results are visible rather than silent.
/// max_entries == 0 means unbounded (the oracle-exact configuration).
template <typename Key, typename Value>
class BoundedTable {
 public:
  BoundedTable() = default;  // unbounded; non-explicit so Value types
                             // holding a table aggregate-initialize
  explicit BoundedTable(std::size_t max_entries)
      : max_entries_(max_entries) {}

  /// The entry for `key`, created (default-constructed) if absent,
  /// marked most-recently-used either way. May evict another entry.
  Value& touch(const Key& key) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      recency_.erase({it->second.last_touch, key});
      it->second.last_touch = ++seq_;
      recency_.insert({it->second.last_touch, key});
      return it->second.value;
    }
    if (max_entries_ != 0 && entries_.size() >= max_entries_) {
      const auto victim = *recency_.begin();
      recency_.erase(recency_.begin());
      entries_.erase(victim.second);
      ++evictions_;
    }
    Entry fresh;
    fresh.last_touch = ++seq_;
    const auto ins = entries_.emplace(key, std::move(fresh)).first;
    recency_.insert({ins->second.last_touch, key});
    return ins->second.value;
  }

  const Value* find(const Key& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second.value;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t cap() const { return max_entries_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Re-caps the table; shrinking below the current size evicts the
  /// least-recently-touched entries immediately.
  void set_cap(std::size_t max_entries) {
    max_entries_ = max_entries;
    while (max_entries_ != 0 && entries_.size() > max_entries_) {
      const auto victim = *recency_.begin();
      recency_.erase(recency_.begin());
      entries_.erase(victim.second);
      ++evictions_;
    }
  }

  /// Keys in ascending order — the deterministic iteration order every
  /// finish() uses.
  std::vector<Key> sorted_keys() const {
    std::vector<Key> keys;
    keys.reserve(entries_.size());
    for (const auto& [k, e] : entries_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  /// Folds `other` into this table in ascending key order; `fold(ours,
  /// theirs)` combines values for keys present on both sides.
  template <typename Fold>
  void merge(const BoundedTable& other, Fold&& fold) {
    evictions_ += other.evictions_;
    for (const Key& k : other.sorted_keys()) {
      fold(touch(k), *other.find(k));
    }
  }

 private:
  struct Entry {
    Value value{};  // value-initialize: Value may be a bare scalar
    std::uint64_t last_touch = 0;
  };
  std::size_t max_entries_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t evictions_ = 0;
  std::unordered_map<Key, Entry> entries_;
  std::set<std::pair<std::uint64_t, Key>> recency_;
};

/// State caps for one streaming report. 0 = unbounded. unbounded() is
/// the differential-test configuration (bit-identical to the oracle);
/// production() bounds every table so peak memory is independent of
/// trace length even under adversarial traffic.
struct ReportLimits {
  std::size_t max_members = 0;
  std::size_t max_destinations = 0;             ///< src-ratio dst table, per class
  std::size_t max_sources_per_destination = 0;  ///< distinct-src sets
  std::size_t max_victims = 0;                  ///< NTP reflection victims
  std::size_t max_amplifiers_per_victim = 0;
  std::size_t max_amplifiers = 0;               ///< distinct amplifier set
  std::size_t max_pairs = 0;                    ///< (victim, amplifier) pairs
  std::size_t max_clusters = 0;                 ///< incident clusters per table
  std::size_t max_counterparts_per_cluster = 0;
  std::size_t sketch_k = 256;                   ///< QuantileSketch accuracy knob

  static ReportLimits unbounded() { return {}; }
  static ReportLimits production();
};

// ---------------------------------------------------------------- members

/// Streaming twin of per_member_counts(): per-member class counters
/// under one inference method. finish() returns members in ascending
/// ASN order, exactly like the oracle.
class MemberStatsBuilder {
 public:
  explicit MemberStatsBuilder(std::size_t space_idx = 0,
                              const ixp::Ixp* ixp = nullptr,
                              std::size_t max_members = 0)
      : space_idx_(space_idx), ixp_(ixp), members_(max_members) {}

  void add(const net::FlowBatch& batch, std::span<const Label> labels);
  void merge(const MemberStatsBuilder& other);
  std::vector<MemberClassCounts> finish() const;

  std::size_t tracked() const { return members_.size(); }
  std::uint64_t evictions() const { return members_.evictions(); }

 private:
  std::size_t space_idx_;
  const ixp::Ixp* ixp_;
  BoundedTable<Asn, MemberClassCounts> members_;
};

// ------------------------------------------------------------------- venn

/// Streaming twin of venn_membership(): three contribution bits per
/// member instead of full counters.
class VennBuilder {
 public:
  explicit VennBuilder(std::size_t space_idx = 0, std::size_t max_members = 0)
      : space_idx_(space_idx), members_(max_members) {}

  void add(const net::FlowBatch& batch, std::span<const Label> labels);
  void merge(const VennBuilder& other);
  VennCounts finish() const;

  std::uint64_t evictions() const { return members_.evictions(); }

 private:
  std::size_t space_idx_;
  BoundedTable<Asn, std::uint8_t> members_;  ///< bit c set: contributes class c
};

// --------------------------------------------------------------- port mix

/// Streaming twin of port_mix(). State is inherently bounded (six
/// tracked ports plus "other", per class x transport x direction).
class PortMixBuilder {
 public:
  explicit PortMixBuilder(std::size_t space_idx = 0) : space_idx_(space_idx) {}

  void add(const net::FlowBatch& batch, std::span<const Label> labels);
  void merge(const PortMixBuilder& other);
  PortMix finish() const;

 private:
  std::size_t space_idx_;
  std::map<std::uint16_t, double> counts_[kNumClasses][2][2];
  double totals_[kNumClasses][2][2] = {};
};

// ----------------------------------------------------- traffic character

/// Streaming traffic-characteristics summary (Fig 8): per-class
/// packet-size distributions as quantile sketches, small-packet
/// fractions and the class time series.
struct TrafficCharSummary {
  ClassTimeSeries series;
  std::array<double, kNumClasses> small_packet_fraction{};
  std::array<util::QuantileSketch, kNumClasses> size_sketch;
};

class TrafficCharBuilder {
 public:
  /// window_seconds == 0: the series grows with the observed
  /// timestamps; > 0: fixed bins with the oracle's last-bin clamp.
  explicit TrafficCharBuilder(std::size_t space_idx = 0,
                              std::uint32_t window_seconds = 0,
                              std::uint32_t bin_seconds = 3600,
                              std::size_t sketch_k = 256,
                              double small_threshold = 60.0);

  void add(const net::FlowBatch& batch, std::span<const Label> labels);
  void merge(const TrafficCharBuilder& other);
  TrafficCharSummary finish() const;

  const util::QuantileSketch& size_sketch(int cls) const {
    return sketches_[cls];
  }

 private:
  std::size_t bin_of(std::uint32_t ts);

  std::size_t space_idx_;
  std::uint32_t window_seconds_;
  std::uint32_t bin_seconds_;
  double small_threshold_;
  std::array<util::QuantileSketch, kNumClasses> sketches_;
  double small_[kNumClasses] = {};
  double total_[kNumClasses] = {};
  std::array<std::vector<double>, kNumClasses> series_;
};

// --------------------------------------------------------- attack patterns

/// Streaming twin of src_per_dst_ratio() + analyze_ntp(): per-dst
/// source-uniqueness state and the NTP amplification aggregation, all
/// behind bounded tables.
class AttackPatternsBuilder {
 public:
  explicit AttackPatternsBuilder(std::size_t space_idx = 0,
                                 const ReportLimits& limits = {});

  void add(const net::FlowBatch& batch, std::span<const Label> labels);
  void merge(const AttackPatternsBuilder& other);

  SrcRatioHistogram ratio(std::uint32_t min_sampled_packets = 50,
                          std::size_t bins = 10) const;
  NtpAnalysis ntp(std::size_t top_victims = 10) const;

  std::uint64_t evictions() const;

 private:
  struct DstInfo {
    std::uint64_t packets = 0;
    BoundedTable<std::uint32_t, char> sources;
  };
  struct VictimAgg {
    std::uint64_t packets = 0;
    BoundedTable<std::uint32_t, std::uint64_t> per_amplifier;
  };

  std::size_t space_idx_;
  ReportLimits limits_;
  std::array<BoundedTable<std::uint32_t, DstInfo>, kNumClasses> by_dst_;
  BoundedTable<std::uint32_t, VictimAgg> victims_;
  BoundedTable<std::uint32_t, char> amplifiers_;
  std::map<Asn, std::uint64_t> member_packets_;
  std::uint64_t trigger_packets_ = 0;
  double invalid_udp_ = 0;
  double invalid_udp_ntp_ = 0;
};

// ------------------------------------------------------ amplification effect

/// Streaming twin of amplification_effect(): accumulates per-pair
/// time-binned volumes for every candidate (victim, amplifier) pair in
/// a single pass and intersects trigger/response evidence at finish()
/// — the oracle's two passes collapsed into one.
class AmplificationBuilder {
 public:
  explicit AmplificationBuilder(std::size_t space_idx = 0,
                                std::uint32_t window_seconds = 0,
                                std::uint32_t bin_seconds = 3600,
                                std::size_t max_pairs = 0);

  void add(const net::FlowBatch& batch, std::span<const Label> labels);
  void merge(const AmplificationBuilder& other);
  AmplificationTimeseries finish() const;

  std::uint64_t evictions() const { return pairs_.evictions(); }

 private:
  struct PairState {
    bool trigger = false;   ///< Invalid UDP/123 towards the amplifier seen
    bool response = false;  ///< UDP sport 123 back towards the victim seen
    std::vector<double> to_packets, from_packets, to_bytes, from_bytes;
    /// Flows with both ports NTP: direction resolved at finish() (the
    /// oracle's else-if on pair qualification).
    std::vector<double> dual_packets, dual_bytes;
  };
  std::size_t bin_of(std::uint32_t ts) const;

  std::size_t space_idx_;
  std::uint32_t window_seconds_;
  std::uint32_t bin_seconds_;
  BoundedTable<std::uint64_t, PairState> pairs_;
};

// -------------------------------------------------------------- incidents

/// Streaming twin of extract_incidents(): flood clusters keyed by
/// destination, amplification clusters keyed by trigger source.
class IncidentsBuilder {
 public:
  explicit IncidentsBuilder(std::size_t space_idx = 0,
                            IncidentParams params = {},
                            std::size_t max_clusters = 0,
                            std::size_t max_counterparts = 0);

  void add(const net::FlowBatch& batch, std::span<const Label> labels);
  void merge(const IncidentsBuilder& other);
  std::vector<Incident> finish() const;

  std::uint64_t evictions() const {
    return by_dst_.evictions() + by_trigger_src_.evictions();
  }

 private:
  struct ClusterState {
    std::uint32_t start_ts = ~0u;
    std::uint32_t end_ts = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    BoundedTable<std::uint32_t, char> counterparts;
    std::set<Asn> members;
  };

  std::size_t space_idx_;
  IncidentParams params_;
  std::size_t max_counterparts_;
  BoundedTable<std::uint32_t, ClusterState> by_dst_;
  BoundedTable<std::uint32_t, ClusterState> by_trigger_src_;
};

// -------------------------------------------------------- the full report

/// Everything `spoofscope report` computes, assembled by one streaming
/// pass.
struct ReportOptions {
  std::size_t space_idx = 0;
  std::uint32_t window_seconds = 0;  ///< 0: series bins grow with ts
  std::uint32_t bin_seconds = 3600;
  ReportLimits limits;               ///< default: unbounded (oracle-exact)
  IncidentParams incident_params;
  std::uint32_t ratio_min_packets = 50;
  std::size_t ratio_bins = 10;
  std::size_t top_victims = 10;
  double small_packet_threshold = 60.0;
  const ixp::Ixp* ixp = nullptr;     ///< member types (nullptr: kOther)
};

struct ReportResult {
  classify::Aggregate aggregate;     ///< Table-1 totals, all spaces
  std::vector<MemberClassCounts> member_counts;
  VennCounts venn;
  std::array<std::size_t, kNumStrategies> strategy_counts{};
  PortMix ports;
  TrafficCharSummary traffic;
  SrcRatioHistogram src_ratio;
  NtpAnalysis ntp;
  AmplificationTimeseries amplification;
  std::vector<Incident> incidents;
  std::uint64_t flows = 0;
  std::uint64_t evictions = 0;       ///< total across all bounded tables
};

class StreamingReport {
 public:
  explicit StreamingReport(std::size_t space_count, ReportOptions opts = {});

  /// Accumulates one classified batch; labels[i] belongs to record i.
  void add(const net::FlowBatch& batch, std::span<const classify::Label> labels);

  /// Folds another report (same space count and options) into this one.
  void merge(const StreamingReport& other);

  /// Snapshot of the report so far; the builder stays usable.
  ReportResult finish() const;

  std::uint64_t flows() const { return flows_; }
  std::uint64_t evictions() const;
  const ReportOptions& options() const { return opts_; }

 private:
  ReportOptions opts_;
  classify::AggregateBuilder aggregate_;
  MemberStatsBuilder members_;
  VennBuilder venn_;
  PortMixBuilder ports_;
  TrafficCharBuilder traffic_;
  AttackPatternsBuilder attacks_;
  AmplificationBuilder amplification_;
  IncidentsBuilder incidents_;
  std::uint64_t flows_ = 0;
};

/// Human-readable rendering of the full report (the CLI's analysis
/// sections; the totals table is printed by the caller from
/// ReportResult::aggregate).
std::string format_report(const ReportResult& r, std::size_t top_incidents = 10);

}  // namespace spoofscope::analysis
