#include "analysis/addr_structure.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace spoofscope::analysis {

namespace {

double concentration(const std::array<double, 256>& bins) {
  double total = 0;
  for (const double b : bins) total += b;
  if (total <= 0) return 0.0;
  double h = 0;
  for (const double b : bins) {
    const double f = b / total;
    h += f * f;
  }
  return h;
}

}  // namespace

double AddressStructure::src_fraction(TrafficClass cls, int slash8) const {
  const auto& bins = src[static_cast<int>(cls)];
  double total = 0;
  for (const double b : bins) total += b;
  return total > 0 ? bins[slash8] / total : 0.0;
}

double AddressStructure::src_concentration(TrafficClass cls) const {
  return concentration(src[static_cast<int>(cls)]);
}

double AddressStructure::dst_concentration(TrafficClass cls) const {
  return concentration(dst[static_cast<int>(cls)]);
}

AddressStructure address_structure(std::span<const net::FlowRecord> flows,
                                   std::span<const Label> labels,
                                   std::size_t space_idx) {
  AddressStructure out;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto c = static_cast<int>(classify::Classifier::unpack(labels[i], space_idx));
    out.src[c][flows[i].src.slash8()] += flows[i].packets;
    out.dst[c][flows[i].dst.slash8()] += flows[i].packets;
  }
  return out;
}

std::string format_address_structure(const AddressStructure& a, int top_n) {
  std::ostringstream os;
  static const char* kClassNames[] = {"bogon", "unrouted", "invalid", "regular"};
  const auto render = [&](const char* which,
                          const std::array<double, 256>& bins) {
    double total = 0;
    for (const double b : bins) total += b;
    std::vector<std::pair<double, int>> ranked;
    for (int i = 0; i < 256; ++i) {
      if (bins[i] > 0) ranked.emplace_back(bins[i], i);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    os << "    " << which << " top /8:";
    for (int i = 0; i < top_n && i < static_cast<int>(ranked.size()); ++i) {
      os << "  " << ranked[i].second << "/8="
         << util::percent(total > 0 ? ranked[i].first / total : 0);
    }
    os << "\n";
  };
  for (const int c : {0, 1, 2}) {  // Fig 10 shows the three spoofed classes
    os << "  " << kClassNames[c] << ":\n";
    render("src", a.src[c]);
    render("dst", a.dst[c]);
  }
  return os.str();
}

}  // namespace spoofscope::analysis
