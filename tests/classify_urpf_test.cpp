#include "classify/urpf.hpp"

#include <gtest/gtest.h>

#include "analysis/method_eval.hpp"
#include "net/prefix.hpp"

namespace spoofscope::classify {
namespace {

using net::Ipv4Addr;
using net::pfx;

/// Routing view:
///   50.0/16 exported by AS1 (path "1") and AS2 (path "2 1");
///   60.0/16 exported only via AS3 (path "3"); AS1 also carries it
///   upstream ("9 1 3" — AS1 appears mid-path, so feasible but not
///   strict for AS1).
bgp::RoutingTable view() {
  bgp::RoutingTableBuilder b;
  b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
  b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{2, 1});
  b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{3});
  b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{9, 1, 3});
  return b.build();
}

TEST(Urpf, ModeNames) {
  EXPECT_EQ(urpf_mode_name(UrpfMode::kLoose), "uRPF loose");
  EXPECT_EQ(urpf_mode_name(UrpfMode::kFeasible), "uRPF feasible");
  EXPECT_EQ(urpf_mode_name(UrpfMode::kStrict), "uRPF strict");
}

TEST(Urpf, AllModesRejectBogonAndUnrouted) {
  const auto table = view();
  for (const auto mode :
       {UrpfMode::kLoose, UrpfMode::kFeasible, UrpfMode::kStrict}) {
    const UrpfFilter f(table, mode);
    EXPECT_FALSE(f.accepts(Ipv4Addr::from_octets(192, 168, 1, 1), 1));
    EXPECT_FALSE(f.accepts(Ipv4Addr::from_octets(99, 0, 0, 1), 1));
  }
}

TEST(Urpf, LooseAcceptsAnyRoutedFromAnyPeer) {
  const auto table = view();
  const UrpfFilter f(table, UrpfMode::kLoose);
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(50, 0, 0, 1), 1));
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(50, 0, 0, 1), 777));
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(60, 0, 0, 1), 777));
}

TEST(Urpf, FeasibleRequiresPeerOnSomePath) {
  const auto table = view();
  const UrpfFilter f(table, UrpfMode::kFeasible);
  // AS1 is on paths for both prefixes.
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(50, 0, 0, 1), 1));
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(60, 0, 0, 1), 1));
  // AS2 only appears on 50.0/16 paths.
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(50, 0, 0, 1), 2));
  EXPECT_FALSE(f.accepts(Ipv4Addr::from_octets(60, 0, 0, 1), 2));
  // AS777 is on no path.
  EXPECT_FALSE(f.accepts(Ipv4Addr::from_octets(50, 0, 0, 1), 777));
}

TEST(Urpf, StrictRequiresPeerExport) {
  const auto table = view();
  const UrpfFilter f(table, UrpfMode::kStrict);
  // AS1 and AS2 exported routes for 50.0/16 (first hops).
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(50, 0, 0, 1), 1));
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(50, 0, 0, 1), 2));
  // AS1 is mid-path for 60.0/16 but never the exporter: feasible yes,
  // strict no — exactly the asymmetric-routing pitfall the survey cites.
  EXPECT_FALSE(f.accepts(Ipv4Addr::from_octets(60, 0, 0, 1), 1));
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(60, 0, 0, 1), 3));
  EXPECT_TRUE(f.accepts(Ipv4Addr::from_octets(60, 0, 0, 1), 9));
}

TEST(Urpf, StrictSubsetOfFeasibleSubsetOfLoose) {
  const auto table = view();
  const UrpfFilter loose(table, UrpfMode::kLoose);
  const UrpfFilter feasible(table, UrpfMode::kFeasible);
  const UrpfFilter strict(table, UrpfMode::kStrict);
  for (std::uint32_t a = 0; a < 256; ++a) {
    for (const net::Asn peer : {1u, 2u, 3u, 9u, 777u}) {
      const Ipv4Addr src(
          (a << 24) | 0x010203u);  // sweep /8s with a fixed host part
      if (strict.accepts(src, peer)) {
        EXPECT_TRUE(feasible.accepts(src, peer));
      }
      if (feasible.accepts(src, peer)) {
        EXPECT_TRUE(loose.accepts(src, peer));
      }
    }
  }
}

TEST(MethodEval, ScoreBucketsGroundTruth) {
  std::vector<net::FlowRecord> flows(3);
  for (auto& f : flows) f.packets = 10;
  flows[0].src = Ipv4Addr::from_octets(99, 0, 0, 1);   // unrouted
  flows[0].member_in = 1;
  flows[1].src = Ipv4Addr::from_octets(50, 0, 0, 1);   // routed
  flows[1].member_in = 1;
  flows[2].src = Ipv4Addr::from_octets(192, 168, 0, 1); // bogon
  flows[2].member_in = 1;
  const std::vector<traffic::Component> comps{
      traffic::Component::kRandomSpoof, traffic::Component::kRegular,
      traffic::Component::kNatLeak};

  const auto table = view();
  const UrpfFilter loose(table, UrpfMode::kLoose);
  const auto s = analysis::score_urpf(flows, comps, loose, "loose");
  EXPECT_DOUBLE_EQ(s.spoofed_packets, 10.0);
  EXPECT_DOUBLE_EQ(s.spoofed_flagged, 10.0);  // unrouted -> dropped
  EXPECT_DOUBLE_EQ(s.legit_packets, 10.0);
  EXPECT_DOUBLE_EQ(s.legit_flagged, 0.0);
  EXPECT_DOUBLE_EQ(s.stray_packets, 10.0);
  EXPECT_DOUBLE_EQ(s.stray_flagged, 10.0);  // bogon ACL inside uRPF
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
  EXPECT_DOUBLE_EQ(s.false_positive_rate(), 0.0);
}

TEST(MethodEval, BogonAclOnlyCatchesBogons) {
  std::vector<net::FlowRecord> flows(2);
  for (auto& f : flows) f.packets = 5;
  flows[0].src = Ipv4Addr::from_octets(10, 0, 0, 1);  // bogon
  flows[1].src = Ipv4Addr::from_octets(99, 0, 0, 1);  // unrouted
  const std::vector<traffic::Component> comps{traffic::Component::kNatLeak,
                                              traffic::Component::kRandomSpoof};
  const auto s = analysis::score_bogon_acl(flows, comps);
  EXPECT_DOUBLE_EQ(s.stray_flagged, 5.0);
  EXPECT_DOUBLE_EQ(s.spoofed_flagged, 0.0);
}

TEST(MethodEval, ComponentTaxonomy) {
  using traffic::Component;
  EXPECT_TRUE(traffic::is_intentionally_spoofed(Component::kRandomSpoof));
  EXPECT_TRUE(traffic::is_intentionally_spoofed(Component::kNtpTrigger));
  EXPECT_TRUE(traffic::is_intentionally_spoofed(Component::kReflectionOnRouter));
  EXPECT_FALSE(traffic::is_intentionally_spoofed(Component::kRegular));
  EXPECT_FALSE(traffic::is_intentionally_spoofed(Component::kNatLeak));
  EXPECT_TRUE(traffic::is_stray(Component::kNatLeak));
  EXPECT_TRUE(traffic::is_stray(Component::kRouterStray));
  EXPECT_FALSE(traffic::is_stray(Component::kUncommonSetup));
  EXPECT_EQ(traffic::component_name(Component::kNtpTrigger), "ntp-trigger");
}

TEST(MethodEval, FormatScoresAligned) {
  std::vector<analysis::DetectionScore> scores(1);
  scores[0].name = "FULL";
  scores[0].spoofed_packets = 10;
  scores[0].spoofed_flagged = 9;
  const auto text = analysis::format_scores(scores);
  EXPECT_NE(text.find("FULL"), std::string::npos);
  EXPECT_NE(text.find("90.00%"), std::string::npos);
}

}  // namespace
}  // namespace spoofscope::classify
