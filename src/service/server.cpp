#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <variant>

#include "bgp/mrt_lite.hpp"
#include "net/mapped_trace.hpp"
#include "service/control.hpp"
#include "state/delta_chain.hpp"

namespace spoofscope::service {

Server::Server(std::shared_ptr<classify::FlatClassifier> plane,
               ServerConfig cfg)
    : cfg_(std::move(cfg)), hub_(std::move(plane)), router_(cfg_.shards) {
  build_shards();
}

Server::Server(const classify::Classifier& classifier, ServerConfig cfg)
    : cfg_(std::move(cfg)), trie_(&classifier), router_(cfg_.shards) {
  build_shards();
}

Server::~Server() { stop(); }

void Server::build_shards() {
  if (cfg_.shards == 0) throw std::invalid_argument("shards must be >= 1");
  if (!cfg_.checkpoint_dir.empty()) {
    std::filesystem::create_directories(cfg_.checkpoint_dir);
  }
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    ShardConfig scfg;
    scfg.index = i;
    scfg.shard_count = cfg_.shards;
    scfg.space_idx = cfg_.space_idx;
    scfg.params = cfg_.params;
    scfg.checkpoint_every = cfg_.checkpoint_every;
    scfg.max_chain = cfg_.max_chain;
    scfg.policy = cfg_.policy;
    if (!cfg_.checkpoint_dir.empty()) {
      scfg.checkpoint_base =
          state::shard_checkpoint_base(cfg_.checkpoint_dir, i, cfg_.shards);
    }
    if (hub_.has_plane()) {
      shards_.push_back(std::make_unique<Shard>(hub_.current(), std::move(scfg)));
    } else {
      shards_.push_back(std::make_unique<Shard>(*trie_, std::move(scfg)));
    }
  }
}

Server::ResumeInfo Server::start() {
  ResumeInfo info;
  if (cfg_.resume && !cfg_.checkpoint_dir.empty()) {
    for (auto& shard : shards_) {
      const std::uint64_t flows = shard->resume();
      if (flows != 0) {
        ++info.shards_restored;
        info.flows += flows;
      }
    }
  }
  for (auto& shard : shards_) shard->start();
  return info;
}

SubmitResult Server::submit(const std::string& trace_path) {
  SubmitResult result;
  const std::uint64_t alerts_before = total_alerts_quiesced();
  const net::MappedTrace trace(trace_path);
  net::MappedTraceReader reader(trace, cfg_.policy, &result.stats);
  net::FlowBatch batch;
  // A strict-mode decode throw leaves the records scanned before the
  // damage in `batch`; deliver them to the shards so the service state
  // covers everything the reader produced, then rethrow for the caller
  // (the control loop turns it into an "err" response).
  try {
    while (reader.next_batch(batch, cfg_.batch_flows) > 0) {
      result.flows += batch.size();
      submit_batch(batch);
      batch.clear();
      reader.drop_consumed();
    }
  } catch (...) {
    result.flows += batch.size();
    submit_batch(batch);
    barrier();
    throw;
  }
  barrier();
  ++segments_;
  result.alerts = total_alerts_quiesced() - alerts_before;
  return result;
}

void Server::submit_batch(const net::FlowBatch& batch) {
  for (auto& lane : lanes_) lane.clear();
  router_.route(batch, lanes_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (lanes_[i].empty()) continue;
    shards_[i]->submit(std::move(lanes_[i]));
    lanes_[i] = net::FlowBatch{};
  }
}

void Server::barrier() {
  for (auto& shard : shards_) shard->wait_idle();
}

std::uint64_t Server::total_alerts_quiesced() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->alerts().size();
  return total;
}

ServiceStats Server::stats() {
  barrier();
  ServiceStats stats;
  stats.shards = shards_.size();
  stats.segments = segments_;
  stats.plane_epoch = plane_epoch();
  stats.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.processed += shard->processed();
    stats.alerts += shard->alerts().size();
    stats.per_shard.push_back(shard->health());
  }
  stats.merged = merge_health(stats.per_shard);
  return stats;
}

std::vector<classify::SpoofingAlert> Server::merged_alerts() {
  barrier();
  std::vector<classify::SpoofingAlert> alerts;
  for (const auto& shard : shards_) {
    alerts.insert(alerts.end(), shard->alerts().begin(), shard->alerts().end());
  }
  sort_alerts(alerts);
  return alerts;
}

ReloadResult Server::reload_updates(const std::string& mrt_path) {
  if (!hub_.has_plane()) {
    throw std::runtime_error("reload-updates requires the flat engine");
  }
  std::ifstream in(mrt_path);
  if (!in) throw std::runtime_error("cannot open updates file: " + mrt_path);
  ReloadResult result;
  std::vector<bgp::UpdateMessage> updates;
  for (auto& rec : bgp::read_mrt(in, cfg_.policy)) {
    if (auto* u = std::get_if<bgp::UpdateMessage>(&rec)) {
      updates.push_back(*u);
    } else {
      ++result.rib_lines;  // TABLE_DUMP lines carry no churn
    }
  }
  result.updates = updates.size();
  // The patch mutates the shared plane; every worker must be between
  // batches, and the republish below re-syncs each quiescent shard so
  // buffered flows reclassify against the patched plane.
  barrier();
  classify::FlatClassifier::UpdateApplyOptions opts;
  opts.pool = cfg_.pool;
  result.stats = hub_.apply_updates(updates, opts);
  for (auto& shard : shards_) shard->republish(hub_.current());
  result.epoch = hub_.current()->epoch();
  return result;
}

void Server::checkpoint() {
  for (auto& shard : shards_) shard->checkpoint_async();
  barrier();
}

DrainResult Server::drain() {
  for (auto& shard : shards_) shard->flush_async();
  barrier();
  DrainResult result;
  for (const auto& shard : shards_) {
    result.processed += shard->processed();
    result.alerts += shard->alerts().size();
  }
  return result;
}

void Server::stop() {
  for (auto& shard : shards_) shard->stop();
}

std::uint64_t Server::plane_epoch() const {
  return hub_.has_plane() ? hub_.current()->epoch() : 0;
}

// --- control socket ---------------------------------------------------

namespace {

/// RAII fd.
struct Fd {
  int fd = -1;
  Fd() = default;
  explicit Fd(int f) : fd(f) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd(std::exchange(other.fd, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd = std::exchange(other.fd, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  void reset() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  explicit operator bool() const { return fd >= 0; }
};

void send_all(int fd, std::string_view text) {
  while (!text.empty()) {
    const ssize_t n = ::send(fd, text.data(), text.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away mid-response; nothing to salvage
    }
    text.remove_prefix(static_cast<std::size_t>(n));
  }
}

/// Reads one LF-terminated line (without the LF) into `line`. Returns
/// false on EOF/error with nothing buffered.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer, 0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      if (buffer.empty()) return false;
      line = std::exchange(buffer, {});  // unterminated trailing line
      return true;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// One request -> the full response text. Returns false when the
/// request was `shutdown` (respond, then exit the loop).
bool handle_request(Server& server, const Request& req, std::ostream& log,
                    std::string& response) {
  std::ostringstream out;
  switch (req.verb) {
    case Verb::kSubmit: {
      const SubmitResult r = server.submit(req.arg);
      if (!r.stats.clean()) {
        out << "ingest: " << req.arg << ": " << r.stats.summary() << "\n";
      }
      out << "ok submitted flows=" << r.flows << " alerts=" << r.alerts << "\n";
      log << "serve: segment " << server.segments() << ": " << r.flows
          << " flows, " << r.alerts << " alerts from " << req.arg << "\n";
      break;
    }
    case Verb::kHealth: {
      const ServiceStats stats = server.stats();
      out << format_health(stats.merged) << "\n"
          << "ok shards=" << stats.shards << " processed=" << stats.processed
          << " alerts=" << stats.alerts << "\n";
      break;
    }
    case Verb::kStatsJson: {
      out << to_json(server.stats()) << "\n"
          << "ok\n";
      break;
    }
    case Verb::kAlerts: {
      const auto alerts = server.merged_alerts();
      for (const auto& alert : alerts) out << format_alert(alert) << "\n";
      out << "ok alerts=" << alerts.size() << "\n";
      break;
    }
    case Verb::kCheckpoint: {
      server.checkpoint();
      out << "ok checkpoint shards=" << server.shard_count() << "\n";
      break;
    }
    case Verb::kReloadUpdates: {
      const ReloadResult r = server.reload_updates(req.arg);
      out << "ok reloaded announced=" << r.stats.announced
          << " withdrawn=" << r.stats.withdrawn
          << " redundant=" << r.stats.redundant
          << " out_of_range=" << r.stats.out_of_range << " epoch=" << r.epoch
          << "\n";
      log << "serve: reloaded " << r.updates << " updates from " << req.arg
          << " (epoch " << r.epoch << ")\n";
      break;
    }
    case Verb::kDrain: {
      const DrainResult r = server.drain();
      out << "ok drained processed=" << r.processed << " alerts=" << r.alerts
          << "\n";
      log << "serve: drained (" << r.processed << " flows, " << r.alerts
          << " alerts)\n";
      break;
    }
    case Verb::kShutdown:
      out << "ok shutting-down\n";
      response = out.str();
      return false;
  }
  response = out.str();
  return true;
}

}  // namespace

int run_control_loop(Server& server, const std::string& socket_path,
                     std::ostream& log) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  Fd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!listener) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(socket_path.c_str());  // stale socket from a previous run
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("bind(" + socket_path +
                             "): " + std::strerror(errno));
  }
  if (::listen(listener.fd, 4) != 0) {
    throw std::runtime_error(std::string("listen(): ") + std::strerror(errno));
  }

  bool running = true;
  while (running) {
    Fd client(::accept(listener.fd, nullptr, nullptr));
    if (!client) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("accept(): ") +
                               std::strerror(errno));
    }
    std::string buffer;
    std::string line;
    while (running && read_line(client.fd, buffer, line)) {
      std::string error;
      const auto req = parse_request(line, error);
      std::string response;
      if (!req) {
        response = "err " + error + "\n";
      } else {
        try {
          running = handle_request(server, *req, log, response);
        } catch (const std::exception& e) {
          response = "err " + std::string(e.what()) + "\n";
        }
      }
      send_all(client.fd, response);
    }
  }
  server.stop();
  ::unlink(socket_path.c_str());
  return 0;
}

}  // namespace spoofscope::service
