file(REMOVE_RECURSE
  "CMakeFiles/traffic_context_test.dir/traffic_context_test.cpp.o"
  "CMakeFiles/traffic_context_test.dir/traffic_context_test.cpp.o.d"
  "traffic_context_test"
  "traffic_context_test.pdb"
  "traffic_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
