#include "ixp/ixp.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/generator.hpp"

namespace spoofscope::ixp {
namespace {

topo::Topology test_topology() {
  topo::TopologyParams p;
  p.num_tier1 = 3;
  p.num_transit = 10;
  p.num_isp = 40;
  p.num_hosting = 25;
  p.num_content = 12;
  p.num_other = 30;
  return topo::generate_topology(p, 5);
}

TEST(Ixp, SelectsRequestedMemberCount) {
  const auto topo = test_topology();
  IxpParams params;
  params.member_count = 50;
  const auto ixp = Ixp::build(topo, params, 1);
  EXPECT_EQ(ixp.member_count(), 50u);
}

TEST(Ixp, MemberCountCappedByTopology) {
  const auto topo = test_topology();
  IxpParams params;
  params.member_count = 10000;
  const auto ixp = Ixp::build(topo, params, 1);
  EXPECT_EQ(ixp.member_count(), topo.as_count());
}

TEST(Ixp, MembersAreDistinctTopologyAses) {
  const auto topo = test_topology();
  IxpParams params;
  params.member_count = 60;
  const auto ixp = Ixp::build(topo, params, 2);
  std::set<Asn> seen;
  for (const auto& m : ixp.members()) {
    EXPECT_TRUE(seen.insert(m.asn).second) << "duplicate member";
    const auto* info = topo.find(m.asn);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->type, m.type);
    EXPECT_GT(m.traffic_weight, 0.0);
  }
}

TEST(Ixp, FindAndMembership) {
  const auto topo = test_topology();
  IxpParams params;
  params.member_count = 30;
  const auto ixp = Ixp::build(topo, params, 3);
  const Asn member = ixp.members().front().asn;
  EXPECT_TRUE(ixp.is_member(member));
  ASSERT_NE(ixp.find(member), nullptr);
  EXPECT_EQ(ixp.find(member)->asn, member);
  EXPECT_FALSE(ixp.is_member(64999));
  EXPECT_EQ(ixp.find(64999), nullptr);
}

TEST(Ixp, RouteServerFeedersAreSubset) {
  const auto topo = test_topology();
  IxpParams params;
  params.member_count = 60;
  params.route_server_fraction = 0.5;
  const auto ixp = Ixp::build(topo, params, 4);
  const auto feeders = ixp.route_server_feeders();
  EXPECT_GT(feeders.size(), 10u);
  EXPECT_LT(feeders.size(), 50u);
  for (const Asn f : feeders) EXPECT_TRUE(ixp.is_member(f));
}

TEST(Ixp, Deterministic) {
  const auto topo = test_topology();
  IxpParams params;
  params.member_count = 40;
  const auto a = Ixp::build(topo, params, 9);
  const auto b = Ixp::build(topo, params, 9);
  EXPECT_EQ(a.members(), b.members());
}

TEST(Ixp, SamplingRatePropagates) {
  const auto topo = test_topology();
  IxpParams params;
  params.sampling_rate = 1234;
  const auto ixp = Ixp::build(topo, params, 5);
  EXPECT_EQ(ixp.sampling_rate(), 1234u);
}

TEST(Ixp, JoinWeightsBiasTypes) {
  const auto topo = test_topology();
  IxpParams only_isp;
  only_isp.member_count = 30;
  for (double& w : only_isp.join_weight) w = 0.0;
  only_isp.join_weight[static_cast<int>(topo::BusinessType::kIsp)] = 1.0;
  const auto ixp = Ixp::build(topo, only_isp, 6);
  for (const auto& m : ixp.members()) {
    EXPECT_EQ(m.type, topo::BusinessType::kIsp);
  }
}

}  // namespace
}  // namespace spoofscope::ixp
