file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_trie.dir/trie/interval_set.cpp.o"
  "CMakeFiles/spoofscope_trie.dir/trie/interval_set.cpp.o.d"
  "CMakeFiles/spoofscope_trie.dir/trie/prefix_set.cpp.o"
  "CMakeFiles/spoofscope_trie.dir/trie/prefix_set.cpp.o.d"
  "CMakeFiles/spoofscope_trie.dir/trie/prefix_trie.cpp.o"
  "CMakeFiles/spoofscope_trie.dir/trie/prefix_trie.cpp.o.d"
  "libspoofscope_trie.a"
  "libspoofscope_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
