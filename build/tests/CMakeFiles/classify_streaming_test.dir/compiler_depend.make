# Empty compiler generated dependencies file for classify_streaming_test.
# This may be replaced when dependencies are built.
