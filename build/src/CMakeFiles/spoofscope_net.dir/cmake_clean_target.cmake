file(REMOVE_RECURSE
  "libspoofscope_net.a"
)
