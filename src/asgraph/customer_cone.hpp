// CAIDA-style Customer Cone (Sec 3.2): the cone of an AS is the set of
// ASes reachable over provider->customer links only. Peering links are
// intentionally excluded — which is exactly why this method misclassifies
// traffic crossing peerings (Fig 1c).
#pragma once

#include <span>
#include <vector>

#include "asgraph/full_cone.hpp"
#include "asgraph/relationship.hpp"

namespace spoofscope::asgraph {

/// Customer cones computed from inferred relationships.
class CustomerCone {
 public:
  /// Builds from classified links; only kC2P links contribute edges
  /// (provider -> customer direction).
  explicit CustomerCone(std::span<const InferredLink> links);

  /// True if `origin` is in `holder`'s customer cone (always true when
  /// holder == origin).
  bool in_cone(Asn holder, Asn origin) const;

  /// ASNs in the cone of `holder` (itself included when known).
  std::vector<Asn> cone_of(Asn holder) const;

  /// Cone size in ASes (0 for unknown holders).
  std::size_t cone_size(Asn holder) const;

  const AsGraph& graph() const { return graph_; }

 private:
  AsGraph graph_;
  DescendantSets desc_;
};

}  // namespace spoofscope::asgraph
