file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_portmix.dir/bench_fig9_portmix.cpp.o"
  "CMakeFiles/bench_fig9_portmix.dir/bench_fig9_portmix.cpp.o.d"
  "bench_fig9_portmix"
  "bench_fig9_portmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_portmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
