// Sec 2.2: the operator survey aggregates, plus a consistency check of the
// generated topology's filtering ground truth against the survey's
// qualitative findings.
#include "bench/common.hpp"

#include "data/survey.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_SurveyFormatting(benchmark::State& state) {
  const auto s = data::survey_results();
  for (auto _ : state) {
    auto text = data::format_survey(s);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_SurveyFormatting);

void print_reproduction() {
  bench::print_header("Sec 2.2 (operator survey)",
                      "84 networks; >70% suffered spoofing attacks; 24% do "
                      "not validate sources; ~50% customer-specific egress "
                      "filters");
  std::cout << data::format_survey(data::survey_results()) << "\n";

  // Qualitative cross-check: in the generated ground truth, roughly half
  // of the networks validate egress sources — the survey's picture of
  // partial BCP38 deployment.
  std::size_t spoofed_filtering = 0, bogon_filtering = 0;
  const auto& ases = world().topology().ases();
  for (const auto& as : ases) {
    spoofed_filtering += as.filter.blocks_spoofed;
    bogon_filtering += as.filter.blocks_bogon;
  }
  std::cout << "generated ground truth: "
            << util::percent(double(spoofed_filtering) / ases.size())
            << " of ASes validate egress sources, "
            << util::percent(double(bogon_filtering) / ases.size())
            << " filter bogons at the egress\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
