#include "net/trace.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace spoofscope::net {

namespace {

constexpr std::uint32_t kMagic = 0x53504F46;  // "SPOF"
constexpr std::uint32_t kVersionV1 = 1;       // no checksums
constexpr std::uint32_t kVersionV2 = 2;       // header + per-record FNV-1a
constexpr std::size_t kHeaderBody = 32;       // shared v1/v2 header layout
constexpr std::size_t kHeaderSizeV2 = kHeaderBody + 4;  // + checksum
constexpr std::size_t kPayloadSize = 36;      // record body (both versions)
constexpr std::size_t kRecordSizeV1 = kPayloadSize;
constexpr std::size_t kRecordSizeV2 = kPayloadSize + 4;  // + checksum

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t(p[1]) << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// 32-bit FNV-1a over raw bytes; cheap, deterministic, and sensitive to
/// single-bit damage anywhere in the record.
std::uint32_t fnv1a32(const std::uint8_t* p, std::size_t n) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

void encode_record(const FlowRecord& f, std::uint8_t* p) {
  put_u32(p + 0, f.ts);
  put_u32(p + 4, f.src.value());
  put_u32(p + 8, f.dst.value());
  p[12] = static_cast<std::uint8_t>(f.proto);
  p[13] = 0;  // reserved
  put_u16(p + 14, f.sport);
  put_u16(p + 16, f.dport);
  p[18] = 0;
  p[19] = 0;  // padding for alignment in the on-disk layout
  put_u32(p + 20, f.packets);
  put_u64(p + 24, f.bytes);
  // member ASNs fit in 16 bits in our simulations but are stored as-is
  // truncated to 16 bits to keep the record compact; values above 65535
  // are rejected at write time.
  put_u16(p + 32, static_cast<std::uint16_t>(f.member_in));
  put_u16(p + 34, static_cast<std::uint16_t>(f.member_out));
}

FlowRecord decode_record(const std::uint8_t* p) {
  FlowRecord f;
  f.ts = get_u32(p + 0);
  f.src = Ipv4Addr(get_u32(p + 4));
  f.dst = Ipv4Addr(get_u32(p + 8));
  f.proto = static_cast<Proto>(p[12]);
  f.sport = get_u16(p + 14);
  f.dport = get_u16(p + 16);
  f.packets = get_u32(p + 20);
  f.bytes = get_u64(p + 24);
  f.member_in = get_u16(p + 32);
  f.member_out = get_u16(p + 34);
  return f;
}

const std::uint8_t* bytes(const std::string& s) {
  return reinterpret_cast<const std::uint8_t*>(s.data());
}

/// Appends up to `want` more bytes from `in` to `buf`; stops at EOF.
void fill(std::istream& in, std::string& buf, std::size_t want) {
  while (buf.size() < want && in) {
    char chunk[4096];
    const std::size_t need = want - buf.size();
    in.read(chunk, static_cast<std::streamsize>(
                       need < sizeof(chunk) ? need : sizeof(chunk)));
    buf.append(chunk, static_cast<std::size_t>(in.gcount()));
    if (in.gcount() == 0) break;
  }
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  std::array<std::uint8_t, kHeaderSizeV2> header{};
  put_u32(header.data() + 0, kMagic);
  put_u32(header.data() + 4, kVersionV2);
  put_u32(header.data() + 8, trace.meta.sampling_rate);
  put_u32(header.data() + 12, trace.meta.window_seconds);
  put_u64(header.data() + 16, trace.meta.seed);
  put_u64(header.data() + 24, trace.flows.size());
  put_u32(header.data() + kHeaderBody, fnv1a32(header.data(), kHeaderBody));
  out.write(reinterpret_cast<const char*>(header.data()), header.size());

  std::array<std::uint8_t, kRecordSizeV2> rec;
  for (const auto& f : trace.flows) {
    if (f.member_in > 0xffff || f.member_out > 0xffff) {
      throw std::runtime_error("write_trace: member ASN exceeds 16-bit record field");
    }
    encode_record(f, rec.data());
    put_u32(rec.data() + kPayloadSize, fnv1a32(rec.data(), kPayloadSize));
    out.write(reinterpret_cast<const char*>(rec.data()), rec.size());
  }
  if (!out) throw std::runtime_error("write_trace: stream failure");
}

TraceReader::TraceReader(std::istream& in, util::ErrorPolicy policy,
                         util::IngestStats* stats)
    : in_(&in), policy_(policy), stats_(stats ? stats : &own_stats_) {
  // Shared 32-byte header body first; v2 carries 4 more checksum bytes.
  fill(*in_, buf_, kHeaderBody);
  if (buf_.size() < kHeaderBody) {
    done_ = true;
    if (policy_ == util::ErrorPolicy::kStrict) {
      fail_strict("truncated header");
    }
    stats_->skip(util::ErrorKind::kTruncated, buf_.size());
    buf_.clear();
    return;
  }
  if (get_u32(bytes(buf_)) != kMagic) {
    done_ = true;
    if (policy_ == util::ErrorPolicy::kStrict) fail_strict("bad magic");
    stats_->skip(util::ErrorKind::kBadMagic, buf_.size());
    buf_.clear();
    return;
  }
  version_ = get_u32(bytes(buf_) + 4);
  if (version_ != kVersionV1 && version_ != kVersionV2) {
    done_ = true;
    if (policy_ == util::ErrorPolicy::kStrict) fail_strict("unsupported version");
    stats_->skip(util::ErrorKind::kBadVersion, buf_.size());
    buf_.clear();
    return;
  }
  if (version_ == kVersionV2) {
    fill(*in_, buf_, kHeaderSizeV2);
    if (buf_.size() < kHeaderSizeV2) {
      done_ = true;
      if (policy_ == util::ErrorPolicy::kStrict) fail_strict("truncated header");
      stats_->skip(util::ErrorKind::kTruncated, buf_.size());
      buf_.clear();
      return;
    }
    if (get_u32(bytes(buf_) + kHeaderBody) != fnv1a32(bytes(buf_), kHeaderBody)) {
      if (policy_ == util::ErrorPolicy::kStrict) {
        fail_strict("header checksum mismatch");
      }
      // Best effort in skip mode: the metadata may be damaged, but the
      // records carry their own checksums, so recovery can proceed.
      stats_->note(util::ErrorKind::kChecksum);
    }
  }
  meta_.sampling_rate = get_u32(bytes(buf_) + 8);
  meta_.window_seconds = get_u32(bytes(buf_) + 12);
  meta_.seed = get_u64(bytes(buf_) + 16);
  declared_ = get_u64(bytes(buf_) + 24);
  header_ok_ = true;
  buf_.clear();
}

void TraceReader::fail_strict(const std::string& why) const {
  throw std::runtime_error("read_trace: " + why);
}

std::optional<FlowRecord> TraceReader::next() {
  if (done_) return std::nullopt;
  const bool strict = policy_ == util::ErrorPolicy::kStrict;
  // Strict mode replicates the historical reader: exactly the declared
  // number of records, trailing bytes ignored.
  if (strict && delivered_ >= declared_) {
    done_ = true;
    return std::nullopt;
  }
  const std::size_t rec_size =
      version_ == kVersionV2 ? kRecordSizeV2 : kRecordSizeV1;
  bool resyncing = false;
  for (;;) {
    fill(*in_, buf_, rec_size);
    if (buf_.size() < rec_size) {
      done_ = true;
      if (buf_.empty() && !resyncing) {
        // Record-aligned end of stream. Strict mode only gets here with
        // records still owed by the header (the declared-count check at
        // the top ends clean streams), so it is a truncation.
        if (strict) fail_strict("truncated record");
        // Skip mode: flag a count mismatch if records were lost (or
        // hallucinated) relative to the header.
        if (delivered_ != declared_) {
          stats_->note(util::ErrorKind::kCountMismatch);
        }
        return std::nullopt;
      }
      if (strict) fail_strict("truncated record");
      stats_->skip(util::ErrorKind::kTruncated, buf_.size());
      if (delivered_ != declared_) stats_->note(util::ErrorKind::kCountMismatch);
      return std::nullopt;
    }
    const bool valid =
        version_ == kVersionV1 ||
        get_u32(bytes(buf_) + kPayloadSize) == fnv1a32(bytes(buf_), kPayloadSize);
    if (valid) {
      const FlowRecord f = decode_record(bytes(buf_));
      buf_.clear();
      ++delivered_;
      stats_->ok();
      return f;
    }
    if (strict) fail_strict("record checksum mismatch");
    // Resync: count one quarantined record per damaged region, then
    // slide the window byte-by-byte until a record validates again.
    if (!resyncing) {
      resyncing = true;
      stats_->skip(util::ErrorKind::kChecksum, 0);
    }
    buf_.erase(0, 1);
    ++stats_->bytes_dropped;
  }
}

Trace read_trace(std::istream& in, util::ErrorPolicy policy,
                 util::IngestStats* stats) {
  TraceReader reader(in, policy, stats);
  Trace trace;
  trace.meta = reader.meta();
  if (reader.header_ok()) {
    trace.flows.reserve(static_cast<std::size_t>(
        reader.declared_count() < (1u << 20) ? reader.declared_count()
                                             : (1u << 20)));
  }
  while (auto f = reader.next()) trace.flows.push_back(*f);
  return trace;
}

Trace read_trace(std::istream& in) {
  return read_trace(in, util::ErrorPolicy::kStrict, nullptr);
}

}  // namespace spoofscope::net
