// Table 1: members / bytes / packets per class, for the Full Cone, Naive
// and Customer Cone variants, scaled to account for sampling.
#pragma once

#include <string>
#include <vector>

#include "classify/pipeline.hpp"
#include "inference/valid_space.hpp"

namespace spoofscope::analysis {

/// One column of Table 1.
struct Table1Column {
  std::string name;          ///< "Bogon", "Unrouted", "Invalid FULL", ...
  std::size_t members = 0;
  double member_fraction = 0;
  double bytes = 0;          ///< extrapolated (sampled x sampling rate)
  double bytes_fraction = 0;
  double packets = 0;        ///< extrapolated
  double packets_fraction = 0;
};

/// Builds the five columns from an Aggregate whose spaces are ordered as
/// inference::Method (NAIVE, CC, CC+org, FULL, FULL+org). As in the
/// paper's Table 1, the cone columns allow bidirectional traffic across
/// multi-AS organizations (the +org variants). The Bogon and Unrouted
/// columns are method-independent. `scale` is the sampling extrapolation
/// factor, `total_members` the number of IXP members (for the member
/// fraction).
std::vector<Table1Column> table1_columns(const classify::Aggregate& agg,
                                         double scale,
                                         std::size_t total_members);

/// Renders the table in the paper's layout.
std::string format_table1(const std::vector<Table1Column>& columns);

}  // namespace spoofscope::analysis
