// Random Internet-like AS topology generation.
//
// Produces the ground truth over which the BGP simulator, the IXP and the
// traffic generator operate: a tier-1 clique, a transit layer, edge
// networks of the paper's business types, organization groupings with
// (partially invisible) sibling links, heavy-tailed address allocations
// carved from non-bogon space, per-link router infrastructure prefixes and
// per-AS egress filtering ground truth.
//
// Generation is chunk-parallel in the communication-free KaGen style: the
// AS population is cut into fixed-size chunks, every randomized phase
// derives one independent PRNG stream per (phase, chunk) from the seed,
// and workers emit into pre-assigned per-chunk slots that are merged in
// chunk order. Chunk boundaries and streams depend only on (params, seed)
// — never on the thread count — so the generated topology is bit-identical
// whether it is built on one thread or sixty-four.
#pragma once

#include <cstdint>

#include "topo/topology.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::topo {

/// Tuning knobs of the topology generator. Defaults produce a topology in
/// the spirit of the paper's environment, scaled down from ~57K ASes to a
/// size a laptop-scale simulation handles comfortably.
struct TopologyParams {
  // --- population ---
  std::size_t num_tier1 = 8;     ///< clique of transit-free NSPs
  std::size_t num_transit = 80;  ///< regional/national transit NSPs
  std::size_t num_isp = 380;     ///< end-user ISPs
  std::size_t num_hosting = 240; ///< hosting / cloud
  std::size_t num_content = 110; ///< content providers / CDNs
  std::size_t num_other = 380;   ///< enterprises, research, misc

  // --- organizations (Sec 3.2 multi-AS orgs) ---
  double multi_as_org_fraction = 0.07;  ///< orgs that own several ASes
  std::size_t max_org_size = 5;         ///< max ASes per organization
  double sibling_link_visible_prob = 0.45;  ///< sibling links seen in BGP
  double peer_link_visible_prob = 0.97;     ///< peering links seen in BGP

  // --- address space ---
  /// Fraction of all IPv4 space that ends up announced (paper Fig 1a:
  /// 68.1% routed).
  double target_routed_fraction = 0.681;
  /// Mean fraction of an AS's allocation left unannounced (creates
  /// allocated-but-unrouted space).
  double unannounced_fraction = 0.10;

  // --- router infrastructure ---
  /// Probability that a c2p link's router /24 is taken from the
  /// provider's routed space (stray traffic then classifies as Invalid,
  /// Sec 5.2) rather than from never-announced space (-> Unrouted).
  double infra_from_provider_prob = 0.7;

  // --- connectivity ---
  std::size_t max_providers = 3;      ///< multihoming degree
  double transit_peering_prob = 0.15; ///< p2p density among transits
  double content_peering_mean = 18.0; ///< mean #peers of a content AS
  double isp_peering_mean = 4.0;      ///< mean #peers of an ISP

  // --- generation chunking ---
  /// ASes (and links, for the link-indexed phases) per generation chunk.
  /// Part of the output contract: chunk boundaries and the per-chunk PRNG
  /// streams derive from this value and the seed alone, so changing it
  /// changes the topology — but the thread count never does.
  std::size_t chunk_ases = 2048;
  /// Largest allocation block handed to one AS, in /24 units (a power of
  /// two in [2, 256]). 256 allocates whole /16s; the internet preset uses
  /// 16 (/20 blocks) so the routed-space target is covered by ~1M
  /// distinct prefixes instead of a few thousand giant ones.
  std::size_t alloc_block_slash24 = 256;

  // --- filtering ground truth (per business type probabilities) ---
  /// P(blocks_bogon) indexed by BusinessType.
  double bogon_filter_prob[kNumBusinessTypes] = {0.35, 0.22, 0.20, 0.70, 0.28};
  /// P(blocks_spoofed) indexed by BusinessType.
  double spoof_filter_prob[kNumBusinessTypes] = {0.55, 0.42, 0.30, 0.90, 0.50};
  /// Mean spoofer density indexed by BusinessType.
  double spoofer_density[kNumBusinessTypes] = {0.06, 0.25, 0.55, 0.02, 0.15};
  /// Mean NAT-leak density indexed by BusinessType.
  double nat_leak_density[kNumBusinessTypes] = {0.15, 0.60, 0.25, 0.02, 0.40};

  /// Total number of ASes this configuration produces.
  std::size_t total_ases() const {
    return num_tier1 + num_transit + num_isp + num_hosting + num_content +
           num_other;
  }
};

/// Generates a topology. Deterministic in (params, seed). The result
/// passes Topology::validate().
Topology generate_topology(const TopologyParams& params, std::uint64_t seed);

/// Pool overload: fans the per-chunk generation phases out over `pool`.
/// The result is bit-identical to the single-threaded overload for every
/// pool size.
Topology generate_topology(const TopologyParams& params, std::uint64_t seed,
                           util::ThreadPool& pool);

}  // namespace spoofscope::topo
