// Strongly connected components (iterative Tarjan) and condensation.
// The Full Cone's directed AS graph "may indeed contain loops" (Sec 3.2);
// condensing SCCs turns the transitive-closure computation into a DAG
// sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "asgraph/graph.hpp"

namespace spoofscope::asgraph {

/// SCC decomposition of an AsGraph.
struct SccResult {
  /// Component id of each node. Ids are numbered in *reverse topological*
  /// order of the condensation: every successor component of c has an id
  /// smaller than c.
  std::vector<std::uint32_t> component_of;
  std::size_t component_count = 0;

  /// Condensed DAG: successors of each component (deduplicated, no
  /// self-edges).
  std::vector<std::vector<std::uint32_t>> dag_successors;

  /// Nodes in each component.
  std::vector<std::vector<std::uint32_t>> members;
};

/// Computes the SCCs of `g`. Iterative; safe for deep graphs.
SccResult strongly_connected_components(const AsGraph& g);

}  // namespace spoofscope::asgraph
