// Text serialization of the ground-truth topology, so generated worlds
// can be archived, diffed and reloaded (or hand-written for experiments).
//
// Line-oriented format, '#' comments:
//
//   topology v1
//   as <asn> type <NSP|ISP|Hosting|Content|Other> org <id>
//      announce <frac> bogonfilter <0|1> spooffilter <0|1>
//      spoofer <density> natleak <density>
//   prefix <asn> <cidr>
//   link <c2p|p2p|sibling> <from> <to> visible <0|1> [infra <cidr>]
//
// `as` lines are single-line (the indentation above is only for this
// comment). Every prefix/link must reference a previously declared AS.
#pragma once

#include <iosfwd>

#include "topo/topology.hpp"

namespace spoofscope::topo {

/// Writes the topology; deterministic output (ASes in dense order, links
/// in stored order).
void write_topology(std::ostream& out, const Topology& topo);

/// Parses a topology written by write_topology (or by hand). Throws
/// std::runtime_error naming the offending line on malformed input; the
/// result satisfies the Topology constructor invariants.
Topology read_topology(std::istream& in);

}  // namespace spoofscope::topo
