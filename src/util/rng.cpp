#include "util/rng.hpp"

#include <cassert>
#include <numbers>
#include <stdexcept>

namespace spoofscope::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = hi - lo;
  if (range == ~0ULL) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t n = range + 1;
  const std::uint64_t limit = ~0ULL - ~0ULL % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + x % n;
}

double Rng::exponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork(std::uint64_t label) {
  // Mix the label with fresh output; SplitMix re-expansion in the child
  // constructor decorrelates the streams.
  return Rng(next_u64() ^ (label * 0x9e3779b97f4a7c15ULL + 0x1234abcd5678ef00ULL));
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t i) const {
  if (i >= cdf_.size()) return 0.0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

DiscreteDistribution::DiscreteDistribution(std::span<const double> weights) {
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("DiscreteDistribution: negative weight");
    acc += w;
    cdf_.push_back(acc);
  }
  if (acc <= 0) throw std::invalid_argument("DiscreteDistribution: all weights zero");
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t DiscreteDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace spoofscope::util
