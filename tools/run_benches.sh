#!/usr/bin/env bash
# Build and run the core performance benchmarks, recording machine-readable
# results at the repo root as BENCH_perf_core.json.
#
# Usage: tools/run_benches.sh [extra google-benchmark flags...]
#   e.g. tools/run_benches.sh --benchmark_filter='Flat'
#
# The bench tree is a dedicated Release build (build-bench) so recorded
# numbers are never an unoptimized run: the JSON is written to a temp file
# and only promoted to BENCH_perf_core.json after the provenance check
# confirms the binary itself reports a release build. (The context block
# comes from the binary's ProvenanceJsonReporter, not libbenchmark.so —
# the distro ships a debug libbenchmark whose baked-in build type once
# mislabelled a release run as "debug".)
#
# JSON goes through --benchmark_out (not stdout) so the reproduction report
# the binary prints after the runs cannot corrupt it.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-bench}"
OUT_JSON="${REPO_ROOT}/BENCH_perf_core.json"
TMP_JSON="$(mktemp "${TMPDIR:-/tmp}/bench_perf_core.XXXXXX.json")"
trap 'rm -f "${TMP_JSON}"' EXIT

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target bench_perf_core -j "$(nproc)"

"${BUILD_DIR}/bench/bench_perf_core" \
  --benchmark_out="${TMP_JSON}" \
  --benchmark_out_format=json \
  "$@"

# Refuse to record results from an unoptimized binary, then machine-check
# the constant-memory claim: BM_ReportStreaming records rss_growth_kb
# (resident-set delta across the bench loop) per trace multiplier;
# streaming report memory must not scale with trace length, so the 10x
# growth may exceed the 1x growth only by a fixed slack. Also prints the
# vector-kernel speedup whenever the run measured both kernels, and the
# incremental-patch speedup (BM_FlatPlanePatch vs BM_FlatCompileParallel)
# whenever the run measured both.
python3 - "${TMP_JSON}" <<'PY'
import json, sys

SLACK_KB = 32 * 1024  # allocator noise, not O(trace) growth

doc = json.load(open(sys.argv[1]))
build = doc.get("context", {}).get("spoofscope_build_type", "unknown")
if build != "release":
    sys.exit(f"FAIL provenance check: spoofscope_build_type={build!r} "
             "(refusing to record non-release numbers; the bench tree "
             "must be configured with -DCMAKE_BUILD_TYPE=Release)")
print(f"OK provenance check: spoofscope_build_type={build}")

rate = {}
growth = {}
compile_ms = {}
patch_ms = None
prop_rate = {}
serve_rate = {}
e2e = None
for b in doc.get("benchmarks", []):
    name = b.get("name", "")
    if name.startswith("BM_ServeThroughput/shards:"):
        shards = int(name.split("shards:")[1].split("/")[0])
        serve_rate[shards] = b.get("items_per_second", 0.0)
    if name.startswith("BM_ReportStreaming/trace_mult:"):
        mult = int(name.split("trace_mult:")[1].split("/")[0])
        growth[mult] = b.get("rss_growth_kb", 0.0)
    if name.startswith("BM_FlatClassifyBatchKernel/simd:"):
        kernel = name.split("simd:")[1].split("/")[0]
        rate[kernel] = b.get("items_per_second", 0.0)
    if name.startswith("BM_FlatCompileParallel/threads:"):
        threads = int(name.split("threads:")[1].split("/")[0])
        compile_ms[threads] = b.get("real_time", 0.0)
    if name == "BM_FlatPlanePatch":
        patch_ms = b.get("real_time", 0.0)
    if name.startswith("BM_BgpPropagationParallel/threads:"):
        threads = int(name.split("threads:")[1].split("/")[0])
        prop_rate[threads] = b.get("items_per_second", 0.0)
    if name.startswith("BM_ScenarioEndToEnd"):
        e2e = b
if 1 in growth and 10 in growth:
    line = (f"BM_ReportStreaming rss_growth_kb: "
            f"1x={growth[1]:.0f} 10x={growth[10]:.0f}")
    if growth[10] > growth[1] + SLACK_KB:
        sys.exit(f"FAIL constant-memory check: {line} "
                 f"(10x grew >{SLACK_KB}KB past 1x)")
    print(f"OK constant-memory check: {line}")
for kernel, flows in sorted(rate.items()):
    note = ""
    if kernel != "scalar" and rate.get("scalar"):
        note = f" ({flows / rate['scalar']:.2f}x scalar)"
    print(f"kernel {kernel}: {flows / 1e6:.1f}M flows/s{note}")
if patch_ms and compile_ms:
    best = min(compile_ms.values())
    speedup = best / patch_ms
    line = (f"plane patch (100-route batch): {patch_ms:.2f}ms vs "
            f"{best:.2f}ms recompile = {speedup:.1f}x")
    if speedup < 10.0:
        sys.exit(f"FAIL incremental-patch check: {line} (want >= 10x)")
    print(f"OK incremental-patch check: {line}")

# Parallel route propagation must actually scale: on >= 8 hardware
# threads the all-origins fan-out (BM_BgpPropagationParallel) has to
# reach 6x the single-thread origins/s; on smaller machines the bar is
# prorated to 0.75x the thread count (the 8-core bar expressed per
# core). A 1-thread-only run (1-core box) is reported, not gated.
if prop_rate and 1 in prop_rate and prop_rate[1] > 0:
    top = max(prop_rate)
    if top == 1:
        print("note: propagation speedup gate skipped "
              "(single hardware thread; no parallel data point)")
    else:
        speedup = prop_rate[top] / prop_rate[1]
        need = 6.0 if top >= 8 else 0.75 * top
        line = (f"propagation {prop_rate[1] / 1e3:.1f}K -> "
                f"{prop_rate[top] / 1e3:.1f}K groups/s "
                f"({speedup:.2f}x on {top} threads, need {need:.2f}x)")
        if speedup < need:
            sys.exit(f"FAIL propagation-speedup check: {line}")
        print(f"OK propagation-speedup check: {line}")
# The resident service's shards are its scaling unit: on >= 4 cores a
# 4-shard server must ingest at >= 2x the single-shard rate (the ISSUE's
# acceptance bar). Fewer cores cannot express the parallelism, so the
# gate is reported as skipped rather than failed.
if 1 in serve_rate and 4 in serve_rate and serve_rate[1] > 0:
    num_cpus = doc.get("context", {}).get("num_cpus", 0)
    speedup = serve_rate[4] / serve_rate[1]
    line = (f"serve ingest {serve_rate[1] / 1e6:.1f}M -> "
            f"{serve_rate[4] / 1e6:.1f}M flows/s "
            f"({speedup:.2f}x at 4 shards on {num_cpus} cpus)")
    if num_cpus >= 4:
        if speedup < 2.0:
            sys.exit(f"FAIL serve-scaling check: {line} (want >= 2x)")
        print(f"OK serve-scaling check: {line}")
    else:
        print(f"note: serve-scaling gate skipped, < 4 cpus: {line}")
if e2e is not None:
    print(f"internet end-to-end: {e2e.get('real_time', 0.0):.1f}"
          f"{e2e.get('time_unit', 's')} for {e2e.get('ases', 0):.0f} ASes, "
          f"{e2e.get('table_prefixes', 0):.0f} table prefixes, "
          f"peak rss {e2e.get('peak_rss_kb', 0) / 1024:.0f}MB "
          f"(scale factor {e2e.get('scale_factor', 0):.0f})")
else:
    print("note: internet-scale end-to-end bench not run; enable with "
          "SPOOFSCOPE_BENCH_INTERNET=1 (SPOOFSCOPE_BENCH_INTERNET_FACTOR=N "
          "shrinks the world)")
PY

mv "${TMP_JSON}" "${OUT_JSON}"
trap - EXIT
echo "wrote ${OUT_JSON}"
