#include "state/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "net/trace_format.hpp"
#include "util/fault_injection.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SPOOFSCOPE_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace spoofscope::state {

namespace {

using net::format::get_u32;
using net::format::get_u64;
using net::format::put_u16;
using net::format::put_u32;
using net::format::put_u64;

constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kTableEntryBytes = 16;
/// Backstop against a corrupted count sending the table walk off into
/// gigabytes; real snapshots carry a handful of sections.
constexpr std::uint32_t kMaxSections = 1u << 20;

constexpr std::uint64_t align8(std::uint64_t off) { return (off + 7) & ~7ull; }

/// Little-endian 4-byte lane load; compilers fold this into a plain
/// load on LE hosts, and the explicit assembly keeps checksums
/// host-independent.
std::uint32_t load_lane32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
         std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24;
}

/// FNV-1a-32 over four interleaved stripes of little-endian 4-byte
/// lanes (byte-at-a-time tail), chained into one value at the end.
/// Every stripe step xors a lane then multiplies by the odd FNV prime —
/// both bijective in the stripe state — and each input byte lands in
/// exactly one stripe, so any single damaged byte still always changes
/// the checksum. The stripes exist to break the serial xor→multiply
/// dependency chain: snapshot payloads are large (a compiled plane is
/// tens of MiB) and this pass is what keeps validated loads cheaper
/// than a recompile.
std::uint32_t fnv1a32(const std::uint8_t* p, std::size_t n) {
  constexpr std::uint32_t kPrime = 16777619u;
  std::uint32_t s0 = 2166136261u;
  std::uint32_t s1 = s0 * kPrime;
  std::uint32_t s2 = s1 * kPrime;
  std::uint32_t s3 = s2 * kPrime;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 = (s0 ^ load_lane32(p + i)) * kPrime;
    s1 = (s1 ^ load_lane32(p + i + 4)) * kPrime;
    s2 = (s2 ^ load_lane32(p + i + 8)) * kPrime;
    s3 = (s3 ^ load_lane32(p + i + 12)) * kPrime;
  }
  for (; i + 4 <= n; i += 4) s0 = (s0 ^ load_lane32(p + i)) * kPrime;
  for (; i < n; ++i) s0 = (s0 ^ p[i]) * kPrime;
  std::uint32_t h = (s0 ^ s1) * kPrime;
  h = (h ^ s2) * kPrime;
  h = (h ^ s3) * kPrime;
  return (h ^ static_cast<std::uint32_t>(n)) * kPrime;
}

[[noreturn]] void fail(util::ErrorKind kind, const std::string& what) {
  throw SnapshotError(kind, what);
}

[[noreturn]] void fail_at(util::ErrorKind kind, const std::string& what,
                          const std::string& context) {
  throw SnapshotError(kind, what, context);
}

/// "file <origin>" / "file <origin>, section <id>" — or just
/// "section <id>" when the caller parsed an anonymous buffer.
std::string where(const std::string& origin, std::int64_t section_id = -1) {
  std::string ctx;
  if (!origin.empty()) ctx = "file " + origin;
  if (section_id >= 0) {
    if (!ctx.empty()) ctx += ", ";
    ctx += "section " + std::to_string(section_id);
  }
  return ctx;
}

}  // namespace

// --- SectionBuilder ---------------------------------------------------

void SectionBuilder::u16(std::uint16_t v) {
  const std::size_t off = buf_.size();
  buf_.resize(off + 2);
  put_u16(buf_.data() + off, v);
}

void SectionBuilder::u32(std::uint32_t v) {
  const std::size_t off = buf_.size();
  buf_.resize(off + 4);
  put_u32(buf_.data() + off, v);
}

void SectionBuilder::u64(std::uint64_t v) {
  const std::size_t off = buf_.size();
  buf_.resize(off + 8);
  put_u64(buf_.data() + off, v);
}

void SectionBuilder::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void SectionBuilder::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

// --- SectionReader ----------------------------------------------------

const std::uint8_t* SectionReader::need(std::size_t n) {
  if (data_.size() - off_ < n) {
    fail_at(util::ErrorKind::kTruncated, "section underrun", context_);
  }
  const std::uint8_t* p = data_.data() + off_;
  off_ += n;
  return p;
}

std::uint8_t SectionReader::u8() { return *need(1); }
std::uint16_t SectionReader::u16() { return net::format::get_u16(need(2)); }
std::uint32_t SectionReader::u32() { return get_u32(need(4)); }
std::uint64_t SectionReader::u64() { return get_u64(need(8)); }

double SectionReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  __builtin_memcpy(&v, &bits, sizeof v);
  return v;
}

std::span<const std::uint8_t> SectionReader::bytes(std::size_t n) {
  return {need(n), n};
}

// --- SnapshotWriter ---------------------------------------------------

std::vector<std::uint8_t> SnapshotWriter::serialize() const {
  const std::size_t n = sections_.size();
  const std::uint64_t meta_bytes = kHeaderBytes + kTableEntryBytes * n + 4;
  // The file ends exactly where the last payload does (no trailing
  // padding), so total-size validation pins every byte.
  std::uint64_t total = meta_bytes;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(n);
  for (const auto& [id, payload] : sections_) {
    (void)id;
    offsets.push_back(align8(total));
    total = offsets.back() + payload.size();
  }

  std::vector<std::uint8_t> out(total, 0);
  put_u32(out.data() + 0, kSnapshotMagic);
  put_u32(out.data() + 4, kContainerVersion);
  put_u32(out.data() + 8, static_cast<std::uint32_t>(kind_));
  put_u32(out.data() + 12, payload_version_);
  put_u32(out.data() + 16, static_cast<std::uint32_t>(n));
  put_u32(out.data() + 20, 0);  // reserved
  put_u64(out.data() + 24, total);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t* entry = out.data() + kHeaderBytes + kTableEntryBytes * i;
    const auto& payload = sections_[i].second;
    put_u32(entry + 0, sections_[i].first);
    put_u32(entry + 4, fnv1a32(payload.data(), payload.size()));
    put_u64(entry + 8, payload.size());
    std::copy(payload.begin(), payload.end(), out.begin() + offsets[i]);
  }
  const std::size_t checksum_off = kHeaderBytes + kTableEntryBytes * n;
  put_u32(out.data() + checksum_off, fnv1a32(out.data(), checksum_off));
  return out;
}

void SnapshotWriter::write_atomic(const std::string& path) const {
  using util::FaultInjector;
  using util::FaultKind;
  const std::vector<std::uint8_t> image = serialize();
  const std::string tmp = path + ".tmp";
  const auto io_fail = [&](const char* what) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: " + std::string(what) + ": " + path);
  };
  // Both fault sites are consulted on every call (when an injector is
  // installed) so occurrence counts stay stable whatever fires.
  FaultKind write_fault = FaultKind::kNone;
  FaultKind rename_fault = FaultKind::kNone;
  std::size_t write_stop = image.size();
  if (FaultInjector* inj = FaultInjector::current()) {
    write_fault = inj->at("snapshot.write",
                          {FaultKind::kShortWrite, FaultKind::kEnospc});
    if (write_fault != FaultKind::kNone) write_stop = inj->pick(image.size());
    rename_fault =
        inj->at("snapshot.rename",
                {FaultKind::kCrashBeforeRename, FaultKind::kCrashAfterRename});
  }
#ifdef SPOOFSCOPE_HAVE_POSIX_IO
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_fail("cannot create");
  std::size_t written = 0;
  while (written < write_stop) {
    const ssize_t got =
        ::write(fd, image.data() + written, write_stop - written);
    if (got < 0) {
      ::close(fd);
      io_fail("write failed");
    }
    written += static_cast<std::size_t>(got);
  }
  if (write_fault == FaultKind::kShortWrite) {
    // Modelled kill mid-write: the torn tmp file stays on disk.
    ::close(fd);
    throw util::InjectedCrash("snapshot.write");
  }
  if (write_fault == FaultKind::kEnospc) {
    // Modelled disk-full: same clean error path a real ENOSPC takes.
    ::close(fd);
    io_fail("write failed (injected ENOSPC)");
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) io_fail("fsync failed");
  if (rename_fault == FaultKind::kCrashBeforeRename) {
    throw util::InjectedCrash("snapshot.rename");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) io_fail("rename failed");
  // Make the rename itself durable: fsync the containing directory.
  const auto dir = std::filesystem::path(path).parent_path();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  if (rename_fault == FaultKind::kCrashAfterRename) {
    throw util::InjectedCrash("snapshot.rename");
  }
#else
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os || !os.write(reinterpret_cast<const char*>(image.data()),
                         static_cast<std::streamsize>(write_stop))) {
      io_fail("write failed");
    }
    os.flush();
    if (!os) io_fail("flush failed");
  }
  if (write_fault == FaultKind::kShortWrite) {
    throw util::InjectedCrash("snapshot.write");
  }
  if (write_fault == FaultKind::kEnospc) io_fail("write failed (injected ENOSPC)");
  if (rename_fault == FaultKind::kCrashBeforeRename) {
    throw util::InjectedCrash("snapshot.rename");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) io_fail("rename failed");
  if (rename_fault == FaultKind::kCrashAfterRename) {
    throw util::InjectedCrash("snapshot.rename");
  }
#endif
}

// --- SnapshotView / parse ---------------------------------------------

bool SnapshotView::has(std::uint32_t id) const {
  for (const auto& [sid, payload] : sections_) {
    if (sid == id) return true;
  }
  return false;
}

std::span<const std::uint8_t> SnapshotView::section(std::uint32_t id) const {
  for (const auto& [sid, payload] : sections_) {
    if (sid == id) return payload;
  }
  fail(util::ErrorKind::kParse, "missing section " + std::to_string(id));
}

SnapshotView parse_snapshot(std::span<const std::uint8_t> bytes,
                            PayloadKind expected_kind,
                            std::uint32_t expected_payload_version,
                            const std::string& origin) {
  if (bytes.size() < kHeaderBytes) {
    fail_at(util::ErrorKind::kTruncated, "truncated header", where(origin));
  }
  if (get_u32(bytes.data()) != kSnapshotMagic) {
    fail_at(util::ErrorKind::kBadMagic, "bad magic", where(origin));
  }
  if (get_u32(bytes.data() + 4) != kContainerVersion) {
    fail_at(util::ErrorKind::kBadVersion, "unsupported container version",
            where(origin));
  }
  SnapshotView view;
  view.kind_ = static_cast<PayloadKind>(get_u32(bytes.data() + 8));
  view.payload_version_ = get_u32(bytes.data() + 12);
  const std::uint32_t n = get_u32(bytes.data() + 16);
  const std::uint64_t total = get_u64(bytes.data() + 24);
  if (n > kMaxSections) {
    fail_at(util::ErrorKind::kParse, "absurd section count", where(origin));
  }
  const std::uint64_t meta_bytes =
      kHeaderBytes + kTableEntryBytes * std::uint64_t{n} + 4;
  if (bytes.size() < meta_bytes) {
    fail_at(util::ErrorKind::kTruncated, "truncated section table",
            where(origin));
  }
  if (total != bytes.size()) {
    fail_at(bytes.size() < total ? util::ErrorKind::kTruncated
                                 : util::ErrorKind::kParse,
            bytes.size() < total ? "file shorter than declared"
                                 : "trailing bytes past declared size",
            where(origin));
  }
  const std::size_t checksum_off = meta_bytes - 4;
  if (get_u32(bytes.data() + checksum_off) !=
      fnv1a32(bytes.data(), checksum_off)) {
    fail_at(util::ErrorKind::kChecksum, "header checksum mismatch",
            where(origin));
  }
  // Kind/version checks come after the checksum so a flipped bit in the
  // kind field reports as damage, not as a foreign snapshot.
  if (view.kind_ != expected_kind) {
    fail_at(util::ErrorKind::kParse, "payload kind mismatch", where(origin));
  }
  if (view.payload_version_ != expected_payload_version) {
    fail_at(util::ErrorKind::kBadVersion, "unsupported payload version",
            where(origin));
  }

  std::uint64_t off = meta_bytes;
  view.sections_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t* entry =
        bytes.data() + kHeaderBytes + kTableEntryBytes * std::size_t{i};
    const std::uint32_t id = get_u32(entry + 0);
    const std::uint32_t checksum = get_u32(entry + 4);
    const std::uint64_t len = get_u64(entry + 8);
    const std::uint64_t start = align8(off);
    for (std::uint64_t p = off; p < start; ++p) {
      if (bytes[p] != 0) {
        fail_at(util::ErrorKind::kParse, "nonzero padding", where(origin, id));
      }
    }
    if (start > total || total - start < len) {
      fail_at(util::ErrorKind::kTruncated, "section past end of file",
              where(origin, id));
    }
    const std::span<const std::uint8_t> payload{bytes.data() + start,
                                                static_cast<std::size_t>(len)};
    if (fnv1a32(payload.data(), payload.size()) != checksum) {
      fail_at(util::ErrorKind::kChecksum, "section checksum mismatch",
              where(origin, id));
    }
    view.sections_.emplace_back(id, payload);
    off = start + len;
  }
  if (off != total) {
    fail_at(util::ErrorKind::kParse, "trailing bytes after last section",
            where(origin));
  }
  return view;
}

// --- read-fault shim --------------------------------------------------

std::span<const std::uint8_t> with_injected_read_faults(
    std::string_view site, std::span<const std::uint8_t> bytes,
    std::vector<std::uint8_t>& scratch) {
  using util::FaultInjector;
  using util::FaultKind;
  FaultInjector* inj = FaultInjector::current();
  if (inj == nullptr) return bytes;
  const FaultKind fault =
      inj->at(site, {FaultKind::kShortRead, FaultKind::kTornPage});
  if (fault == FaultKind::kNone || bytes.empty()) return bytes;
  scratch.assign(bytes.begin(), bytes.end());
  if (fault == FaultKind::kShortRead) {
    scratch.resize(inj->pick(bytes.size()));
  } else {
    constexpr std::size_t kPage = 4096;
    const std::size_t pages = (scratch.size() + kPage - 1) / kPage;
    const std::size_t lo = inj->pick(pages) * kPage;
    const std::size_t hi = std::min(lo + kPage, scratch.size());
    std::fill(scratch.begin() + static_cast<std::ptrdiff_t>(lo),
              scratch.begin() + static_cast<std::ptrdiff_t>(hi), 0);
  }
  return scratch;
}

}  // namespace spoofscope::state
