#include "net/flow_batch.hpp"

namespace spoofscope::net {

void FlowBatch::clear() {
  ts_.clear();
  src_.clear();
  dst_.clear();
  proto_.clear();
  sport_.clear();
  dport_.clear();
  packets_.clear();
  bytes_.clear();
  member_in_.clear();
  member_out_.clear();
}

void FlowBatch::reserve(std::size_t n) {
  ts_.reserve(n);
  src_.reserve(n);
  dst_.reserve(n);
  proto_.reserve(n);
  sport_.reserve(n);
  dport_.reserve(n);
  packets_.reserve(n);
  bytes_.reserve(n);
  member_in_.reserve(n);
  member_out_.reserve(n);
}

void FlowBatch::push_back(const FlowRecord& f) {
  ts_.push_back(f.ts);
  src_.push_back(f.src.value());
  dst_.push_back(f.dst.value());
  proto_.push_back(static_cast<std::uint8_t>(f.proto));
  sport_.push_back(f.sport);
  dport_.push_back(f.dport);
  packets_.push_back(f.packets);
  bytes_.push_back(f.bytes);
  member_in_.push_back(f.member_in);
  member_out_.push_back(f.member_out);
}

FlowRecord FlowBatch::record(std::size_t i) const {
  FlowRecord f;
  f.ts = ts_[i];
  f.src = Ipv4Addr(src_[i]);
  f.dst = Ipv4Addr(dst_[i]);
  f.proto = static_cast<Proto>(proto_[i]);
  f.sport = sport_[i];
  f.dport = dport_[i];
  f.packets = packets_[i];
  f.bytes = bytes_[i];
  f.member_in = member_in_[i];
  f.member_out = member_out_[i];
  return f;
}

void FlowBatch::append_to(std::vector<FlowRecord>& out) const {
  out.reserve(out.size() + size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(record(i));
}

}  // namespace spoofscope::net
