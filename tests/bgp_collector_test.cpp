#include "bgp/collector.hpp"

#include <gtest/gtest.h>

#include "net/prefix.hpp"
#include "topo/generator.hpp"

namespace spoofscope::bgp {
namespace {

using net::pfx;
using topo::AsInfo;
using topo::AsLink;
using topo::RelType;
using topo::Topology;

AsInfo mk(Asn asn, std::vector<net::Prefix> prefixes) {
  AsInfo a;
  a.asn = asn;
  a.org = asn;
  a.prefixes = std::move(prefixes);
  a.announce_fraction = 1.0;
  return a;
}

/// 1 (provider) above 2 and 3; 2 peers 3.
Topology tiny_topology() {
  std::vector<AsInfo> ases{
      mk(1, {pfx("20.0.0.0/16")}),
      mk(2, {pfx("30.0.0.0/16"), pfx("30.1.0.0/16")}),
      mk(3, {pfx("40.0.0.0/16")}),
  };
  std::vector<AsLink> links{
      {2, 1, RelType::kCustomerToProvider, true, {}},
      {3, 1, RelType::kCustomerToProvider, true, {}},
      {2, 3, RelType::kPeerToPeer, true, {}},
  };
  return Topology(std::move(ases), std::move(links));
}

PlanParams stable_only() {
  PlanParams p;
  p.selective_prob = 0.0;
  p.transient_prob = 0.0;
  p.deaggregate_prob = 0.0;
  return p;
}

TEST(AnnouncementPlan, CoversAllAnnouncedPrefixes) {
  const auto t = tiny_topology();
  const auto plan = make_announcement_plan(t, stable_only(), 1);
  EXPECT_EQ(plan.prefix_count(), 4u);
  EXPECT_EQ(plan.groups.size(), 3u);  // one stable group per AS
}

TEST(AnnouncementPlan, RespectsAnnounceFraction) {
  auto t = tiny_topology();
  std::vector<AsInfo> ases(t.ases().begin(), t.ases().end());
  ases[1].announce_fraction = 0.5;  // AS2 announces 1 of 2 prefixes
  Topology t2(std::move(ases), std::vector<AsLink>(t.links().begin(), t.links().end()));
  const auto plan = make_announcement_plan(t2, stable_only(), 1);
  EXPECT_EQ(plan.prefix_count(), 3u);
}

TEST(AnnouncementPlan, SelectiveGroupsHaveFirstHops) {
  topo::TopologyParams params;
  params.num_tier1 = 2;
  params.num_transit = 6;
  params.num_isp = 20;
  params.num_hosting = 10;
  params.num_content = 5;
  params.num_other = 7;
  const auto t = generate_topology(params, 3);
  PlanParams pp;
  pp.selective_prob = 0.3;
  pp.transient_prob = 0.0;
  pp.deaggregate_prob = 0.0;
  const auto plan = make_announcement_plan(t, pp, 4);
  std::size_t selective = 0;
  for (const auto& g : plan.groups) {
    if (!g.first_hops.empty()) {
      ++selective;
      // first hops must be a strict subset of the origin's providers
      const auto provs = t.providers_of(g.origin);
      EXPECT_LT(g.first_hops.size(), provs.size());
      for (const Asn h : g.first_hops) {
        EXPECT_NE(std::find(provs.begin(), provs.end(), h), provs.end());
      }
    }
  }
  EXPECT_GT(selective, 0u);
}

TEST(AnnouncementPlan, TransientGroupsHaveTimestamps) {
  const auto t = tiny_topology();
  PlanParams pp;
  pp.selective_prob = 0.0;
  pp.transient_prob = 1.0;  // everything transient
  pp.deaggregate_prob = 0.0;
  const auto plan = make_announcement_plan(t, pp, 5);
  ASSERT_FALSE(plan.groups.empty());
  for (const auto& g : plan.groups) {
    EXPECT_TRUE(g.transient);
    EXPECT_GT(g.announce_ts, 0u);
    if (g.withdraw_ts != 0) {
      EXPECT_GT(g.withdraw_ts, g.announce_ts);
    }
  }
}

TEST(Collector, FullFeedSeesWholeTable) {
  const auto t = tiny_topology();
  const Simulator sim(t);
  const auto plan = make_announcement_plan(t, stable_only(), 1);
  const RouteFabric fabric(sim, plan);

  CollectorSpec spec;
  spec.name = "rrc-test";
  spec.feeders = {2};
  spec.full_feed = true;
  const auto records = collect_records(fabric, spec);
  // AS2 has a route to every one of the 4 prefixes.
  EXPECT_EQ(records.size(), 4u);
  for (const auto& r : records) {
    const auto& e = std::get<RibEntry>(r);
    EXPECT_EQ(e.peer, 2u);
    EXPECT_EQ(e.path.first(), 2u);
  }
}

TEST(Collector, RouteServerFeedOnlyCustomerRoutes) {
  const auto t = tiny_topology();
  const Simulator sim(t);
  const auto plan = make_announcement_plan(t, stable_only(), 1);
  const RouteFabric fabric(sim, plan);

  CollectorSpec spec;
  spec.name = "ixp-rs";
  spec.feeders = {2};
  spec.full_feed = false;
  const auto records = collect_records(fabric, spec);
  // AS2 exports only its own prefixes to a peer (it has no customers);
  // the routes to 40.0.0.0/16 (peer) and 20.0.0.0/16 (provider) stay.
  EXPECT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    const auto& e = std::get<RibEntry>(r);
    EXPECT_EQ(e.path.origin(), 2u);
  }
}

TEST(Collector, TransientPrefixesAppearAsUpdates) {
  const auto t = tiny_topology();
  const Simulator sim(t);
  PlanParams pp;
  pp.selective_prob = 0.0;
  pp.transient_prob = 1.0;
  pp.deaggregate_prob = 0.0;
  const auto plan = make_announcement_plan(t, pp, 7);
  const RouteFabric fabric(sim, plan);

  CollectorSpec spec;
  spec.name = "rrc";
  spec.feeders = {1};
  const auto records = collect_records(fabric, spec);
  ASSERT_FALSE(records.empty());
  std::size_t announces = 0, withdraws = 0;
  for (const auto& r : records) {
    const auto* u = std::get_if<UpdateMessage>(&r);
    ASSERT_NE(u, nullptr) << "transient plans must not produce dumps";
    (u->kind == UpdateMessage::Kind::kAnnounce ? announces : withdraws) += 1;
  }
  EXPECT_EQ(announces, 4u);
  EXPECT_LE(withdraws, announces);
}

TEST(Collector, UnknownFeederThrows) {
  const auto t = tiny_topology();
  const Simulator sim(t);
  const auto plan = make_announcement_plan(t, stable_only(), 1);
  const RouteFabric fabric(sim, plan);
  CollectorSpec spec;
  spec.feeders = {999};
  EXPECT_THROW(collect_records(fabric, spec), std::invalid_argument);
}

TEST(AnnouncementPlan, DeaggregationSplitsPrefixes) {
  const auto t = tiny_topology();
  PlanParams pp;
  pp.selective_prob = 0.0;
  pp.transient_prob = 0.0;
  pp.deaggregate_prob = 1.0;  // every eligible prefix deaggregates
  const auto plan = make_announcement_plan(t, pp, 9);
  // 4 allocated /16s, each split into 2-4 more-specifics (aggregate
  // sometimes kept): strictly more announced prefixes than allocations.
  EXPECT_GT(plan.prefix_count(), 4u);
  for (const auto& g : plan.groups) {
    for (const auto& p : g.prefixes) {
      EXPECT_GE(p.length(), 16);
      EXPECT_LE(p.length(), 18);
      // every piece is covered by an allocation of its origin
      const auto* info = t.find(g.origin);
      bool covered = false;
      for (const auto& alloc : info->prefixes) covered |= alloc.contains(p);
      EXPECT_TRUE(covered) << p.str();
    }
  }
}

TEST(Collector, UnknownOriginNamesPlanGroup) {
  const auto t = tiny_topology();
  const Simulator sim(t);
  AnnouncementPlan plan;
  AnnouncementGroup good;
  good.origin = 2;
  good.prefixes = {pfx("30.0.0.0/16")};
  plan.groups.push_back(good);
  AnnouncementGroup bad;
  bad.origin = 999;  // not in the topology
  bad.prefixes = {pfx("50.0.0.0/16"), pfx("51.0.0.0/16")};
  plan.groups.push_back(bad);
  const auto expect_context = [](const auto& build) {
    try {
      build();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("plan group #1"), std::string::npos) << what;
      EXPECT_NE(what.find("origin AS 999"), std::string::npos) << what;
      EXPECT_NE(what.find("2 prefixes"), std::string::npos) << what;
    }
  };
  expect_context([&] { RouteFabric fabric(sim, plan); });
  util::ThreadPool pool(2);
  expect_context([&] { RouteFabric fabric(sim, plan, pool); });
  expect_context([&] {
    std::vector<CollectorSpec> specs(1);
    specs[0].name = "rrc-test";
    specs[0].feeders = {2};
    propagate_collect(sim, plan, specs, pool,
                      [](std::size_t, const MrtRecord&) {});
  });
}

TEST(Collector, UnknownFeederNamesCollector) {
  const auto t = tiny_topology();
  const Simulator sim(t);
  const auto plan = make_announcement_plan(t, stable_only(), 1);
  const RouteFabric fabric(sim, plan);
  CollectorSpec spec;
  spec.name = "rrc-broken";
  spec.feeders = {2, 777};
  try {
    collect_records(fabric, spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown feeder AS 777"), std::string::npos) << what;
    EXPECT_NE(what.find("rrc-broken"), std::string::npos) << what;
  }
}

TEST(Collector, DeterministicPlan) {
  const auto t = tiny_topology();
  PlanParams pp;
  pp.selective_prob = 0.5;
  pp.transient_prob = 0.3;
  const auto a = make_announcement_plan(t, pp, 42);
  const auto b = make_announcement_plan(t, pp, 42);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].prefixes, b.groups[i].prefixes);
    EXPECT_EQ(a.groups[i].first_hops, b.groups[i].first_hops);
    EXPECT_EQ(a.groups[i].transient, b.groups[i].transient);
  }
}

}  // namespace
}  // namespace spoofscope::bgp
