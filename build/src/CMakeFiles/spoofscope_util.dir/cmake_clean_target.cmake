file(REMOVE_RECURSE
  "libspoofscope_util.a"
)
