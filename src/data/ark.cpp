#include "data/ark.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/rng.hpp"

namespace spoofscope::data {

ArkDataset::ArkDataset(std::vector<std::uint32_t> router_ips, std::size_t traces_run)
    : ips_(std::move(router_ips)), traces_run_(traces_run) {
  std::sort(ips_.begin(), ips_.end());
  ips_.erase(std::unique(ips_.begin(), ips_.end()), ips_.end());
}

bool ArkDataset::is_router_ip(net::Ipv4Addr a) const {
  return std::binary_search(ips_.begin(), ips_.end(), a.value());
}

net::Ipv4Addr link_interface_address(const net::Prefix& infra, int side) {
  // .1 and .2 of the link's /24, the classic point-to-point numbering.
  return net::Ipv4Addr(infra.first() + 1 + static_cast<std::uint32_t>(side & 1));
}

namespace {

/// Walks from `asn` up the provider hierarchy until a transit-free AS is
/// reached, collecting the c2p links crossed. Deterministic given rng.
void walk_up(const topo::Topology& topo, net::Asn asn, util::Rng& rng,
             std::vector<const topo::AsLink*>& crossed,
             const std::unordered_map<std::uint64_t, const topo::AsLink*>& link_of) {
  net::Asn cur = asn;
  for (int depth = 0; depth < 16; ++depth) {
    const auto provs = topo.providers_of(cur);
    if (provs.empty()) return;
    const net::Asn up = provs[rng.index(provs.size())];
    const auto it = link_of.find((std::uint64_t(cur) << 32) | up);
    if (it != link_of.end()) crossed.push_back(it->second);
    cur = up;
  }
}

}  // namespace

ArkDataset run_ark_campaign(const topo::Topology& topo, const ArkParams& params,
                            std::uint64_t seed) {
  util::Rng rng(seed);

  // Index c2p links by (customer, provider).
  std::unordered_map<std::uint64_t, const topo::AsLink*> link_of;
  for (const auto& l : topo.links()) {
    if (l.type != topo::RelType::kCustomerToProvider) continue;
    link_of.emplace((std::uint64_t(l.from) << 32) | l.to, &l);
  }

  std::vector<std::uint32_t> ips;
  const std::size_t n_ases = topo.as_count();
  for (std::size_t t = 0; t < params.num_traces; ++t) {
    const net::Asn src = topo.asn_at(rng.index(n_ases));
    const net::Asn dst = topo.asn_at(rng.index(n_ases));
    std::vector<const topo::AsLink*> crossed;
    walk_up(topo, src, rng, crossed, link_of);
    walk_up(topo, dst, rng, crossed, link_of);  // the downhill half, reversed
    for (const auto* l : crossed) {
      if (l->infra.length() == 0) continue;
      for (int i = 0; i < params.interfaces_per_link; ++i) {
        ips.push_back(link_interface_address(l->infra, i).value());
      }
    }
  }
  return ArkDataset(std::move(ips), params.num_traces);
}

}  // namespace spoofscope::data
