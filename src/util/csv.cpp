#include "util/csv.hpp"

namespace spoofscope::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

bool csv_parse_line(std::string_view line, std::vector<std::string>& out) {
  out.clear();
  std::string cur;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
    ++i;
  }
  if (in_quotes) return false;
  out.push_back(std::move(cur));
  return true;
}

}  // namespace spoofscope::util
