file(REMOVE_RECURSE
  "CMakeFiles/classify_urpf_test.dir/classify_urpf_test.cpp.o"
  "CMakeFiles/classify_urpf_test.dir/classify_urpf_test.cpp.o.d"
  "classify_urpf_test"
  "classify_urpf_test.pdb"
  "classify_urpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_urpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
