// Small statistics toolkit used by the analysis modules: summary stats,
// empirical CDF/CCDF construction, and linear/log-binned histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace spoofscope::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double sum = 0.0;
};

/// Computes summary statistics; returns a zeroed Summary for empty input.
Summary summarize(std::span<const double> xs);

/// Returns the q-quantile (0 <= q <= 1) of `xs` using linear interpolation
/// between order statistics. `xs` need not be sorted. Empty input -> 0.
double quantile(std::span<const double> xs, double q);

/// One point of an empirical distribution function.
struct DistPoint {
  double x = 0.0;  ///< sample value
  double y = 0.0;  ///< cumulative fraction
};

/// Empirical CDF: for each distinct sorted value x, the fraction of samples
/// <= x. Suitable for direct plotting (Fig 8a style).
std::vector<DistPoint> empirical_cdf(std::span<const double> xs);

/// Empirical CCDF: fraction of samples strictly greater than x
/// (Fig 4 style).
std::vector<DistPoint> empirical_ccdf(std::span<const double> xs);

/// Fixed-width linear histogram over [lo, hi); values outside are clamped
/// into the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

  /// Fraction of total mass in bin i (0 if the histogram is empty).
  double fraction(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Base-`base` logarithmic histogram for heavy-tailed quantities
/// (per-member traffic volumes, packet counts).
class LogHistogram {
 public:
  /// Bins: [0,1), [1,base), [base,base^2), ...
  explicit LogHistogram(double base = 10.0, std::size_t bins = 12);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double base_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Bounded-memory streaming quantile summary — the sketch behind the
/// streaming analysis builders (DESIGN.md §12).
///
/// A deterministic multi-level compactor in the MRL/KLL family: samples
/// land in a level-0 buffer of capacity `k`; a full level is sorted and
/// every other element (alternating offset per level) is promoted with
/// doubled weight. Everything is a pure function of the insertion
/// sequence — no randomness, no hash order — so two runs over the same
/// stream produce bit-identical summaries.
///
/// Guarantees:
///  - Exact mode: while count() < exact_threshold() no compaction has
///    happened and quantile() equals util::quantile() of the retained
///    samples exactly.
///  - Sketched mode: every rank estimate is within rank_error_bound()
///    of the truth. The bound is maintained conservatively (each
///    compaction of weight-w elements adds w), giving
///    rank_error_bound() <= ~2·(count/k)·log2(count/k) — a fraction
///    that shrinks as k grows and is pinned by the property tests.
///  - Memory: retained() <= k · (log2(count/k) + 2) values, independent
///    of the stream length for practical purposes.
///  - merge() folds another sketch in (same k required); counts add,
///    error bounds add, and all merged rank estimates stay within the
///    combined bound regardless of merge grouping.
class QuantileSketch {
 public:
  /// `k` is the per-level buffer capacity (rounded up to an even value,
  /// minimum 8): larger k = smaller error, more memory.
  explicit QuantileSketch(std::size_t k = 256);

  /// Inserts one sample (weight folds `weight` identical samples in).
  void add(double x, std::uint64_t weight = 1);

  /// Folds `other` into this sketch. Throws std::invalid_argument if
  /// the two sketches were built with different k.
  void merge(const QuantileSketch& other);

  /// Total samples inserted (including merged-in ones).
  std::uint64_t count() const { return count_; }

  /// Counts strictly below this are guaranteed exact (no compaction).
  std::size_t exact_threshold() const { return k_; }

  /// True while no compaction has discarded information.
  bool exact() const { return error_bound_ == 0; }

  /// q-quantile estimate (0 <= q <= 1); exact-mode results match
  /// util::quantile() bit-for-bit. Empty sketch -> 0.
  double quantile(double q) const;

  /// Estimated number of inserted samples <= x; off by at most
  /// rank_error_bound().
  std::uint64_t rank(double x) const;

  /// Absolute rank-error bound accumulated so far (0 = exact).
  std::uint64_t rank_error_bound() const { return error_bound_; }

  /// Values currently held across all levels (the memory footprint).
  std::size_t retained() const;

 private:
  void compact(std::size_t level);
  /// All retained (value, weight) pairs, sorted by value.
  std::vector<std::pair<double, std::uint64_t>> weighted() const;

  std::size_t k_;
  std::uint64_t count_ = 0;
  std::uint64_t error_bound_ = 0;
  std::vector<std::vector<double>> levels_;  ///< level i holds weight-2^i values
  std::vector<std::uint8_t> parity_;         ///< per-level alternating offset
};

/// Pearson correlation of two equal-length samples; 0 for degenerate input.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Gini coefficient of non-negative values: 0 = perfectly even,
/// -> 1 = fully concentrated. Used to characterize attack amplifier
/// distribution strategies (Fig 11b).
double gini(std::span<const double> xs);

}  // namespace spoofscope::util
