// Fig 6: business types vs traffic volume and Bogon/Invalid shares —
// hosters and eyeball ISPs leak, content providers do not.
#include "bench/common.hpp"

#include "analysis/business.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_BusinessScatter(benchmark::State& state) {
  const auto counts = world().member_counts(inference::Method::kFullCone);
  for (auto _ : state) {
    auto points = analysis::business_scatter(counts);
    benchmark::DoNotOptimize(points);
  }
}
BENCHMARK(BM_BusinessScatter);

void print_reproduction() {
  bench::print_header(
      "Fig 6 (business types vs Bogon/Invalid shares)",
      "members with >1% shares are predominantly hosting and end-user "
      "ISPs; large content providers contribute almost nothing");
  const auto counts = world().member_counts(inference::Method::kFullCone);
  const auto points = analysis::business_scatter(counts);
  std::cout << analysis::format_business_summary(
      analysis::business_summary(points));

  // A few raw scatter points per type (the plot's extremes).
  std::cout << "\nlargest Invalid-share member per type:\n";
  for (int t = 0; t < topo::kNumBusinessTypes; ++t) {
    const analysis::BusinessPoint* best = nullptr;
    for (const auto& p : points) {
      if (static_cast<int>(p.type) != t) continue;
      if (!best || p.share_invalid > best->share_invalid) best = &p;
    }
    if (!best) continue;
    std::cout << "  " << util::pad_right(topo::business_name(best->type), 9)
              << " AS" << best->member << ": total "
              << util::pad_left(util::human_count(best->total_packets), 8)
              << " pkts, Invalid " << util::percent(best->share_invalid)
              << ", Bogon " << util::percent(best->share_bogon) << "\n";
  }
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
