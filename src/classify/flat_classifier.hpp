// Compiled flat classification plane — the DIR-24-8 answer to the trie
// engine's pointer chasing.
//
// Because the routing table only admits /8–/24 announcements (Sec 3.3)
// and every bogon prefix is /4–/24, each /24 block of the address space
// is homogeneous: all of its addresses share one base class and, when
// routed, one covering PrefixId. Compiling an existing Classifier
// therefore yields
//
//   1. a 2^24-entry base-class table  (/24 -> {bogon, unrouted,
//      routed+PrefixId, overflow}),
//   2. per (member, PrefixId) 16-bit membership records interleaving the
//      per-method bits: bit m set means method m's valid space covers the
//      whole prefix (-> Valid on hit), bit 8+m means it covers part of it
//      (-> consult the member's interval set, the extend() fallback lane),
//   3. a MemberView handle that hoists the per-member hash lookup out of
//      the per-flow loop,
//
// and classify_all becomes one table read plus one record read: the
// interleaved layout answers all eight methods from a single cache line
// (a bit-spread turns the 8-bit valid mask into the packed Label).
// Prefixes longer than /24 (possible only if the ingest invariant is
// relaxed) demote their /24 block to an overflow entry that falls back to
// the exact trie lookups, so the plane stays correct, merely slower, for
// those blocks; compile() counts them in Stats.
//
// A FlatClassifier is an immutable snapshot: it shares the source
// Classifier's valid spaces (shared_ptr<const>), and Classifier's
// copy-on-write mutable_space() guarantees later extend() calls never
// mutate a compiled plane — recompile to pick them up.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "classify/batch_kernels.hpp"
#include "classify/classifier.hpp"

namespace spoofscope::net {
class FlowBatch;
class MappedTrace;
}

namespace spoofscope::state {
class PlaneCache;
}

namespace spoofscope::classify {

/// The flat engine. Construct via compile(); answers the same queries as
/// Classifier with identical results.
class FlatClassifier {
 public:
  /// Pre-resolved member handle: the single hash lookup, done once.
  class MemberView {
   public:
    Asn member() const { return member_; }
    /// False when the member appears in no configured valid space (all
    /// its routed traffic is Invalid).
    bool known() const { return slot_ != kNoSlot; }

   private:
    friend class FlatClassifier;
    static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
    Asn member_ = net::kNoAsn;
    std::uint32_t slot_ = kNoSlot;
  };

  /// Compile-cost / memory-footprint report.
  struct Stats {
    std::size_t table_bytes = 0;        ///< base-class table footprint
    std::size_t bitset_bytes = 0;       ///< all membership records
    std::size_t prefixes = 0;           ///< routed prefixes (bitset width)
    std::size_t members = 0;            ///< distinct members across spaces
    std::size_t overflow_prefixes = 0;  ///< prefixes longer than /24
    std::size_t overflow_slots = 0;     ///< /24 entries on the slow lane
    std::size_t partial_rows = 0;       ///< (space, member) pairs needing
                                        ///< the interval-set fallback lane
  };

  /// Compiles `source` into the flat plane. O(2^24) table fill plus
  /// O(members * prefixes * log) bitset construction.
  static FlatClassifier compile(const Classifier& source);

  /// Parallel compile: the per-member bitset rows are independent, so
  /// they fan out across `pool`; the result is identical to the
  /// sequential compile.
  static FlatClassifier compile(const Classifier& source,
                                util::ThreadPool& pool);

  /// Resolves the member hash lookup once.
  MemberView member_view(Asn member) const;

  /// Fig 3 for a single method. Identical to Classifier::classify.
  TrafficClass classify(net::Ipv4Addr src, Asn member,
                        std::size_t space_idx) const {
    return classify(src, member_view(member), space_idx);
  }

  TrafficClass classify(net::Ipv4Addr src, const MemberView& view,
                        std::size_t space_idx) const;

  /// All methods at once. Identical to Classifier::classify_all.
  Label classify_all(net::Ipv4Addr src, Asn member) const {
    return classify_all(src, member_view(member));
  }

  Label classify_all(net::Ipv4Addr src, const MemberView& view) const;

  /// Batch classification over a FlowBatch's SoA lanes through the best
  /// kernel this build + CPU supports (SimdKernel::kAuto): an 8-wide AVX2
  /// gather kernel, a 4-wide NEON kernel, or the portable scalar loop
  /// with software prefetch. All kernels run a two-phase hot/slow split —
  /// phase 1 resolves the pure-table fast path for the whole batch and
  /// compacts the rows that touch the overflow or interval-set fallback
  /// lanes; phase 2 re-runs only those through the exact scalar slow
  /// lane — so labels are element-wise identical to calling classify_all
  /// per record, whichever kernel runs. out.size() must equal
  /// batch.size().
  void classify_batch(const net::FlowBatch& batch, std::span<Label> out) const;

  /// Kernel-pinned variant: `kernel` selects the implementation (the
  /// --simd knob); an explicit kernel this build/CPU cannot run throws.
  void classify_batch(const net::FlowBatch& batch, std::span<Label> out,
                      SimdKernel kernel) const;

  /// Parallel batch variant (contiguous deterministic chunks).
  void classify_batch(const net::FlowBatch& batch, std::span<Label> out,
                      util::ThreadPool& pool) const;

  void classify_batch(const net::FlowBatch& batch, std::span<Label> out,
                      util::ThreadPool& pool, SimdKernel kernel) const;

  std::vector<Label> classify_batch(const net::FlowBatch& batch) const;

  /// Same kernels over AoS records (what classify_trace uses); non-scalar
  /// kernels pack the src/member lanes tile-wise into SoA scratch.
  void classify_records(std::span<const net::FlowRecord> flows,
                        std::span<Label> out) const;

  void classify_records(std::span<const net::FlowRecord> flows,
                        std::span<Label> out, SimdKernel kernel) const;

  /// Tuning hook for the prefetch-distance sweep bench: the portable
  /// scalar kernel with an explicit lookahead instead of the compiled-in
  /// default. Not a dispatch path — labels are identical at any distance.
  void classify_batch_scalar(const net::FlowBatch& batch, std::span<Label> out,
                             std::size_t prefetch_distance) const;

  /// The concrete kernel a request resolves to against this plane. Mostly
  /// resolve_simd_kernel(), plus one plane-specific demotion: the AVX2
  /// record gather indexes 32-bit, so planes whose record lane exceeds
  /// 2^31 entries fall back to scalar record loads via kScalar.
  SimdKernel effective_kernel(SimdKernel requested) const;

  /// 64-bit FNV-1a digest over the complete compiled plane (base table,
  /// membership records, member order, fallback lanes). Two compiles with
  /// equal digests behave bit-identically; the striped parallel compile
  /// is asserted against the sequential one through this, and
  /// apply_updates() proves patched == fresh-compiled the same way.
  std::uint64_t plane_digest() const;

  // --- live routing churn ----------------------------------------------
  //
  // apply_updates() edits the compiled plane in place for a batch of BGP
  // announce/withdraw messages instead of recompiling: affected /24
  // ranges of the base table are repainted, membership-record rows are
  // rewritten around the surviving columns, and the overflow/fallback
  // lanes are patched to match. Presence semantics, peer-agnostic: an
  // announce adds the prefix to the live set if absent, a withdraw
  // removes it if present; everything else counts as redundant.
  //
  // PrefixIds of a live plane are canonical: the index of the prefix in
  // the live set sorted ascending by (address, length). A fresh compile
  // of a RoutingTable built by ingesting the same live set in that order
  // therefore yields a bit-identical plane — plane_digest() equality
  // against exactly that compile is the correctness oracle the churn
  // suites assert after every step. (The first apply_updates call
  // renumbers the source table's ingest-order ids to canonical order if
  // they differ.)

  /// Knobs for apply_updates.
  struct UpdateApplyOptions {
    /// Announcement length window, mirroring RoutingTableBuilder::Options
    /// (out-of-window updates are counted and ignored). Raise max_length
    /// past 24 to let updates land on the overflow lane.
    std::uint8_t min_length = 8;
    std::uint8_t max_length = 24;
    /// Optional pool: the base-table repaint fans out per /8 stripe and
    /// the record rewrite per member row, exactly like compile().
    util::ThreadPool* pool = nullptr;
  };

  /// What one batch did. announced/withdrawn count state-changing ops
  /// (net of in-batch cancellation), redundant the no-ops, out_of_range
  /// the length-filtered ones.
  struct UpdateApplyStats {
    std::size_t announced = 0;
    std::size_t withdrawn = 0;
    std::size_t redundant = 0;
    std::size_t out_of_range = 0;
    bool changed = false;  ///< plane bytes changed (epoch was bumped)
  };

  /// Applies one announce/withdraw batch in place. Only the batch's net
  /// effect lands (an announce+withdraw pair inside one batch cancels).
  /// Bumps epoch() iff the plane actually changed. Requires an owned or
  /// cache-loaded plane either way: a mapped plane is copied out of its
  /// snapshot first (ensure_owned), so the cache entry on disk is never
  /// written through.
  UpdateApplyStats apply_updates(std::span<const bgp::UpdateMessage> batch,
                                 const UpdateApplyOptions& opts);
  UpdateApplyStats apply_updates(std::span<const bgp::UpdateMessage> batch) {
    return apply_updates(batch, UpdateApplyOptions{});
  }

  /// Monotonic per-plane patch counter: 0 until the first effective
  /// apply_updates, +1 per plane-changing batch. StreamingDetector uses
  /// it to notice the plane moved under buffered flows.
  std::uint64_t epoch() const { return epoch_; }

  /// True once apply_updates has taken ownership of the route set (the
  /// overflow lane then resolves against the live set, not the source
  /// table).
  bool live() const { return live_; }

  /// The live route set in canonical order (valid when live()).
  const std::vector<net::Prefix>& live_prefixes() const {
    return live_prefixes_;
  }

  std::size_t space_count() const { return spaces_.size(); }
  const inference::ValidSpace& space(std::size_t i) const { return *spaces_[i]; }
  const bgp::RoutingTable& table() const { return *table_; }
  const Stats& stats() const { return stats_; }

 private:
  /// The plane cache (state::PlaneCache) rebuilds a FlatClassifier from
  /// a digest-validated snapshot, pointing the hot-path views into the
  /// mapped file instead of owned storage.
  friend class spoofscope::state::PlaneCache;

  FlatClassifier() = default;

  /// Entries in the base-class table (one per /24 block).
  static constexpr std::size_t kBaseEntries = std::size_t{1} << 24;

  // Base-table entry: kind in the top 2 bits, PrefixId in the low 30.
  static constexpr std::uint32_t kKindShift = 30;
  static constexpr std::uint32_t kPayloadMask = (1u << kKindShift) - 1;
  static constexpr std::uint32_t kKindUnrouted = 0;  // must be 0: zero-init
  static constexpr std::uint32_t kKindBogon = 1;
  static constexpr std::uint32_t kKindRouted = 2;
  static constexpr std::uint32_t kKindOverflow = 3;

  Label classify_routed(net::Ipv4Addr src, std::uint32_t pid,
                        const MemberView& view) const;
  Label classify_overflow(net::Ipv4Addr src, const MemberView& view) const;
  TrafficClass class_in_space(net::Ipv4Addr src, std::uint32_t pid,
                              std::uint32_t slot, std::size_t space_idx) const;

  static FlatClassifier compile_impl(const Classifier& source,
                                     util::ThreadPool* pool);

  /// Packs the same class for every configured space.
  static Label uniform_label(std::size_t num_spaces, TrafficClass c);

  /// Rebuilds the open-addressed probe table from members_.
  void rebuild_probe();

  /// member_view without the handle: the slot, or MemberView::kNoSlot.
  std::uint32_t slot_of(Asn member) const {
    std::uint32_t h =
        (static_cast<std::uint32_t>(member) * 2654435761u) & probe_mask_;
    while (probe_slots_[h] != MemberView::kNoSlot) {
      if (probe_keys_[h] == member) return probe_slots_[h];
      h = (h + 1) & probe_mask_;
    }
    return MemberView::kNoSlot;
  }

  /// Reassembles a handle from a slot the kernels resolved earlier.
  MemberView view_for(Asn member, std::uint32_t slot) const {
    MemberView view;
    view.member_ = member;
    view.slot_ = slot;
    return view;
  }

  template <typename GetSrc, typename GetMember>
  void classify_kernel(std::size_t begin, std::size_t end, GetSrc&& src_at,
                       GetMember&& member_at, Label* out,
                       std::size_t prefetch_distance) const;

  /// Dispatches one contiguous SoA run to the resolved kernel. `kernel`
  /// must be concrete (never kAuto) and usable in this build.
  void run_kernel(SimdKernel kernel, const std::uint32_t* src,
                  const Asn* member, std::size_t n, Label* out) const;

  void kernel_scalar(const std::uint32_t* src, const Asn* member,
                     std::size_t n, Label* out,
                     std::size_t prefetch_distance) const;
#if SPOOFSCOPE_KERNEL_AVX2
  void kernel_avx2(const std::uint32_t* src, const Asn* member, std::size_t n,
                   Label* out) const;
#endif
#if SPOOFSCOPE_KERNEL_NEON
  void kernel_neon(const std::uint32_t* src, const Asn* member, std::size_t n,
                   Label* out) const;
#endif

  /// Shared phase-2 slow lane: re-resolves the pending rows a vector
  /// kernel compacted (overflow entries and partial-bit records) through
  /// the exact scalar paths.
  void resolve_pending(const std::uint32_t* src, const Asn* member,
                       const std::uint32_t* entry, const std::uint32_t* slot,
                       const std::uint32_t* pending, std::size_t n_pending,
                       Label* out) const;

  /// Base-class table, kBaseEntries entries. Heap array instead of a
  /// vector so the compile can skip the 64 MiB zero-fill: stripes only
  /// zero the lanes no prefix paints. Empty on a cache-loaded plane
  /// (the table lives in the mapped snapshot instead).
  std::unique_ptr<std::uint32_t[]> base_;
  trie::PrefixSet bogons_;           // overflow-lane bogon check
  const bgp::RoutingTable* table_ = nullptr;
  std::vector<std::shared_ptr<const inference::ValidSpace>> spaces_;
  std::vector<Asn> members_;  // sorted; a member's slot is its index
  /// Open-addressed Asn -> slot probe table (linear probing, power-of-two
  /// capacity) so member_view is O(1) instead of a binary search.
  std::vector<Asn> probe_keys_;
  std::vector<std::uint32_t> probe_slots_;
  std::uint32_t probe_mask_ = 0;
  /// Slot-major membership records: record (slot * prefixes + pid) holds
  /// the full bits (low byte, bit m = method m) and partial bits (high
  /// byte) for one (member, prefix) pair — all methods in one load.
  /// Owned storage; empty on a cache-loaded plane.
  std::vector<std::uint16_t> records_;
  /// What the hot paths actually read: the owned storage after
  /// compile(), or the mapped snapshot after a plane-cache load (both
  /// 8-byte aligned, little-endian hosts only on the mapped path).
  const std::uint32_t* base_view_ = nullptr;
  const std::uint16_t* records_view_ = nullptr;
  /// True when a 32-bit gather load at the last record cannot overread
  /// the backing storage: compile() pads owned records_ by one element;
  /// mapped planes set this only if the snapshot has trailing bytes.
  /// When false, vector kernels use scalar record loads (labels are
  /// identical either way — only the load width changes).
  bool records_gather_safe_ = false;
  /// Keeps the mapped snapshot alive for the lifetime of the views.
  std::shared_ptr<const net::MappedTrace> plane_mapping_;
  /// Per (slot, method): the member's interval set when any partial bit
  /// is set in that lane (the extend() fallback), nullptr otherwise.
  /// Indexed slot * space_count() + method.
  std::vector<const trie::IntervalSet*> fallback_;
  std::size_t num_prefixes_ = 0;
  Label all_bogon_ = 0;
  Label all_unrouted_ = 0;
  Label all_invalid_ = 0;
  Stats stats_;

  // --- live-update state (populated by the first apply_updates) --------

  /// One base-table paint over /24 blocks [begin, end], as in compile().
  struct BlockOp {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t entry = 0;
  };

  /// (address << 6) | length — the live-set hash key of a prefix.
  static std::uint64_t live_key(const net::Prefix& p) {
    return std::uint64_t{p.first()} << 6 | p.length();
  }

  /// Copies a cache-mapped plane's base table and records into owned
  /// storage so in-place patches never write through the mmap.
  void ensure_owned();

  /// Builds live_index_ / live_lengths_ / live_overflow_blocks_ /
  /// bogon_block_ops_ from live_prefixes_.
  void rebuild_live_index();

  /// Longest-prefix match over the live set (overflow lane when live());
  /// mirrors RoutingTable::covering_prefix on the patched table.
  std::optional<std::uint32_t> live_covering_prefix(net::Ipv4Addr a) const;

  /// Recomputes one /24 block's base entry from the live set, reproducing
  /// compile()'s paint order: routed lengths ascending (most specific
  /// wins), >24 overflow on top, bogons last.
  std::uint32_t compute_block_entry(std::uint32_t block) const;

  /// Fresh membership record for (member's spaces, prefix): the same
  /// full/partial decision the compile merge scan makes, via one binary
  /// search per space.
  std::uint16_t fresh_record_bits(
      const trie::IntervalSet* const* member_spaces, const net::Prefix& p) const;

  bool live_ = false;
  std::uint64_t epoch_ = 0;
  /// Canonical (address, length)-sorted live set; index == PrefixId.
  std::vector<net::Prefix> live_prefixes_;
  /// live_key -> PrefixId for every live prefix.
  std::unordered_map<std::uint64_t, std::uint32_t> live_index_;
  /// Bit l set: some live prefix has length l.
  std::uint64_t live_lengths_ = 0;
  /// /24 block -> number of live >24 prefixes inside it (the overflow
  /// paint marks).
  std::unordered_map<std::uint32_t, std::uint32_t> live_overflow_blocks_;
  /// The static bogon paint ops in bogon_prefixes() order (the last op
  /// covering a block wins, exactly as the compile paints them last).
  std::vector<BlockOp> bogon_block_ops_;
  /// Live >24 prefixes (stats_.overflow_prefixes = this + >24 bogons).
  std::size_t live_overflow_prefixes_ = 0;
  std::size_t bogon_overflow_prefixes_ = 0;
  /// Per-length live prefix counts backing live_lengths_ (index ==
  /// length), so withdrawing the last prefix of a length clears its bit
  /// without a full index rebuild.
  std::array<std::uint32_t, 33> live_length_counts_{};
  /// Per (slot, space): how many live columns have that partial bit set.
  /// The fallback lane is exactly the nonzero entries, so batches update
  /// it by the removed/added columns alone instead of re-scanning rows.
  /// Built lazily by the first plane-changing batch. Indexed like
  /// fallback_ (slot * space_count() + space).
  std::vector<std::uint32_t> partial_counts_;
  bool partial_counts_ready_ = false;
  /// Copy-mode record-rewrite scratch, recycled across batches so
  /// steady-state churn neither allocates nor redundantly zero-fills.
  std::vector<std::uint16_t> records_scratch_;
};

/// Trace classification on the flat engine; element-wise identical to the
/// trie-engine classify_trace.
std::vector<Label> classify_trace(const FlatClassifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  SimdKernel kernel = SimdKernel::kAuto);

/// Parallel variant (same chunking contract as the trie overload).
std::vector<Label> classify_trace(const FlatClassifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  util::ThreadPool& pool,
                                  SimdKernel kernel = SimdKernel::kAuto);

}  // namespace spoofscope::classify
