
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/as_info.cpp" "src/CMakeFiles/spoofscope_topo.dir/topo/as_info.cpp.o" "gcc" "src/CMakeFiles/spoofscope_topo.dir/topo/as_info.cpp.o.d"
  "/root/repo/src/topo/generator.cpp" "src/CMakeFiles/spoofscope_topo.dir/topo/generator.cpp.o" "gcc" "src/CMakeFiles/spoofscope_topo.dir/topo/generator.cpp.o.d"
  "/root/repo/src/topo/serialize.cpp" "src/CMakeFiles/spoofscope_topo.dir/topo/serialize.cpp.o" "gcc" "src/CMakeFiles/spoofscope_topo.dir/topo/serialize.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/spoofscope_topo.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/spoofscope_topo.dir/topo/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
