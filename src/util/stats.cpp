#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace spoofscope::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= v.size()) return v.back();
  return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

namespace {

std::vector<DistPoint> edf(std::span<const double> xs, bool complementary) {
  std::vector<DistPoint> out;
  if (xs.empty()) return out;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double n = static_cast<double>(v.size());
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t j = i;
    while (j < v.size() && v[j] == v[i]) ++j;
    const double cum = static_cast<double>(j) / n;
    out.push_back({v[i], complementary ? 1.0 - cum : cum});
    i = j;
  }
  return out;
}

}  // namespace

std::vector<DistPoint> empirical_cdf(std::span<const double> xs) {
  return edf(xs, /*complementary=*/false);
}

std::vector<DistPoint> empirical_ccdf(std::span<const double> xs) {
  return edf(xs, /*complementary=*/true);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x, double weight) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  counts_[i] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::fraction(std::size_t i) const {
  return total_ > 0 ? counts_[i] / total_ : 0.0;
}

LogHistogram::LogHistogram(double base, std::size_t bins)
    : base_(base), counts_(bins, 0.0) {
  if (base <= 1.0 || bins == 0) throw std::invalid_argument("LogHistogram: bad parameters");
}

void LogHistogram::add(double x, double weight) {
  std::size_t i = 0;
  if (x >= 1.0) {
    i = static_cast<std::size_t>(std::log(x) / std::log(base_)) + 1;
    i = std::min(i, counts_.size() - 1);
  }
  counts_[i] += weight;
  total_ += weight;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return i == 0 ? 0.0 : std::pow(base_, static_cast<double>(i - 1));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  }
  cov /= static_cast<double>(xs.size());
  return cov / (sx.stddev * sy.stddev);
}

double gini(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  double sum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sum += v[i];
    weighted += static_cast<double>(i + 1) * v[i];
  }
  if (sum <= 0.0) return 0.0;
  const double n = static_cast<double>(v.size());
  return (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
}

}  // namespace spoofscope::util
