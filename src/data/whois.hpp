// Synthetic WHOIS / Internet Routing Registry — the side channel used in
// the Sec 4.4 false-positive hunt. It documents two things BGP data does
// not show:
//   1. provider-assigned address ranges: a multihomed customer holds a
//      /24 inside provider A's space (registered under the customer's
//      name) but routes its egress via provider B or the IXP — classified
//      Invalid until whitelisted;
//   2. relationships that exist but are invisible in BGP (hidden sibling
//      or peering links) yet can be recovered from matching company
//      records or looking-glass output.
// The traffic generator consumes the same registry, so the uncommon
// setups the paper describes actually appear in the traces.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/prefix.hpp"
#include "topo/topology.hpp"

namespace spoofscope::data {

struct WhoisParams {
  /// P(a multihomed edge AS uses provider-assigned space via other paths).
  double provider_assigned_prob = 0.12;
  /// P(WHOIS/looking-glass investigation reveals an invisible link).
  double reveal_invisible_link_prob = 0.8;
};

/// One provider-assigned range (the Sec 4.4 "uncommon setup").
struct ProviderAssignedRange {
  net::Asn customer = net::kNoAsn;  ///< uses the space
  net::Asn provider = net::kNoAsn;  ///< announces the covering prefix
  net::Prefix range;                ///< the /24 registered to the customer
};

/// Queryable registry.
class WhoisRegistry {
 public:
  WhoisRegistry() = default;
  WhoisRegistry(std::vector<ProviderAssignedRange> pa,
                std::vector<std::pair<net::Asn, net::Asn>> documented_links);

  /// Provider-assigned ranges registered under `member`'s name.
  std::vector<net::Prefix> provider_assigned_of(net::Asn member) const;

  /// ASes related to `member` through documented-but-BGP-invisible links.
  std::vector<net::Asn> documented_partners(net::Asn member) const;

  /// Everything a Sec 4.4 investigation can legitimately whitelist for
  /// `member`: its provider-assigned ranges plus the full allocations of
  /// its documented partners.
  std::vector<net::Prefix> recoverable_ranges(const topo::Topology& topo,
                                              net::Asn member) const;

  const std::vector<ProviderAssignedRange>& provider_assigned() const {
    return pa_;
  }

  /// All documented-but-invisible links (as stored).
  const std::vector<std::pair<net::Asn, net::Asn>>& documented_links() const {
    return links_;
  }
  std::size_t documented_link_count() const { return links_.size(); }

 private:
  std::vector<ProviderAssignedRange> pa_;
  std::vector<std::pair<net::Asn, net::Asn>> links_;
  std::unordered_map<net::Asn, std::vector<std::size_t>> pa_index_;
  std::unordered_map<net::Asn, std::vector<net::Asn>> partner_index_;
};

/// Builds the registry from topology ground truth. Deterministic in
/// (topology, params, seed).
WhoisRegistry build_whois(const topo::Topology& topo, const WhoisParams& params,
                          std::uint64_t seed);

}  // namespace spoofscope::data
