file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_classify.dir/classify/classifier.cpp.o"
  "CMakeFiles/spoofscope_classify.dir/classify/classifier.cpp.o.d"
  "CMakeFiles/spoofscope_classify.dir/classify/fp_hunter.cpp.o"
  "CMakeFiles/spoofscope_classify.dir/classify/fp_hunter.cpp.o.d"
  "CMakeFiles/spoofscope_classify.dir/classify/pipeline.cpp.o"
  "CMakeFiles/spoofscope_classify.dir/classify/pipeline.cpp.o.d"
  "CMakeFiles/spoofscope_classify.dir/classify/router_tagger.cpp.o"
  "CMakeFiles/spoofscope_classify.dir/classify/router_tagger.cpp.o.d"
  "CMakeFiles/spoofscope_classify.dir/classify/streaming.cpp.o"
  "CMakeFiles/spoofscope_classify.dir/classify/streaming.cpp.o.d"
  "CMakeFiles/spoofscope_classify.dir/classify/urpf.cpp.o"
  "CMakeFiles/spoofscope_classify.dir/classify/urpf.cpp.o.d"
  "libspoofscope_classify.a"
  "libspoofscope_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
