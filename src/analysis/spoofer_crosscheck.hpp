// Sec 4.5: cross-check of the passive detections against the (simulated)
// CAIDA Spoofer active measurements.
#pragma once

#include <span>
#include <string>

#include "analysis/member_stats.hpp"
#include "data/spoofer.hpp"

namespace spoofscope::analysis {

/// The contingency numbers the paper reports.
struct SpooferCrossCheck {
  std::size_t overlapping_ases = 0;  ///< members with Spoofer data
  /// Fraction of overlapping ASes where we passively detected spoofed
  /// traffic (Invalid or Unrouted) — paper: 74%.
  double passive_detection_rate = 0;
  /// Fraction of overlapping ASes Spoofer found spoofable — paper: 30%.
  double spoofer_positive_rate = 0;
  /// Of our positive detections, the fraction Spoofer agrees with — 28%.
  double spoofer_agrees_with_passive = 0;
  /// Of Spoofer's positives, the fraction we also detect — 69%.
  double passive_detects_spoofer_positives = 0;
};

/// Joins per-member classification results with Spoofer records. An AS
/// counts as passively detected if it contributed Invalid or Unrouted
/// traffic.
SpooferCrossCheck cross_check_spoofer(
    std::span<const MemberClassCounts> counts,
    std::span<const data::SpooferRecord> spoofer);

std::string format_cross_check(const SpooferCrossCheck& c);

}  // namespace spoofscope::analysis
