// Shared error handling for every ingest path (binary traces, MRT-lite
// feeds, RPSL databases). Real routing and traffic feeds are messy —
// partial, reordered, corrupted — so each reader accepts a policy:
//
//   kStrict  fail loudly on the first malformed record (the historical
//            behaviour; right for curated artifacts and CI),
//   kSkip    quarantine malformed records, account for them in an
//            IngestStats, and keep going (right for live feeds).
//
// Skip mode is deterministic: which records survive is a pure function
// of the input bytes, never of timing or iteration order, so a corrupted
// artifact ingested twice yields bit-identical surviving records.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace spoofscope::util {

/// What an ingest routine does when it meets a malformed record.
enum class ErrorPolicy {
  kStrict,  ///< throw std::runtime_error on the first bad record
  kSkip,    ///< drop the bad record, count it, continue
};

/// Why a record was rejected. Buckets are format-agnostic so one report
/// format serves text and binary readers alike.
enum class ErrorKind : std::uint8_t {
  kTruncated = 0,      ///< stream ended inside a header or record
  kBadMagic = 1,       ///< container magic mismatch
  kBadVersion = 2,     ///< unsupported container version
  kChecksum = 3,       ///< header/record checksum mismatch (bit damage)
  kParse = 4,          ///< text line/object failed to parse
  kCountMismatch = 5,  ///< records present != header-declared count
};

inline constexpr std::size_t kNumErrorKinds = 6;

/// Short stable name ("truncated", "checksum", ...).
const char* error_kind_name(ErrorKind kind);

/// Outcome accounting for one ingest pass. In strict mode the first
/// error throws, so a populated stats object implies skip mode (or a
/// clean run).
struct IngestStats {
  std::uint64_t records_ok = 0;       ///< records parsed and delivered
  std::uint64_t records_skipped = 0;  ///< records quarantined
  std::uint64_t bytes_dropped = 0;    ///< input bytes not covered by an ok record
  std::array<std::uint64_t, kNumErrorKinds> errors{};  ///< events per kind

  /// One delivered record.
  void ok() { ++records_ok; }

  /// One quarantined record of `bytes` input bytes.
  void skip(ErrorKind kind, std::uint64_t bytes) {
    ++records_skipped;
    ++errors[static_cast<std::size_t>(kind)];
    bytes_dropped += bytes;
  }

  /// An error event that is not itself a lost record (e.g. a declared
  /// count that no longer matches after records were dropped).
  void note(ErrorKind kind, std::uint64_t bytes = 0) {
    ++errors[static_cast<std::size_t>(kind)];
    bytes_dropped += bytes;
  }

  /// True if nothing was skipped or flagged.
  bool clean() const;

  /// Folds another pass (e.g. a second input file) into this one.
  void merge(const IngestStats& other);

  /// One-line human-readable summary, e.g.
  /// "1204 records ok, 3 skipped (2 checksum, 1 truncated), 121 bytes dropped".
  std::string summary() const;

  friend bool operator==(const IngestStats&, const IngestStats&) = default;
};

/// Machine-readable form for monitoring pipelines, e.g.
/// {"records_ok":1204,"records_skipped":3,"bytes_dropped":121,
///  "errors":{"truncated":1,...,"count-mismatch":0}}.
std::string to_json(const IngestStats& stats);

}  // namespace spoofscope::util
