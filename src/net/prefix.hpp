// IPv4 prefix (CIDR block) value type, always kept in canonical form
// (host bits zero). Ordering is (address, length), which groups covering
// prefixes before their more-specifics — convenient for building tries and
// disjoint interval sets.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"

namespace spoofscope::net {

/// A canonical CIDR prefix. Invariant: length <= 32 and all bits below the
/// mask are zero in the network address.
class Prefix {
 public:
  /// Default-constructed prefix is 0.0.0.0/0 (the whole space).
  constexpr Prefix() = default;

  /// Builds a prefix from an address and a length; host bits are masked
  /// off so the result is always canonical.
  constexpr Prefix(Ipv4Addr addr, std::uint8_t length)
      : addr_(addr.value() & mask_for(length)), len_(length > 32 ? 32 : length) {}

  /// Parses "a.b.c.d/len". A bare address parses as a /32.
  /// Rejects length > 32 and non-canonical host bits are masked silently.
  static std::optional<Prefix> parse(std::string_view s);

  constexpr Ipv4Addr address() const { return Ipv4Addr(addr_); }
  constexpr std::uint8_t length() const { return len_; }

  /// First address covered (== address()).
  constexpr std::uint32_t first() const { return addr_; }

  /// Last address covered (broadcast for the block).
  constexpr std::uint32_t last() const { return addr_ | ~mask_for(len_); }

  /// Number of addresses covered; 2^32 for /0, so returned as uint64.
  constexpr std::uint64_t num_addresses() const {
    return std::uint64_t(1) << (32 - len_);
  }

  /// Equivalent number of /24 blocks (fractional for prefixes longer
  /// than /24), the paper's standard accounting unit.
  constexpr double slash24_equivalents() const {
    return static_cast<double>(num_addresses()) / 256.0;
  }

  /// True if `a` falls inside this prefix.
  constexpr bool contains(Ipv4Addr a) const {
    return (a.value() & mask_for(len_)) == addr_;
  }

  /// True if `other` is fully covered by this prefix (including equal).
  constexpr bool contains(const Prefix& other) const {
    return len_ <= other.len_ && contains(Ipv4Addr(other.addr_));
  }

  /// True if the two prefixes share any address.
  constexpr bool overlaps(const Prefix& other) const {
    return contains(other) || other.contains(*this);
  }

  /// The immediate parent block (one bit shorter). Undefined for /0;
  /// asserts in debug builds.
  Prefix parent() const;

  /// The two child blocks (one bit longer). Requires length() < 32.
  Prefix child(int bit) const;

  /// The i-th bit of the network address, 0 = most significant.
  constexpr int bit(int i) const { return (addr_ >> (31 - i)) & 1; }

  /// "a.b.c.d/len".
  std::string str() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

  /// Netmask for a given prefix length (0 for /0 handled correctly).
  static constexpr std::uint32_t mask_for(std::uint8_t length) {
    return length == 0 ? 0u
                       : ~std::uint32_t(0) << (32 - (length > 32 ? 32 : length));
  }

 private:
  std::uint32_t addr_ = 0;
  std::uint8_t len_ = 0;
};

/// Convenience literal-style constructor for tests:
/// pfx("10.0.0.0/8"). Throws std::invalid_argument on parse failure.
Prefix pfx(std::string_view s);

}  // namespace spoofscope::net
