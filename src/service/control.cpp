#include "service/control.hpp"

namespace spoofscope::service {

namespace {

struct VerbSpec {
  std::string_view name;
  Verb verb;
  bool takes_arg;
};

constexpr VerbSpec kVerbs[] = {
    {"submit", Verb::kSubmit, true},
    {"health", Verb::kHealth, false},
    {"stats-json", Verb::kStatsJson, false},
    {"alerts", Verb::kAlerts, false},
    {"checkpoint", Verb::kCheckpoint, false},
    {"reload-updates", Verb::kReloadUpdates, true},
    {"drain", Verb::kDrain, false},
    {"shutdown", Verb::kShutdown, false},
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::optional<Request> parse_request(std::string_view line, std::string& error) {
  line = trim(line);
  if (line.empty()) {
    error = "empty request";
    return std::nullopt;
  }
  const std::size_t space = line.find(' ');
  const std::string_view name = line.substr(0, space);
  const std::string_view rest =
      space == std::string_view::npos ? std::string_view{}
                                      : trim(line.substr(space + 1));
  for (const VerbSpec& spec : kVerbs) {
    if (name != spec.name) continue;
    if (spec.takes_arg && rest.empty()) {
      error = std::string(spec.name) + " requires a path argument";
      return std::nullopt;
    }
    if (!spec.takes_arg && !rest.empty()) {
      error = std::string(spec.name) + " takes no argument";
      return std::nullopt;
    }
    Request req;
    req.verb = spec.verb;
    req.arg = std::string(rest);
    return req;
  }
  error = "unknown command: " + std::string(name);
  return std::nullopt;
}

std::string_view verb_name(Verb verb) {
  for (const VerbSpec& spec : kVerbs) {
    if (spec.verb == verb) return spec.name;
  }
  return "?";
}

}  // namespace spoofscope::service
