// Operational use of the library: a BGP-informed ingress filter, as the
// paper's conclusion suggests ("every network can opt to apply it to
// filter its incoming traffic"). We build the valid space for one peer
// AS, then stream packets through an accept/drop decision and report
// what a deployment would have dropped.
//
//   $ ./live_filter [seed]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "classify/classifier.hpp"
#include "scenario/scenario.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

/// The decision a border router would take for a packet arriving from a
/// given peer, based on the Fig 3 pipeline: drop everything that is not
/// `Valid` (operators preferring fewer false positives can choose to
/// drop only Bogon + Unrouted).
struct IngressFilter {
  const spoofscope::classify::Classifier* classifier;
  std::size_t space_idx;
  bool drop_invalid = true;

  bool accepts(spoofscope::net::Ipv4Addr src, spoofscope::net::Asn peer) const {
    using spoofscope::classify::TrafficClass;
    const TrafficClass c = classifier->classify(src, peer, space_idx);
    if (c == TrafficClass::kValid) return true;
    if (c == TrafficClass::kInvalid) return !drop_invalid;
    return false;  // Bogon / Unrouted always dropped
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace spoofscope;

  scenario::ScenarioParams params = scenario::ScenarioParams::small();
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);
  const auto world = scenario::build_scenario(params);

  // Deploy the filter at the IXP port of the busiest member.
  const auto& members = world->ixp().members();
  net::Asn peer = members.front().asn;
  double best = 0;
  for (const auto& m : members) {
    if (m.traffic_weight > best) {
      best = m.traffic_weight;
      peer = m.asn;
    }
  }

  const IngressFilter strict{&world->classifier(),
                             scenario::Scenario::space_index(
                                 inference::Method::kFullCone),
                             /*drop_invalid=*/true};
  const IngressFilter lenient{&world->classifier(),
                              scenario::Scenario::space_index(
                                  inference::Method::kFullCone),
                              /*drop_invalid=*/false};

  std::size_t total = 0, strict_drops = 0, lenient_drops = 0;
  for (const auto& f : world->trace().flows) {
    if (f.member_in != peer) continue;
    ++total;
    strict_drops += !strict.accepts(f.src, peer);
    lenient_drops += !lenient.accepts(f.src, peer);
  }

  std::cout << "Ingress filtering for traffic from AS" << peer << " ("
            << total << " sampled flows)\n"
            << "  strict (drop Bogon+Unrouted+Invalid): " << strict_drops
            << " drops ("
            << util::percent(total ? double(strict_drops) / total : 0) << ")\n"
            << "  lenient (drop Bogon+Unrouted only):   " << lenient_drops
            << " drops ("
            << util::percent(total ? double(lenient_drops) / total : 0)
            << ")\n";

  // Latency sanity check: a software path should do millions of
  // classifications per second.
  util::Rng rng(1);
  std::size_t sink = 0;
  const std::size_t n = 2'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    sink += strict.accepts(net::Ipv4Addr(rng.next_u32()), peer);
  }
  if (sink == n + 1) std::cout << "";  // keep the loop observable
  const auto dt = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::cout << "  classification throughput: "
            << util::human_count(static_cast<double>(n) / dt)
            << " lookups/s\n";
  return 0;
}
