// The paper's core contribution: sequential classification of each flow's
// source address (Fig 3) into Bogon -> Unrouted -> Invalid -> valid,
// mutually exclusive, evaluated under several valid-space inference
// methods at once (the bogon and routed checks are method-independent).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/routing_table.hpp"
#include "inference/valid_space.hpp"
#include "net/flow.hpp"
#include "trie/prefix_set.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::net {
class FlowBatch;
}

namespace spoofscope::classify {

using net::Asn;

/// The four traffic classes of Sec 4.2.
enum class TrafficClass : std::uint8_t {
  kBogon = 0,     ///< reserved source ranges
  kUnrouted = 1,  ///< routable but not announced during the window
  kInvalid = 2,   ///< routed, but not a valid source for the member
  kValid = 3,     ///< everything else (not analyzed further)
};

inline constexpr int kNumClasses = 4;

/// Display name matching the paper ("Bogon", "Unrouted", ...).
std::string class_name(TrafficClass c);

/// The two interchangeable classification engines: the pointer-chasing
/// trie/interval engine and the compiled flat plane (FlatClassifier).
/// Both produce bit-identical labels; the flat engine trades a one-off
/// compile step and ~64 MiB of tables for O(1) per-flow lookups.
enum class Engine : std::uint8_t {
  kTrie = 0,  ///< bogon trie + routed trie + per-member interval sets
  kFlat = 1,  ///< DIR-24-8 base-class table + prefix-id bitsets
};

/// "trie" / "flat".
std::string engine_name(Engine e);

/// Inverse of engine_name; nullopt on anything else.
std::optional<Engine> parse_engine(std::string_view name);

/// Compact per-flow label: 2 bits per configured valid space.
using Label = std::uint16_t;

/// Classifies sources against the bogon list, the routed table and a set
/// of per-member valid spaces (one per inference method under study).
///
/// The valid spaces are held by shared_ptr<const>: constructing a
/// Classifier from already-shared spaces is O(1) per space (no deep copy
/// of the per-member interval maps), and a compiled FlatClassifier keeps
/// the same shared spaces alive for its fallback lane.
class Classifier {
 public:
  /// At most 8 valid spaces fit a Label. Throws std::invalid_argument on
  /// fewer than 1 or more than 8. Each space is moved into shared
  /// ownership (no copy).
  Classifier(const bgp::RoutingTable& table,
             std::vector<inference::ValidSpace> spaces);

  /// Shares already-wrapped spaces: O(1) per space.
  Classifier(const bgp::RoutingTable& table,
             std::vector<std::shared_ptr<const inference::ValidSpace>> spaces);

  /// Pre-resolved per-member handle: one hash lookup per configured
  /// space, done once instead of per flow. Invalidated by
  /// mutable_space() on the corresponding space.
  class MemberView {
   public:
    Asn member() const { return member_; }

   private:
    friend class Classifier;
    Asn member_ = net::kNoAsn;
    std::array<const trie::IntervalSet*, 8> spaces_{};  // null = unknown member
  };

  /// Resolves the per-space hash lookups for `member` once.
  MemberView member_view(Asn member) const;

  /// Fig 3 for a single method (index into the configured spaces).
  TrafficClass classify(net::Ipv4Addr src, Asn member, std::size_t space_idx) const;

  /// All methods at once, packed. Use unpack() to extract per-method
  /// classes.
  Label classify_all(net::Ipv4Addr src, Asn member) const;

  /// classify_all with the member hash lookups hoisted out (hot loops).
  Label classify_all(net::Ipv4Addr src, const MemberView& view) const;

  /// Batch classification over a FlowBatch's SoA lanes, memoizing member
  /// views per distinct ASN. out.size() must equal batch.size(); labels
  /// are element-wise identical to calling classify_all per record.
  void classify_batch(const net::FlowBatch& batch, std::span<Label> out) const;

  /// Parallel batch variant (contiguous deterministic chunks).
  void classify_batch(const net::FlowBatch& batch, std::span<Label> out,
                      util::ThreadPool& pool) const;

  std::vector<Label> classify_batch(const net::FlowBatch& batch) const;

  /// Extracts the class for one method from a packed label.
  static TrafficClass unpack(Label label, std::size_t space_idx) {
    return static_cast<TrafficClass>((label >> (2 * space_idx)) & 0x3);
  }

  std::size_t space_count() const { return spaces_.size(); }
  const inference::ValidSpace& space(std::size_t i) const { return *spaces_[i]; }

  /// The shared handle for space `i` — what FlatClassifier::compile
  /// retains so its fallback lane never dangles.
  const std::shared_ptr<const inference::ValidSpace>& shared_space(
      std::size_t i) const {
    return spaces_[i];
  }

  /// Mutable access for the Sec 4.4 false-positive workflow (extending a
  /// member's valid space and re-classifying). Copy-on-write: if the
  /// space is shared with another Classifier or a FlatClassifier, it is
  /// cloned first, so other holders keep the unmodified version.
  /// Invalidates MemberViews.
  inference::ValidSpace& mutable_space(std::size_t i);

  const bgp::RoutingTable& table() const { return *table_; }

 private:
  trie::PrefixSet bogons_;
  const bgp::RoutingTable* table_;
  std::vector<std::shared_ptr<const inference::ValidSpace>> spaces_;
};

/// Runs the classifier over a whole trace; labels[i] belongs to flows[i].
std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows);

/// Parallel variant: contiguous chunks of the flow span are classified
/// across `pool` into a pre-sized label vector, so labels[i] always
/// belongs to flows[i] and the result is element-wise identical to the
/// sequential version regardless of thread count. Safe because the
/// Classifier is read-only after construction (no atomics needed).
std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows,
                                  util::ThreadPool& pool);

}  // namespace spoofscope::classify
