# Empty compiler generated dependencies file for bgp_dump_schedule_test.
# This may be replaced when dependencies are built.
