#include "trie/interval_set.hpp"

#include <gtest/gtest.h>

#include "net/prefix.hpp"

namespace spoofscope::trie {
namespace {

using net::Ipv4Addr;
using net::pfx;

TEST(IntervalSet, EmptySet) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.address_count(), 0u);
  EXPECT_FALSE(s.contains(Ipv4Addr(0)));
}

TEST(IntervalSet, SingleRange) {
  IntervalSet s;
  s.add(10, 20);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.address_count(), 11u);
  EXPECT_TRUE(s.contains(Ipv4Addr(10)));
  EXPECT_TRUE(s.contains(Ipv4Addr(20)));
  EXPECT_FALSE(s.contains(Ipv4Addr(9)));
  EXPECT_FALSE(s.contains(Ipv4Addr(21)));
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.add(10, 20);
  s.add(15, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 30}));
}

TEST(IntervalSet, MergesAdjacent) {
  IntervalSet s;
  s.add(10, 20);
  s.add(21, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.address_count(), 21u);
}

TEST(IntervalSet, KeepsGapsSeparate) {
  IntervalSet s;
  s.add(10, 20);
  s.add(22, 30);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.contains(Ipv4Addr(21)));
}

TEST(IntervalSet, AddSpanningMultipleExisting) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  s.add(50, 60);
  s.add(15, 55);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 60}));
}

TEST(IntervalSet, AddBeforeAll) {
  IntervalSet s;
  s.add(100, 200);
  s.add(1, 2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{1, 2}));
}

TEST(IntervalSet, FullSpaceCount) {
  IntervalSet s;
  s.add(0, ~0u);
  EXPECT_EQ(s.address_count(), std::uint64_t(1) << 32);
  EXPECT_DOUBLE_EQ(s.slash24_equivalents(), 16777216.0);
}

TEST(IntervalSet, BoundaryAtMaxAddress) {
  IntervalSet s;
  s.add(~0u - 1, ~0u);
  s.add(0, 0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(Ipv4Addr(~0u)));
  EXPECT_TRUE(s.contains(Ipv4Addr(0)));
}

TEST(IntervalSet, FromIntervalsNormalizes) {
  const auto s = IntervalSet::from_intervals({{30, 40}, {10, 20}, {18, 32}});
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 40}));
}

TEST(IntervalSet, FromPrefixes) {
  const std::vector<net::Prefix> ps{pfx("10.0.0.0/24"), pfx("10.0.1.0/24")};
  const auto s = IntervalSet::from_prefixes(ps);
  EXPECT_EQ(s.size(), 1u);  // adjacent /24s merge
  EXPECT_EQ(s.address_count(), 512u);
}

TEST(IntervalSet, ContainsRange) {
  IntervalSet s;
  s.add(10, 100);
  EXPECT_TRUE(s.contains_range(10, 100));
  EXPECT_TRUE(s.contains_range(50, 60));
  EXPECT_FALSE(s.contains_range(5, 15));
  EXPECT_FALSE(s.contains_range(90, 110));
  EXPECT_FALSE(s.contains_range(200, 300));
}

TEST(IntervalSet, Unite) {
  IntervalSet a, b;
  a.add(10, 20);
  b.add(15, 30);
  b.add(50, 60);
  const auto u = a.unite(b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.address_count(), 21u + 11u);
}

TEST(IntervalSet, Intersect) {
  IntervalSet a, b;
  a.add(10, 30);
  a.add(50, 70);
  b.add(20, 60);
  const auto i = a.intersect(b);
  ASSERT_EQ(i.size(), 2u);
  EXPECT_EQ(i.intervals()[0], (Interval{20, 30}));
  EXPECT_EQ(i.intervals()[1], (Interval{50, 60}));
}

TEST(IntervalSet, IntersectDisjointIsEmpty) {
  IntervalSet a, b;
  a.add(10, 20);
  b.add(30, 40);
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(IntervalSet, Subtract) {
  IntervalSet a, b;
  a.add(10, 30);
  b.add(15, 20);
  const auto d = a.subtract(b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.intervals()[0], (Interval{10, 14}));
  EXPECT_EQ(d.intervals()[1], (Interval{21, 30}));
}

TEST(IntervalSet, SubtractEverything) {
  IntervalSet a, b;
  a.add(10, 30);
  b.add(0, 100);
  EXPECT_TRUE(a.subtract(b).empty());
}

TEST(IntervalSet, SubtractNothing) {
  IntervalSet a, b;
  a.add(10, 30);
  b.add(50, 60);
  EXPECT_EQ(a.subtract(b), a);
}

TEST(IntervalSet, SubtractAcrossMultiple) {
  IntervalSet a, b;
  a.add(0, 9);
  a.add(20, 29);
  a.add(40, 49);
  b.add(5, 44);
  const auto d = a.subtract(b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.intervals()[0], (Interval{0, 4}));
  EXPECT_EQ(d.intervals()[1], (Interval{45, 49}));
}

TEST(IntervalSet, ToPrefixesExactCover) {
  IntervalSet s;
  s.add(pfx("10.0.0.0/24"));
  const auto ps = s.to_prefixes();
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0], pfx("10.0.0.0/24"));
}

TEST(IntervalSet, ToPrefixesDecomposesUnaligned) {
  IntervalSet s;
  s.add(1, 6);  // {1/32, 2/31, 4/31, 6/32}
  const auto ps = s.to_prefixes();
  std::uint64_t total = 0;
  for (const auto& p : ps) {
    total += p.num_addresses();
    for (std::uint64_t a = p.first(); a <= p.last(); ++a) {
      EXPECT_TRUE(s.contains(Ipv4Addr(static_cast<std::uint32_t>(a))));
    }
  }
  EXPECT_EQ(total, s.address_count());
}

TEST(IntervalSet, ToPrefixesFullSpaceIsDefaultRoute) {
  IntervalSet s;
  s.add(0, ~0u);
  const auto ps = s.to_prefixes();
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0], pfx("0.0.0.0/0"));
}

}  // namespace
}  // namespace spoofscope::trie
