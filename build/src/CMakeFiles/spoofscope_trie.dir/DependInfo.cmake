
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trie/interval_set.cpp" "src/CMakeFiles/spoofscope_trie.dir/trie/interval_set.cpp.o" "gcc" "src/CMakeFiles/spoofscope_trie.dir/trie/interval_set.cpp.o.d"
  "/root/repo/src/trie/prefix_set.cpp" "src/CMakeFiles/spoofscope_trie.dir/trie/prefix_set.cpp.o" "gcc" "src/CMakeFiles/spoofscope_trie.dir/trie/prefix_set.cpp.o.d"
  "/root/repo/src/trie/prefix_trie.cpp" "src/CMakeFiles/spoofscope_trie.dir/trie/prefix_trie.cpp.o" "gcc" "src/CMakeFiles/spoofscope_trie.dir/trie/prefix_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
