// Shard-routing determinism differential (ISSUE satellite): the sharded
// resident server must produce BIT-IDENTICAL verdicts to the one-shot
// StreamingDetector over the same trace — across shard counts {1, 2, 7},
// seeds, both engines (trie and flat), both SIMD kernel choices, and
// segmented vs whole-trace submission.
//
// Why this holds (the decomposition argument DESIGN.md §16 spells out):
// window accounting is per-member, routing partitions members across
// shards, and with the reorder buffer disabled (skew 0, the default) on
// an in-order trace no detector-global coupling is active — so the
// shard-local computations compose exactly. With skew > 0 a single
// shard is still literally the one-shot computation, and on an in-order
// trace multi-shard stays alert-identical with only the reorder-depth
// high-water mark (a global-buffer property) diverging; both regimes
// are pinned here.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/routing_table.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/streaming.hpp"
#include "net/flow_batch.hpp"
#include "net/prefix.hpp"
#include "net/trace.hpp"
#include "service/merge.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"

namespace spoofscope::service {
namespace {

namespace fs = std::filesystem;
using classify::Classifier;
using classify::DetectorHealth;
using classify::FlatClassifier;
using classify::SimdKernel;
using classify::SpoofingAlert;
using classify::StreamingDetector;
using classify::StreamingParams;
using net::Asn;
using net::Ipv4Addr;
using net::pfx;

constexpr std::size_t kMembers = 10;

/// Ten-member routing view so shard counts {1, 2, 7} all see traffic on
/// every shard: member N announces 10.N.0.0/16; members 1..8 own their
/// announced block as valid space, members 9 and 10 have routed space
/// but no valid space (their own-source traffic classifies Invalid).
struct Fixture {
  Fixture() {
    bgp::RoutingTableBuilder b;
    std::unordered_map<Asn, trie::IntervalSet> spaces;
    for (std::uint32_t m = 1; m <= kMembers; ++m) {
      const net::Prefix p = pfx(("10." + std::to_string(m) + ".0.0/16").c_str());
      b.ingest_route(p, bgp::AsPath{m});
      if (m <= 8) {
        trie::IntervalSet s;
        s.add(p);
        spaces.emplace(m, std::move(s));
      }
    }
    table = b.build();
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

/// Detection knobs scaled to the synthetic stream (the one-shot oracle
/// and the server always get the same instance).
StreamingParams detect_params(std::uint32_t skew, SimdKernel simd) {
  StreamingParams p;
  p.window_seconds = 300;
  p.min_spoofed_packets = 20;
  p.min_share = 0.1;
  p.cooldown_seconds = 120;
  p.reorder_skew_seconds = skew;
  p.simd = simd;
  return p;
}

/// Mixed ten-member stream. jitter == 0 keeps timestamps nondecreasing
/// (the in-order regime where sharding is exact); jitter > 0 wanders
/// them within the given bound for the reorder-buffer cases.
std::vector<net::FlowRecord> make_stream(std::uint64_t seed, std::size_t n,
                                         std::uint32_t jitter) {
  util::Rng rng(seed);
  std::vector<net::FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::FlowRecord f;
    const std::uint8_t member = static_cast<std::uint8_t>(1 + rng.index(kMembers));
    const std::uint8_t other =
        static_cast<std::uint8_t>(1 + (member % kMembers));
    const std::uint8_t host = static_cast<std::uint8_t>(1 + rng.index(250));
    if (rng.chance(0.5)) {
      f.src = Ipv4Addr::from_octets(10, member, 0, host);        // own space
    } else if (rng.chance(0.4)) {
      f.src = Ipv4Addr::from_octets(10, other, 0, host);         // Invalid
    } else if (rng.chance(0.5)) {
      f.src = Ipv4Addr::from_octets(99, 0, 0, host);             // Unrouted
    } else {
      f.src = Ipv4Addr::from_octets(192, 168, 0, host);          // Bogon
    }
    f.dst = Ipv4Addr::from_octets(10, other, 0, 1);
    const std::uint32_t base = static_cast<std::uint32_t>(i / 4);
    f.ts = jitter == 0 ? base : base + jitter - rng.uniform_u32(0, jitter);
    f.packets = 1 + rng.uniform_u32(0, 3);
    f.bytes = 40ull * f.packets;
    f.member_in = member;
    f.member_out = other;
    flows.push_back(f);
  }
  return flows;
}

struct RunResult {
  std::vector<SpoofingAlert> alerts;  ///< canonical (ts, member) order
  DetectorHealth health;
  std::uint64_t processed = 0;
};

/// One-shot oracle: exactly what `spoofscope detect` computes.
template <typename MakeDetector>
RunResult oracle(MakeDetector make, std::span<const net::FlowRecord> flows) {
  RunResult r;
  StreamingDetector d = make();
  r.alerts = d.run(flows);
  r.health = d.health();
  r.processed = d.processed();
  sort_alerts(r.alerts);
  return r;
}

class ScratchDir {
 public:
  explicit ScratchDir(const char* name)
      : path_(fs::temp_directory_path() /
              (std::string(name) + "." + std::to_string(::getpid()))) {
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

std::string write_segment(const ScratchDir& dir, const std::string& name,
                          std::span<const net::FlowRecord> flows) {
  net::Trace t;
  t.meta.seed = 1;
  t.flows.assign(flows.begin(), flows.end());
  const std::string path = dir.file(name);
  std::ofstream out(path, std::ios::binary);
  net::write_trace(out, t);
  return path;
}

enum class Engine { kTrie, kFlat };

/// Spins up an in-process server, submits the segment files, drains and
/// collapses the merged view into the oracle's shape.
RunResult run_server(const Fixture& fx, Engine engine, std::size_t shards,
                     const StreamingParams& params,
                     const std::vector<std::string>& segments) {
  ServerConfig cfg;
  cfg.shards = shards;
  cfg.params = params;
  std::optional<Server> server;
  if (engine == Engine::kFlat) {
    server.emplace(
        std::make_shared<FlatClassifier>(FlatClassifier::compile(*fx.classifier)),
        cfg);
  } else {
    server.emplace(*fx.classifier, cfg);
  }
  server->start();
  for (const std::string& path : segments) server->submit(path);
  server->drain();
  const ServiceStats stats = server->stats();
  RunResult r;
  r.alerts = server->merged_alerts();
  r.health = stats.merged;
  r.processed = stats.processed;
  server->stop();
  return r;
}

TEST(ServiceDifferential, ShardedServeIsBitIdenticalToOneShotDetect) {
  Fixture fx;
  ScratchDir dir("spoofscope_serve_diff");
  const FlatClassifier flat = FlatClassifier::compile(*fx.classifier);
  const struct {
    Engine engine;
    SimdKernel simd;
    const char* tag;
  } variants[] = {
      {Engine::kTrie, SimdKernel::kAuto, "trie"},
      {Engine::kFlat, SimdKernel::kAuto, "flat/auto"},
      {Engine::kFlat, SimdKernel::kScalar, "flat/scalar"},
  };
  for (const std::uint64_t seed : {5u, 6u}) {
    const auto flows = make_stream(seed, 4000, 0);
    const std::string trace =
        write_segment(dir, "whole-" + std::to_string(seed) + ".trace", flows);
    for (const auto& v : variants) {
      const auto params = detect_params(0, v.simd);
      const RunResult expect =
          v.engine == Engine::kFlat
              ? oracle([&] { return StreamingDetector(flat, 0, params); }, flows)
              : oracle([&] { return StreamingDetector(*fx.classifier, 0, params); },
                       flows);
      ASSERT_FALSE(expect.alerts.empty())
          << "seed " << seed << " raised no alerts — differential is vacuous";
      for (const std::size_t shards : {1u, 2u, 7u}) {
        const RunResult got = run_server(fx, v.engine, shards, params, {trace});
        EXPECT_EQ(got.alerts, expect.alerts)
            << v.tag << " shards=" << shards << " seed=" << seed;
        EXPECT_EQ(got.health, expect.health)
            << v.tag << " shards=" << shards << " seed=" << seed;
        EXPECT_EQ(got.processed, expect.processed);
      }
    }
  }
}

TEST(ServiceDifferential, SegmentedSubmitEqualsWholeTrace) {
  Fixture fx;
  ScratchDir dir("spoofscope_serve_seg");
  const auto flows = make_stream(5, 4000, 0);
  const auto params = detect_params(0, SimdKernel::kAuto);
  const std::string whole = write_segment(dir, "whole.trace", flows);
  std::vector<std::string> segments;
  const std::size_t cut1 = flows.size() / 3;
  const std::size_t cut2 = 2 * flows.size() / 3;
  segments.push_back(write_segment(
      dir, "seg1.trace", std::span(flows).subspan(0, cut1)));
  segments.push_back(write_segment(
      dir, "seg2.trace", std::span(flows).subspan(cut1, cut2 - cut1)));
  segments.push_back(write_segment(
      dir, "seg3.trace", std::span(flows).subspan(cut2)));
  for (const std::size_t shards : {2u, 7u}) {
    const RunResult one = run_server(fx, Engine::kFlat, shards, params, {whole});
    const RunResult split = run_server(fx, Engine::kFlat, shards, params, segments);
    EXPECT_EQ(split.alerts, one.alerts) << "shards=" << shards;
    EXPECT_EQ(split.health, one.health) << "shards=" << shards;
    EXPECT_EQ(split.processed, one.processed);
  }
}

TEST(ServiceDifferential, SingleShardMatchesOneShotUnderReorderSkew) {
  // One shard is literally the one-shot computation, so equality must
  // hold even with the reorder buffer engaged and late drops occurring.
  Fixture fx;
  ScratchDir dir("spoofscope_serve_skew1");
  const auto flows = make_stream(7, 4000, 40);  // jitter can exceed skew
  const auto params = detect_params(30, SimdKernel::kAuto);
  const FlatClassifier flat = FlatClassifier::compile(*fx.classifier);
  const RunResult expect =
      oracle([&] { return StreamingDetector(flat, 0, params); }, flows);
  ASSERT_FALSE(expect.alerts.empty());
  EXPECT_GT(expect.health.late_drops, 0u) << "stream never exercised the skew";
  const std::string trace = write_segment(dir, "jitter.trace", flows);
  const RunResult got = run_server(fx, Engine::kFlat, 1, params, {trace});
  EXPECT_EQ(got.alerts, expect.alerts);
  EXPECT_EQ(got.health, expect.health);
}

TEST(ServiceDifferential, ShardingUnderSkewOnInOrderTraceKeepsAlerts) {
  // With skew > 0 on an in-order trace nothing is ever late or forced,
  // so per-member release sequences — hence alerts and every health
  // counter except the global reorder-buffer high-water mark — still
  // compose exactly across shards.
  Fixture fx;
  ScratchDir dir("spoofscope_serve_skewN");
  const auto flows = make_stream(8, 4000, 0);
  const auto params = detect_params(30, SimdKernel::kAuto);
  const FlatClassifier flat = FlatClassifier::compile(*fx.classifier);
  RunResult expect =
      oracle([&] { return StreamingDetector(flat, 0, params); }, flows);
  ASSERT_FALSE(expect.alerts.empty());
  const std::string trace = write_segment(dir, "sorted.trace", flows);
  for (const std::size_t shards : {2u, 7u}) {
    RunResult got = run_server(fx, Engine::kFlat, shards, params, {trace});
    EXPECT_EQ(got.alerts, expect.alerts) << "shards=" << shards;
    got.health.max_reorder_depth = 0;
    DetectorHealth want = expect.health;
    want.max_reorder_depth = 0;
    EXPECT_EQ(got.health, want) << "shards=" << shards;
  }
}

TEST(ServiceDifferential, InProcessBatchSubmitEqualsFileSubmit) {
  // submit_batch() + barrier() is the path the throughput bench drives;
  // it must see the same verdicts as the socket's file-based submit.
  Fixture fx;
  ScratchDir dir("spoofscope_serve_batch");
  const auto flows = make_stream(5, 4000, 0);
  const auto params = detect_params(0, SimdKernel::kAuto);
  const std::string trace = write_segment(dir, "whole.trace", flows);
  const RunResult via_file = run_server(fx, Engine::kFlat, 4, params, {trace});

  ServerConfig cfg;
  cfg.shards = 4;
  cfg.params = params;
  Server server(
      std::make_shared<FlatClassifier>(FlatClassifier::compile(*fx.classifier)),
      cfg);
  server.start();
  constexpr std::size_t kChunk = 512;
  for (std::size_t off = 0; off < flows.size(); off += kChunk) {
    net::FlowBatch batch;
    for (std::size_t i = off; i < std::min(off + kChunk, flows.size()); ++i) {
      batch.push_back(flows[i]);
    }
    server.submit_batch(batch);
  }
  server.barrier();
  server.drain();
  EXPECT_EQ(server.merged_alerts(), via_file.alerts);
  EXPECT_EQ(server.stats().merged, via_file.health);
  EXPECT_EQ(server.stats().processed, via_file.processed);
  server.stop();
}

}  // namespace
}  // namespace spoofscope::service
