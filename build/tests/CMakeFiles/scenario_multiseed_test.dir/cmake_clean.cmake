file(REMOVE_RECURSE
  "CMakeFiles/scenario_multiseed_test.dir/scenario_multiseed_test.cpp.o"
  "CMakeFiles/scenario_multiseed_test.dir/scenario_multiseed_test.cpp.o.d"
  "scenario_multiseed_test"
  "scenario_multiseed_test.pdb"
  "scenario_multiseed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_multiseed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
