// NEON batch kernel for the flat plane: the same two-phase tile structure
// as the AVX2 kernel at 4-wide width. AArch64 has no gather, so passes A
// and B stay scalar (prefetched loads feeding the entry/slot scratch) and
// pass C vectorizes the arithmetic tail of the hot path — record-derived
// bit-spread, kind-driven selects, and the 16-bit label narrowing — which
// is where the scalar loop spends its non-memory cycles. Slow-lane rows
// (overflow entries, partial-bit records) are compacted and re-run
// through the exact scalar paths, so labels are bit-identical to the
// scalar oracle at any batch size, including tails shorter than 4.
#include "classify/batch_kernels.hpp"

#if SPOOFSCOPE_KERNEL_NEON

#include <arm_neon.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "classify/flat_classifier.hpp"
#include "net/flow_batch.hpp"

namespace spoofscope::classify {

namespace {

constexpr std::size_t kTile = 4096;
constexpr std::size_t kLoadPrefetch = 16;

struct Scratch {
  std::vector<std::uint32_t> entry;
  std::vector<std::uint32_t> slot;
  std::vector<std::uint32_t> pending;
};

Scratch& scratch() {
  thread_local Scratch s;
  if (s.entry.size() != kTile) {
    s.entry.resize(kTile);
    s.slot.resize(kTile);
    s.pending.reserve(kTile);
  }
  return s;
}

inline void prefetch_ro(const void* p) { __builtin_prefetch(p, 0, 1); }

}  // namespace

void FlatClassifier::kernel_neon(const std::uint32_t* src, const Asn* member,
                                 std::size_t n, Label* out) const {
  Scratch& sc = scratch();
  const std::uint32_t* base = base_view_;
  const std::uint16_t* recs = records_view_;
  const std::uint32_t np = static_cast<std::uint32_t>(num_prefixes_);

  const uint32x4_t v_zero = vdupq_n_u32(0);
  const uint32x4_t v_kind_unrouted = vdupq_n_u32(kKindUnrouted);
  const uint32x4_t v_kind_bogon = vdupq_n_u32(kKindBogon);
  const uint32x4_t v_kind_overflow = vdupq_n_u32(kKindOverflow);
  const uint32x4_t v_all_invalid = vdupq_n_u32(all_invalid_);
  const uint32x4_t v_all_unrouted = vdupq_n_u32(all_unrouted_);
  const uint32x4_t v_all_bogon = vdupq_n_u32(all_bogon_);
  const uint32x4_t v_ff = vdupq_n_u32(0xFF);
  const uint32x4_t v_0f0f = vdupq_n_u32(0x0F0F);
  const uint32x4_t v_3333 = vdupq_n_u32(0x3333);
  const uint32x4_t v_5555 = vdupq_n_u32(0x5555);

  Asn last_member = net::kNoAsn;
  std::uint32_t last_slot = MemberView::kNoSlot;
  bool have_last = false;

  for (std::size_t t = 0; t < n; t += kTile) {
    const std::size_t m = std::min(kTile, n - t);
    const std::uint32_t* s = src + t;
    const Asn* mem = member + t;
    Label* lab = out + t;
    sc.pending.clear();

    // --- pass A: base-table loads with prefetch lookahead ----------------
    for (std::size_t i = 0; i < m; ++i) {
      if (i + kLoadPrefetch < m) {
        prefetch_ro(base + (s[i + kLoadPrefetch] >> 8));
      }
      sc.entry[i] = base[s[i] >> 8];
    }

    // --- pass B: member slots + record prefetch --------------------------
    for (std::size_t i = 0; i < m; ++i) {
      const Asn a = mem[i];
      if (!have_last || a != last_member) {
        last_member = a;
        last_slot = slot_of(a);
        have_last = true;
      }
      sc.slot[i] = last_slot;
      const std::uint32_t e = sc.entry[i];
      if ((e >> kKindShift) == kKindRouted &&
          last_slot != MemberView::kNoSlot) {
        prefetch_ro(recs + std::size_t{last_slot} * np + (e & kPayloadMask));
      }
    }

    // --- pass C: 4-wide label resolve + compaction -----------------------
    const std::size_t vec_end = m & ~std::size_t{3};
    std::size_t i = 0;
    for (; i < vec_end; i += 4) {
      const uint32x4_t v_entry = vld1q_u32(sc.entry.data() + i);
      const uint32x4_t v_kind = vshrq_n_u32(v_entry, 30);
      alignas(16) std::uint32_t rec_tmp[4];
      alignas(16) std::uint32_t partial_tmp[4];
      for (std::size_t j = 0; j < 4; ++j) {
        const std::uint32_t e = sc.entry[i + j];
        const std::uint32_t sl = sc.slot[i + j];
        const std::uint32_t rec =
            ((e >> kKindShift) == kKindRouted && sl != MemberView::kNoSlot)
                ? recs[std::size_t{sl} * np + (e & kPayloadMask)]
                : 0u;
        rec_tmp[j] = rec;
        partial_tmp[j] = rec >> 8;
      }
      const uint32x4_t v_rec = vld1q_u32(rec_tmp);
      uint32x4_t v_valid = vandq_u32(v_rec, v_ff);
      v_valid = vandq_u32(vorrq_u32(v_valid, vshlq_n_u32(v_valid, 4)), v_0f0f);
      v_valid = vandq_u32(vorrq_u32(v_valid, vshlq_n_u32(v_valid, 2)), v_3333);
      v_valid = vandq_u32(vorrq_u32(v_valid, vshlq_n_u32(v_valid, 1)), v_5555);
      uint32x4_t v_label = vorrq_u32(v_all_invalid, v_valid);
      v_label = vbslq_u32(vceqq_u32(v_kind, v_kind_unrouted), v_all_unrouted,
                          v_label);
      v_label = vbslq_u32(vceqq_u32(v_kind, v_kind_bogon), v_all_bogon,
                          v_label);
      vst1_u16(lab + i, vmovn_u32(v_label));
      const uint32x4_t m_slow =
          vorrq_u32(vceqq_u32(v_kind, v_kind_overflow),
                    vmvnq_u32(vceqq_u32(vld1q_u32(partial_tmp), v_zero)));
      alignas(16) std::uint32_t slow_tmp[4];
      vst1q_u32(slow_tmp, m_slow);
      for (std::size_t j = 0; j < 4; ++j) {
        if (slow_tmp[j] != 0) {
          sc.pending.push_back(static_cast<std::uint32_t>(i + j));
        }
      }
    }
    for (; i < m; ++i) {
      lab[i] = classify_all(net::Ipv4Addr(s[i]), view_for(mem[i], sc.slot[i]));
    }

    // --- pass D (phase 2): exact slow lane for the compacted rows --------
    resolve_pending(s, mem, sc.entry.data(), sc.slot.data(), sc.pending.data(),
                    sc.pending.size(), lab);
  }
}

}  // namespace spoofscope::classify

#endif  // SPOOFSCOPE_KERNEL_NEON
