file(REMOVE_RECURSE
  "CMakeFiles/bgp_as_path_test.dir/bgp_as_path_test.cpp.o"
  "CMakeFiles/bgp_as_path_test.dir/bgp_as_path_test.cpp.o.d"
  "bgp_as_path_test"
  "bgp_as_path_test.pdb"
  "bgp_as_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_as_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
