#include "classify/pipeline.hpp"

namespace spoofscope::classify {

AggregateBuilder::AggregateBuilder(std::size_t space_count) {
  agg_.totals.resize(space_count);
  members_.resize(space_count);
}

void AggregateBuilder::add(std::span<const net::FlowRecord> flows,
                           std::span<const Label> labels,
                           const std::unordered_set<Asn>& exclude_members) {
  const std::size_t space_count = agg_.totals.size();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    if (exclude_members.count(f.member_in)) continue;
    agg_.total_packets += f.packets;
    agg_.total_bytes += static_cast<double>(f.bytes);
    agg_.total_flows += 1;
    for (std::size_t s = 0; s < space_count; ++s) {
      const auto c = static_cast<std::size_t>(Classifier::unpack(labels[i], s));
      auto& cell = agg_.totals[s][c];
      cell.flows += 1;
      cell.packets += f.packets;
      cell.bytes += static_cast<double>(f.bytes);
      members_[s][c].insert(f.member_in);
    }
  }
}

void AggregateBuilder::add(const net::FlowBatch& batch,
                           std::span<const Label> labels,
                           const std::unordered_set<Asn>& exclude_members) {
  const std::size_t space_count = agg_.totals.size();
  const auto member_in = batch.member_in();
  const auto packets = batch.packets();
  const auto bytes = batch.bytes();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Asn member = member_in[i];
    if (exclude_members.count(member)) continue;
    agg_.total_packets += packets[i];
    agg_.total_bytes += static_cast<double>(bytes[i]);
    agg_.total_flows += 1;
    for (std::size_t s = 0; s < space_count; ++s) {
      const auto c = static_cast<std::size_t>(Classifier::unpack(labels[i], s));
      auto& cell = agg_.totals[s][c];
      cell.flows += 1;
      cell.packets += packets[i];
      cell.bytes += static_cast<double>(bytes[i]);
      members_[s][c].insert(member);
    }
  }
}

void AggregateBuilder::merge(const AggregateBuilder& other) {
  agg_.total_packets += other.agg_.total_packets;
  agg_.total_bytes += other.agg_.total_bytes;
  agg_.total_flows += other.agg_.total_flows;
  for (std::size_t s = 0; s < agg_.totals.size(); ++s) {
    for (int c = 0; c < kNumClasses; ++c) {
      agg_.totals[s][c].flows += other.agg_.totals[s][c].flows;
      agg_.totals[s][c].packets += other.agg_.totals[s][c].packets;
      agg_.totals[s][c].bytes += other.agg_.totals[s][c].bytes;
      members_[s][c].insert(other.members_[s][c].begin(),
                            other.members_[s][c].end());
    }
  }
}

Aggregate AggregateBuilder::build() const {
  Aggregate out = agg_;
  for (std::size_t s = 0; s < out.totals.size(); ++s) {
    for (int c = 0; c < kNumClasses; ++c) {
      out.totals[s][c].members = members_[s][c].size();
    }
  }
  return out;
}

Aggregate aggregate_classes(std::size_t space_count,
                            std::span<const net::FlowRecord> flows,
                            std::span<const Label> labels,
                            const std::unordered_set<Asn>& exclude_members) {
  AggregateBuilder builder(space_count);
  builder.add(flows, labels, exclude_members);
  return builder.build();
}

Aggregate aggregate_classes(std::size_t space_count,
                            std::span<const net::FlowRecord> flows,
                            std::span<const Label> labels,
                            const std::unordered_set<Asn>& exclude_members,
                            util::ThreadPool& pool) {
  const auto chunks =
      util::ThreadPool::partition(0, flows.size(), pool.thread_count());
  if (chunks.size() <= 1) {
    return aggregate_classes(space_count, flows, labels, exclude_members);
  }

  std::vector<AggregateBuilder> partials(chunks.size(),
                                         AggregateBuilder(space_count));
  // partition() caps the chunk count at pool.thread_count(), so this
  // outer parallel_for runs exactly one partial per execution lane.
  pool.parallel_for(0, chunks.size(), [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      partials[c].add(flows.subspan(chunks[c].begin,
                                    chunks[c].end - chunks[c].begin),
                      labels.subspan(chunks[c].begin,
                                     chunks[c].end - chunks[c].begin),
                      exclude_members);
    }
  });

  // Deterministic reduction: fold partials in chunk index order.
  AggregateBuilder merged = std::move(partials[0]);
  for (std::size_t c = 1; c < partials.size(); ++c) merged.merge(partials[c]);
  return merged.build();
}

}  // namespace spoofscope::classify
