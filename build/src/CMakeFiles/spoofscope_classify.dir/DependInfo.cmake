
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/classifier.cpp" "src/CMakeFiles/spoofscope_classify.dir/classify/classifier.cpp.o" "gcc" "src/CMakeFiles/spoofscope_classify.dir/classify/classifier.cpp.o.d"
  "/root/repo/src/classify/fp_hunter.cpp" "src/CMakeFiles/spoofscope_classify.dir/classify/fp_hunter.cpp.o" "gcc" "src/CMakeFiles/spoofscope_classify.dir/classify/fp_hunter.cpp.o.d"
  "/root/repo/src/classify/pipeline.cpp" "src/CMakeFiles/spoofscope_classify.dir/classify/pipeline.cpp.o" "gcc" "src/CMakeFiles/spoofscope_classify.dir/classify/pipeline.cpp.o.d"
  "/root/repo/src/classify/router_tagger.cpp" "src/CMakeFiles/spoofscope_classify.dir/classify/router_tagger.cpp.o" "gcc" "src/CMakeFiles/spoofscope_classify.dir/classify/router_tagger.cpp.o.d"
  "/root/repo/src/classify/streaming.cpp" "src/CMakeFiles/spoofscope_classify.dir/classify/streaming.cpp.o" "gcc" "src/CMakeFiles/spoofscope_classify.dir/classify/streaming.cpp.o.d"
  "/root/repo/src/classify/urpf.cpp" "src/CMakeFiles/spoofscope_classify.dir/classify/urpf.cpp.o" "gcc" "src/CMakeFiles/spoofscope_classify.dir/classify/urpf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
