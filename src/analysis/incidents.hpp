// Attack incident extraction (Sec 7 operationalized): cluster the flagged
// flows into discrete events — "victim X received a random-spoof flood
// from T1 to T2", "victim Y was hit via NTP amplification through N
// amplifiers" — the report a security team would want from the fabric.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/member_stats.hpp"

namespace spoofscope::analysis {

/// Attack categories distinguishable from flow evidence alone.
enum class IncidentKind : std::uint8_t {
  /// Many unique spoofed sources hammering one destination (SYN floods).
  kRandomSpoofFlood = 0,
  /// Selectively spoofed victim triggering amplifiers (UDP/123 etc.).
  kAmplification = 1,
  /// Flagged traffic that matches neither signature.
  kOther = 2,
};

std::string incident_kind_name(IncidentKind k);

/// One reconstructed incident.
struct Incident {
  IncidentKind kind = IncidentKind::kOther;
  /// The attacked host: the destination of a flood, or the spoofed
  /// source (the reflection victim) of amplification triggers.
  net::Ipv4Addr victim;
  std::uint32_t start_ts = 0;
  std::uint32_t end_ts = 0;
  std::uint64_t packets = 0;      ///< sampled
  std::uint64_t bytes = 0;        ///< sampled
  std::size_t distinct_sources = 0;       ///< flood: spoofed srcs
  std::size_t distinct_destinations = 0;  ///< amplification: amplifiers
  /// Members through which the attack entered the fabric.
  std::vector<Asn> members;

  std::uint32_t duration() const { return end_ts - start_ts; }
};

/// Extraction thresholds.
struct IncidentParams {
  /// Minimum sampled packets for a cluster to count as an incident.
  std::uint32_t min_packets = 30;
  /// Source-uniqueness ratio above which a destination cluster is a
  /// random-spoof flood (Fig 11a right mode).
  double flood_uniqueness = 0.7;
  /// Source-uniqueness ratio below which a source cluster (of trigger
  /// traffic) is selective spoofing.
  double selective_uniqueness = 0.3;
};

/// Clusters Bogon/Unrouted/Invalid flows (under `space_idx`) into
/// incidents, sorted by packets descending.
std::vector<Incident> extract_incidents(std::span<const net::FlowRecord> flows,
                                        std::span<const Label> labels,
                                        std::size_t space_idx,
                                        const IncidentParams& params = {});

/// Human-readable incident report.
std::string format_incidents(std::span<const Incident> incidents,
                             std::size_t top_n = 10);

}  // namespace spoofscope::analysis
