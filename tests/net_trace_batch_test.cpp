// Differential suite for the batched zero-copy ingest path:
//
//  - TraceReader::next_batch vs TraceReader::next over clean and
//    corrupted streams, both policies, randomized batch sizes;
//  - MappedTraceReader (mmap window) vs TraceReader (refilled istream
//    buffer) — records delivered and IngestStats must be bit-identical
//    because both drive the same format::RecordScanner;
//  - batch-boundary edges: batch size 1, batch larger than the trace,
//    empty trace, empty file;
//  - v1 streams (no record checksums): strict round-trip, and the
//    skip-mode plausibility resync that lets a damaged v1 stream recover
//    its tail instead of swallowing it.
#include "net/trace.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "corruption.hpp"
#include "net/flow_batch.hpp"
#include "net/mapped_trace.hpp"
#include "net/trace_format.hpp"
#include "util/error_policy.hpp"
#include "util/rng.hpp"

namespace spoofscope::net {
namespace {

namespace fs = std::filesystem;

FlowRecord make_flow(util::Rng& rng) {
  FlowRecord f;
  f.ts = rng.uniform_u32(0, kFourWeeks);
  f.src = Ipv4Addr(rng.next_u32());
  f.dst = Ipv4Addr(rng.next_u32());
  f.proto = rng.chance(0.5) ? Proto::kTcp : Proto::kUdp;
  f.sport = static_cast<std::uint16_t>(rng.uniform_u32(0, 65535));
  f.dport = static_cast<std::uint16_t>(rng.uniform_u32(0, 65535));
  f.packets = rng.uniform_u32(1, 1000);
  f.bytes = rng.uniform_u64(40, 1500ull * 1000);
  f.member_in = rng.uniform_u32(1, 65535);
  f.member_out = rng.uniform_u32(1, 65535);
  return f;
}

std::string make_trace_bytes(std::size_t flows, std::uint64_t seed) {
  util::Rng rng(seed);
  Trace t;
  t.meta.sampling_rate = 1000;
  t.meta.window_seconds = kFourWeeks;
  t.meta.seed = seed;
  for (std::size_t i = 0; i < flows; ++i) t.flows.push_back(make_flow(rng));
  std::stringstream ss;
  write_trace(ss, t);
  return ss.str();
}

/// Hand-built v1 stream (write_trace only emits v2): 32-byte header
/// without checksum, then bare 36-byte records. Every record the helper
/// emits satisfies plausible_v1_record by construction (known protocol,
/// non-zero counts, ts within the declared window).
std::string make_v1_bytes(const std::vector<FlowRecord>& flows) {
  std::string out(format::kHeaderSizeV1, '\0');
  auto* h = reinterpret_cast<std::uint8_t*>(out.data());
  format::put_u32(h + 0, format::kMagic);
  format::put_u32(h + 4, format::kVersionV1);
  format::put_u32(h + 8, 1000);        // sampling_rate
  format::put_u32(h + 12, kFourWeeks); // window_seconds
  format::put_u64(h + 16, 42);         // seed
  format::put_u64(h + 24, flows.size());
  for (const auto& f : flows) {
    std::uint8_t rec[format::kRecordSizeV1];
    format::encode_record(f, rec);
    out.append(reinterpret_cast<const char*>(rec), sizeof(rec));
  }
  return out;
}

struct ReadResult {
  std::vector<FlowRecord> records;
  util::IngestStats stats;
  std::string error;  ///< what() of the throw, empty on success
};

/// The four read paths under differential test.
enum class Path { kStreamNext, kStreamBatch, kMappedNext, kMappedBatch };
constexpr Path kPaths[] = {Path::kStreamNext, Path::kStreamBatch,
                           Path::kMappedNext, Path::kMappedBatch};

const char* path_name(Path p) {
  switch (p) {
    case Path::kStreamNext: return "stream/next";
    case Path::kStreamBatch: return "stream/batch";
    case Path::kMappedNext: return "mapped/next";
    case Path::kMappedBatch: return "mapped/batch";
  }
  return "?";
}

/// Reads the whole stream through one path. Batch paths draw each batch
/// size from `rng` in [1, 400] so batch boundaries land everywhere,
/// including mid-resync.
ReadResult read_all(const std::string& bytes, Path path,
                    util::ErrorPolicy policy, util::Rng& rng) {
  ReadResult r;
  const bool batched = path == Path::kStreamBatch || path == Path::kMappedBatch;
  const auto drain = [&](auto& reader) {
    FlowBatch batch;
    if (batched) {
      try {
        while (reader.next_batch(batch, 1 + rng.index(400)) > 0) {
          batch.append_to(r.records);
        }
      } catch (...) {
        // A strict-mode throw mid-batch leaves the records decoded before
        // the damage in the batch; the per-record path had already handed
        // them out, so collect them for a like-for-like comparison.
        batch.append_to(r.records);
        throw;
      }
    } else {
      while (const auto f = reader.next()) r.records.push_back(*f);
    }
  };
  try {
    if (path == Path::kMappedNext || path == Path::kMappedBatch) {
      const MappedTrace trace = MappedTrace::from_buffer(
          std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
      MappedTraceReader reader(trace, policy, &r.stats);
      drain(reader);
    } else {
      std::istringstream in(bytes, std::ios::binary);
      TraceReader reader(in, policy, &r.stats);
      drain(reader);
    }
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

void expect_paths_agree(const std::string& bytes, util::ErrorPolicy policy,
                        std::uint64_t seed, const std::string& what) {
  util::Rng ref_rng(seed);
  const ReadResult ref = read_all(bytes, Path::kStreamNext, policy, ref_rng);
  for (const Path path : kPaths) {
    util::Rng rng(seed);
    const ReadResult got = read_all(bytes, path, policy, rng);
    ASSERT_EQ(got.error, ref.error) << what << " " << path_name(path);
    ASSERT_EQ(got.records.size(), ref.records.size())
        << what << " " << path_name(path);
    for (std::size_t i = 0; i < ref.records.size(); ++i) {
      ASSERT_EQ(got.records[i], ref.records[i])
          << what << " " << path_name(path) << " record " << i;
    }
    // Stats only comparable when the read completed (a strict throw
    // leaves them mid-flight, at an intentionally unspecified point).
    if (ref.error.empty()) {
      EXPECT_EQ(got.stats, ref.stats) << what << " " << path_name(path);
    }
  }
}

// ------------------------------------------------------------- clean v2

TEST(TraceBatch, CleanStreamAllPathsAgree) {
  const std::string bytes = make_trace_bytes(1337, 7);
  for (const auto policy :
       {util::ErrorPolicy::kStrict, util::ErrorPolicy::kSkip}) {
    expect_paths_agree(bytes, policy, 99, "clean");
  }
}

TEST(TraceBatch, BatchContentMatchesPerRecordDecode) {
  const std::string bytes = make_trace_bytes(257, 3);
  std::istringstream a(bytes, std::ios::binary);
  std::istringstream b(bytes, std::ios::binary);
  TraceReader per_record(a);
  TraceReader batched(b);
  FlowBatch batch;
  ASSERT_EQ(batched.next_batch(batch, 257), 257u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto f = per_record.next();
    ASSERT_TRUE(f.has_value());
    // Lane-by-lane against the AoS record: the SoA transposition must
    // not mix up fields.
    EXPECT_EQ(batch.ts()[i], f->ts);
    EXPECT_EQ(batch.src()[i], f->src.value());
    EXPECT_EQ(batch.dst()[i], f->dst.value());
    EXPECT_EQ(batch.proto()[i], static_cast<std::uint8_t>(f->proto));
    EXPECT_EQ(batch.sport()[i], f->sport);
    EXPECT_EQ(batch.dport()[i], f->dport);
    EXPECT_EQ(batch.packets()[i], f->packets);
    EXPECT_EQ(batch.bytes()[i], f->bytes);
    EXPECT_EQ(batch.member_in()[i], f->member_in);
    EXPECT_EQ(batch.member_out()[i], f->member_out);
    EXPECT_EQ(batch.record(i), *f);
  }
  EXPECT_FALSE(per_record.next().has_value());
}

// -------------------------------------------------------- corruption fuzz

TEST(TraceBatch, CorruptedStreamFuzzAllPathsAgree) {
  using Corruptor = std::string (*)(const std::string&, util::Rng&);
  struct NamedCorruptor {
    const char* name;
    Corruptor fn;
  };
  const NamedCorruptor kCorruptors[] = {
      {"truncate",
       [](const std::string& b, util::Rng& rng) {
         return testing::truncate_bytes(b, rng, format::kHeaderSizeV2);
       }},
      {"bit-flip",
       [](const std::string& b, util::Rng& rng) {
         return testing::flip_bits(b, rng, 3, format::kHeaderSizeV2);
       }},
      {"record-drop",
       [](const std::string& b, util::Rng& rng) {
         return testing::drop_fixed_record(b, rng, format::kHeaderSizeV2,
                                           format::kRecordSizeV2);
       }},
      {"splice",
       [](const std::string& b, util::Rng& rng) {
         return testing::splice_garbage(b, rng, format::kHeaderSizeV2, 64);
       }},
  };
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const std::string clean = make_trace_bytes(300, seed);
    for (const auto& c : kCorruptors) {
      util::Rng rng(seed * 1000003);
      const std::string bad = c.fn(clean, rng);
      for (const auto policy :
           {util::ErrorPolicy::kStrict, util::ErrorPolicy::kSkip}) {
        expect_paths_agree(
            bad, policy, seed ^ 0xbadc0de,
            std::string(c.name) + " seed=" + std::to_string(seed));
      }
    }
  }
}

// ------------------------------------------------------------ boundaries

TEST(TraceBatch, BatchSizeOneEqualsPerRecord) {
  const std::string bytes = make_trace_bytes(64, 5);
  std::istringstream a(bytes, std::ios::binary);
  std::istringstream b(bytes, std::ios::binary);
  TraceReader per_record(a);
  TraceReader batched(b);
  FlowBatch batch;
  while (batched.next_batch(batch, 1) == 1) {
    const auto f = per_record.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(batch.record(0), *f);
  }
  EXPECT_FALSE(per_record.next().has_value());
}

TEST(TraceBatch, BatchLargerThanTraceDeliversEverythingOnce) {
  const std::string bytes = make_trace_bytes(50, 5);
  std::istringstream in(bytes, std::ios::binary);
  TraceReader reader(in);
  FlowBatch batch;
  EXPECT_EQ(reader.next_batch(batch, 1u << 20), 50u);
  EXPECT_EQ(batch.size(), 50u);
  EXPECT_EQ(reader.next_batch(batch, 1u << 20), 0u);
  EXPECT_TRUE(batch.empty());  // next_batch clears even at end of stream
}

TEST(TraceBatch, EmptyTraceYieldsEmptyBatch) {
  const std::string bytes = make_trace_bytes(0, 5);
  std::istringstream in(bytes, std::ios::binary);
  TraceReader reader(in);
  FlowBatch batch;
  EXPECT_EQ(reader.next_batch(batch, 8), 0u);

  const MappedTrace trace = MappedTrace::from_buffer(
      std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  MappedTraceReader mapped(trace);
  EXPECT_EQ(mapped.next_batch(batch, 8), 0u);
}

TEST(TraceBatch, EmptyInputSkipModeYieldsNothingStrictThrows) {
  const std::string bytes;
  util::Rng rng(1);
  const ReadResult skip =
      read_all(bytes, Path::kMappedBatch, util::ErrorPolicy::kSkip, rng);
  EXPECT_TRUE(skip.error.empty());
  EXPECT_TRUE(skip.records.empty());
  EXPECT_EQ(skip.stats.errors[static_cast<int>(util::ErrorKind::kTruncated)],
            1u);
  const ReadResult strict =
      read_all(bytes, Path::kMappedBatch, util::ErrorPolicy::kStrict, rng);
  EXPECT_NE(strict.error.find("truncated header"), std::string::npos);
}

TEST(TraceBatch, InterleavedNextAndBatchCoverTheStreamOnce) {
  const std::string bytes = make_trace_bytes(100, 9);
  util::Rng ref_rng(0);
  const auto ref =
      read_all(bytes, Path::kStreamNext, util::ErrorPolicy::kStrict, ref_rng);
  std::istringstream in(bytes, std::ios::binary);
  TraceReader reader(in);
  std::vector<FlowRecord> got;
  FlowBatch batch;
  util::Rng rng(17);
  while (got.size() < 100) {
    if (rng.chance(0.5)) {
      const auto f = reader.next();
      if (!f) break;
      got.push_back(*f);
    } else {
      if (reader.next_batch(batch, 1 + rng.index(16)) == 0) break;
      batch.append_to(got);
    }
  }
  EXPECT_EQ(got, ref.records);
}

// --------------------------------------------------- mmap vs file fallback

TEST(TraceBatch, MappedFileAndFallbackBufferAgree) {
  const std::string bytes = make_trace_bytes(200, 13);
  const fs::path path =
      fs::temp_directory_path() /
      ("spoofscope-batch-" + std::to_string(::getpid()) + ".trace");
  {
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  const MappedTrace from_file(path.string());
  const MappedTrace from_buf = MappedTrace::from_buffer(
      std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  EXPECT_FALSE(from_buf.mapped());
  ASSERT_EQ(from_file.bytes().size(), from_buf.bytes().size());

  MappedTraceReader a(from_file);
  MappedTraceReader b(from_buf);
  FlowBatch ba, bb;
  for (;;) {
    const std::size_t na = a.next_batch(ba, 77);
    const std::size_t nb = b.next_batch(bb, 77);
    ASSERT_EQ(na, nb);
    if (na == 0) break;
    for (std::size_t i = 0; i < na; ++i) {
      ASSERT_EQ(ba.record(i), bb.record(i));
    }
  }
  fs::remove(path);
}

TEST(TraceBatch, DropConsumedPreservesRecordStreamAndStats) {
  // Releasing consumed pages is purely advisory: a mapped reader that
  // drops after every batch must deliver the identical record stream
  // and stats as one that never drops, on both the real mapping and
  // the fallback buffer (where drop_consumed is a no-op).
  const std::string bytes = make_trace_bytes(500, 21);
  const fs::path path =
      fs::temp_directory_path() /
      ("spoofscope-drop-" + std::to_string(::getpid()) + ".trace");
  {
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  util::Rng ref_rng(0);
  const auto ref =
      read_all(bytes, Path::kStreamNext, util::ErrorPolicy::kStrict, ref_rng);
  const MappedTrace from_file(path.string());
  const MappedTrace from_buf = MappedTrace::from_buffer(
      std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  for (const MappedTrace* trace : {&from_file, &from_buf}) {
    util::IngestStats stats;
    MappedTraceReader reader(*trace, util::ErrorPolicy::kSkip, &stats);
    std::vector<FlowRecord> got;
    FlowBatch batch;
    while (reader.next_batch(batch, 64) > 0) {
      batch.append_to(got);
      reader.drop_consumed();
    }
    reader.drop_consumed();  // past end of stream: must be harmless
    EXPECT_EQ(got, ref.records) << (trace->mapped() ? "mapped" : "buffer");
    EXPECT_EQ(stats, ref.stats) << (trace->mapped() ? "mapped" : "buffer");
  }
  fs::remove(path);
}

TEST(TraceBatch, MappedTraceMissingFileThrows) {
  EXPECT_THROW(MappedTrace("/nonexistent-spoofscope-dir/no.trace"),
               std::runtime_error);
}

// -------------------------------------------------------------- v1 format

TEST(TraceBatchV1, CleanV1StreamAllPathsAgree) {
  util::Rng rng(21);
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 400; ++i) flows.push_back(make_flow(rng));
  const std::string bytes = make_v1_bytes(flows);
  for (const auto policy :
       {util::ErrorPolicy::kStrict, util::ErrorPolicy::kSkip}) {
    expect_paths_agree(bytes, policy, 4242, "clean-v1");
  }
  util::Rng read_rng(0);
  const auto r =
      read_all(bytes, Path::kMappedBatch, util::ErrorPolicy::kStrict, read_rng);
  ASSERT_EQ(r.records.size(), flows.size());
  EXPECT_EQ(r.records, flows);
}

TEST(TraceBatchV1, ImplausibleRecordIsSkippedAndTailRecovered) {
  util::Rng rng(22);
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 60; ++i) flows.push_back(make_flow(rng));
  std::string bytes = make_v1_bytes(flows);
  // Damage record 20's reserved byte: the plausibility validator rejects
  // it, the resync slides to record 21, and the tail survives.
  const std::size_t at =
      format::kHeaderSizeV1 + 20 * format::kRecordSizeV1 + 13;
  bytes[at] = static_cast<char>(0xff);

  util::Rng read_rng(5);
  const auto r =
      read_all(bytes, Path::kMappedBatch, util::ErrorPolicy::kSkip, read_rng);
  ASSERT_TRUE(r.error.empty());
  ASSERT_EQ(r.records.size(), flows.size() - 1);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(r.records[i], flows[i]);
  for (std::size_t i = 20; i < r.records.size(); ++i) {
    EXPECT_EQ(r.records[i], flows[i + 1]);
  }
  EXPECT_EQ(r.stats.errors[static_cast<int>(util::ErrorKind::kParse)], 1u);
  EXPECT_EQ(r.stats.records_skipped, 1u);
  // All read paths agree on the damaged stream too.
  expect_paths_agree(bytes, util::ErrorPolicy::kSkip, 888, "v1-implausible");
}

TEST(TraceBatchV1, CorruptedV1FuzzAllPathsAgree) {
  for (const std::uint64_t seed : {5u, 15u, 25u}) {
    util::Rng rng(seed);
    std::vector<FlowRecord> flows;
    for (int i = 0; i < 200; ++i) flows.push_back(make_flow(rng));
    const std::string clean = make_v1_bytes(flows);
    util::Rng corrupt_rng(seed ^ 0x5eed);
    const std::string kinds[] = {
        testing::truncate_bytes(clean, corrupt_rng, format::kHeaderSizeV1),
        testing::splice_garbage(clean, corrupt_rng, format::kHeaderSizeV1, 64),
        testing::drop_fixed_record(clean, corrupt_rng, format::kHeaderSizeV1,
                                   format::kRecordSizeV1),
    };
    for (const auto& bad : kinds) {
      for (const auto policy :
           {util::ErrorPolicy::kStrict, util::ErrorPolicy::kSkip}) {
        expect_paths_agree(bad, policy, seed * 31,
                           "v1-fuzz seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(TraceBatchV1, TruncatedV1TailIsAccountedNotFatalInSkipMode) {
  util::Rng rng(23);
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 30; ++i) flows.push_back(make_flow(rng));
  std::string bytes = make_v1_bytes(flows);
  bytes.resize(bytes.size() - 10);  // cut into the last record

  util::Rng read_rng(0);
  const auto skip =
      read_all(bytes, Path::kStreamBatch, util::ErrorPolicy::kSkip, read_rng);
  ASSERT_TRUE(skip.error.empty());
  EXPECT_EQ(skip.records.size(), flows.size() - 1);
  EXPECT_EQ(skip.stats.errors[static_cast<int>(util::ErrorKind::kTruncated)],
            1u);
  const auto strict =
      read_all(bytes, Path::kStreamBatch, util::ErrorPolicy::kStrict, read_rng);
  EXPECT_NE(strict.error.find("truncated record"), std::string::npos);
}

}  // namespace
}  // namespace spoofscope::net
