// Delta-checkpoint chain driver: the layout and recovery policy for a
// base full checkpoint plus its trailing delta links,
//
//   <base>              full detector checkpoint (PayloadKind::kDetector)
//   <base>.d1 .. .dN    delta links (PayloadKind::kDetectorDelta)
//
// Each link embeds its sequence number and the FNV-1a-64 digest of its
// parent's file image (link k's parent is link k-1; link 1's parent is
// the base), so resume can prove it is replaying the one chain the
// writer produced — a stale link from an earlier chain, a reordered
// link or a foreign file fails the digest check instead of silently
// corrupting state.
//
// Recovery contract (mirrors the detector's ErrorPolicy semantics):
//  - strict: any damaged or out-of-chain link throws SnapshotError —
//    loud refusal, nothing half-applied.
//  - skip: the chain is truncated at the first damaged link. Because
//    apply_delta() decodes everything before committing, the detector
//    settles at the last good cut; the damaged link and everything
//    after it are unlinked so the next append writes a consistent
//    chain. Dropped links are accounted in the resume result and the
//    caller's IngestStats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "classify/streaming.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::state {

/// Canonical delta-chain base path for one shard of an N-shard service:
/// <dir>/shard-<index>-of-<count>.ckpt. The shard count is part of the
/// name on purpose — routing is a pure function of (member, count), so
/// a chain written under a different --shards value describes a
/// different flow partition; restarting with a new count must find no
/// chain and start fresh rather than resume a mispartitioned cut.
std::string shard_checkpoint_base(const std::string& dir, std::size_t index,
                                  std::size_t count);

/// What resume() recovered.
struct DeltaResume {
  bool restored = false;           ///< base checkpoint (plus deltas) loaded
  std::size_t deltas_applied = 0;  ///< links replayed on top of the base
  std::size_t deltas_dropped = 0;  ///< damaged/stale links unlinked (skip)
  classify::DetectorCheckpointExtra extra;  ///< cursor at the recovered cut
};

class DeltaChain {
 public:
  /// `base_path` names the full checkpoint; delta links live beside it
  /// as <base_path>.dN. A chain longer than `max_chain` links rolls
  /// over into a fresh full checkpoint on the next append.
  explicit DeltaChain(std::string base_path, std::size_t max_chain = 16);

  /// Restores `detector` to the newest consistent cut the chain holds
  /// and positions the chain for subsequent appends. Missing base with
  /// no deltas is a clean first run (restored = false). See the
  /// recovery contract above for damage handling.
  DeltaResume resume(classify::StreamingDetector& detector,
                     util::ErrorPolicy policy = util::ErrorPolicy::kStrict,
                     util::IngestStats* stats = nullptr);

  /// Persists the next checkpoint: a delta link while the chain is
  /// short, a full-checkpoint rollover once it exceeds max_chain (or
  /// when no base exists yet). Returns true when it wrote a full
  /// checkpoint.
  bool append(classify::StreamingDetector& detector,
              const classify::DetectorCheckpointExtra& extra);

  /// Forces a full-checkpoint rollover: writes the base, resets the
  /// detector's dirty baseline and unlinks every delta link.
  void save_full(classify::StreamingDetector& detector,
                 const classify::DetectorCheckpointExtra& extra);

  /// Links written (or recovered) since the base.
  std::size_t chain_length() const { return next_seq_ - 1; }

 private:
  std::string delta_path(std::uint64_t seq) const;
  /// Unlinks <base>.dN for N = seq, seq+1, ... until a gap; returns how
  /// many files were removed.
  std::size_t unlink_deltas_from(std::uint64_t seq) const;

  std::string base_path_;
  std::size_t max_chain_;
  bool have_base_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_digest_ = 0;  ///< digest of the newest durable link/base
};

}  // namespace spoofscope::state
