// A set of IPv4 prefixes with coverage queries and normalization.
//
// Used for the bogon table and wherever a plain "is this address covered
// by any of these prefixes" question is asked. Internally a PrefixTrie;
// conversion to IntervalSet gives exact space accounting and minimal
// re-aggregation.
#pragma once

#include <span>
#include <vector>

#include "net/prefix.hpp"
#include "trie/interval_set.hpp"
#include "trie/prefix_trie.hpp"

namespace spoofscope::trie {

/// An insert-only prefix set. Duplicate inserts are idempotent.
class PrefixSet {
 public:
  PrefixSet() = default;

  /// Builds from a list of prefixes.
  explicit PrefixSet(std::span<const net::Prefix> ps) {
    for (const auto& p : ps) insert(p);
  }

  /// Adds `p` to the set. Returns true if it was newly inserted.
  bool insert(const net::Prefix& p);

  /// True if `p` is stored exactly (not merely covered).
  bool contains_exact(const net::Prefix& p) const {
    return trie_.find_exact(p) != nullptr;
  }

  /// True if some stored prefix covers address `a`.
  bool covers(net::Ipv4Addr a) const { return trie_.covers(a); }

  /// Most specific stored prefix covering `a`, if any.
  std::optional<net::Prefix> match_longest(net::Ipv4Addr a) const {
    const auto* m = trie_.match_longest(a);
    if (!m) return std::nullopt;
    return m->first;
  }

  /// Number of stored prefixes (exact entries, including nested ones).
  std::size_t size() const { return trie_.size(); }

  bool empty() const { return trie_.empty(); }

  /// All stored prefixes in insertion order.
  std::vector<net::Prefix> prefixes() const;

  /// Converts to a normalized interval set (overlaps collapsed).
  IntervalSet to_interval_set() const;

  /// Covered address space in /24 equivalents (overlaps counted once).
  double slash24_equivalents() const {
    return to_interval_set().slash24_equivalents();
  }

  /// Minimal CIDR list covering the same address space.
  std::vector<net::Prefix> aggregate() const {
    return to_interval_set().to_prefixes();
  }

 private:
  PrefixTrie<char> trie_;
};

}  // namespace spoofscope::trie
