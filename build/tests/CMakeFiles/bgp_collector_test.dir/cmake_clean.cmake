file(REMOVE_RECURSE
  "CMakeFiles/bgp_collector_test.dir/bgp_collector_test.cpp.o"
  "CMakeFiles/bgp_collector_test.dir/bgp_collector_test.cpp.o.d"
  "bgp_collector_test"
  "bgp_collector_test.pdb"
  "bgp_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
