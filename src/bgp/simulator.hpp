// Gao-Rexford route propagation over the ground-truth topology.
//
// For a given origin AS the simulator computes, at every other AS, the
// best path under the standard policy model:
//   - valley-free export: routes learned from a customer (or originated)
//     are exported to everyone; routes learned from a peer or provider are
//     exported only to customers; sibling links are transparent (routes of
//     any class cross them and keep their class);
//   - route selection: prefer customer-learned > peer-learned >
//     provider-learned, then shortest AS path, then lowest next-hop ASN.
//
// Links flagged !visible_in_bgp are never used for propagation: they carry
// traffic but leave no trace in routing data — the root cause of the
// paper's Sec 4.4 false positives.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/as_path.hpp"
#include "topo/topology.hpp"

namespace spoofscope::bgp {

/// Route class in decreasing preference order.
enum class RouteClass : std::uint8_t {
  kOrigin = 0,    ///< the AS itself originates the prefix
  kCustomer = 1,  ///< learned from a customer (or via siblings thereof)
  kPeer = 2,      ///< learned from a settlement-free peer
  kProvider = 3,  ///< learned from a provider
  kNone = 4,      ///< unreachable
};

/// Best route of one AS towards the propagated origin.
struct Route {
  RouteClass cls = RouteClass::kNone;
  std::uint16_t hops = 0;  ///< AS-path length minus one (origin = 0)
  /// Dense index of the neighbor the route was learned from
  /// (meaningless for kOrigin/kNone).
  std::uint32_t parent = 0;
};

/// The outcome of propagating one origin: per dense AS index, the chosen
/// route and the ability to reconstruct full AS paths.
class PropagationResult {
 public:
  PropagationResult(const topo::Topology* topo, std::uint32_t origin_idx,
                    std::vector<Route> routes)
      : topo_(topo), origin_idx_(origin_idx), routes_(std::move(routes)) {}

  /// Route class at dense index `idx`.
  RouteClass route_class(std::size_t idx) const { return routes_[idx].cls; }

  /// True if the AS at `idx` has any route to the origin.
  bool reachable(std::size_t idx) const {
    return routes_[idx].cls != RouteClass::kNone;
  }

  /// Full AS path from the AS at `idx` to the origin, starting with the
  /// AS at `idx` itself. Empty when unreachable.
  AsPath path_at(std::size_t idx) const;

  /// Number of ASes with a route (including the origin).
  std::size_t reachable_count() const;

  const std::vector<Route>& routes() const { return routes_; }

 private:
  const topo::Topology* topo_;
  std::uint32_t origin_idx_;
  std::vector<Route> routes_;
};

/// The propagation engine. Construction preprocesses the topology into a
/// flat CSR adjacency (one contiguous edge array — at internet scale the
/// per-AS vector-of-vectors layout thrashes the cache); propagate() is
/// then cheap enough to run once per origin AS (all prefixes of an origin
/// share paths unless a selective announcement restricts the first hop).
class Simulator {
 public:
  /// Reusable per-thread scratch for propagate(): the hop-bucket queue
  /// and phase-2 source marks, whose n-element allocations would
  /// otherwise dominate a propagation sweep over every origin. A
  /// Workspace may be reused freely across calls on the same Simulator
  /// but must not be shared between concurrent calls.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class Simulator;
    std::vector<std::vector<std::uint32_t>> buckets_;
    std::vector<std::uint8_t> is_source_;
  };

  explicit Simulator(const topo::Topology& topo);

  /// Propagates routes for prefixes originated by `origin`.
  ///
  /// If `allowed_first_hops` is non-empty, the origin only exports to the
  /// listed neighbor ASes (selective announcement); everything downstream
  /// follows normal policy. Unknown origin throws std::invalid_argument.
  PropagationResult propagate(Asn origin,
                              std::span<const Asn> allowed_first_hops = {}) const;

  /// Workspace variant: identical result, but the queue scratch is
  /// borrowed from `ws` instead of allocated per call — the form the
  /// parallel RouteFabric runs once per plan group.
  PropagationResult propagate(Asn origin, std::span<const Asn> allowed_first_hops,
                              Workspace& ws) const;

  const topo::Topology& topology() const { return *topo_; }

 private:
  struct Edge {
    std::uint32_t to = 0;
    topo::RelType rel = topo::RelType::kPeerToPeer;
    /// True if `to` is the provider side of a c2p edge (route flows up).
    bool up = false;
  };

  /// Edges of the AS at dense index `v`.
  std::span<const Edge> edges_of(std::uint32_t v) const {
    return {edges_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  const topo::Topology* topo_;
  std::vector<Edge> edges_;            // CSR edge array
  std::vector<std::uint32_t> offsets_; // dense index -> first edge (n+1 entries)
};

}  // namespace spoofscope::bgp
