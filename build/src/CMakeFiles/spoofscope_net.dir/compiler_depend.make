# Empty compiler generated dependencies file for spoofscope_net.
# This may be replaced when dependencies are built.
