#include "bgp/mrt_lite.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/prefix.hpp"

namespace spoofscope::bgp {
namespace {

using net::pfx;

RibEntry sample_rib() {
  RibEntry e;
  e.timestamp = 12345;
  e.peer = 3356;
  e.prefix = pfx("10.0.0.0/16");
  e.path = AsPath{3356, 1299, 64500};
  return e;
}

TEST(MrtLite, SerializeRibEntry) {
  EXPECT_EQ(to_mrt_line(sample_rib()),
            "TABLE_DUMP|12345|3356|10.0.0.0/16|3356 1299 64500");
}

TEST(MrtLite, SerializeAnnounce) {
  UpdateMessage u;
  u.kind = UpdateMessage::Kind::kAnnounce;
  u.timestamp = 99;
  u.peer = 100;
  u.prefix = pfx("192.0.2.0/24");
  u.path = AsPath{100, 200};
  EXPECT_EQ(to_mrt_line(u), "UPDATE|A|99|100|192.0.2.0/24|100 200");
}

TEST(MrtLite, SerializeWithdraw) {
  UpdateMessage u;
  u.kind = UpdateMessage::Kind::kWithdraw;
  u.timestamp = 50;
  u.peer = 7;
  u.prefix = pfx("198.51.0.0/16");
  EXPECT_EQ(to_mrt_line(u), "UPDATE|W|50|7|198.51.0.0/16");
}

TEST(MrtLite, ParseRibEntry) {
  const auto r = parse_mrt_line("TABLE_DUMP|12345|3356|10.0.0.0/16|3356 1299 64500");
  const auto* e = std::get_if<RibEntry>(&r);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, sample_rib());
}

TEST(MrtLite, ParseAnnounceAndWithdraw) {
  const auto a = parse_mrt_line("UPDATE|A|99|100|192.0.2.0/24|100 200");
  const auto* ua = std::get_if<UpdateMessage>(&a);
  ASSERT_NE(ua, nullptr);
  EXPECT_EQ(ua->kind, UpdateMessage::Kind::kAnnounce);
  EXPECT_EQ(ua->path, (AsPath{100, 200}));

  const auto w = parse_mrt_line("UPDATE|W|50|7|198.51.0.0/16");
  const auto* uw = std::get_if<UpdateMessage>(&w);
  ASSERT_NE(uw, nullptr);
  EXPECT_EQ(uw->kind, UpdateMessage::Kind::kWithdraw);
}

TEST(MrtLite, ParseRejectsMalformed) {
  EXPECT_THROW(parse_mrt_line(""), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("GARBAGE|1|2|3"), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("TABLE_DUMP|1|2|3"), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("TABLE_DUMP|x|3356|10.0.0.0/16|1 2"), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("TABLE_DUMP|1|0|10.0.0.0/16|1 2"), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("TABLE_DUMP|1|2|10.0.0.0/99|1 2"), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("TABLE_DUMP|1|2|10.0.0.0/16|"), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("UPDATE|X|1|2|10.0.0.0/16"), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("UPDATE|A|1|2|10.0.0.0/16"), std::runtime_error);
  EXPECT_THROW(parse_mrt_line("UPDATE|W|1|2|10.0.0.0/16|1 2"), std::runtime_error);
}

TEST(MrtLite, StreamRoundTrip) {
  std::vector<MrtRecord> records;
  records.emplace_back(sample_rib());
  UpdateMessage u;
  u.kind = UpdateMessage::Kind::kAnnounce;
  u.timestamp = 5;
  u.peer = 11;
  u.prefix = pfx("20.0.0.0/8");
  u.path = AsPath{11, 22};
  records.emplace_back(u);

  std::stringstream ss;
  write_mrt(ss, records);
  const auto parsed = read_mrt(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(std::get<RibEntry>(parsed[0]), sample_rib());
  EXPECT_EQ(std::get<UpdateMessage>(parsed[1]), u);
}

TEST(MrtLite, ReadSkipsCommentsAndBlankLines) {
  std::stringstream ss;
  ss << "# comment\n\nTABLE_DUMP|1|2|10.0.0.0/16|2 3\n   \n";
  const auto parsed = read_mrt(ss);
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(MrtLite, ReadReportsLineNumber) {
  std::stringstream ss;
  ss << "TABLE_DUMP|1|2|10.0.0.0/16|2 3\nBROKEN\n";
  try {
    read_mrt(ss);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace spoofscope::bgp
