#include "analysis/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace spoofscope::analysis {
namespace {

/// Parses CSV text into rows of fields.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  for (const auto line : util::split(text, '\n')) {
    if (util::trim(line).empty()) continue;
    std::vector<std::string> fields;
    EXPECT_TRUE(util::csv_parse_line(line, fields));
    rows.push_back(std::move(fields));
  }
  return rows;
}

TEST(Export, Table1Csv) {
  std::vector<Table1Column> cols(2);
  cols[0].name = "Bogon";
  cols[0].members = 5;
  cols[0].member_fraction = 0.5;
  cols[1].name = "Invalid FULL";
  std::ostringstream os;
  export_table1_csv(os, cols);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], "column");
  EXPECT_EQ(rows[1][0], "Bogon");
  EXPECT_EQ(rows[1][1], "5");
  EXPECT_EQ(rows[2][0], "Invalid FULL");
}

TEST(Export, DistributionCsv) {
  const std::vector<util::DistPoint> points{{1.0, 0.5}, {2.0, 1.0}};
  std::ostringstream os;
  export_distribution_csv(os, points);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(std::stod(rows[1][0]), 1.0);
  EXPECT_EQ(std::stod(rows[2][1]), 1.0);
}

TEST(Export, ValidSizesCsv) {
  const std::vector<std::pair<Asn, double>> sizes{{100, 256.0}, {200, 65536.0}};
  std::ostringstream os;
  export_valid_sizes_csv(os, sizes);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][0], "100");
}

TEST(Export, VennCsvRegionsSumToOne) {
  VennCounts v;
  v.clean = 0.25;
  v.only_bogon = 0.75;
  std::ostringstream os;
  export_venn_csv(os, v);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 9u);  // header + 8 regions
  double sum = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) sum += std::stod(rows[i][1]);
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Export, BusinessCsv) {
  std::vector<BusinessPoint> points(1);
  points[0].member = 42;
  points[0].type = topo::BusinessType::kHosting;
  points[0].total_packets = 100;
  points[0].share_invalid = 0.1;
  std::ostringstream os;
  export_business_csv(os, points);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "Hosting");
}

TEST(Export, TimeSeriesCsv) {
  ClassTimeSeries ts;
  ts.bin_seconds = 3600;
  for (auto& s : ts.series) s = {1.0, 2.0};
  std::ostringstream os;
  export_time_series_csv(os, ts);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2][0], "3600");
}

TEST(Export, PortMixCsvUsesOtherLabel) {
  PortMix mix;
  mix.shares[0][0][0].push_back({0, 0.4});
  mix.shares[0][0][0].push_back({80, 0.6});
  std::ostringstream os;
  export_port_mix_csv(os, mix);
  const std::string text = os.str();
  EXPECT_NE(text.find("bogon,tcp,dst,other,0.4"), std::string::npos);
  EXPECT_NE(text.find("bogon,tcp,dst,80,0.6"), std::string::npos);
}

TEST(Export, AddressStructureCsvSkipsEmptyBins) {
  AddressStructure a{};
  a.src[0][10] = 7.0;
  std::ostringstream os;
  export_address_structure_csv(os, a);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);  // header + one non-empty bin
  EXPECT_EQ(rows[1], (std::vector<std::string>{"bogon", "src", "10", "7.000000"}));
}

TEST(Export, NtpVictimsCsvRanked) {
  std::vector<NtpVictim> victims(1);
  victims[0].victim = net::Ipv4Addr::from_octets(1, 2, 3, 4);
  victims[0].packets_per_amplifier = {30, 20, 10};
  std::ostringstream os;
  export_ntp_victims_csv(os, victims);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1][0], "1.2.3.4");
  EXPECT_EQ(rows[1][1], "1");
  EXPECT_EQ(rows[3][2], "10");
}

TEST(Export, AmplificationCsv) {
  AmplificationTimeseries ts;
  ts.bin_seconds = 3600;
  ts.packets_to_amplifier = {5};
  ts.packets_from_amplifier = {5};
  ts.bytes_to_amplifier = {100};
  ts.bytes_from_amplifier = {1000};
  std::ostringstream os;
  export_amplification_csv(os, ts);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(std::stod(rows[1][4]), 1000.0);
}

}  // namespace
}  // namespace spoofscope::analysis
