# Empty dependencies file for spoofscope_data.
# This may be replaced when dependencies are built.
