#include "topo/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/bogon.hpp"

namespace spoofscope::topo {
namespace {

TopologyParams small_params() {
  TopologyParams p;
  p.num_tier1 = 3;
  p.num_transit = 10;
  p.num_isp = 30;
  p.num_hosting = 20;
  p.num_content = 10;
  p.num_other = 27;
  return p;
}

TEST(Generator, ProducesRequestedPopulation) {
  const auto t = generate_topology(small_params(), 1);
  EXPECT_EQ(t.as_count(), small_params().total_ases());
}

TEST(Generator, DeterministicForSeed) {
  const auto a = generate_topology(small_params(), 7);
  const auto b = generate_topology(small_params(), 7);
  ASSERT_EQ(a.as_count(), b.as_count());
  ASSERT_EQ(a.links().size(), b.links().size());
  for (std::size_t i = 0; i < a.as_count(); ++i) {
    EXPECT_EQ(a.ases()[i].asn, b.ases()[i].asn);
    EXPECT_EQ(a.ases()[i].prefixes, b.ases()[i].prefixes);
    EXPECT_EQ(a.ases()[i].filter, b.ases()[i].filter);
  }
  EXPECT_EQ(a.links(), b.links());
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = generate_topology(small_params(), 1);
  const auto b = generate_topology(small_params(), 2);
  bool any_diff = a.links().size() != b.links().size();
  for (std::size_t i = 0; !any_diff && i < a.as_count(); ++i) {
    any_diff = a.ases()[i].prefixes != b.ases()[i].prefixes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, TopologyValidates) {
  const auto t = generate_topology(small_params(), 3);
  EXPECT_TRUE(t.validate().empty());
}

TEST(Generator, EveryAsHasAddressSpace) {
  const auto t = generate_topology(small_params(), 4);
  for (const auto& as : t.ases()) {
    EXPECT_FALSE(as.prefixes.empty()) << "AS" << as.asn;
    for (const auto& p : as.prefixes) {
      EXPECT_GE(p.length(), 16);
      EXPECT_LE(p.length(), 24);
    }
  }
}

TEST(Generator, AllocationsAvoidBogonSpace) {
  const auto t = generate_topology(small_params(), 5);
  for (const auto& as : t.ases()) {
    for (const auto& p : as.prefixes) {
      for (const auto& b : net::bogon_prefixes()) {
        EXPECT_FALSE(p.overlaps(b))
            << p.str() << " overlaps bogon " << b.str();
      }
    }
  }
}

TEST(Generator, NonTier1AsesHaveProviders) {
  const auto t = generate_topology(small_params(), 6);
  std::size_t no_provider = 0;
  for (const auto& as : t.ases()) {
    if (t.providers_of(as.asn).empty()) ++no_provider;
  }
  // Only the tier-1 clique is transit-free.
  EXPECT_EQ(no_provider, small_params().num_tier1);
}

TEST(Generator, Tier1sFormPeeringClique) {
  const auto params = small_params();
  const auto t = generate_topology(params, 8);
  // Tier-1s are the first ASes created (lowest ASNs).
  std::vector<Asn> tier1s;
  for (const auto& as : t.ases()) {
    if (t.providers_of(as.asn).empty()) tier1s.push_back(as.asn);
  }
  ASSERT_EQ(tier1s.size(), params.num_tier1);
  for (const Asn a : tier1s) {
    const auto peers = t.peers_of(a);
    for (const Asn b : tier1s) {
      if (a == b) continue;
      EXPECT_NE(std::find(peers.begin(), peers.end(), b), peers.end())
          << "AS" << a << " missing tier-1 peer AS" << b;
    }
  }
}

TEST(Generator, RoutedFractionNearTarget) {
  auto params = small_params();
  const auto t = generate_topology(params, 9);
  double announced24 = 0.0;
  for (const auto& as : t.ases()) {
    const std::size_t n = announced_prefix_count(as);
    for (std::size_t i = 0; i < n; ++i) announced24 += as.prefixes[i].slash24_equivalents();
  }
  const double frac = announced24 / net::kTotalSlash24;
  EXPECT_GT(frac, params.target_routed_fraction * 0.6);
  EXPECT_LT(frac, params.target_routed_fraction * 1.3);
}

TEST(Generator, SomeAllocatedSpaceStaysUnannounced) {
  const auto t = generate_topology(small_params(), 10);
  double allocated = 0.0, announced = 0.0;
  for (const auto& as : t.ases()) {
    const std::size_t n = announced_prefix_count(as);
    for (std::size_t i = 0; i < as.prefixes.size(); ++i) {
      allocated += as.prefixes[i].slash24_equivalents();
      if (i < n) announced += as.prefixes[i].slash24_equivalents();
    }
  }
  EXPECT_LT(announced, allocated);
}

TEST(Generator, MultiAsOrgsExistWithSiblingLinks) {
  const auto t = generate_topology(small_params(), 11);
  std::set<OrgId> orgs;
  std::set<OrgId> multi;
  for (const auto& as : t.ases()) {
    if (!orgs.insert(as.org).second) multi.insert(as.org);
  }
  EXPECT_FALSE(multi.empty());
  std::size_t sibling_links = 0;
  for (const auto& l : t.links()) {
    if (l.type == RelType::kSibling) ++sibling_links;
  }
  EXPECT_GT(sibling_links, 0u);
}

TEST(Generator, SomeSiblingLinksInvisible) {
  const auto t = generate_topology(small_params(), 12);
  std::size_t visible = 0, invisible = 0;
  for (const auto& l : t.links()) {
    if (l.type != RelType::kSibling) continue;
    (l.visible_in_bgp ? visible : invisible) += 1;
  }
  EXPECT_GT(visible + invisible, 0u);
  EXPECT_GT(invisible, 0u);  // with prob 0.45 over many links
}

TEST(Generator, TransitLinksCarryInfraPrefixes) {
  const auto t = generate_topology(small_params(), 13);
  std::size_t with_infra = 0, from_provider = 0, from_dark = 0;
  for (const auto& l : t.links()) {
    if (l.type != RelType::kCustomerToProvider) continue;
    ASSERT_EQ(l.infra.length(), 24) << "c2p link missing /24 infra";
    ++with_infra;
    const Asn owner = t.allocation_owner(l.infra);
    if (owner == l.to) {
      ++from_provider;
    } else if (owner == net::kNoAsn) {
      ++from_dark;
    }
  }
  EXPECT_GT(with_infra, 0u);
  EXPECT_GT(from_provider, 0u);
  EXPECT_GT(from_dark, 0u);
}

TEST(Generator, FilterPoliciesVaryByType) {
  // Content providers must filter far more often than hosting providers.
  TopologyParams p = small_params();
  p.num_content = 150;
  p.num_hosting = 150;
  const auto t = generate_topology(p, 14);
  int content_filtering = 0, content_total = 0;
  int hosting_filtering = 0, hosting_total = 0;
  for (const auto& as : t.ases()) {
    if (as.type == BusinessType::kContent) {
      ++content_total;
      content_filtering += as.filter.blocks_spoofed;
    } else if (as.type == BusinessType::kHosting) {
      ++hosting_total;
      hosting_filtering += as.filter.blocks_spoofed;
    }
  }
  EXPECT_GT(static_cast<double>(content_filtering) / content_total,
            static_cast<double>(hosting_filtering) / hosting_total);
}

TEST(Generator, SpooferDensityHighestAtHosters) {
  TopologyParams p = small_params();
  p.num_content = 120;
  p.num_hosting = 120;
  const auto t = generate_topology(p, 15);
  double hosting_sum = 0, content_sum = 0;
  int nh = 0, nc = 0;
  for (const auto& as : t.ases()) {
    if (as.type == BusinessType::kHosting) {
      hosting_sum += as.spoofer_density;
      ++nh;
    }
    if (as.type == BusinessType::kContent) {
      content_sum += as.spoofer_density;
      ++nc;
    }
  }
  EXPECT_GT(hosting_sum / nh, content_sum / nc);
}

TEST(Generator, RejectsEmptyPopulation) {
  TopologyParams p;
  p.num_tier1 = p.num_transit = p.num_isp = p.num_hosting = p.num_content =
      p.num_other = 0;
  EXPECT_THROW(generate_topology(p, 1), std::invalid_argument);
}

TEST(Generator, AsnsFitTraceFormat) {
  const auto t = generate_topology(small_params(), 16);
  for (const auto& as : t.ases()) EXPECT_LE(as.asn, 0xffffu);
}

}  // namespace
}  // namespace spoofscope::topo
