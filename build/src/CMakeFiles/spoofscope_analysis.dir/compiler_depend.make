# Empty compiler generated dependencies file for spoofscope_analysis.
# This may be replaced when dependencies are built.
