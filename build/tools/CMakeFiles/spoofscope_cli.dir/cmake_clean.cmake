file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_cli.dir/spoofscope_cli.cpp.o"
  "CMakeFiles/spoofscope_cli.dir/spoofscope_cli.cpp.o.d"
  "spoofscope"
  "spoofscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
