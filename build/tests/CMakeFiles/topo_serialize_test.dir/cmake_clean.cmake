file(REMOVE_RECURSE
  "CMakeFiles/topo_serialize_test.dir/topo_serialize_test.cpp.o"
  "CMakeFiles/topo_serialize_test.dir/topo_serialize_test.cpp.o.d"
  "topo_serialize_test"
  "topo_serialize_test.pdb"
  "topo_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
