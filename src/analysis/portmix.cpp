#include "analysis/portmix.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "net/protocols.hpp"
#include "util/format.hpp"

namespace spoofscope::analysis {

double PortMix::fraction_of(TrafficClass cls, Transport t, Direction d,
                            std::uint16_t port) const {
  for (const auto& s :
       shares[static_cast<int>(cls)][static_cast<int>(t)][static_cast<int>(d)]) {
    if (s.port == port) return s.fraction;
  }
  return 0.0;
}

PortMix port_mix(std::span<const net::FlowRecord> flows,
                 std::span<const Label> labels, std::size_t space_idx) {
  // counts[class][transport][direction][port-bucket]
  std::map<std::uint16_t, double> counts[kNumClasses][2][2];
  double totals[kNumClasses][2][2] = {};

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    int transport;
    if (f.proto == net::Proto::kTcp) {
      transport = static_cast<int>(Transport::kTcp);
    } else if (f.proto == net::Proto::kUdp) {
      transport = static_cast<int>(Transport::kUdp);
    } else {
      continue;  // Fig 9 covers TCP/UDP only
    }
    const auto c = static_cast<int>(classify::Classifier::unpack(labels[i], space_idx));
    const auto bucket = [](std::uint16_t port) -> std::uint16_t {
      return net::is_tracked_port(port) ? port : 0;
    };
    counts[c][transport][static_cast<int>(Direction::kDst)][bucket(f.dport)] +=
        f.packets;
    counts[c][transport][static_cast<int>(Direction::kSrc)][bucket(f.sport)] +=
        f.packets;
    totals[c][transport][static_cast<int>(Direction::kDst)] += f.packets;
    totals[c][transport][static_cast<int>(Direction::kSrc)] += f.packets;
  }

  PortMix out;
  for (int c = 0; c < kNumClasses; ++c) {
    for (int t = 0; t < 2; ++t) {
      for (int d = 0; d < 2; ++d) {
        auto& dst = out.shares[c][t][d];
        const double total = totals[c][t][d];
        for (const auto& [port, pkts] : counts[c][t][d]) {
          if (total > 0) dst.push_back({port, pkts / total});
        }
        std::sort(dst.begin(), dst.end(), [](const PortShare& a, const PortShare& b) {
          return a.fraction > b.fraction;
        });
      }
    }
  }
  return out;
}

std::string format_port_mix(const PortMix& mix) {
  std::ostringstream os;
  static const char* kClassNames[] = {"bogon", "unrouted", "invalid", "regular"};
  for (int t = 0; t < 2; ++t) {
    for (int d = 0; d < 2; ++d) {
      os << (t == 0 ? "TCP" : "UDP") << " " << (d == 0 ? "DST" : "SRC") << ":\n";
      for (const int c : {3, 0, 1, 2}) {  // regular first, as in Fig 9
        os << "  " << util::pad_right(kClassNames[c], 9);
        const auto& shares = mix.shares[c][t][d];
        std::size_t shown = 0;
        for (const auto& s : shares) {
          if (shown++ >= 4) break;
          const std::string name = s.port == 0 ? "other" : std::to_string(s.port);
          os << " " << name << "=" << util::percent(s.fraction);
        }
        os << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace spoofscope::analysis
