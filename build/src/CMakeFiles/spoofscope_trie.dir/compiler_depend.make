# Empty compiler generated dependencies file for spoofscope_trie.
# This may be replaced when dependencies are built.
