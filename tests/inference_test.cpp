#include <gtest/gtest.h>

#include "bgp/routing_table.hpp"
#include "inference/builder.hpp"
#include "inference/valid_space.hpp"
#include "net/prefix.hpp"

namespace spoofscope::inference {
namespace {

using net::Ipv4Addr;
using net::pfx;

TEST(Method, Names) {
  EXPECT_EQ(method_name(Method::kNaive), "NAIVE");
  EXPECT_EQ(method_name(Method::kCustomerCone), "CC");
  EXPECT_EQ(method_name(Method::kCustomerConeOrg), "CC+org");
  EXPECT_EQ(method_name(Method::kFullCone), "FULL");
  EXPECT_EQ(method_name(Method::kFullConeOrg), "FULL+org");
}

TEST(ValidSpace, BasicMembership) {
  trie::IntervalSet s;
  s.add(pfx("10.0.0.0/8"));
  std::unordered_map<Asn, trie::IntervalSet> spaces;
  spaces.emplace(100, std::move(s));
  ValidSpace vs(Method::kFullCone, std::move(spaces));

  EXPECT_TRUE(vs.valid(100, Ipv4Addr::from_octets(10, 1, 2, 3)));
  EXPECT_FALSE(vs.valid(100, Ipv4Addr::from_octets(11, 0, 0, 1)));
  EXPECT_FALSE(vs.valid(999, Ipv4Addr::from_octets(10, 1, 2, 3)));
  EXPECT_DOUBLE_EQ(vs.slash24_of(100), 65536.0);
  EXPECT_DOUBLE_EQ(vs.slash24_of(999), 0.0);
  EXPECT_EQ(vs.members(), std::vector<Asn>{100});
}

TEST(ValidSpace, ExtendAddsSpace) {
  ValidSpace vs(Method::kFullCone, {});
  EXPECT_FALSE(vs.valid(5, Ipv4Addr::from_octets(20, 0, 0, 1)));
  trie::IntervalSet extra;
  extra.add(pfx("20.0.0.0/16"));
  vs.extend(5, extra);
  EXPECT_TRUE(vs.valid(5, Ipv4Addr::from_octets(20, 0, 0, 1)));
  EXPECT_DOUBLE_EQ(vs.slash24_of(5), 256.0);
}

/// Hand-built routing view:
///   paths: [1 2 3] for 30.0/16 (origin 3), [1 2] for 20.0/16 (origin 2),
///          [1] for 10.0/16 (origin 1), [2 4] for 40.0/16 (origin 4).
bgp::RoutingTable small_table() {
  bgp::RoutingTableBuilder b;
  b.ingest_route(pfx("30.0.0.0/16"), bgp::AsPath{1, 2, 3});
  b.ingest_route(pfx("20.0.0.0/16"), bgp::AsPath{1, 2});
  b.ingest_route(pfx("10.0.0.0/16"), bgp::AsPath{1});
  b.ingest_route(pfx("40.0.0.0/16"), bgp::AsPath{2, 4});
  return b.build();
}

TEST(Factory, NaiveSpaces) {
  const auto table = small_table();
  ValidSpaceFactory factory(table, asgraph::OrgMap{});
  const std::vector<Asn> members{1, 2, 3, 4};
  const auto vs = factory.build(Method::kNaive, members);

  // AS1 is on the paths of 30.0/16, 20.0/16 and 10.0/16 but not 40.0/16.
  EXPECT_TRUE(vs.valid(1, Ipv4Addr::from_octets(30, 0, 0, 1)));
  EXPECT_TRUE(vs.valid(1, Ipv4Addr::from_octets(10, 0, 0, 1)));
  EXPECT_FALSE(vs.valid(1, Ipv4Addr::from_octets(40, 0, 0, 1)));
  // AS3 only appears on its own prefix's path.
  EXPECT_TRUE(vs.valid(3, Ipv4Addr::from_octets(30, 0, 0, 1)));
  EXPECT_FALSE(vs.valid(3, Ipv4Addr::from_octets(20, 0, 0, 1)));
}

TEST(Factory, FullConeSpaces) {
  const auto table = small_table();
  ValidSpaceFactory factory(table, asgraph::OrgMap{});
  const std::vector<Asn> members{1, 2, 3, 4};
  const auto vs = factory.build(Method::kFullCone, members);

  // Edges: 1->2, 2->3, 2->4. AS1's cone: {1,2,3,4}.
  EXPECT_TRUE(vs.valid(1, Ipv4Addr::from_octets(40, 0, 0, 1)));
  EXPECT_TRUE(vs.valid(2, Ipv4Addr::from_octets(30, 0, 0, 1)));
  EXPECT_TRUE(vs.valid(2, Ipv4Addr::from_octets(40, 0, 0, 1)));
  // but not upward: AS3 cannot source AS1's space.
  EXPECT_FALSE(vs.valid(3, Ipv4Addr::from_octets(10, 0, 0, 1)));
  EXPECT_FALSE(vs.valid(4, Ipv4Addr::from_octets(20, 0, 0, 1)));
}

TEST(Factory, NaiveContainedInFullCone) {
  const auto table = small_table();
  ValidSpaceFactory factory(table, asgraph::OrgMap{});
  for (const Asn asn : table.ases()) {
    const auto naive = factory.build(Method::kNaive, std::vector<Asn>{asn});
    const auto full = factory.build(Method::kFullCone, std::vector<Asn>{asn});
    const auto* ns = naive.space_of(asn);
    const auto* fs = full.space_of(asn);
    ASSERT_NE(ns, nullptr);
    ASSERT_NE(fs, nullptr);
    // Every naive-valid interval must be covered by the full cone space.
    EXPECT_TRUE(ns->subtract(*fs).empty())
        << "AS" << asn << " naive space exceeds full cone";
  }
}

TEST(Factory, OrgVariantsAreSupersets) {
  const auto table = small_table();
  // Pretend AS3 and AS4 are one organization.
  asgraph::OrgMap orgs({{3, 4}});
  ValidSpaceFactory factory(table, orgs);
  const std::vector<Asn> members{3, 4};

  const auto plain = factory.build(Method::kFullCone, members);
  const auto adjusted = factory.build(Method::kFullConeOrg, members);
  // With the mesh, AS3 may source AS4's space and vice versa.
  EXPECT_FALSE(plain.valid(3, Ipv4Addr::from_octets(40, 0, 0, 1)));
  EXPECT_TRUE(adjusted.valid(3, Ipv4Addr::from_octets(40, 0, 0, 1)));
  EXPECT_TRUE(adjusted.valid(4, Ipv4Addr::from_octets(30, 0, 0, 1)));
  for (const Asn m : members) {
    EXPECT_TRUE(plain.space_of(m)->subtract(*adjusted.space_of(m)).empty());
  }
}

TEST(Factory, ValidSizesSortedAscending) {
  const auto table = small_table();
  ValidSpaceFactory factory(table, asgraph::OrgMap{});
  const auto sizes = factory.valid_sizes(Method::kFullCone);
  ASSERT_EQ(sizes.size(), table.ases().size());
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LE(sizes[i - 1].second, sizes[i].second);
  }
  // The top AS (1) is a valid source for all four /16s.
  EXPECT_DOUBLE_EQ(sizes.back().second, 4 * 256.0);
}

TEST(Factory, ConeOfNaiveListsOrigins) {
  const auto table = small_table();
  ValidSpaceFactory factory(table, asgraph::OrgMap{});
  const auto cone = factory.cone_of(Method::kNaive, 2);
  // AS2 is on paths originated by 2, 3, 4 (20.0, 30.0, 40.0).
  EXPECT_EQ(cone, (std::vector<Asn>{2, 3, 4}));
}

TEST(Factory, UnknownMemberHasEmptySpace) {
  const auto table = small_table();
  ValidSpaceFactory factory(table, asgraph::OrgMap{});
  const std::vector<Asn> members{777};
  const auto vs = factory.build(Method::kFullCone, members);
  ASSERT_NE(vs.space_of(777), nullptr);
  EXPECT_TRUE(vs.space_of(777)->empty());
}

}  // namespace
}  // namespace spoofscope::inference
