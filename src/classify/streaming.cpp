#include "classify/streaming.hpp"

#include <algorithm>
#include <sstream>

#include "classify/flat_classifier.hpp"
#include "net/flow_batch.hpp"

namespace spoofscope::classify {

StreamingDetector::StreamingDetector(const Classifier& classifier,
                                     std::size_t space_idx,
                                     StreamingParams params)
    : classifier_(&classifier), space_idx_(space_idx), params_(params) {}

StreamingDetector::StreamingDetector(const FlatClassifier& classifier,
                                     std::size_t space_idx,
                                     StreamingParams params)
    : flat_(&classifier), space_idx_(space_idx), params_(params) {}

TrafficClass StreamingDetector::classify_one(
    const net::FlowRecord& flow) const {
  return flat_ ? flat_->classify(flow.src, flow.member_in, space_idx_)
               : classifier_->classify(flow.src, flow.member_in, space_idx_);
}

void StreamingDetector::rebind(const FlatClassifier& plane) {
  flat_ = &plane;
  classifier_ = nullptr;
  for (auto& p : pending_) p.cls = classify_one(p.flow);
  last_plane_epoch_ = plane.epoch();
}

void StreamingDetector::sync_plane_epoch() {
  if (flat_ == nullptr) return;
  const std::uint64_t epoch = flat_->epoch();
  if (epoch == last_plane_epoch_) return;
  for (auto& p : pending_) p.cls = classify_one(p.flow);
  last_plane_epoch_ = epoch;
}

void StreamingDetector::ingest(const net::FlowRecord& flow,
                               const AlertFn& on_alert) {
  ingest_classified(flow, classify_one(flow), on_alert);
}

void StreamingDetector::ingest_classified(const net::FlowRecord& flow,
                                          TrafficClass cls,
                                          const AlertFn& on_alert) {
  sync_plane_epoch();
  ++processed_;
  const std::uint32_t skew = params_.reorder_skew_seconds;
  if (skew == 0) {
    account(flow, cls, on_alert);
    return;
  }
  // Watermark reordering: a flow is deliverable once the maximum
  // timestamp seen is `skew` past it; anything arriving later than that
  // is dropped here rather than delivered out of order.
  if (saw_any_ && watermark_ >= skew && flow.ts < watermark_ - skew) {
    ++health_.late_drops;
    return;
  }
  pending_.push_back({flow, cls, seq_++});
  std::push_heap(pending_.begin(), pending_.end(), PendingLater{});
  watermark_ = saw_any_ ? std::max(watermark_, flow.ts) : flow.ts;
  saw_any_ = true;
  health_.max_reorder_depth =
      std::max(health_.max_reorder_depth, pending_.size());
  if (watermark_ >= skew) {
    const std::uint32_t deliverable = watermark_ - skew;
    while (!pending_.empty() && pending_.front().flow.ts <= deliverable) {
      release_one(on_alert);
    }
  }
  while (params_.max_reorder_records != 0 &&
         pending_.size() > params_.max_reorder_records) {
    ++health_.forced_releases;
    release_one(on_alert);
  }
}

void StreamingDetector::ingest_batch(const net::FlowBatch& batch,
                                     const AlertFn& on_alert) {
  if (flat_ == nullptr) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ingest(batch.record(i), on_alert);
    }
    return;
  }
  // Flat engine: classify the whole batch through the SIMD kernel, then
  // ingest in lane order with the classes precomputed. Classification is
  // a pure per-flow function, so alerts and health counters stay
  // identical to per-record ingest.
  batch_labels_.resize(batch.size());
  flat_->classify_batch(batch, batch_labels_, params_.simd);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ingest_classified(batch.record(i),
                      Classifier::unpack(batch_labels_[i], space_idx_),
                      on_alert);
  }
}

void StreamingDetector::flush(const AlertFn& on_alert) {
  sync_plane_epoch();
  while (!pending_.empty()) release_one(on_alert);
}

void StreamingDetector::release_one(const AlertFn& on_alert) {
  std::pop_heap(pending_.begin(), pending_.end(), PendingLater{});
  const Pending p = std::move(pending_.back());
  pending_.pop_back();
  account(p.flow, p.cls, on_alert);
}

void StreamingDetector::touch_member(Asn member, MemberWindow& w,
                                     std::uint32_t ts) {
  if (params_.max_members != 0 && w.last_seen_ts != ts) {
    idle_index_.erase({w.last_seen_ts, member});
    idle_index_.insert({ts, member});
  }
  w.last_seen_ts = ts;
}

void StreamingDetector::evict_idle_member() {
  const auto victim = *idle_index_.begin();  // (oldest last_seen, min ASN)
  idle_index_.erase(idle_index_.begin());
  windows_.erase(victim.second);
  ++health_.member_evictions;
  dirty_members_.erase(victim.second);
  removed_members_.insert(victim.second);
}

void StreamingDetector::account(const net::FlowRecord& flow, TrafficClass cls,
                                const AlertFn& on_alert) {
  // The window math below assumes nondecreasing timestamps; a regression
  // that survived the reorder buffer (or arrived with the buffer
  // disabled) is dropped and counted, not folded into the wrong window.
  if (released_any_ && flow.ts < last_released_ts_) {
    ++health_.regressions;
    return;
  }
  last_released_ts_ = flow.ts;
  released_any_ = true;
  // Every path below mutates this member's window: mark it for the next
  // delta checkpoint (and cancel a pending removal if it came back).
  dirty_members_.insert(flow.member_in);
  removed_members_.erase(flow.member_in);

  auto it = windows_.find(flow.member_in);
  if (it == windows_.end()) {
    if (params_.max_members != 0 && windows_.size() >= params_.max_members) {
      evict_idle_member();
    }
    it = windows_.emplace(flow.member_in, MemberWindow{}).first;
    if (params_.max_members != 0) {
      idle_index_.insert({flow.ts, flow.member_in});
      it->second.last_seen_ts = flow.ts;
    }
  } else {
    touch_member(flow.member_in, it->second, flow.ts);
  }
  auto& w = it->second;

  // Evict samples that left the window.
  const std::uint32_t horizon =
      flow.ts >= params_.window_seconds ? flow.ts - params_.window_seconds : 0;
  while (!w.samples.empty() && w.samples.front().ts < horizon) {
    const Sample& old = w.samples.front();
    w.total -= old.packets;
    w.per_class[static_cast<int>(old.cls)] -= old.packets;
    if (old.cls != TrafficClass::kValid) w.spoofed -= old.packets;
    w.samples.pop_front();
  }

  w.samples.push_back({flow.ts, flow.packets, cls});
  w.total += flow.packets;
  w.per_class[static_cast<int>(cls)] += flow.packets;
  if (cls != TrafficClass::kValid) w.spoofed += flow.packets;

  // Degraded mode: a member exceeding its sample budget loses its oldest
  // samples early (the window shrinks, accuracy degrades measurably).
  while (params_.max_window_samples != 0 &&
         w.samples.size() > params_.max_window_samples) {
    const Sample& old = w.samples.front();
    w.total -= old.packets;
    w.per_class[static_cast<int>(old.cls)] -= old.packets;
    if (old.cls != TrafficClass::kValid) w.spoofed -= old.packets;
    w.samples.pop_front();
    ++health_.sample_evictions;
  }
  // Sampled after cap enforcement so the reported depth never exceeds
  // the configured budget.
  health_.max_window_depth =
      std::max(health_.max_window_depth, w.samples.size());

  if (w.spoofed < params_.min_spoofed_packets || w.total <= 0) return;
  const double share = w.spoofed / w.total;
  if (share < params_.min_share) return;
  if (w.alerted_once &&
      flow.ts - w.last_alert_ts < params_.cooldown_seconds) {
    return;
  }

  SpoofingAlert alert;
  alert.member = flow.member_in;
  alert.ts = flow.ts;
  alert.spoofed_packets_in_window = w.spoofed;
  alert.window_share = share;
  // Dominant spoofed class in the window.
  double best = -1;
  for (const int c : {0, 1, 2}) {  // Bogon, Unrouted, Invalid
    if (w.per_class[c] > best) {
      best = w.per_class[c];
      alert.dominant_class = static_cast<TrafficClass>(c);
    }
  }
  w.last_alert_ts = flow.ts;
  w.alerted_once = true;
  on_alert(alert);
}

std::vector<SpoofingAlert> StreamingDetector::run(
    std::span<const net::FlowRecord> flows) {
  std::vector<SpoofingAlert> alerts;
  const auto sink = [&alerts](const SpoofingAlert& a) { alerts.push_back(a); };
  for (const auto& f : flows) ingest(f, sink);
  flush(sink);
  return alerts;
}

void StreamingDetector::clear_dirty() {
  dirty_members_.clear();
  removed_members_.clear();
}

DetectorHealth StreamingDetector::health() const {
  DetectorHealth h = health_;
  h.reorder_depth = pending_.size();
  h.tracked_members = windows_.size();
  return h;
}

std::string to_json(const DetectorHealth& health) {
  std::ostringstream os;
  os << "{\"regressions\":" << health.regressions
     << ",\"late_drops\":" << health.late_drops
     << ",\"forced_releases\":" << health.forced_releases
     << ",\"member_evictions\":" << health.member_evictions
     << ",\"sample_evictions\":" << health.sample_evictions
     << ",\"reorder_depth\":" << health.reorder_depth
     << ",\"max_reorder_depth\":" << health.max_reorder_depth
     << ",\"tracked_members\":" << health.tracked_members
     << ",\"max_window_depth\":" << health.max_window_depth << "}";
  return os.str();
}

}  // namespace spoofscope::classify
