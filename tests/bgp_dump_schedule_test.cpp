// Periodic table-dump cadence (RIS: 8h, RouteViews: 2h) — the Sec 3.3
// "all table dumps and update messages within our time period" behaviour.
#include <gtest/gtest.h>

#include <set>

#include "bgp/collector.hpp"
#include "bgp/routing_table.hpp"
#include "net/prefix.hpp"

namespace spoofscope::bgp {
namespace {

using net::pfx;
using topo::AsInfo;
using topo::AsLink;
using topo::RelType;
using topo::Topology;

Topology tiny() {
  AsInfo a1;
  a1.asn = 1;
  a1.org = 1;
  a1.prefixes = {pfx("20.0.0.0/16")};
  AsInfo a2;
  a2.asn = 2;
  a2.org = 2;
  a2.prefixes = {pfx("30.0.0.0/16")};
  std::vector<AsLink> links{{2, 1, RelType::kCustomerToProvider, true, {}}};
  return Topology({a1, a2}, std::move(links));
}

TEST(DumpSchedule, SingleDumpByDefault) {
  const auto topo = tiny();
  const Simulator sim(topo);
  PlanParams pp;
  pp.selective_prob = 0;
  pp.transient_prob = 0;
  const auto plan = make_announcement_plan(topo, pp, 1);
  const RouteFabric fabric(sim, plan);

  CollectorSpec spec;
  spec.feeders = {1};
  const auto records = collect_records(fabric, spec);
  EXPECT_EQ(records.size(), 2u);  // one RIB entry per prefix
  for (const auto& r : records) {
    EXPECT_EQ(std::get<RibEntry>(r).timestamp, 0u);
  }
}

TEST(DumpSchedule, PeriodicDumpsMultiplyEntries) {
  const auto topo = tiny();
  const Simulator sim(topo);
  PlanParams pp;
  pp.selective_prob = 0;
  pp.transient_prob = 0;
  const auto plan = make_announcement_plan(topo, pp, 1);
  const RouteFabric fabric(sim, plan);

  CollectorSpec spec;
  spec.feeders = {1};
  spec.dump_interval_seconds = 8 * 3600;
  spec.window_seconds = 24 * 3600;  // dumps at 0, 8h, 16h
  const auto records = collect_records(fabric, spec);
  EXPECT_EQ(records.size(), 6u);  // 2 prefixes x 3 dumps
  std::set<std::uint32_t> times;
  for (const auto& r : records) times.insert(std::get<RibEntry>(r).timestamp);
  EXPECT_EQ(times, (std::set<std::uint32_t>{0, 8 * 3600, 16 * 3600}));
}

TEST(DumpSchedule, TransientRoutesAppearInCoveringDumpsOnly) {
  const auto topo = tiny();
  const Simulator sim(topo);
  // Hand-build a plan with one transient group announced in [10h, 20h).
  AnnouncementPlan plan;
  AnnouncementGroup g;
  g.origin = 2;
  g.prefixes = {pfx("30.0.0.0/16")};
  g.transient = true;
  g.announce_ts = 10 * 3600;
  g.withdraw_ts = 20 * 3600;
  plan.groups.push_back(g);
  const RouteFabric fabric(sim, plan);

  CollectorSpec spec;
  spec.feeders = {1};
  spec.dump_interval_seconds = 8 * 3600;
  spec.window_seconds = 24 * 3600;
  const auto records = collect_records(fabric, spec);

  std::size_t announces = 0, withdraws = 0;
  std::set<std::uint32_t> dump_times;
  for (const auto& r : records) {
    if (const auto* u = std::get_if<UpdateMessage>(&r)) {
      (u->kind == UpdateMessage::Kind::kAnnounce ? announces : withdraws) += 1;
    } else {
      dump_times.insert(std::get<RibEntry>(r).timestamp);
    }
  }
  EXPECT_EQ(announces, 1u);
  EXPECT_EQ(withdraws, 1u);
  // Only the 16h dump falls inside the announcement window.
  EXPECT_EQ(dump_times, (std::set<std::uint32_t>{16 * 3600}));
}

TEST(DumpSchedule, AggregatedTableIdenticalToSingleDump) {
  const auto topo = tiny();
  const Simulator sim(topo);
  PlanParams pp;
  pp.selective_prob = 0;
  pp.transient_prob = 0;
  const auto plan = make_announcement_plan(topo, pp, 1);
  const RouteFabric fabric(sim, plan);

  CollectorSpec once;
  once.feeders = {1, 2};
  CollectorSpec periodic = once;
  periodic.dump_interval_seconds = 2 * 3600;
  periodic.window_seconds = 48 * 3600;

  RoutingTableBuilder b1, b2;
  b1.ingest(collect_records(fabric, once));
  b2.ingest(collect_records(fabric, periodic));
  const auto t1 = b1.build();
  const auto t2 = b2.build();
  EXPECT_EQ(t1.prefixes(), t2.prefixes());
  EXPECT_EQ(t1.edges(), t2.edges());
  EXPECT_EQ(t1.paths().size(), t2.paths().size());
}

}  // namespace
}  // namespace spoofscope::bgp
