// The simulated inter-domain topology: the set of ASes, their relationship
// edges and address allocations. This is *ground truth*; everything the
// detection method is allowed to see is derived from BGP data produced by
// bgp::Simulator over this topology.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/as_info.hpp"

namespace spoofscope::topo {

/// Immutable-after-build container for the AS-level topology.
class Topology {
 public:
  Topology() = default;

  /// Builds from AS descriptions and relationship links. Throws
  /// std::invalid_argument on duplicate ASNs or links referencing unknown
  /// ASes.
  Topology(std::vector<AsInfo> ases, std::vector<AsLink> links);

  const std::vector<AsInfo>& ases() const { return ases_; }
  const std::vector<AsLink>& links() const { return links_; }
  std::size_t as_count() const { return ases_.size(); }

  /// Lookup by ASN; nullptr when unknown.
  const AsInfo* find(Asn asn) const;

  /// Dense index of an ASN (stable across the topology's lifetime);
  /// std::nullopt when unknown. Used by algorithms that want vectors
  /// instead of hash maps.
  std::optional<std::size_t> index_of(Asn asn) const;

  /// ASN at a dense index (inverse of index_of).
  Asn asn_at(std::size_t idx) const { return ases_[idx].asn; }

  /// Providers of `asn` (ASes it has a c2p link *to*).
  std::span<const Asn> providers_of(Asn asn) const;

  /// Customers of `asn` (ASes with a c2p link to `asn`).
  std::span<const Asn> customers_of(Asn asn) const;

  /// Settlement-free peers of `asn`.
  std::span<const Asn> peers_of(Asn asn) const;

  /// Sibling ASes (same organization links).
  std::span<const Asn> siblings_of(Asn asn) const;

  /// All ASes of the organization `org` (>= 1 entry for valid orgs).
  std::span<const Asn> org_members(OrgId org) const;

  /// The origin AS whose allocation covers `p` exactly or by coverage;
  /// kNoAsn if unallocated. (Allocations are disjoint across ASes.)
  Asn allocation_owner(const net::Prefix& p) const;

  /// Total allocated space in /24 equivalents.
  double allocated_slash24() const;

  /// Sanity checks of the topology invariants; returns a list of
  /// human-readable problems (empty == consistent).
  std::vector<std::string> validate() const;

 private:
  struct Neighbors {
    std::vector<Asn> providers;
    std::vector<Asn> customers;
    std::vector<Asn> peers;
    std::vector<Asn> siblings;
  };

  std::vector<AsInfo> ases_;
  std::vector<AsLink> links_;
  std::unordered_map<Asn, std::size_t> index_;
  std::vector<Neighbors> neighbors_;                  // parallel to ases_
  std::unordered_map<OrgId, std::vector<Asn>> orgs_;
  // Allocation ownership map: sorted by prefix first address.
  std::vector<std::pair<net::Prefix, Asn>> alloc_;
};

}  // namespace spoofscope::topo
