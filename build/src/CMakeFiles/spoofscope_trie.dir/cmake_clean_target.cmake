file(REMOVE_RECURSE
  "libspoofscope_trie.a"
)
