file(REMOVE_RECURSE
  "CMakeFiles/bgp_monotonicity_test.dir/bgp_monotonicity_test.cpp.o"
  "CMakeFiles/bgp_monotonicity_test.dir/bgp_monotonicity_test.cpp.o.d"
  "bgp_monotonicity_test"
  "bgp_monotonicity_test.pdb"
  "bgp_monotonicity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_monotonicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
