
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/addr_structure.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/addr_structure.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/addr_structure.cpp.o.d"
  "/root/repo/src/analysis/attack_patterns.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/attack_patterns.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/attack_patterns.cpp.o.d"
  "/root/repo/src/analysis/business.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/business.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/business.cpp.o.d"
  "/root/repo/src/analysis/export.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/export.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/export.cpp.o.d"
  "/root/repo/src/analysis/filtering_strategy.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/filtering_strategy.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/filtering_strategy.cpp.o.d"
  "/root/repo/src/analysis/incidents.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/incidents.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/incidents.cpp.o.d"
  "/root/repo/src/analysis/member_stats.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/member_stats.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/member_stats.cpp.o.d"
  "/root/repo/src/analysis/method_eval.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/method_eval.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/method_eval.cpp.o.d"
  "/root/repo/src/analysis/portmix.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/portmix.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/portmix.cpp.o.d"
  "/root/repo/src/analysis/spoofer_crosscheck.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/spoofer_crosscheck.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/spoofer_crosscheck.cpp.o.d"
  "/root/repo/src/analysis/table1.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/table1.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/table1.cpp.o.d"
  "/root/repo/src/analysis/traffic_char.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/traffic_char.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/traffic_char.cpp.o.d"
  "/root/repo/src/analysis/venn.cpp" "src/CMakeFiles/spoofscope_analysis.dir/analysis/venn.cpp.o" "gcc" "src/CMakeFiles/spoofscope_analysis.dir/analysis/venn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
