#include "classify/pipeline.hpp"

#include <map>

namespace spoofscope::classify {

Aggregate aggregate_classes(const Classifier& classifier,
                            std::span<const net::FlowRecord> flows,
                            std::span<const Label> labels,
                            const std::unordered_set<Asn>& exclude_members) {
  Aggregate agg;
  agg.totals.resize(classifier.space_count());
  std::vector<std::array<std::unordered_set<Asn>, kNumClasses>> members(
      classifier.space_count());

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    if (exclude_members.count(f.member_in)) continue;
    agg.total_packets += f.packets;
    agg.total_bytes += static_cast<double>(f.bytes);
    agg.total_flows += 1;
    for (std::size_t s = 0; s < classifier.space_count(); ++s) {
      const auto c = static_cast<std::size_t>(Classifier::unpack(labels[i], s));
      auto& cell = agg.totals[s][c];
      cell.flows += 1;
      cell.packets += f.packets;
      cell.bytes += static_cast<double>(f.bytes);
      members[s][c].insert(f.member_in);
    }
  }
  for (std::size_t s = 0; s < classifier.space_count(); ++s) {
    for (int c = 0; c < kNumClasses; ++c) {
      agg.totals[s][c].members = members[s][c].size();
    }
  }
  return agg;
}

}  // namespace spoofscope::classify
