// Stray and misconfiguration traffic: NAT leaks (Bogon), router-sourced
// ICMP/NTP (the Sec 5.2 analysis), background spoof noise, and the
// BCP38-noncompliant "uncommon setups" of Sec 4.4.
#pragma once

#include <vector>

#include "data/whois.hpp"
#include "traffic/context.hpp"

namespace spoofscope::traffic {

/// RFC1918 sources leaking from misconfigured CPE/NAT devices behind
/// eyeball networks — user-driven, hence diurnal.
void generate_nat_leaks(const TrafficContext& ctx, util::Rng& rng,
                        std::vector<net::FlowRecord>& out,
                      std::vector<Component>& components,
                      WorkloadSummary& summary);

/// Low-rate spoofed junk from many members: uniform random sources at a
/// trickle, giving broad per-member class coverage (Fig 5).
void generate_background_noise(const TrafficContext& ctx, util::Rng& rng,
                               std::vector<net::FlowRecord>& out,
                               std::vector<Component>& components,
                               WorkloadSummary& summary);

/// Stray traffic from router interface addresses on inter-AS links
/// (mostly ICMP), plus reflection triggers that use router addresses as
/// victims (UDP towards NTP servers, Sec 5.2).
void generate_router_strays(const TrafficContext& ctx, util::Rng& rng,
                            std::vector<net::FlowRecord>& out,
                            std::vector<Component>& components,
                            WorkloadSummary& summary);

/// Uncommon-but-legitimate setups from the WHOIS registry: members using
/// provider-assigned space via other paths, and traffic across
/// BGP-invisible (sibling) links. Classified Invalid until the Sec 4.4
/// false-positive hunt whitelists them.
void generate_uncommon_setups(const TrafficContext& ctx,
                              const data::WhoisRegistry& whois, util::Rng& rng,
                              std::vector<net::FlowRecord>& out,
                              std::vector<Component>& components,
                              WorkloadSummary& summary);

}  // namespace spoofscope::traffic
