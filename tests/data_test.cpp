#include <gtest/gtest.h>

#include <set>

#include "data/ark.hpp"
#include "data/as2org.hpp"
#include "data/spoofer.hpp"
#include "data/survey.hpp"
#include "data/whois.hpp"
#include "topo/generator.hpp"

namespace spoofscope::data {
namespace {

topo::Topology test_topology(std::uint64_t seed = 77) {
  topo::TopologyParams p;
  p.num_tier1 = 3;
  p.num_transit = 10;
  p.num_isp = 40;
  p.num_hosting = 25;
  p.num_content = 10;
  p.num_other = 32;
  p.multi_as_org_fraction = 0.15;
  return topo::generate_topology(p, seed);
}

TEST(As2Org, GroundTruthCoversAllMultiOrgs) {
  const auto topo = test_topology();
  const auto orgs = ground_truth_orgs(topo);
  std::map<topo::OrgId, int> sizes;
  for (const auto& as : topo.ases()) sizes[as.org]++;
  std::size_t multi = 0;
  for (const auto& [org, n] : sizes) multi += n >= 2;
  EXPECT_EQ(orgs.group_count(), multi);
}

TEST(As2Org, PartialCoverageMissesSomeOrgs) {
  const auto topo = test_topology();
  As2OrgParams params;
  params.org_coverage = 0.5;
  const auto partial = build_as2org(topo, params, 1);
  const auto full = ground_truth_orgs(topo);
  EXPECT_LT(partial.group_count(), full.group_count());
  EXPECT_GT(partial.group_count(), 0u);
}

TEST(As2Org, FullCoverageEqualsGroundTruthGroupCount) {
  const auto topo = test_topology();
  As2OrgParams params;
  params.org_coverage = 1.0;
  params.member_coverage = 1.0;
  const auto built = build_as2org(topo, params, 1);
  EXPECT_EQ(built.group_count(), ground_truth_orgs(topo).group_count());
}

TEST(As2Org, Deterministic) {
  const auto topo = test_topology();
  const auto a = build_as2org(topo, {}, 9);
  const auto b = build_as2org(topo, {}, 9);
  EXPECT_EQ(a.groups(), b.groups());
}

TEST(Ark, DiscoversRouterIps) {
  const auto topo = test_topology();
  ArkParams params;
  params.num_traces = 5000;
  const auto ark = run_ark_campaign(topo, params, 3);
  EXPECT_GT(ark.router_ip_count(), 0u);
  EXPECT_EQ(ark.traces_run(), 5000u);
  // Every discovered IP is inside some link's infra /24.
  for (const std::uint32_t ip : ark.router_ips()) {
    bool found = false;
    for (const auto& l : topo.links()) {
      if (l.infra.length() == 24 && l.infra.contains(net::Ipv4Addr(ip))) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << net::Ipv4Addr(ip).str();
  }
}

TEST(Ark, MembershipQueries) {
  const auto topo = test_topology();
  ArkParams params;
  params.num_traces = 3000;
  const auto ark = run_ark_campaign(topo, params, 3);
  ASSERT_GT(ark.router_ip_count(), 0u);
  EXPECT_TRUE(ark.is_router_ip(net::Ipv4Addr(ark.router_ips().front())));
  EXPECT_FALSE(ark.is_router_ip(net::Ipv4Addr::from_octets(203, 9, 9, 9)));
}

TEST(Ark, InterfaceAddressing) {
  const auto infra = net::pfx("100.100.100.0/24");
  EXPECT_EQ(link_interface_address(infra, 0),
            net::Ipv4Addr::from_octets(100, 100, 100, 1));
  EXPECT_EQ(link_interface_address(infra, 1),
            net::Ipv4Addr::from_octets(100, 100, 100, 2));
}

TEST(Ark, MoreTracesDiscoverMore) {
  const auto topo = test_topology();
  ArkParams small;
  small.num_traces = 200;
  ArkParams big;
  big.num_traces = 20000;
  EXPECT_LE(run_ark_campaign(topo, small, 5).router_ip_count(),
            run_ark_campaign(topo, big, 5).router_ip_count());
}

TEST(Spoofer, CoverageFraction) {
  const auto topo = test_topology();
  SpooferParams params;
  params.probe_coverage = 0.5;
  params.behind_nat_prob = 0.0;
  const auto recs = run_spoofer_campaign(topo, params, 7);
  const double frac = static_cast<double>(recs.size()) / topo.as_count();
  EXPECT_NEAR(frac, 0.5, 0.15);
}

TEST(Spoofer, FilteringAsesNeverSpoofable) {
  const auto topo = test_topology();
  SpooferParams params;
  params.probe_coverage = 1.0;
  params.behind_nat_prob = 0.0;
  params.on_path_filter_prob = 0.0;
  const auto recs = run_spoofer_campaign(topo, params, 7);
  for (const auto& r : recs) {
    const auto* as = topo.find(r.asn);
    ASSERT_NE(as, nullptr);
    if (as->filter.blocks_spoofed) {
      EXPECT_FALSE(r.spoofable);
    } else {
      EXPECT_TRUE(r.spoofable);
    }
  }
}

TEST(Spoofer, OnPathFilteringLowersBound) {
  const auto topo = test_topology();
  SpooferParams open;
  open.probe_coverage = 1.0;
  open.behind_nat_prob = 0.0;
  open.on_path_filter_prob = 0.0;
  SpooferParams filtered = open;
  filtered.on_path_filter_prob = 0.6;
  const auto count = [](const std::vector<SpooferRecord>& rs) {
    std::size_t n = 0;
    for (const auto& r : rs) n += r.spoofable;
    return n;
  };
  EXPECT_GT(count(run_spoofer_campaign(topo, open, 7)),
            count(run_spoofer_campaign(topo, filtered, 7)));
}

TEST(Whois, ProviderAssignedRangesInsideProviderSpace) {
  const auto topo = test_topology();
  WhoisParams params;
  params.provider_assigned_prob = 0.5;
  const auto whois = build_whois(topo, params, 11);
  ASSERT_FALSE(whois.provider_assigned().empty());
  for (const auto& pa : whois.provider_assigned()) {
    EXPECT_EQ(pa.range.length(), 24);
    const auto* provider = topo.find(pa.provider);
    ASSERT_NE(provider, nullptr);
    bool inside = false;
    for (const auto& p : provider->prefixes) inside |= p.contains(pa.range);
    EXPECT_TRUE(inside) << pa.range.str();
    // The provider must actually be one of the customer's providers.
    const auto provs = topo.providers_of(pa.customer);
    EXPECT_NE(std::find(provs.begin(), provs.end(), pa.provider), provs.end());
  }
}

TEST(Whois, DocumentedPartnersComeFromInvisibleLinks) {
  const auto topo = test_topology();
  WhoisParams params;
  params.reveal_invisible_link_prob = 1.0;
  const auto whois = build_whois(topo, params, 13);
  std::size_t invisible = 0;
  for (const auto& l : topo.links()) invisible += !l.visible_in_bgp;
  EXPECT_EQ(whois.documented_link_count(), invisible);
  for (const auto& l : topo.links()) {
    if (l.visible_in_bgp) continue;
    const auto partners = whois.documented_partners(l.from);
    EXPECT_NE(std::find(partners.begin(), partners.end(), l.to), partners.end());
  }
}

TEST(Whois, RecoverableRangesIncludePaAndPartnerSpace) {
  const auto topo = test_topology();
  WhoisParams params;
  params.provider_assigned_prob = 1.0;
  params.reveal_invisible_link_prob = 1.0;
  const auto whois = build_whois(topo, params, 17);
  ASSERT_FALSE(whois.provider_assigned().empty());
  const auto& pa = whois.provider_assigned().front();
  const auto ranges = whois.recoverable_ranges(topo, pa.customer);
  EXPECT_NE(std::find(ranges.begin(), ranges.end(), pa.range), ranges.end());
}

TEST(Whois, UnknownMemberHasNothing) {
  const auto topo = test_topology();
  const auto whois = build_whois(topo, {}, 19);
  EXPECT_TRUE(whois.provider_assigned_of(64999).empty());
  EXPECT_TRUE(whois.documented_partners(64999).empty());
  EXPECT_TRUE(whois.recoverable_ranges(topo, 64999).empty());
}

TEST(Survey, PublishedNumbers) {
  const auto s = survey_results();
  EXPECT_EQ(s.respondents, 84);
  EXPECT_DOUBLE_EQ(s.suffered_spoofing_attacks, 0.70);
  EXPECT_DOUBLE_EQ(s.no_source_validation, 0.24);
  EXPECT_DOUBLE_EQ(s.egress_customer_specific, 0.50);
}

TEST(Survey, FormatterMentionsKeyFigures) {
  const auto text = format_survey(survey_results());
  EXPECT_NE(text.find("84"), std::string::npos);
  EXPECT_NE(text.find("70.00%"), std::string::npos);
  EXPECT_NE(text.find("egress"), std::string::npos);
}

}  // namespace
}  // namespace spoofscope::data
