#include "state/plane_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "net/bogon.hpp"
#include "net/mapped_trace.hpp"
#include "state/snapshot.hpp"
#include "util/fault_injection.hpp"

namespace spoofscope::state {

namespace {

constexpr std::uint32_t kPlanePayloadVersion = 1;

// Section ids.
constexpr std::uint32_t kSecMeta = 1;     ///< digests + dimensions
constexpr std::uint32_t kSecMembers = 2;  ///< sorted member ASNs
constexpr std::uint32_t kSecBase = 3;     ///< 2^24 x u32 base-class table
constexpr std::uint32_t kSecRecords = 4;  ///< slot-major u16 membership

constexpr bool kLittleEndianHost = std::endian::native == std::endian::little;

/// Incremental FNV-1a-64 mixing one whole field per step, so the digest
/// is a stable function of the values, not of host memory layout. One
/// xor + odd multiply per field (both bijective in the state) keeps the
/// sensitivity of the per-byte walk at a fraction of the cost — the
/// digest runs over every prefix and valid-space interval on every
/// cache probe, so it sits on the cold-start path.
struct Fnv64 {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
  void u8(std::uint8_t v) { mix(v); }
  void u32(std::uint32_t v) { mix(v); }
  void u64(std::uint64_t v) { mix(v); }
};

[[noreturn]] void corrupt(const std::string& what, const std::string& ctx = {}) {
  throw SnapshotError(util::ErrorKind::kParse, what, ctx);
}

}  // namespace

std::uint64_t classifier_digest(const classify::Classifier& source) {
  Fnv64 f;
  const bgp::RoutingTable& table = source.table();
  f.u64(table.prefix_count());
  table.visit_prefixes(
      [&](bgp::RoutingTable::PrefixId, const net::Prefix& p) {
        f.u32(p.first());
        f.u8(p.length());
      });
  f.u64(source.space_count());
  for (std::size_t s = 0; s < source.space_count(); ++s) {
    const inference::ValidSpace& space = source.space(s);
    f.u8(static_cast<std::uint8_t>(space.method()));
    std::vector<net::Asn> members = space.members();
    std::sort(members.begin(), members.end());
    f.u64(members.size());
    for (const net::Asn member : members) {
      f.u32(member);
      const trie::IntervalSet* ivs = space.space_of(member);
      f.u64(ivs ? ivs->intervals().size() : 0);
      if (!ivs) continue;
      for (const auto& iv : ivs->intervals()) {
        f.u32(iv.lo);
        f.u32(iv.hi);
      }
    }
  }
  return f.h;
}

std::string PlaneCache::entry_path(std::uint64_t source_digest) const {
  char name[64];
  std::snprintf(name, sizeof name, "plane-%016llx-v%u.snap",
                static_cast<unsigned long long>(source_digest),
                kPlanePayloadVersion);
  return (std::filesystem::path(dir_) / name).string();
}

PlaneCache::LoadResult PlaneCache::load_or_compile(
    const classify::Classifier& source, util::ThreadPool* pool,
    util::ErrorPolicy policy, util::IngestStats* stats) {
  util::IngestStats own;
  util::IngestStats& st = stats ? *stats : own;
  const bool strict = policy == util::ErrorPolicy::kStrict;
  LoadResult out;
  if (kLittleEndianHost) {
    const std::uint64_t digest = classifier_digest(source);
    const std::string path = entry_path(digest);
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      try {
        out.plane = load_entry(path, source, digest);
        out.hit = true;
        st.ok();
        return out;
      } catch (const util::InjectedCrash&) {
        throw;  // a modelled crash is a process death, not damage to skip
      } catch (const SnapshotError& e) {
        if (strict) throw;
        st.skip(e.kind(), 0);
      } catch (const std::runtime_error&) {
        // MappedTrace open/read failure.
        if (strict) throw;
        st.skip(util::ErrorKind::kTruncated, 0);
      }
    }
    out.plane = pool ? classify::FlatClassifier::compile(source, *pool)
                     : classify::FlatClassifier::compile(source);
    store(out.plane, digest);
    out.stored = true;
    return out;
  }
  // Big-endian host: snapshots carry little-endian lanes, so the cache
  // degrades to compile-always instead of byte-swapping 64 MiB.
  out.plane = pool ? classify::FlatClassifier::compile(source, *pool)
                   : classify::FlatClassifier::compile(source);
  return out;
}

classify::FlatClassifier PlaneCache::load_entry(
    const std::string& path, const classify::Classifier& source,
    std::uint64_t source_digest) const {
  auto mapping = std::make_shared<const net::MappedTrace>(path);
  {
    // Read-fault shim: when an injected fault damages the image, the
    // damaged copy must be owned by the mapping (the plane's zero-copy
    // views point into it), so rewrap the scratch buffer.
    std::vector<std::uint8_t> scratch;
    const std::span<const std::uint8_t> bytes = with_injected_read_faults(
        "plane_cache.load", mapping->bytes(), scratch);
    if (bytes.data() != mapping->bytes().data() ||
        bytes.size() != mapping->bytes().size()) {
      mapping = std::make_shared<const net::MappedTrace>(
          net::MappedTrace::from_buffer(std::move(scratch)));
    }
  }
  const SnapshotView snap = parse_snapshot(
      mapping->bytes(), PayloadKind::kPlane, kPlanePayloadVersion, path);
  const auto sec_ctx = [&path](std::uint32_t id) {
    return "file " + path + ", section " + std::to_string(id);
  };

  SectionReader meta(snap.section(kSecMeta), sec_ctx(kSecMeta));
  const std::uint64_t stored_source = meta.u64();
  const std::uint64_t stored_plane = meta.u64();
  const std::uint64_t num_prefixes = meta.u64();
  const std::uint64_t member_count = meta.u64();
  const std::uint64_t space_count = meta.u64();
  const std::uint64_t overflow_prefixes = meta.u64();
  const std::uint64_t overflow_slots = meta.u64();
  const std::uint64_t partial_rows = meta.u64();
  if (meta.remaining() != 0) {
    corrupt("trailing bytes in meta section", sec_ctx(kSecMeta));
  }
  // The filename already encodes the source digest, but the stored copy
  // guards against renamed or hand-placed entries.
  if (stored_source != source_digest) {
    corrupt("stale plane: source digest", sec_ctx(kSecMeta));
  }
  if (space_count != source.space_count()) {
    corrupt("stale plane: space count", sec_ctx(kSecMeta));
  }
  if (num_prefixes != source.table().prefix_count()) {
    corrupt("stale plane: prefix count", sec_ctx(kSecMeta));
  }

  classify::FlatClassifier flat;
  flat.table_ = &source.table();
  flat.spaces_.reserve(space_count);
  for (std::size_t i = 0; i < space_count; ++i) {
    flat.spaces_.push_back(source.shared_space(i));
  }
  flat.all_bogon_ =
      classify::FlatClassifier::uniform_label(space_count, classify::TrafficClass::kBogon);
  flat.all_unrouted_ = classify::FlatClassifier::uniform_label(
      space_count, classify::TrafficClass::kUnrouted);
  flat.all_invalid_ = classify::FlatClassifier::uniform_label(
      space_count, classify::TrafficClass::kInvalid);
  for (const auto& p : net::bogon_prefixes()) flat.bogons_.insert(p);

  {
    SectionReader r(snap.section(kSecMembers), sec_ctx(kSecMembers));
    if (r.remaining() != member_count * sizeof(std::uint32_t)) {
      corrupt("members section size mismatch", sec_ctx(kSecMembers));
    }
    flat.members_.reserve(member_count);
    for (std::uint64_t i = 0; i < member_count; ++i) {
      const net::Asn member = r.u32();
      if (i > 0 && member <= flat.members_.back()) {
        corrupt("members out of order", sec_ctx(kSecMembers));
      }
      flat.members_.push_back(member);
    }
  }

  const std::span<const std::uint8_t> base = snap.section(kSecBase);
  if (base.size() !=
      classify::FlatClassifier::kBaseEntries * sizeof(std::uint32_t)) {
    corrupt("base table size mismatch", sec_ctx(kSecBase));
  }
  const std::span<const std::uint8_t> records = snap.section(kSecRecords);
  if (records.size() != member_count * num_prefixes * sizeof(std::uint16_t)) {
    corrupt("records size mismatch", sec_ctx(kSecRecords));
  }
  // Sections are 8-byte aligned within the snapshot and the mapping is
  // page- (or heap-) aligned, so the reinterpret views are aligned.
  flat.base_view_ = reinterpret_cast<const std::uint32_t*>(base.data());
  flat.records_view_ = reinterpret_cast<const std::uint16_t*>(records.data());
  // The records section usually ends flush against the end of the
  // mapping, where a 32-bit gather at the last 16-bit record would read
  // past the file; the vector kernels then load records scalar instead.
  {
    const std::span<const std::uint8_t> all = mapping->bytes();
    flat.records_gather_safe_ =
        records.data() + records.size() + sizeof(std::uint16_t) <=
        all.data() + all.size();
  }
  flat.num_prefixes_ = num_prefixes;
  flat.rebuild_probe();

  // The fallback lane is recoverable: a row's partial bit (8+s) is set
  // iff the compile consulted space s's interval set for that member.
  const std::size_t ns = space_count;
  flat.fallback_.assign(member_count * ns, nullptr);
  std::uint64_t rebuilt_partial_rows = 0;
  for (std::size_t slot = 0; slot < member_count; ++slot) {
    const std::uint16_t* row = flat.records_view_ + slot * num_prefixes;
    std::uint16_t mask = 0;
    for (std::uint64_t p = 0; p < num_prefixes; ++p) mask |= row[p];
    if ((mask & 0xFFu) >> ns != 0 || (mask >> 8) >> ns != 0) {
      corrupt("record bits beyond configured spaces", sec_ctx(kSecRecords));
    }
    std::uint32_t partial = mask >> 8;
    while (partial != 0) {
      const int s = std::countr_zero(partial);
      partial &= partial - 1;
      const trie::IntervalSet* space = flat.spaces_[s]->space_of(flat.members_[slot]);
      if (space == nullptr || space->empty()) {
        corrupt("stale plane: missing fallback space", sec_ctx(kSecRecords));
      }
      flat.fallback_[slot * ns + s] = space;
      ++rebuilt_partial_rows;
    }
  }
  if (rebuilt_partial_rows != partial_rows) {
    corrupt("fallback lane count mismatch", sec_ctx(kSecRecords));
  }

  flat.stats_.table_bytes = base.size();
  flat.stats_.bitset_bytes = records.size();
  flat.stats_.prefixes = num_prefixes;
  flat.stats_.members = member_count;
  flat.stats_.overflow_prefixes = overflow_prefixes;
  flat.stats_.overflow_slots = overflow_slots;
  flat.stats_.partial_rows = partial_rows;
  flat.plane_mapping_ = std::move(mapping);

  // The decisive check: the served plane hashes exactly like the fresh
  // compile whose digest was stored alongside it.
  if (flat.plane_digest() != stored_plane) {
    throw SnapshotError(util::ErrorKind::kChecksum, "plane digest mismatch",
                        "file " + path);
  }
  return flat;
}

void PlaneCache::store(const classify::FlatClassifier& plane,
                       std::uint64_t source_digest) const {
  if (!kLittleEndianHost) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  SnapshotWriter writer(PayloadKind::kPlane, kPlanePayloadVersion);
  {
    SectionBuilder b;
    b.u64(source_digest);
    b.u64(plane.plane_digest());
    b.u64(plane.num_prefixes_);
    b.u64(plane.members_.size());
    b.u64(plane.spaces_.size());
    b.u64(plane.stats_.overflow_prefixes);
    b.u64(plane.stats_.overflow_slots);
    b.u64(plane.stats_.partial_rows);
    writer.add_section(kSecMeta, b.take());
  }
  {
    SectionBuilder b;
    for (const net::Asn member : plane.members_) b.u32(member);
    writer.add_section(kSecMembers, b.take());
  }
  {
    SectionBuilder b;
    b.bytes(plane.base_view_,
            classify::FlatClassifier::kBaseEntries * sizeof(std::uint32_t));
    writer.add_section(kSecBase, b.take());
  }
  {
    SectionBuilder b;
    b.bytes(plane.records_view_, plane.members_.size() * plane.num_prefixes_ *
                                     sizeof(std::uint16_t));
    writer.add_section(kSecRecords, b.take());
  }
  writer.write_atomic(entry_path(source_digest));
}

}  // namespace spoofscope::state
