// Scoring the detection methods against the workload's ground truth — an
// evaluation the paper could not run (no ground truth exists for real
// traces, Sec 4.5 uses Spoofer as a weak proxy). With the simulator we
// can measure recall on intentionally spoofed traffic and the
// false-positive rate on legitimate traffic, for the paper's methods and
// for the deployed uRPF baselines alike.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "classify/classifier.hpp"
#include "classify/urpf.hpp"
#include "traffic/workload.hpp"

namespace spoofscope::analysis {

/// Packet-weighted confusion summary of one detection strategy.
struct DetectionScore {
  std::string name;
  double spoofed_packets = 0;  ///< ground-truth intentionally spoofed
  double spoofed_flagged = 0;  ///< of those, flagged by the strategy
  double legit_packets = 0;    ///< regular, responses, uncommon setups
  double legit_flagged = 0;
  double stray_packets = 0;    ///< NAT leaks, router strays
  double stray_flagged = 0;

  /// Fraction of spoofed packets caught.
  double recall() const {
    return spoofed_packets > 0 ? spoofed_flagged / spoofed_packets : 0.0;
  }
  /// Fraction of legitimate packets wrongly flagged.
  double false_positive_rate() const {
    return legit_packets > 0 ? legit_flagged / legit_packets : 0.0;
  }
  /// Fraction of stray packets flagged (neither good nor bad per se).
  double stray_rate() const {
    return stray_packets > 0 ? stray_flagged / stray_packets : 0.0;
  }
};

/// Scores one inference method: a packet is "flagged" when its class is
/// not kValid (Bogon, Unrouted or Invalid).
DetectionScore score_method(std::span<const net::FlowRecord> flows,
                            std::span<const classify::Label> labels,
                            std::size_t space_idx,
                            std::span<const traffic::Component> components,
                            std::string name);

/// Scores a uRPF filter: a packet is "flagged" when the filter drops it.
DetectionScore score_urpf(std::span<const net::FlowRecord> flows,
                          std::span<const traffic::Component> components,
                          const classify::UrpfFilter& filter, std::string name);

/// Scores a static bogon-only ACL (the most common deployed filter).
DetectionScore score_bogon_acl(std::span<const net::FlowRecord> flows,
                               std::span<const traffic::Component> components);

/// Aligned comparison table.
std::string format_scores(std::span<const DetectionScore> scores);

}  // namespace spoofscope::analysis
