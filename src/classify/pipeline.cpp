#include "classify/pipeline.hpp"

namespace spoofscope::classify {

namespace {

/// Aggregate plus the distinct-member sets it was accumulated from;
/// member counts are materialized only after all merging is done.
struct PartialAggregate {
  Aggregate agg;
  std::vector<std::array<std::unordered_set<Asn>, kNumClasses>> members;
};

/// Accumulates flows[begin, end) into a fresh partial.
PartialAggregate accumulate_range(std::size_t space_count,
                                  std::span<const net::FlowRecord> flows,
                                  std::span<const Label> labels,
                                  const std::unordered_set<Asn>& exclude_members,
                                  std::size_t begin, std::size_t end) {
  PartialAggregate p;
  p.agg.totals.resize(space_count);
  p.members.resize(space_count);
  for (std::size_t i = begin; i < end; ++i) {
    const auto& f = flows[i];
    if (exclude_members.count(f.member_in)) continue;
    p.agg.total_packets += f.packets;
    p.agg.total_bytes += static_cast<double>(f.bytes);
    p.agg.total_flows += 1;
    for (std::size_t s = 0; s < space_count; ++s) {
      const auto c = static_cast<std::size_t>(Classifier::unpack(labels[i], s));
      auto& cell = p.agg.totals[s][c];
      cell.flows += 1;
      cell.packets += f.packets;
      cell.bytes += static_cast<double>(f.bytes);
      p.members[s][c].insert(f.member_in);
    }
  }
  return p;
}

/// Fills in the distinct-member counts and returns the final Aggregate.
Aggregate finalize(PartialAggregate p) {
  for (std::size_t s = 0; s < p.agg.totals.size(); ++s) {
    for (int c = 0; c < kNumClasses; ++c) {
      p.agg.totals[s][c].members = p.members[s][c].size();
    }
  }
  return std::move(p.agg);
}

}  // namespace

Aggregate aggregate_classes(std::size_t space_count,
                            std::span<const net::FlowRecord> flows,
                            std::span<const Label> labels,
                            const std::unordered_set<Asn>& exclude_members) {
  return finalize(accumulate_range(space_count, flows, labels, exclude_members,
                                   0, flows.size()));
}

Aggregate aggregate_classes(std::size_t space_count,
                            std::span<const net::FlowRecord> flows,
                            std::span<const Label> labels,
                            const std::unordered_set<Asn>& exclude_members,
                            util::ThreadPool& pool) {
  const auto chunks =
      util::ThreadPool::partition(0, flows.size(), pool.thread_count());
  if (chunks.size() <= 1) {
    return aggregate_classes(space_count, flows, labels, exclude_members);
  }

  std::vector<PartialAggregate> partials(chunks.size());
  // partition() caps the chunk count at pool.thread_count(), so this
  // outer parallel_for runs exactly one partial per execution lane.
  pool.parallel_for(0, chunks.size(), [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      partials[c] = accumulate_range(space_count, flows, labels,
                                     exclude_members, chunks[c].begin,
                                     chunks[c].end);
    }
  });

  // Deterministic reduction: fold partials in chunk index order.
  PartialAggregate merged = std::move(partials[0]);
  for (std::size_t c = 1; c < partials.size(); ++c) {
    const PartialAggregate& p = partials[c];
    merged.agg.total_packets += p.agg.total_packets;
    merged.agg.total_bytes += p.agg.total_bytes;
    merged.agg.total_flows += p.agg.total_flows;
    for (std::size_t s = 0; s < merged.agg.totals.size(); ++s) {
      for (int cl = 0; cl < kNumClasses; ++cl) {
        merged.agg.totals[s][cl].flows += p.agg.totals[s][cl].flows;
        merged.agg.totals[s][cl].packets += p.agg.totals[s][cl].packets;
        merged.agg.totals[s][cl].bytes += p.agg.totals[s][cl].bytes;
        merged.members[s][cl].insert(p.members[s][cl].begin(),
                                     p.members[s][cl].end());
      }
    }
  }
  return finalize(std::move(merged));
}

}  // namespace spoofscope::classify
