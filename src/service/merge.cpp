#include "service/merge.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace spoofscope::service {

classify::DetectorHealth merge_health(
    std::span<const classify::DetectorHealth> parts) {
  classify::DetectorHealth merged;
  for (const auto& h : parts) {
    merged.regressions += h.regressions;
    merged.late_drops += h.late_drops;
    merged.forced_releases += h.forced_releases;
    merged.member_evictions += h.member_evictions;
    merged.sample_evictions += h.sample_evictions;
    merged.reorder_depth += h.reorder_depth;
    merged.tracked_members += h.tracked_members;
    merged.max_reorder_depth = std::max(merged.max_reorder_depth, h.max_reorder_depth);
    merged.max_window_depth = std::max(merged.max_window_depth, h.max_window_depth);
  }
  return merged;
}

std::string to_json(const ServiceStats& stats) {
  std::ostringstream out;
  out << "{\"shards\":" << stats.shards << ",\"processed\":" << stats.processed
      << ",\"alerts\":" << stats.alerts << ",\"segments\":" << stats.segments
      << ",\"plane_epoch\":" << stats.plane_epoch
      << ",\"detector\":" << classify::to_json(stats.merged) << ",\"per_shard\":[";
  for (std::size_t i = 0; i < stats.per_shard.size(); ++i) {
    if (i != 0) out << ',';
    out << classify::to_json(stats.per_shard[i]);
  }
  out << "]}";
  return out.str();
}

std::string format_alert(const classify::SpoofingAlert& alert) {
  std::ostringstream out;
  out << "alert: member AS" << alert.member << " ts=" << alert.ts
      << " dominant=" << classify::class_name(alert.dominant_class)
      << " spoofed-pkts=" << alert.spoofed_packets_in_window
      << " share=" << util::percent(alert.window_share);
  return out.str();
}

std::string format_health(const classify::DetectorHealth& health) {
  std::ostringstream out;
  out << "health: regressions=" << health.regressions
      << " late_drops=" << health.late_drops
      << " forced_releases=" << health.forced_releases
      << " member_evictions=" << health.member_evictions
      << " sample_evictions=" << health.sample_evictions
      << " max_reorder_depth=" << health.max_reorder_depth
      << " max_window_depth=" << health.max_window_depth;
  return out.str();
}

void sort_alerts(std::vector<classify::SpoofingAlert>& alerts) {
  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const classify::SpoofingAlert& a,
                      const classify::SpoofingAlert& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.member < b.member;
                   });
}

}  // namespace spoofscope::service
