// Fig 11 + Sec 7: selective vs random spoofing, amplifier strategies of
// the top NTP victims, the amplification effect, and the ZMap-scan
// overlap of contacted amplifiers.
#include "bench/common.hpp"

#include "analysis/attack_patterns.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_SrcRatioHistogram(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    auto h = analysis::src_per_dst_ratio(w.trace().flows, w.labels(), idx);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_SrcRatioHistogram)->Unit(benchmark::kMillisecond);

void BM_NtpAnalysis(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    auto ntp = analysis::analyze_ntp(w.trace().flows, w.labels(), idx);
    benchmark::DoNotOptimize(ntp);
  }
}
BENCHMARK(BM_NtpAnalysis)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "Fig 11 + Sec 7 (attack patterns)",
      "~90% of Unrouted destinations receive unique-source floods; Invalid "
      "destinations receive few-source amplification triggers; one member "
      "emits 91.94% of Invalid NTP (top-5: 97.86%); amplification ~10x in "
      "bytes at ~equal packets; 3,865 of 24,328 amplifiers in ZMap scans");
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);

  // Fig 11a.
  const auto hist =
      analysis::src_per_dst_ratio(w.trace().flows, w.labels(), idx, 50);
  static const char* kNames[] = {"Bogon", "Unrouted", "Invalid"};
  std::cout << "Fig 11a — #srcIPs/#pkts histogram per destination (10 bins, "
               "0=selective, 1=random):\n";
  for (int c = 0; c < 3; ++c) {
    std::cout << "  " << util::pad_right(kNames[c], 9) << "("
              << util::pad_left(std::to_string(hist.destinations[c]), 5)
              << " dsts):";
    for (const double f : hist.fractions[c]) std::cout << " " << util::fixed(f, 2);
    std::cout << "\n";
  }

  // Fig 11b + Sec 7 NTP stats.
  const auto ntp = analysis::analyze_ntp(w.trace().flows, w.labels(), idx);
  std::cout << "\nNTP amplification: " << ntp.trigger_packets
            << " trigger pkts, " << ntp.distinct_victims << " victims, "
            << ntp.contributing_members << " members, "
            << ntp.amplifiers_contacted << " amplifiers contacted\n"
            << "  top member " << util::percent(ntp.top_member_share)
            << " (paper 91.94%), top-5 " << util::percent(ntp.top5_member_share)
            << " (paper 97.86%), Invalid-UDP-to-NTP "
            << util::percent(ntp.invalid_udp_ntp_share) << " (paper >90%)\n";
  std::cout << "Fig 11b — top victims (amplifiers ranked by packets):\n";
  for (const auto& v : ntp.top_victims) {
    std::cout << "  " << util::pad_right(v.victim.str(), 16)
              << util::pad_left(std::to_string(v.trigger_packets), 7) << " pkts, "
              << util::pad_left(std::to_string(v.amplifiers), 6)
              << " amplifiers, gini " << util::fixed(v.concentration, 2)
              << (v.concentration < 0.3 ? " (uniform spray)" : " (concentrated)")
              << "\n";
  }

  // Fig 11c.
  const auto ts = analysis::amplification_effect(
      w.trace().flows, w.labels(), idx, w.trace().meta.window_seconds);
  std::cout << "\nFig 11c — amplification effect over both-direction pairs:\n"
            << "  byte amplification " << util::fixed(ts.amplification_factor(), 1)
            << "x (paper: order of magnitude), packet ratio "
            << util::fixed(ts.packet_ratio(), 2) << " (paper: ~1)\n";

  // Sec 7: overlap with an independent NTP scan. The synthetic scan sees
  // a fraction of the real amplifier population plus other servers.
  util::Rng rng(4242);
  std::vector<net::Ipv4Addr> scan;
  for (const auto& amp : w.workload().summary.ntp_amplifiers_contacted) {
    if (rng.chance(0.2)) scan.push_back(amp);  // scan coverage
  }
  for (int i = 0; i < 5000; ++i) scan.push_back(net::Ipv4Addr(rng.next_u32()));
  const auto overlap = analysis::amplifier_scan_overlap(
      w.workload().summary.ntp_amplifiers_contacted, scan);
  std::cout << "  ZMap-style scan overlap: " << overlap << " of "
            << w.workload().summary.ntp_amplifiers_contacted.size()
            << " contacted amplifiers (paper: 3,865 of 24,328)\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
