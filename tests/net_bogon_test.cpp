#include "net/bogon.hpp"

#include <gtest/gtest.h>

namespace spoofscope::net {
namespace {

TEST(Bogon, FourteenPrefixes) {
  EXPECT_EQ(bogon_prefixes().size(), 14u);
}

TEST(Bogon, PrefixesAreDisjoint) {
  const auto bs = bogon_prefixes();
  for (std::size_t i = 0; i < bs.size(); ++i) {
    for (std::size_t j = i + 1; j < bs.size(); ++j) {
      EXPECT_FALSE(bs[i].overlaps(bs[j]))
          << bs[i].str() << " vs " << bs[j].str();
    }
  }
}

TEST(Bogon, ClassifiesKnownRanges) {
  EXPECT_TRUE(is_bogon(Ipv4Addr::from_octets(10, 1, 2, 3)));
  EXPECT_TRUE(is_bogon(Ipv4Addr::from_octets(192, 168, 1, 1)));
  EXPECT_TRUE(is_bogon(Ipv4Addr::from_octets(172, 20, 0, 1)));
  EXPECT_TRUE(is_bogon(Ipv4Addr::from_octets(127, 0, 0, 1)));
  EXPECT_TRUE(is_bogon(Ipv4Addr::from_octets(224, 0, 0, 5)));   // multicast
  EXPECT_TRUE(is_bogon(Ipv4Addr::from_octets(255, 1, 2, 3)));   // future use
  EXPECT_TRUE(is_bogon(Ipv4Addr::from_octets(100, 77, 0, 1)));  // CGN
  EXPECT_TRUE(is_bogon(Ipv4Addr::from_octets(169, 254, 9, 9)));
}

TEST(Bogon, DoesNotFlagPublicSpace) {
  EXPECT_FALSE(is_bogon(Ipv4Addr::from_octets(8, 8, 8, 8)));
  EXPECT_FALSE(is_bogon(Ipv4Addr::from_octets(1, 1, 1, 1)));
  EXPECT_FALSE(is_bogon(Ipv4Addr::from_octets(172, 32, 0, 1)));   // just past RFC1918
  EXPECT_FALSE(is_bogon(Ipv4Addr::from_octets(100, 128, 0, 1)));  // past CGN
  EXPECT_FALSE(is_bogon(Ipv4Addr::from_octets(11, 0, 0, 1)));
  EXPECT_FALSE(is_bogon(Ipv4Addr::from_octets(223, 255, 255, 255)));
}

TEST(Bogon, TotalSpaceMatchesPaperFraction) {
  // Fig 1a: bogon is 13.8% of the IPv4 space.
  const double frac = bogon_slash24() / kTotalSlash24;
  EXPECT_NEAR(frac, 0.138, 0.005);
}

}  // namespace
}  // namespace spoofscope::net
