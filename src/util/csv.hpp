// Minimal CSV writing/reading for exporting analysis results. Writing
// escapes per RFC 4180; reading handles quoted fields (enough for our own
// output and for hand-written fixture files in tests).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spoofscope::util {

/// Streams rows to an std::ostream as CSV.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields are escaped as needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: builds a row from heterogeneous printable values.
  template <typename... Ts>
  void row_of(const Ts&... vals) {
    std::vector<std::string> fields;
    (fields.push_back(to_field(vals)), ...);
    row(fields);
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  template <typename T>
  static std::string to_field(const T& v) { return std::to_string(v); }

  std::ostream& out_;
};

/// Escapes a single CSV field (quotes it when it contains , " or newline).
std::string csv_escape(std::string_view field);

/// Parses one CSV line into fields (handles quoting). Returns false on a
/// malformed line (unterminated quote).
bool csv_parse_line(std::string_view line, std::vector<std::string>& out);

}  // namespace spoofscope::util
