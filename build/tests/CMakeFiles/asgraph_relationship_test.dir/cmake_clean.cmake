file(REMOVE_RECURSE
  "CMakeFiles/asgraph_relationship_test.dir/asgraph_relationship_test.cpp.o"
  "CMakeFiles/asgraph_relationship_test.dir/asgraph_relationship_test.cpp.o.d"
  "asgraph_relationship_test"
  "asgraph_relationship_test.pdb"
  "asgraph_relationship_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asgraph_relationship_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
