#include "state/delta_chain.hpp"

#include <filesystem>
#include <span>
#include <utility>
#include <vector>

#include "net/mapped_trace.hpp"
#include "state/snapshot.hpp"
#include "util/fault_injection.hpp"

namespace spoofscope::state {

namespace {

std::uint64_t fnv64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Digest of a file's on-disk image (what save_delta() returned when it
/// wrote the file — write_atomic persists serialize()'s bytes verbatim).
std::uint64_t file_digest(const std::string& path) {
  const net::MappedTrace file(path);
  return fnv64(file.bytes());
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

}  // namespace

std::string shard_checkpoint_base(const std::string& dir, std::size_t index,
                                  std::size_t count) {
  return (std::filesystem::path(dir) /
          ("shard-" + std::to_string(index) + "-of-" + std::to_string(count) +
           ".ckpt"))
      .string();
}

DeltaChain::DeltaChain(std::string base_path, std::size_t max_chain)
    : base_path_(std::move(base_path)),
      max_chain_(max_chain == 0 ? 1 : max_chain) {}

std::string DeltaChain::delta_path(std::uint64_t seq) const {
  return base_path_ + ".d" + std::to_string(seq);
}

std::size_t DeltaChain::unlink_deltas_from(std::uint64_t seq) const {
  std::size_t removed = 0;
  std::error_code ec;
  while (std::filesystem::remove(delta_path(seq), ec) && !ec) {
    ++removed;
    ++seq;
  }
  return removed;
}

DeltaResume DeltaChain::resume(classify::StreamingDetector& detector,
                               util::ErrorPolicy policy,
                               util::IngestStats* stats) {
  DeltaResume res;
  have_base_ = false;
  next_seq_ = 1;
  last_digest_ = 0;

  if (!file_exists(base_path_)) {
    if (file_exists(delta_path(1))) {
      // Orphaned links: a chain we cannot anchor. Loud refusal in
      // strict; unlink and start fresh in skip.
      if (policy == util::ErrorPolicy::kStrict) {
        throw SnapshotError(util::ErrorKind::kTruncated,
                            "delta chain has no base checkpoint",
                            "file " + base_path_);
      }
      res.deltas_dropped = unlink_deltas_from(1);
      if (stats != nullptr) stats->skip(util::ErrorKind::kTruncated, 0);
    }
    return res;  // clean first run
  }

  if (!detector.restore(base_path_, policy, stats, &res.extra)) {
    // Damaged base, skip mode: restore() already reset to fresh state;
    // any trailing links belong to the unusable chain.
    res.deltas_dropped = unlink_deltas_from(1);
    return res;
  }
  res.restored = true;
  have_base_ = true;
  last_digest_ = file_digest(base_path_);

  for (std::uint64_t seq = 1;; ++seq) {
    const std::string path = delta_path(seq);
    if (!file_exists(path)) break;
    try {
      const net::MappedTrace file(path);
      std::vector<std::uint8_t> scratch;
      const std::span<const std::uint8_t> bytes =
          with_injected_read_faults("delta.load", file.bytes(), scratch);
      detector.apply_delta(bytes, path, seq, last_digest_, &res.extra);
      last_digest_ = fnv64(file.bytes());
      next_seq_ = seq + 1;
      ++res.deltas_applied;
    } catch (const util::InjectedCrash&) {
      throw;  // a modelled crash is a process death, not recoverable damage
    } catch (const SnapshotError& e) {
      if (policy == util::ErrorPolicy::kStrict) throw;
      if (stats != nullptr) stats->skip(e.kind(), 0);
      // Truncate: the detector sits at cut seq-1 (apply_delta commits
      // nothing on failure); everything from the damaged link on is
      // stale.
      res.deltas_dropped = unlink_deltas_from(seq);
      break;
    } catch (const std::runtime_error&) {
      // Unreadable link (open/map failure): same truncation contract.
      if (policy == util::ErrorPolicy::kStrict) throw;
      if (stats != nullptr) stats->skip(util::ErrorKind::kTruncated, 0);
      res.deltas_dropped = unlink_deltas_from(seq);
      break;
    }
  }
  return res;
}

bool DeltaChain::append(classify::StreamingDetector& detector,
                        const classify::DetectorCheckpointExtra& extra) {
  if (!have_base_ || chain_length() >= max_chain_) {
    save_full(detector, extra);
    return true;
  }
  const std::string path = delta_path(next_seq_);
  last_digest_ = detector.save_delta(path, extra, next_seq_, last_digest_);
  ++next_seq_;
  return false;
}

void DeltaChain::save_full(classify::StreamingDetector& detector,
                           const classify::DetectorCheckpointExtra& extra) {
  detector.save(base_path_, extra);
  detector.clear_dirty();
  have_base_ = true;
  last_digest_ = file_digest(base_path_);
  unlink_deltas_from(1);
  next_seq_ = 1;
}

}  // namespace spoofscope::state
