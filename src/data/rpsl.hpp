// RPSL-lite: a small subset of the Routing Policy Specification Language
// (RFC 2622) used by the Internet Routing Registries. The paper mined
// WHOIS route objects and import/export policies by hand and lists
// "automated parsing and evaluation of the import and export ACLs" as
// future work — this module implements that: it serializes a
// WhoisRegistry to IRR-style text objects and parses such text back into
// a registry usable by the Sec 4.4 false-positive hunt.
//
// Supported object classes:
//
//   route:      20.0.50.0/24        aut-num:    AS64500
//   origin:     AS64500             import:     from AS64501 accept ANY
//   descr:      provider-assigned   export:     to AS64501 announce ANY
//   mnt-by:     AS64499-MNT
//
// A `route` object whose `mnt-by` names a different AS than its `origin`
// documents provider-assigned space (customer = mnt-by, provider =
// origin). An `aut-num` object documents links via its import/export
// peers.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "data/whois.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::data {

/// A parsed `route` object.
struct RouteObject {
  net::Prefix prefix;
  net::Asn origin = net::kNoAsn;      ///< the AS announcing the prefix
  net::Asn maintainer = net::kNoAsn;  ///< holder per mnt-by (0 = same as origin)
  std::string descr;

  friend bool operator==(const RouteObject&, const RouteObject&) = default;
};

/// A parsed `aut-num` object: the AS plus the peers named in its
/// import/export policy lines.
struct AutNumObject {
  net::Asn asn = net::kNoAsn;
  std::vector<net::Asn> import_peers;
  std::vector<net::Asn> export_peers;

  friend bool operator==(const AutNumObject&, const AutNumObject&) = default;
};

/// The parsed content of an RPSL-lite database.
struct RpslDatabase {
  std::vector<RouteObject> routes;
  std::vector<AutNumObject> aut_nums;
};

/// Serializes one route object (multi-line, blank-line terminated).
std::string to_rpsl(const RouteObject& r);

/// Serializes one aut-num object.
std::string to_rpsl(const AutNumObject& a);

/// Renders the registry as an RPSL-lite database: one route object per
/// provider-assigned range (mnt-by = the customer) and one aut-num object
/// per AS with documented invisible links (listed as import+export peers).
std::string registry_to_rpsl(const WhoisRegistry& registry);

/// Parses an RPSL-lite stream. Objects are separated by blank lines;
/// '%'/'#' comment lines are skipped. Unknown attributes are ignored
/// (IRRs are full of them); malformed values of known attributes throw
/// std::runtime_error with the offending line.
RpslDatabase parse_rpsl(std::istream& in);

/// Policy-aware variant. kStrict behaves exactly like parse_rpsl(in);
/// kSkip quarantines whole objects — one malformed attribute line drops
/// the object it belongs to (never its neighbours), accounted in `stats`
/// (optional), and parsing continues at the next blank-line boundary.
RpslDatabase parse_rpsl(std::istream& in, util::ErrorPolicy policy,
                        util::IngestStats* stats = nullptr);

/// Rebuilds a WhoisRegistry from parsed objects: route objects with a
/// foreign mnt-by become provider-assigned ranges; mutual import+export
/// peers in aut-num objects become documented links.
WhoisRegistry registry_from_rpsl(const RpslDatabase& db);

}  // namespace spoofscope::data
