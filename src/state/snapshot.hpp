// Durable state plane: the one snapshot container every persistent
// artifact (detector checkpoints, compiled-plane cache entries) is
// written in. Same discipline as trace v2 — little-endian fields,
// FNV-1a checksums, versioned header — but generalized to typed
// sections so each payload kind can evolve independently:
//
//   [header 32 B][section table 16 B x N][checksum 4 B][payload ...]
//
//   header:   magic "SNAP", container version, payload kind, payload
//             version, section count, total byte size of the file
//   table:    per section: id, FNV-1a-32 of the payload, byte length
//   checksum: FNV-1a-32 over header + table (any metadata damage is
//             as loud as payload damage)
//   payloads: stored in table order, each 8-byte aligned so mmap'd
//             loads can reinterpret u32/u64 lanes in place; alignment
//             padding must be zero (validated, so every byte of the
//             file is covered by some check)
//
// The total-size field pins the exact file length: truncation and
// trailing garbage are both detected, not just unlucky corruption.
//
// Crash safety: write_atomic() writes <path>.tmp, fsyncs it, renames
// over <path> and fsyncs the directory, so a crash leaves either the
// old snapshot or the new one — never a torn file.
//
// Error contract: parsing throws SnapshotError (carrying a
// util::ErrorKind) on any damage. Policy-aware callers (detector
// restore, plane cache) translate: strict rethrows, skip accounts the
// kind in an IngestStats and falls back to fresh state / recompile.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error_policy.hpp"

namespace spoofscope::state {

inline constexpr std::uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"
inline constexpr std::uint32_t kContainerVersion = 1;

/// What the payload sections describe. New kinds append; readers reject
/// a kind they were not asked to open.
enum class PayloadKind : std::uint32_t {
  kDetector = 1,       ///< StreamingDetector checkpoint
  kPlane = 2,          ///< compiled FlatClassifier plane
  kDetectorDelta = 3,  ///< delta checkpoint chained off a full kDetector
};

/// Any defect found while parsing a snapshot: structural damage,
/// checksum mismatch, version/kind mismatch, semantic mismatch. Carries
/// the ErrorKind bucket so skip-mode callers can account it, plus
/// whatever context the thrower knew (file path, section id) so
/// corrupted-checkpoint reports are actionable from the CLI.
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(util::ErrorKind kind, const std::string& what)
      : std::runtime_error("snapshot: " + what), kind_(kind) {}

  /// `context` names where the damage was found, e.g.
  /// "file out.ckpt, section 3". Empty context degrades to the plain
  /// message.
  SnapshotError(util::ErrorKind kind, const std::string& what,
                const std::string& context)
      : std::runtime_error("snapshot: " + what +
                           (context.empty() ? "" : " [" + context + "]")),
        kind_(kind) {}

  util::ErrorKind kind() const { return kind_; }

 private:
  util::ErrorKind kind_;
};

/// Little-endian section payload builder (the put_* helpers from the
/// trace format, growing a byte vector). Doubles are stored as their
/// IEEE-754 bit pattern so round-trips are bit-exact.
class SectionBuilder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void bytes(const void* data, std::size_t n);

  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Little-endian cursor over one section's payload. Reading past the
/// end throws SnapshotError(kTruncated) — restore code never has to
/// bounds-check by hand.
class SectionReader {
 public:
  explicit SectionReader(std::span<const std::uint8_t> payload)
      : data_(payload) {}

  /// Labeled variant: `context` (e.g. "file out.ckpt, section 3") is
  /// carried into every underrun error this reader throws.
  SectionReader(std::span<const std::uint8_t> payload, std::string context)
      : data_(payload), context_(std::move(context)) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// A raw byte view into the section (zero-copy; valid while the
  /// backing snapshot bytes live).
  std::span<const std::uint8_t> bytes(std::size_t n);

  std::size_t remaining() const { return data_.size() - off_; }

 private:
  const std::uint8_t* need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
  std::string context_;
};

/// Assembles and persists one snapshot.
class SnapshotWriter {
 public:
  SnapshotWriter(PayloadKind kind, std::uint32_t payload_version)
      : kind_(kind), payload_version_(payload_version) {}

  /// Appends a section. Ids need not be unique or ordered, but readers
  /// look up the first match, so one id per section is the convention.
  void add_section(std::uint32_t id, std::vector<std::uint8_t> payload) {
    sections_.emplace_back(id, std::move(payload));
  }

  /// The complete snapshot image (header + table + checksum + aligned
  /// payloads).
  std::vector<std::uint8_t> serialize() const;

  /// Crash-safe write: serialize to <path>.tmp, fsync, rename over
  /// <path>, fsync the directory. Throws std::runtime_error on I/O
  /// failure (a failed checkpoint must never pass silently).
  void write_atomic(const std::string& path) const;

 private:
  PayloadKind kind_;
  std::uint32_t payload_version_;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> sections_;
};

/// Parsed, validated view into a snapshot's bytes (zero-copy: spans
/// point into the caller's buffer, which must outlive the view).
class SnapshotView {
 public:
  PayloadKind kind() const { return kind_; }
  std::uint32_t payload_version() const { return payload_version_; }
  std::size_t section_count() const { return sections_.size(); }

  /// The payload of the first section with `id`, or std::nullopt-like
  /// empty-handed throw: section(id) throws SnapshotError(kParse) when
  /// absent, has(id) probes first.
  bool has(std::uint32_t id) const;
  std::span<const std::uint8_t> section(std::uint32_t id) const;

 private:
  friend SnapshotView parse_snapshot(std::span<const std::uint8_t>,
                                     PayloadKind, std::uint32_t,
                                     const std::string&);

  PayloadKind kind_ = PayloadKind::kDetector;
  std::uint32_t payload_version_ = 0;
  std::vector<std::pair<std::uint32_t, std::span<const std::uint8_t>>> sections_;
};

/// Parses `bytes` as a snapshot of `expected_kind` at
/// `expected_payload_version`, validating every checksum, the pinned
/// total size and the zero alignment padding. Throws SnapshotError on
/// any defect; policy-aware callers translate per their ErrorPolicy.
/// `origin` names the source file: it is woven into every error message
/// (together with the section id for per-section damage) so corruption
/// reports say which file and where.
SnapshotView parse_snapshot(std::span<const std::uint8_t> bytes,
                            PayloadKind expected_kind,
                            std::uint32_t expected_payload_version,
                            const std::string& origin = {});

/// Fault-injection shim for snapshot reads. With no installed
/// util::FaultInjector (or none armed at `site`) this returns `bytes`
/// untouched. When a read fault fires, the damaged image (truncated
/// span for a short read, one 4 KiB page zeroed for a torn mmap page)
/// is materialized in `scratch` and the returned span views scratch —
/// the caller's original buffer is never modified.
std::span<const std::uint8_t> with_injected_read_faults(
    std::string_view site, std::span<const std::uint8_t> bytes,
    std::vector<std::uint8_t>& scratch);

}  // namespace spoofscope::state
