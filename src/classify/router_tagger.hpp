// Sec 5.2: distinguishing spoofed from stray traffic. Invalid packets
// whose sources are known router interface addresses (from the Ark
// dataset) are likely stray; members whose Invalid traffic is dominated
// by router addresses are excluded from the spoofing analyses.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "classify/classifier.hpp"
#include "data/ark.hpp"
#include "net/trace.hpp"

namespace spoofscope::classify {

/// Per-member router-IP statistics over Invalid traffic (Fig 7).
struct RouterStats {
  Asn member = net::kNoAsn;
  std::uint64_t invalid_packets = 0;
  std::uint64_t router_invalid_packets = 0;

  double router_fraction() const {
    return invalid_packets == 0
               ? 0.0
               : static_cast<double>(router_invalid_packets) / invalid_packets;
  }
};

/// Protocol breakdown of traffic sourced from router addresses (the
/// paper: 83% ICMP, 14.4% UDP — 76.3% of it to NTP — and 2.3% TCP).
struct RouterProtocolBreakdown {
  double icmp = 0;
  double udp = 0;
  double tcp = 0;
  double udp_to_ntp = 0;  ///< fraction of the UDP share destined to port 123
};

/// Computes per-member Invalid vs router-sourced-Invalid packet counts
/// for the method at `space_idx`.
std::vector<RouterStats> router_ip_stats(std::span<const net::FlowRecord> flows,
                                         std::span<const Label> labels,
                                         std::size_t space_idx,
                                         const data::ArkDataset& ark);

/// Members whose Invalid packets consist of >= `threshold` router-sourced
/// packets (the paper uses 50%).
std::unordered_set<Asn> members_to_exclude(std::span<const RouterStats> stats,
                                           double threshold = 0.5);

/// Protocol mix of all flows with router source addresses.
RouterProtocolBreakdown router_protocol_breakdown(
    std::span<const net::FlowRecord> flows, const data::ArkDataset& ark);

}  // namespace spoofscope::classify
