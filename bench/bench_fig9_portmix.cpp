// Fig 9: the application mix per class — spoofed TCP destined to
// HTTP/HTTPS (floods), Invalid UDP overwhelmingly to NTP (amplification
// triggers), Unrouted UDP showing the Steam port.
#include "bench/common.hpp"

#include "analysis/portmix.hpp"
#include "net/protocols.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_PortMix(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    auto mix = analysis::port_mix(w.trace().flows, w.labels(), idx);
    benchmark::DoNotOptimize(mix);
  }
}
BENCHMARK(BM_PortMix)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "Fig 9 (port mix per class)",
      ">90% of Invalid UDP packets to DST 123 (NTP); spoofed TCP mostly "
      "DST 80/443; Unrouted UDP shows 27015 (Steam); regular web traffic "
      "symmetric in SRC/DST 80/443");
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  const auto mix = analysis::port_mix(w.trace().flows, w.labels(), idx);
  std::cout << analysis::format_port_mix(mix);

  using analysis::Direction;
  using analysis::TrafficClass;
  using analysis::Transport;
  std::cout << "\nkey observations:\n"
            << "  Invalid UDP -> DST 123: "
            << util::percent(mix.fraction_of(TrafficClass::kInvalid,
                                             Transport::kUdp, Direction::kDst,
                                             net::ports::kNtp))
            << " (paper >90%)\n"
            << "  Unrouted UDP -> DST 27015: "
            << util::percent(mix.fraction_of(TrafficClass::kUnrouted,
                                             Transport::kUdp, Direction::kDst,
                                             net::ports::kSteam))
            << " (paper: pronounced)\n"
            << "  Unrouted TCP -> DST 80+443: "
            << util::percent(
                   mix.fraction_of(TrafficClass::kUnrouted, Transport::kTcp,
                                   Direction::kDst, net::ports::kHttp) +
                   mix.fraction_of(TrafficClass::kUnrouted, Transport::kTcp,
                                   Direction::kDst, net::ports::kHttps))
            << " (paper: majority)\n"
            << "  Regular TCP SRC 80+443: "
            << util::percent(
                   mix.fraction_of(TrafficClass::kValid, Transport::kTcp,
                                   Direction::kSrc, net::ports::kHttp) +
                   mix.fraction_of(TrafficClass::kValid, Transport::kTcp,
                                   Direction::kSrc, net::ports::kHttps))
            << " (server->client half of the web mix)\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
