#include "util/strings.hpp"

#include <cctype>
#include <cstdint>
#include <limits>

namespace spoofscope::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  std::uint64_t v;
  if (!parse_u64(s, v) || v > std::numeric_limits<std::uint32_t>::max()) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace spoofscope::util
