file(REMOVE_RECURSE
  "libspoofscope_data.a"
)
