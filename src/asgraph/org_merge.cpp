#include "asgraph/org_merge.hpp"

#include <algorithm>
#include <stdexcept>

namespace spoofscope::asgraph {

OrgMap::OrgMap(std::vector<std::vector<Asn>> groups) {
  for (auto& g : groups) {
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    if (g.size() < 2) continue;  // singletons are no-ops
    const std::size_t idx = groups_.size();
    for (const Asn a : g) {
      if (!group_index_.emplace(a, idx).second) {
        throw std::invalid_argument("OrgMap: AS " + std::to_string(a) +
                                    " appears in multiple organizations");
      }
    }
    groups_.push_back(std::move(g));
  }
}

std::span<const Asn> OrgMap::group_of(Asn asn) const {
  const auto it = group_index_.find(asn);
  if (it == group_index_.end()) return {};
  return groups_[it->second];
}

std::vector<std::pair<Asn, Asn>> OrgMap::mesh_edges() const {
  std::vector<std::pair<Asn, Asn>> out;
  for (const auto& g : groups_) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      for (std::size_t j = 0; j < g.size(); ++j) {
        if (i != j) out.emplace_back(g[i], g[j]);
      }
    }
  }
  return out;
}

}  // namespace spoofscope::asgraph
