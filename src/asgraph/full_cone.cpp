#include "asgraph/full_cone.hpp"

#include <bit>

namespace spoofscope::asgraph {

DescendantSets::DescendantSets(const AsGraph& g)
    : scc_(strongly_connected_components(g)) {
  const std::size_t nc = scc_.component_count;
  words_per_row_ = (nc + 63) / 64;
  bits_.assign(nc * words_per_row_, 0);
  comp_reach_count_.assign(nc, 0);

  // Component ids are in reverse topological order: successors of c have
  // smaller ids, so ascending order processes children before parents.
  for (std::uint32_t c = 0; c < nc; ++c) {
    std::uint64_t* r = bits_.data() + c * words_per_row_;
    r[c / 64] |= std::uint64_t(1) << (c % 64);
    for (const std::uint32_t d : scc_.dag_successors[c]) {
      const std::uint64_t* rd = row(d);
      for (std::size_t w = 0; w < words_per_row_; ++w) r[w] |= rd[w];
    }
  }

  // Reachable node counts: sum of member counts over reachable components.
  for (std::uint32_t c = 0; c < nc; ++c) {
    const std::uint64_t* r = row(c);
    std::size_t count = 0;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bitsw = r[w];
      while (bitsw) {
        const int b = std::countr_zero(bitsw);
        bitsw &= bitsw - 1;
        count += scc_.members[w * 64 + b].size();
      }
    }
    comp_reach_count_[c] = count;
  }
}

bool DescendantSets::reaches(std::size_t from, std::size_t to) const {
  const std::uint32_t cf = scc_.component_of[from];
  const std::uint32_t ct = scc_.component_of[to];
  return (row(cf)[ct / 64] >> (ct % 64)) & 1;
}

std::size_t DescendantSets::descendant_count(std::size_t from) const {
  return comp_reach_count_[scc_.component_of[from]];
}

std::vector<std::uint32_t> DescendantSets::descendants(std::size_t from) const {
  std::vector<std::uint32_t> out;
  const std::uint64_t* r = row(scc_.component_of[from]);
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t bitsw = r[w];
    while (bitsw) {
      const int b = std::countr_zero(bitsw);
      bitsw &= bitsw - 1;
      for (const std::uint32_t m : scc_.members[w * 64 + b]) out.push_back(m);
    }
  }
  return out;
}

bool FullCone::in_cone(Asn holder, Asn origin) const {
  if (holder == origin) return true;
  const auto h = graph_.index_of(holder);
  const auto o = graph_.index_of(origin);
  if (!h || !o) return false;
  return desc_.reaches(*h, *o);
}

std::vector<Asn> FullCone::cone_of(Asn holder) const {
  const auto h = graph_.index_of(holder);
  if (!h) return {};
  std::vector<Asn> out;
  for (const std::uint32_t idx : desc_.descendants(*h)) {
    out.push_back(graph_.asn_at(idx));
  }
  return out;
}

std::size_t FullCone::cone_size(Asn holder) const {
  const auto h = graph_.index_of(holder);
  return h ? desc_.descendant_count(*h) : 0;
}

}  // namespace spoofscope::asgraph
