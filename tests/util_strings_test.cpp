#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace spoofscope::util {
namespace {

TEST(Split, BasicSplit) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a..b.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hi\t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(ParseU64, ValidNumbers) {
  std::uint64_t v;
  ASSERT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, ~0ULL);
}

TEST(ParseU64, RejectsGarbage) {
  std::uint64_t v;
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
}

TEST(ParseU32, RangeChecked) {
  std::uint32_t v;
  ASSERT_TRUE(parse_u32("4294967295", v));
  EXPECT_EQ(v, ~0u);
  EXPECT_FALSE(parse_u32("4294967296", v));
}

TEST(AllDigits, Classification) {
  EXPECT_TRUE(all_digits("0123"));
  EXPECT_FALSE(all_digits(""));
  EXPECT_FALSE(all_digits("12 "));
  EXPECT_FALSE(all_digits("1.2"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
}

}  // namespace
}  // namespace spoofscope::util
