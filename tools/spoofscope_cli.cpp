// spoofscope — command-line front end.
//
// Operates purely on files, so it works on real captured data just as on
// simulated artifacts:
//
//   spoofscope generate --out DIR [--seed N] [--paper]
//       Simulate a world and write its artifacts: topology.txt,
//       ixp.trace (binary flows), route-server.mrt and collector MRT
//       feeds, registry.rpsl.
//
//   spoofscope classify --mrt FILE[,FILE...] --trace FILE
//              [--rpsl FILE] [--method METHOD] [--labels OUT.csv]
//       Build the routing view from MRT-lite feeds, infer per-member
//       valid space, classify every flow (Fig 3) and print Table-1-style
//       totals. METHOD is one of: naive, cc, cc+org, full, full+org
//       (default full+org). --rpsl whitelists provider-assigned ranges
//       and documented links before classification (Sec 4.4).
//
//   spoofscope report --mrt FILE[,FILE...] --trace FILE [--rpsl FILE]
//       Full study output: Table 1 column (chosen method), Venn, member
//       share quantiles and the NTP attack summary.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/attack_patterns.hpp"
#include "analysis/filtering_strategy.hpp"
#include "analysis/member_stats.hpp"
#include "analysis/table1.hpp"
#include "analysis/venn.hpp"
#include "bgp/mrt_lite.hpp"
#include "bgp/simulator.hpp"
#include "classify/pipeline.hpp"
#include "data/rpsl.hpp"
#include "inference/builder.hpp"
#include "net/trace.hpp"
#include "scenario/scenario.hpp"
#include "topo/serialize.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace spoofscope;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  spoofscope generate --out DIR [--seed N] [--paper] [--threads N]\n"
      "                      [--engine trie|flat]\n"
      "  spoofscope classify --mrt FILES --trace FILE [--rpsl FILE]\n"
      "                      [--method naive|cc|cc+org|full|full+org]\n"
      "                      [--labels OUT.csv] [--threads N]\n"
      "                      [--engine trie|flat]\n"
      "  spoofscope report   --mrt FILES --trace FILE [--rpsl FILE]\n"
      "                      [--threads N] [--engine trie|flat]\n"
      "\n"
      "--threads N runs valid-space construction and classification on N\n"
      "worker threads (0 = hardware concurrency, default 1 = sequential);\n"
      "results are identical for every N.\n"
      "--engine flat compiles the classifier into the DIR-24-8 flat plane\n"
      "(O(1) per-flow lookups) before classifying; labels are identical\n"
      "to the default trie engine.\n";
  std::exit(error.empty() ? 0 : 2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv, int from) {
  std::map<std::string, std::string> flags;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("unexpected argument: " + key);
    key = key.substr(2);
    if (key == "paper") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      usage("missing value for --" + key);
    }
  }
  return flags;
}

std::size_t threads_from(const std::map<std::string, std::string>& flags) {
  if (!flags.count("threads")) return 1;
  return static_cast<std::size_t>(
      std::strtoull(flags.at("threads").c_str(), nullptr, 10));
}

classify::Engine engine_from(const std::map<std::string, std::string>& flags) {
  if (!flags.count("engine")) return classify::Engine::kTrie;
  const auto engine = classify::parse_engine(flags.at("engine"));
  if (!engine) usage("unknown engine: " + flags.at("engine"));
  return *engine;
}

inference::Method method_from(const std::string& name) {
  if (name == "naive") return inference::Method::kNaive;
  if (name == "cc") return inference::Method::kCustomerCone;
  if (name == "cc+org") return inference::Method::kCustomerConeOrg;
  if (name == "full") return inference::Method::kFullCone;
  if (name == "full+org") return inference::Method::kFullConeOrg;
  usage("unknown method: " + name);
}

/// Shared loading for classify/report.
struct LoadedWorld {
  bgp::RoutingTable table;
  net::Trace trace;
  std::optional<data::WhoisRegistry> whois;
};

LoadedWorld load(const std::map<std::string, std::string>& flags) {
  if (!flags.count("mrt")) usage("--mrt is required");
  if (!flags.count("trace")) usage("--trace is required");

  LoadedWorld world;
  bgp::RoutingTableBuilder builder;
  for (const auto part : util::split(flags.at("mrt"), ',')) {
    std::ifstream in{std::string(part)};
    if (!in) usage("cannot open MRT file: " + std::string(part));
    builder.ingest(bgp::read_mrt(in));
  }
  world.table = builder.build();

  std::ifstream tin(flags.at("trace"), std::ios::binary);
  if (!tin) usage("cannot open trace file: " + flags.at("trace"));
  world.trace = net::read_trace(tin);

  if (flags.count("rpsl")) {
    std::ifstream rin(flags.at("rpsl"));
    if (!rin) usage("cannot open RPSL file: " + flags.at("rpsl"));
    world.whois = data::registry_from_rpsl(data::parse_rpsl(rin));
  }
  return world;
}

std::vector<net::Asn> members_of(const net::Trace& trace) {
  std::vector<net::Asn> members;
  for (const auto& f : trace.flows) members.push_back(f.member_in);
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  return members;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  if (!flags.count("out")) usage("--out is required");
  const std::string dir = flags.at("out");
  std::filesystem::create_directories(dir);

  scenario::ScenarioParams params = flags.count("paper")
                                        ? scenario::ScenarioParams::paper()
                                        : scenario::ScenarioParams::small();
  if (flags.count("seed")) {
    params.seed = std::strtoull(flags.at("seed").c_str(), nullptr, 10);
  }
  params.threads = threads_from(flags);
  params.engine = engine_from(flags);
  const auto world = scenario::build_scenario(params);

  {
    std::ofstream out(dir + "/topology.txt");
    topo::write_topology(out, world->topology());
  }
  {
    std::ofstream out(dir + "/ixp.trace", std::ios::binary);
    net::write_trace(out, world->trace());
  }
  {
    const bgp::Simulator sim(world->topology());
    const auto plan =
        bgp::make_announcement_plan(world->topology(), params.plan,
                                    params.seed ^ 0xb1a);
    const bgp::RouteFabric fabric(sim, plan);
    bgp::CollectorSpec rs;
    rs.name = "ixp-route-server";
    rs.feeders = world->ixp().route_server_feeders();
    rs.full_feed = false;
    std::ofstream out(dir + "/route-server.mrt");
    bgp::collect_records(fabric, rs, [&out](const bgp::MrtRecord& r) {
      std::visit([&out](const auto& rec) { out << bgp::to_mrt_line(rec) << '\n'; },
                 r);
    });
  }
  {
    std::ofstream out(dir + "/registry.rpsl");
    out << data::registry_to_rpsl(world->whois());
  }
  std::cout << "wrote topology.txt, ixp.trace, route-server.mrt, registry.rpsl"
            << " to " << dir << "\n"
            << "  " << world->topology().as_count() << " ASes, "
            << world->ixp().member_count() << " members, "
            << world->trace().flows.size() << " sampled flows\n";
  return 0;
}

int cmd_classify(const std::map<std::string, std::string>& flags, bool report) {
  auto world = load(flags);
  const auto method = method_from(
      flags.count("method") ? flags.at("method") : std::string("full+org"));

  util::ThreadPool pool(threads_from(flags));
  const auto members = members_of(world.trace);
  inference::ValidSpaceFactory factory(world.table, asgraph::OrgMap{});
  std::vector<inference::ValidSpace> spaces;
  spaces.push_back(factory.build(method, members, pool));
  classify::Classifier classifier(world.table, std::move(spaces));

  // RPSL whitelist (Sec 4.4) applied up front.
  if (world.whois) {
    auto& space = classifier.mutable_space(0);
    for (const net::Asn m : members) {
      std::vector<net::Prefix> extra = world.whois->provider_assigned_of(m);
      if (!extra.empty()) {
        space.extend(m, trie::IntervalSet::from_prefixes(extra));
      }
    }
  }

  // Classify on the selected engine. The flat plane is compiled after
  // the RPSL whitelist so the extend()ed spaces are baked in.
  const auto engine = engine_from(flags);
  std::vector<classify::Label> labels;
  if (engine == classify::Engine::kFlat) {
    const auto flat = classify::FlatClassifier::compile(classifier, pool);
    labels = classify::classify_trace(flat, world.trace.flows, pool);
  } else {
    labels = classify::classify_trace(classifier, world.trace.flows, pool);
  }

  // Totals.
  const auto agg = classify::aggregate_classes(classifier, world.trace.flows,
                                               labels, {}, pool);
  std::cout << "classified " << world.trace.flows.size() << " flows from "
            << members.size() << " members under "
            << inference::method_name(method) << " (routing view: "
            << world.table.prefixes().size() << " prefixes, "
            << classify::engine_name(engine) << " engine)\n\n";
  static const char* kClassNames[] = {"Bogon", "Unrouted", "Invalid", "Valid"};
  for (int c = 0; c < classify::kNumClasses; ++c) {
    const auto& cell = agg.totals[0][c];
    std::cout << "  " << util::pad_right(kClassNames[c], 9)
              << util::pad_left(std::to_string(cell.members) + " members", 14)
              << util::pad_left(util::human_count(cell.packets) + " pkts", 15)
              << util::pad_left(util::percent(cell.packets / agg.total_packets),
                                10)
              << util::pad_left(util::human_bytes(cell.bytes), 12) << "\n";
  }

  if (flags.count("labels")) {
    std::ofstream out(flags.at("labels"));
    out << "ts,src,dst,member,class\n";
    for (std::size_t i = 0; i < world.trace.flows.size(); ++i) {
      const auto& f = world.trace.flows[i];
      out << f.ts << ',' << f.src.str() << ',' << f.dst.str() << ','
          << f.member_in << ','
          << classify::class_name(classify::Classifier::unpack(labels[i], 0))
          << '\n';
    }
    std::cout << "\nper-flow labels written to " << flags.at("labels") << "\n";
  }

  if (report) {
    // Member-level analyses (no IXP metadata available from files: types
    // default to Other).
    const ixp::Ixp no_ixp;  // empty: member types unknown from files
    const auto counts =
        analysis::per_member_counts(world.trace.flows, labels, 0, no_ixp);
    std::cout << "\n" << analysis::format_venn(analysis::venn_membership(counts));
    std::map<analysis::FilteringStrategy, std::size_t> strategies;
    for (const auto& mc : counts) {
      ++strategies[analysis::deduce_strategy(mc)];
    }
    std::cout << "\nDeduced filtering strategies:\n";
    for (const auto& [s, n] : strategies) {
      std::cout << "  " << util::pad_right(analysis::strategy_name(s), 18) << n
                << "\n";
    }
    const auto ntp = analysis::analyze_ntp(world.trace.flows, labels, 0);
    std::cout << "\nNTP amplification: " << ntp.trigger_packets
              << " trigger pkts from " << ntp.distinct_victims
              << " victim IPs towards " << ntp.amplifiers_contacted
              << " amplifiers; top member share "
              << util::percent(ntp.top_member_share) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "classify") return cmd_classify(flags, /*report=*/false);
    if (cmd == "report") return cmd_classify(flags, /*report=*/true);
    if (cmd == "help" || cmd == "--help") usage();
    usage("unknown command: " + cmd);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
