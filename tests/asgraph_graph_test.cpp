#include "asgraph/graph.hpp"

#include <gtest/gtest.h>

#include "asgraph/scc.hpp"
#include "net/prefix.hpp"

namespace spoofscope::asgraph {
namespace {

using net::pfx;

TEST(AsGraph, BasicConstruction) {
  AsGraph g({1, 2, 3}, {{1, 2}, {2, 3}});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  const auto i1 = g.index_of(1);
  ASSERT_TRUE(i1);
  EXPECT_EQ(g.asn_at(*i1), 1u);
  EXPECT_FALSE(g.index_of(42));
}

TEST(AsGraph, EdgeEndpointsBecomeNodes) {
  AsGraph g({}, {{7, 8}});
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_TRUE(g.index_of(7));
  EXPECT_TRUE(g.index_of(8));
}

TEST(AsGraph, DropsDuplicatesAndSelfLoops) {
  AsGraph g({1, 2}, {{1, 2}, {1, 2}, {1, 1}});
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AsGraph, SuccessorsAndPredecessors) {
  AsGraph g({1, 2, 3}, {{1, 2}, {1, 3}, {2, 3}});
  const auto i1 = *g.index_of(1);
  const auto i3 = *g.index_of(3);
  EXPECT_EQ(g.successors(i1).size(), 2u);
  EXPECT_TRUE(g.successors(i3).empty());
  EXPECT_EQ(g.predecessors(i3).size(), 2u);
}

TEST(AsGraph, EdgesRoundTrip) {
  const std::vector<std::pair<Asn, Asn>> edges{{1, 2}, {2, 3}};
  AsGraph g({1, 2, 3}, edges);
  auto got = g.edges();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, edges);
}

TEST(AsGraph, WithExtraEdges) {
  AsGraph g({1, 2, 3}, {{1, 2}});
  const std::vector<std::pair<Asn, Asn>> extra{{2, 3}, {3, 2}};
  const AsGraph g2 = g.with_extra_edges(extra);
  EXPECT_EQ(g.edge_count(), 1u);   // original untouched
  EXPECT_EQ(g2.edge_count(), 3u);
}

TEST(AsGraph, FromRoutingTable) {
  bgp::RoutingTableBuilder b;
  b.ingest_route(pfx("10.0.0.0/16"), bgp::AsPath{1, 2, 3});
  b.ingest_route(pfx("20.0.0.0/16"), bgp::AsPath{4, 2});
  const auto table = b.build();
  const auto g = AsGraph::from_routing_table(table);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);  // 1->2, 2->3, 4->2
}

TEST(Scc, SingletonComponents) {
  AsGraph g({1, 2, 3}, {{1, 2}, {2, 3}});
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, 3u);
  // Reverse topological numbering: successors get smaller ids.
  const auto c1 = scc.component_of[*g.index_of(1)];
  const auto c2 = scc.component_of[*g.index_of(2)];
  const auto c3 = scc.component_of[*g.index_of(3)];
  EXPECT_GT(c1, c2);
  EXPECT_GT(c2, c3);
}

TEST(Scc, DetectsCycle) {
  AsGraph g({1, 2, 3, 4}, {{1, 2}, {2, 3}, {3, 1}, {3, 4}});
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, 2u);
  const auto c1 = scc.component_of[*g.index_of(1)];
  EXPECT_EQ(scc.component_of[*g.index_of(2)], c1);
  EXPECT_EQ(scc.component_of[*g.index_of(3)], c1);
  EXPECT_NE(scc.component_of[*g.index_of(4)], c1);
  EXPECT_EQ(scc.members[c1].size(), 3u);
}

TEST(Scc, CondensedDagEdges) {
  AsGraph g({1, 2, 3, 4}, {{1, 2}, {2, 1}, {2, 3}, {3, 4}, {4, 3}});
  const auto scc = strongly_connected_components(g);
  ASSERT_EQ(scc.component_count, 2u);
  const auto c12 = scc.component_of[*g.index_of(1)];
  const auto c34 = scc.component_of[*g.index_of(3)];
  ASSERT_EQ(scc.dag_successors[c12].size(), 1u);
  EXPECT_EQ(scc.dag_successors[c12][0], c34);
  EXPECT_TRUE(scc.dag_successors[c34].empty());
}

TEST(Scc, HandlesDisconnectedGraph) {
  AsGraph g({1, 2, 3, 4}, {{1, 2}});
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, 4u);
}

TEST(Scc, DeepChainNoStackOverflow) {
  // 50K-node chain would blow a recursive Tarjan; the iterative version
  // must handle it.
  std::vector<Asn> nodes;
  std::vector<std::pair<Asn, Asn>> edges;
  const std::size_t n = 50000;
  for (Asn i = 1; i <= n; ++i) nodes.push_back(i);
  for (Asn i = 1; i < n; ++i) edges.emplace_back(i, i + 1);
  AsGraph g(std::move(nodes), std::move(edges));
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, n);
}

}  // namespace
}  // namespace spoofscope::asgraph
