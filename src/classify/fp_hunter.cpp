#include "classify/fp_hunter.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace spoofscope::classify {

FpHuntReport hunt_false_positives(Classifier& classifier, std::size_t space_idx,
                                  std::span<const net::FlowRecord> flows,
                                  std::vector<Label>& labels,
                                  const data::WhoisRegistry& whois,
                                  const topo::Topology& topo,
                                  std::size_t top_k) {
  FpHuntReport report;

  // Per-member Invalid share of its own traffic (packets).
  struct Share {
    double invalid = 0, total = 0;
  };
  std::map<Asn, Share> shares;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    auto& s = shares[flows[i].member_in];
    s.total += flows[i].packets;
    if (Classifier::unpack(labels[i], space_idx) == TrafficClass::kInvalid) {
      s.invalid += flows[i].packets;
      report.invalid_packets_before += flows[i].packets;
      report.invalid_bytes_before += static_cast<double>(flows[i].bytes);
    }
  }

  // Members ranked by Invalid fraction, as in the Fig 4 CCDF tail.
  std::vector<std::pair<double, Asn>> ranked;
  for (const auto& [asn, s] : shares) {
    if (s.invalid > 0) ranked.emplace_back(s.invalid / s.total, asn);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > top_k) ranked.resize(top_k);

  // Investigate: whitelist WHOIS-recoverable ranges.
  std::unordered_set<Asn> touched;
  auto& space = classifier.mutable_space(space_idx);
  for (const auto& [frac, member] : ranked) {
    ++report.members_investigated;
    const auto ranges = whois.recoverable_ranges(topo, member);
    if (ranges.empty()) continue;
    ++report.members_with_recovered_ranges;
    report.ranges_whitelisted += ranges.size();
    trie::IntervalSet extra = trie::IntervalSet::from_prefixes(ranges);
    space.extend(member, extra);
    touched.insert(member);
  }

  // Re-classify the affected members' Invalid flows.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    const TrafficClass old_cls = Classifier::unpack(labels[i], space_idx);
    if (old_cls == TrafficClass::kInvalid && touched.count(f.member_in)) {
      const TrafficClass new_cls =
          classifier.classify(f.src, f.member_in, space_idx);
      if (new_cls != old_cls) {
        labels[i] = static_cast<Label>(
            (labels[i] & ~(Label(0x3) << (2 * space_idx))) |
            (static_cast<Label>(new_cls) << (2 * space_idx)));
      }
    }
    if (Classifier::unpack(labels[i], space_idx) == TrafficClass::kInvalid) {
      report.invalid_packets_after += f.packets;
      report.invalid_bytes_after += static_cast<double>(f.bytes);
    }
  }
  return report;
}

}  // namespace spoofscope::classify
