// Extension (no direct paper counterpart): score the paper's inference
// methods and the deployed uRPF baselines against the workload's ground
// truth — recall on intentionally spoofed packets vs false positives on
// legitimate traffic. The paper could only approximate this via the
// Spoofer cross-check (Sec 4.5); the simulator knows the truth.
#include "bench/common.hpp"

#include "analysis/method_eval.hpp"
#include "classify/urpf.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_UrpfStrictFilter(benchmark::State& state) {
  const auto& w = world();
  const classify::UrpfFilter filter(w.table(), classify::UrpfMode::kStrict);
  const auto member = w.ixp().members().front().asn;
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.accepts(net::Ipv4Addr(rng.next_u32()), member));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UrpfStrictFilter);

void BM_ScoreAllStrategies(benchmark::State& state) {
  const auto& w = world();
  const classify::UrpfFilter loose(w.table(), classify::UrpfMode::kLoose);
  for (auto _ : state) {
    auto s = analysis::score_urpf(w.trace().flows, w.workload().components,
                                  loose, "loose");
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ScoreAllStrategies)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "method evaluation vs ground truth (extension)",
      "expected shape: the cone methods catch most intentional spoofing "
      "at near-zero legit false positives; uRPF strict catches more but "
      "wrongly drops multihomed/asymmetric legit traffic (the survey's "
      "complaint); loose uRPF only catches unrouted sources");
  const auto& w = world();
  const auto& comps = w.workload().components;
  const auto& flows = w.trace().flows;

  std::vector<analysis::DetectionScore> scores;
  for (const auto m :
       {inference::Method::kFullConeOrg, inference::Method::kFullCone,
        inference::Method::kCustomerConeOrg, inference::Method::kNaive}) {
    scores.push_back(analysis::score_method(
        flows, w.labels(), static_cast<std::size_t>(m), comps,
        inference::method_name(m)));
  }
  for (const auto mode : {classify::UrpfMode::kLoose,
                          classify::UrpfMode::kFeasible,
                          classify::UrpfMode::kStrict}) {
    const classify::UrpfFilter filter(w.table(), mode);
    scores.push_back(
        analysis::score_urpf(flows, comps, filter, classify::urpf_mode_name(mode)));
  }
  scores.push_back(analysis::score_bogon_acl(flows, comps));

  std::cout << analysis::format_scores(scores) << "\n"
            << "ground truth packet mix: spoofed "
            << util::human_count(scores[0].spoofed_packets) << ", legit "
            << util::human_count(scores[0].legit_packets) << ", stray "
            << util::human_count(scores[0].stray_packets) << " (sampled)\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
