# Empty compiler generated dependencies file for bench_fig7_router_ips.
# This may be replaced when dependencies are built.
