// The full measurement-study workflow of the paper on one scenario:
// classification (Table 1), filtering consistency (Fig 5), business types
// (Fig 6), false-positive hunting (Sec 4.4), router strays (Sec 5.2) and
// the Spoofer cross-check (Sec 4.5).
//
//   $ ./ixp_study [seed] [--paper] [--csv <dir>]
//     --paper     run the full-size scenario (700 members)
//     --csv DIR   additionally export every figure's data as CSV to DIR
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/addr_structure.hpp"
#include "analysis/attack_patterns.hpp"
#include "analysis/business.hpp"
#include "analysis/export.hpp"
#include "analysis/portmix.hpp"
#include "analysis/traffic_char.hpp"
#include "analysis/spoofer_crosscheck.hpp"
#include "analysis/table1.hpp"
#include "analysis/venn.hpp"
#include "classify/fp_hunter.hpp"
#include "classify/pipeline.hpp"
#include "classify/router_tagger.hpp"
#include "scenario/scenario.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace spoofscope;

  scenario::ScenarioParams params = scenario::ScenarioParams::small();
  std::string csv_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) {
      const auto seed = params.seed;
      params = scenario::ScenarioParams::paper();
      params.seed = seed;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_dir = argv[++i];
    } else {
      params.seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  auto world = scenario::build_scenario(params);
  const auto& flows = world->trace().flows;
  const auto full_idx =
      scenario::Scenario::space_index(inference::Method::kFullCone);

  // --- Table 1 -------------------------------------------------------------
  const auto agg = classify::aggregate_classes(world->classifier(), flows,
                                               world->labels());
  std::cout << "== Table 1: class contributions ==\n"
            << analysis::format_table1(analysis::table1_columns(
                   agg, world->trace().scale(), world->ixp().member_count()))
            << "\n";

  // --- Sec 4.4: hunt false positives ---------------------------------------
  auto labels = world->labels();
  const auto report = classify::hunt_false_positives(
      world->classifier(), full_idx, flows, labels, world->whois(),
      world->topology());
  std::cout << "== Sec 4.4: false positive hunt ==\n"
            << "  members investigated: " << report.members_investigated
            << ", with recovered ranges: "
            << report.members_with_recovered_ranges << "\n"
            << "  Invalid bytes reduced by "
            << util::percent(report.bytes_reduction()) << ", packets by "
            << util::percent(report.packets_reduction())
            << " (paper: 59.9% / 40%)\n\n";

  // --- Sec 5.2: router strays -----------------------------------------------
  const auto rstats =
      classify::router_ip_stats(flows, labels, full_idx, world->ark());
  const auto excluded = classify::members_to_exclude(rstats);
  const auto breakdown = classify::router_protocol_breakdown(flows, world->ark());
  std::cout << "== Sec 5.2: stray router traffic ==\n"
            << "  members whose Invalid is >=50% router IPs: " << excluded.size()
            << "\n  router-IP traffic mix: ICMP " << util::percent(breakdown.icmp)
            << ", UDP " << util::percent(breakdown.udp) << " (to NTP "
            << util::percent(breakdown.udp_to_ntp) << "), TCP "
            << util::percent(breakdown.tcp) << "\n\n";

  // --- Fig 5 / Fig 6 ---------------------------------------------------------
  const auto counts =
      analysis::per_member_counts(flows, labels, full_idx, world->ixp());
  std::cout << "== Fig 5 ==\n"
            << analysis::format_venn(analysis::venn_membership(counts)) << "\n";
  const auto points = analysis::business_scatter(counts);
  std::cout << "== Fig 6 ==\n"
            << analysis::format_business_summary(
                   analysis::business_summary(points))
            << "\n";

  // --- Sec 4.5 ---------------------------------------------------------------
  std::cout << "== Sec 4.5 ==\n"
            << analysis::format_cross_check(
                   analysis::cross_check_spoofer(counts, world->spoofer()));

  // --- optional CSV export of every figure ------------------------------------
  if (!csv_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(csv_dir);
    const auto csv = [&](const std::string& name, const auto& writer) {
      std::ofstream out(fs::path(csv_dir) / name);
      writer(out);
    };
    csv("table1.csv", [&](std::ostream& o) {
      analysis::export_table1_csv(
          o, analysis::table1_columns(agg, world->trace().scale(),
                                      world->ixp().member_count()));
    });
    csv("fig2_full_cone_sizes.csv", [&](std::ostream& o) {
      analysis::export_valid_sizes_csv(
          o, world->factory().valid_sizes(inference::Method::kFullCone));
    });
    csv("fig4_invalid_ccdf.csv", [&](std::ostream& o) {
      analysis::export_distribution_csv(
          o, analysis::class_share_ccdf(counts,
                                        analysis::TrafficClass::kInvalid));
    });
    csv("fig5_venn.csv", [&](std::ostream& o) {
      analysis::export_venn_csv(o, analysis::venn_membership(counts));
    });
    csv("fig6_business.csv", [&](std::ostream& o) {
      analysis::export_business_csv(o, points);
    });
    csv("fig8b_timeseries.csv", [&](std::ostream& o) {
      analysis::export_time_series_csv(
          o, analysis::class_time_series(flows, labels, full_idx,
                                         world->trace().meta.window_seconds));
    });
    csv("fig9_portmix.csv", [&](std::ostream& o) {
      analysis::export_port_mix_csv(
          o, analysis::port_mix(flows, labels, full_idx));
    });
    csv("fig10_addr_structure.csv", [&](std::ostream& o) {
      analysis::export_address_structure_csv(
          o, analysis::address_structure(flows, labels, full_idx));
    });
    const auto ntp = analysis::analyze_ntp(flows, labels, full_idx);
    csv("fig11b_ntp_victims.csv", [&](std::ostream& o) {
      analysis::export_ntp_victims_csv(o, ntp.top_victims);
    });
    csv("fig11c_amplification.csv", [&](std::ostream& o) {
      analysis::export_amplification_csv(
          o, analysis::amplification_effect(flows, labels, full_idx,
                                            world->trace().meta.window_seconds));
    });
    std::cout << "\nCSV exports written to " << csv_dir << "\n";
  }
  return 0;
}
