file(REMOVE_RECURSE
  "CMakeFiles/topo_generator_test.dir/topo_generator_test.cpp.o"
  "CMakeFiles/topo_generator_test.dir/topo_generator_test.cpp.o.d"
  "topo_generator_test"
  "topo_generator_test.pdb"
  "topo_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
