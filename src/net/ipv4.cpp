#include "net/ipv4.hpp"

#include "util/strings.hpp"

namespace spoofscope::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  const auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto part : parts) {
    std::uint32_t octet;
    if (!util::parse_u32(part, octet) || octet > 255 || part.size() > 3) {
      return std::nullopt;
    }
    v = (v << 8) | octet;
  }
  return Ipv4Addr(v);
}

std::string Ipv4Addr::str() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

}  // namespace spoofscope::net
