#include <gtest/gtest.h>

#include "asgraph/customer_cone.hpp"
#include "asgraph/full_cone.hpp"
#include "asgraph/org_merge.hpp"
#include "net/prefix.hpp"

namespace spoofscope::asgraph {
namespace {

using net::pfx;

TEST(DescendantSets, LinearChain) {
  AsGraph g({1, 2, 3}, {{1, 2}, {2, 3}});
  DescendantSets d(g);
  const auto i1 = *g.index_of(1);
  const auto i2 = *g.index_of(2);
  const auto i3 = *g.index_of(3);
  EXPECT_TRUE(d.reaches(i1, i3));
  EXPECT_TRUE(d.reaches(i1, i1));  // self
  EXPECT_FALSE(d.reaches(i3, i1));
  EXPECT_EQ(d.descendant_count(i1), 3u);
  EXPECT_EQ(d.descendant_count(i2), 2u);
  EXPECT_EQ(d.descendant_count(i3), 1u);
}

TEST(DescendantSets, CycleMembersReachEachOther) {
  AsGraph g({1, 2, 3, 4}, {{1, 2}, {2, 1}, {2, 3}});
  DescendantSets d(g);
  const auto i1 = *g.index_of(1);
  const auto i2 = *g.index_of(2);
  const auto i4 = *g.index_of(4);
  EXPECT_TRUE(d.reaches(i1, i2));
  EXPECT_TRUE(d.reaches(i2, i1));
  EXPECT_EQ(d.descendant_count(i1), 3u);
  EXPECT_EQ(d.descendant_count(i4), 1u);  // isolated node
}

TEST(DescendantSets, DescendantsListMatchesCount) {
  AsGraph g({1, 2, 3, 4, 5}, {{1, 2}, {1, 3}, {3, 4}, {2, 4}});
  DescendantSets d(g);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(d.descendants(i).size(), d.descendant_count(i));
  }
}

TEST(DescendantSets, WideGraphPast64Components) {
  // More than 64 components exercises multi-word bitset rows.
  std::vector<Asn> nodes;
  std::vector<std::pair<Asn, Asn>> edges;
  for (Asn i = 1; i <= 200; ++i) nodes.push_back(i);
  for (Asn i = 2; i <= 200; ++i) edges.emplace_back(1, i);  // star
  AsGraph g(std::move(nodes), std::move(edges));
  DescendantSets d(g);
  EXPECT_EQ(d.descendant_count(*g.index_of(1)), 200u);
  EXPECT_EQ(d.descendant_count(*g.index_of(77)), 1u);
  EXPECT_TRUE(d.reaches(*g.index_of(1), *g.index_of(199)));
}

TEST(FullCone, ConeSemantics) {
  // Path-derived graph: 10 -> 20 -> 30 (10 upstream of 20 upstream of 30).
  AsGraph g({10, 20, 30}, {{10, 20}, {20, 30}});
  FullCone cone(g);
  // 10 may source prefixes originated by 20 and 30.
  EXPECT_TRUE(cone.in_cone(10, 30));
  EXPECT_TRUE(cone.in_cone(10, 20));
  EXPECT_TRUE(cone.in_cone(20, 30));
  // but 30 may not source 10's space.
  EXPECT_FALSE(cone.in_cone(30, 10));
  EXPECT_EQ(cone.cone_size(10), 3u);
  EXPECT_EQ(cone.cone_size(30), 1u);
}

TEST(FullCone, SelfAlwaysInCone) {
  AsGraph g({10}, {});
  FullCone cone(g);
  EXPECT_TRUE(cone.in_cone(10, 10));
  EXPECT_TRUE(cone.in_cone(999, 999));  // even for unknown ASes
  EXPECT_FALSE(cone.in_cone(999, 10));
  EXPECT_EQ(cone.cone_size(999), 0u);
  EXPECT_TRUE(cone.cone_of(999).empty());
}

TEST(FullCone, ConeOfReturnsAsns) {
  AsGraph g({10, 20, 30}, {{10, 20}, {20, 30}});
  FullCone cone(g);
  auto c = cone.cone_of(10);
  std::sort(c.begin(), c.end());
  EXPECT_EQ(c, (std::vector<Asn>{10, 20, 30}));
}

TEST(FullCone, Fig1cPeeringScenario) {
  // Fig 1c of the paper: A and B peer; C is customer of A, D customer of
  // B. Observed paths create edges A->C, B->D, and across the peering
  // A->B->D and B->A->C (traffic exchanged via peering shows both
  // directions at some collector).
  AsGraph g({1, 2, 3, 4}, {{1, 3}, {2, 4}, {1, 2}, {2, 1}});
  FullCone cone(g);
  // The full cone accepts D's prefixes at A (through the peering),
  EXPECT_TRUE(cone.in_cone(1, 4));
  // while a pure customer cone would not (checked in CustomerCone tests).
  EXPECT_TRUE(cone.in_cone(2, 3));
}

TEST(CustomerCone, OnlyC2PLinksCount) {
  const std::vector<InferredLink> links{
      {3, 1, InferredRel::kC2P},  // 3 customer of 1
      {4, 2, InferredRel::kC2P},  // 4 customer of 2
      {1, 2, InferredRel::kP2P},  // 1 peers 2
  };
  CustomerCone cone(links);
  EXPECT_TRUE(cone.in_cone(1, 3));
  EXPECT_TRUE(cone.in_cone(2, 4));
  // The peering is intentionally ignored: D (4) is not in A's (1) cone.
  EXPECT_FALSE(cone.in_cone(1, 4));
  EXPECT_FALSE(cone.in_cone(2, 3));
  EXPECT_EQ(cone.cone_size(1), 2u);
}

TEST(CustomerCone, TransitiveCustomers) {
  const std::vector<InferredLink> links{
      {2, 1, InferredRel::kC2P},
      {3, 2, InferredRel::kC2P},
  };
  CustomerCone cone(links);
  EXPECT_TRUE(cone.in_cone(1, 3));
  EXPECT_FALSE(cone.in_cone(3, 1));
  EXPECT_EQ(cone.cone_size(1), 3u);
  EXPECT_EQ(cone.cone_size(3), 1u);
}

TEST(CustomerCone, StubConeIsItself) {
  const std::vector<InferredLink> links{{2, 1, InferredRel::kC2P}};
  CustomerCone cone(links);
  EXPECT_EQ(cone.cone_size(2), 1u);
  EXPECT_TRUE(cone.in_cone(2, 2));
}

TEST(OrgMap, GroupsAndLookup) {
  OrgMap orgs({{10, 20, 30}, {40}, {50, 60}});
  EXPECT_EQ(orgs.group_count(), 2u);  // singleton dropped
  EXPECT_EQ(orgs.group_of(20).size(), 3u);
  EXPECT_TRUE(orgs.group_of(40).empty());
  EXPECT_TRUE(orgs.group_of(999).empty());
}

TEST(OrgMap, MeshEdgesBothDirections) {
  OrgMap orgs({{1, 2, 3}});
  const auto mesh = orgs.mesh_edges();
  EXPECT_EQ(mesh.size(), 6u);
  EXPECT_NE(std::find(mesh.begin(), mesh.end(), std::pair<Asn, Asn>{1, 3}),
            mesh.end());
  EXPECT_NE(std::find(mesh.begin(), mesh.end(), std::pair<Asn, Asn>{3, 1}),
            mesh.end());
}

TEST(OrgMap, RejectsOverlappingGroups) {
  EXPECT_THROW(OrgMap({{1, 2}, {2, 3}}), std::invalid_argument);
}

TEST(OrgMap, DeduplicatesWithinGroup) {
  OrgMap orgs({{1, 2, 2, 1}});
  EXPECT_EQ(orgs.group_of(1).size(), 2u);
}

TEST(OrgMergedFullCone, MeshSharesCones) {
  // 10 -> 20 and 11 -> 21; 10 and 11 are the same organization.
  AsGraph g({10, 11, 20, 21}, {{10, 20}, {11, 21}});
  OrgMap orgs({{10, 11}});
  const AsGraph merged = g.with_extra_edges(orgs.mesh_edges());
  FullCone cone(merged);
  EXPECT_TRUE(cone.in_cone(10, 21));  // via the org mesh
  EXPECT_TRUE(cone.in_cone(11, 20));
  EXPECT_TRUE(cone.in_cone(10, 11));
  // Plain graph does not allow this.
  FullCone plain(g);
  EXPECT_FALSE(plain.in_cone(10, 21));
}

}  // namespace
}  // namespace spoofscope::asgraph
