#include "analysis/incidents.hpp"

#include <gtest/gtest.h>

#include "net/protocols.hpp"
#include "scenario/scenario.hpp"

namespace spoofscope::analysis {
namespace {

using net::Ipv4Addr;

Label label_of(TrafficClass c) { return static_cast<Label>(c); }

net::FlowRecord flow(Ipv4Addr src, Ipv4Addr dst, std::uint32_t ts,
                     net::Proto proto = net::Proto::kTcp,
                     std::uint16_t dport = 80, Asn member = 1) {
  net::FlowRecord f;
  f.src = src;
  f.dst = dst;
  f.ts = ts;
  f.proto = proto;
  f.dport = dport;
  f.packets = 1;
  f.bytes = 50;
  f.member_in = member;
  return f;
}

TEST(Incidents, DetectsRandomSpoofFlood) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  const Ipv4Addr victim = Ipv4Addr::from_octets(50, 0, 0, 1);
  for (int i = 0; i < 100; ++i) {
    flows.push_back(flow(Ipv4Addr(10000 + i), victim, 1000 + i));
    labels.push_back(label_of(TrafficClass::kUnrouted));
  }
  const auto incidents = extract_incidents(flows, labels, 0);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, IncidentKind::kRandomSpoofFlood);
  EXPECT_EQ(incidents[0].victim, victim);
  EXPECT_EQ(incidents[0].packets, 100u);
  EXPECT_EQ(incidents[0].distinct_sources, 100u);
  EXPECT_EQ(incidents[0].start_ts, 1000u);
  EXPECT_EQ(incidents[0].end_ts, 1099u);
  EXPECT_EQ(incidents[0].members, std::vector<Asn>{1});
}

TEST(Incidents, DetectsAmplificationByTriggerShape) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  const Ipv4Addr victim = Ipv4Addr::from_octets(60, 0, 0, 1);
  for (int amp = 0; amp < 40; ++amp) {
    for (int k = 0; k < 2; ++k) {
      flows.push_back(flow(victim, Ipv4Addr(7000 + amp), 2000 + amp,
                           net::Proto::kUdp, net::ports::kNtp, 2));
      labels.push_back(label_of(TrafficClass::kInvalid));
    }
  }
  const auto incidents = extract_incidents(flows, labels, 0);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, IncidentKind::kAmplification);
  EXPECT_EQ(incidents[0].victim, victim);  // the spoofed source
  EXPECT_EQ(incidents[0].distinct_destinations, 40u);
}

TEST(Incidents, IgnoresSmallClustersAndValidTraffic) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  // 10 flagged packets: below min_packets.
  for (int i = 0; i < 10; ++i) {
    flows.push_back(flow(Ipv4Addr(1 + i), Ipv4Addr::from_octets(50, 0, 0, 2),
                         100 + i));
    labels.push_back(label_of(TrafficClass::kBogon));
  }
  // Lots of valid traffic to one destination: never an incident.
  for (int i = 0; i < 500; ++i) {
    flows.push_back(flow(Ipv4Addr(5000 + i), Ipv4Addr::from_octets(50, 0, 0, 3),
                         200 + i));
    labels.push_back(label_of(TrafficClass::kValid));
  }
  EXPECT_TRUE(extract_incidents(flows, labels, 0).empty());
}

TEST(Incidents, FewSourceNonTriggerClusterIsOther) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  // 100 packets from only 2 sources to one dst, not NTP-shaped.
  for (int i = 0; i < 100; ++i) {
    flows.push_back(flow(Ipv4Addr(1 + (i % 2)),
                         Ipv4Addr::from_octets(50, 0, 0, 9), 100 + i));
    labels.push_back(label_of(TrafficClass::kInvalid));
  }
  const auto incidents = extract_incidents(flows, labels, 0);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, IncidentKind::kOther);
}

TEST(Incidents, SortedByPacketsDescending) {
  std::vector<net::FlowRecord> flows;
  std::vector<Label> labels;
  for (int i = 0; i < 50; ++i) {
    flows.push_back(flow(Ipv4Addr(100 + i), Ipv4Addr::from_octets(50, 1, 0, 1),
                         10 + i));
    labels.push_back(label_of(TrafficClass::kUnrouted));
  }
  for (int i = 0; i < 200; ++i) {
    flows.push_back(flow(Ipv4Addr(9000 + i), Ipv4Addr::from_octets(50, 2, 0, 1),
                         10 + i));
    labels.push_back(label_of(TrafficClass::kUnrouted));
  }
  const auto incidents = extract_incidents(flows, labels, 0);
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_GE(incidents[0].packets, incidents[1].packets);
  EXPECT_EQ(incidents[0].victim, Ipv4Addr::from_octets(50, 2, 0, 1));
}

TEST(Incidents, EndToEndOnScenario) {
  auto params = scenario::ScenarioParams::small();
  params.seed = 99;
  const auto world = scenario::build_scenario(params);
  const auto full_idx =
      scenario::Scenario::space_index(inference::Method::kFullCone);
  const auto incidents = extract_incidents(world->trace().flows,
                                           world->labels(), full_idx);
  ASSERT_FALSE(incidents.empty());
  // Both attack kinds appear in the generated workload.
  bool flood = false, amp = false;
  for (const auto& i : incidents) {
    flood |= i.kind == IncidentKind::kRandomSpoofFlood;
    amp |= i.kind == IncidentKind::kAmplification;
  }
  EXPECT_TRUE(flood);
  EXPECT_TRUE(amp);
  const auto text = format_incidents(incidents);
  EXPECT_NE(text.find("incidents"), std::string::npos);
  EXPECT_NE(text.find("amplification"), std::string::npos);
}

}  // namespace
}  // namespace spoofscope::analysis
