// BGP AS path: the sequence of ASes a route announcement traversed.
// Convention throughout spoofscope: index 0 is the AS nearest the observer
// (the neighbor that sent the announcement) and the last element is the
// origin AS — the same left-to-right order as in looking-glass output.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/flow.hpp"

namespace spoofscope::bgp {

using net::Asn;

/// An AS path. Value type; empty paths are valid (meaning "no route").
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<Asn> hops) : hops_(std::move(hops)) {}
  AsPath(std::initializer_list<Asn> hops) : hops_(hops) {}

  /// Parses a space-separated path ("3320 1299 64500"). Empty string
  /// parses as the empty path. Returns nullopt on malformed tokens.
  static std::optional<AsPath> parse(std::string_view s);

  bool empty() const { return hops_.empty(); }
  std::size_t length() const { return hops_.size(); }

  /// The AS that handed the route to the observer.
  Asn first() const { return hops_.front(); }

  /// The AS that originated the prefix.
  Asn origin() const { return hops_.back(); }

  Asn at(std::size_t i) const { return hops_[i]; }

  const std::vector<Asn>& hops() const { return hops_; }

  /// True if `asn` appears anywhere on the path.
  bool contains(Asn asn) const;

  /// True if any AS appears more than once (loop / prepending).
  bool has_duplicates() const;

  /// Returns a new path with `asn` prepended (the receiving AS adding
  /// itself before re-export).
  AsPath prepend(Asn asn) const;

  /// "a b c" space-separated form.
  std::string str() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<Asn> hops_;
};

}  // namespace spoofscope::bgp
