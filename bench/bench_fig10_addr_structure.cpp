// Fig 10: the /8 structure of source and destination addresses per class —
// near-uniform sources for Unrouted (random spoofing), RFC1918 spikes for
// Bogon, victim-address peaks for Invalid.
#include "bench/common.hpp"

#include "analysis/addr_structure.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_AddressStructure(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    auto a = analysis::address_structure(w.trace().flows, w.labels(), idx);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_AddressStructure)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "Fig 10 (address structure per class)",
      "Unrouted sources ~uniform; Bogon sources spike at 10/8 and 192/8; "
      "Invalid sources peak at specific victims; destinations concentrate "
      "for all spoofed classes");
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  const auto a = analysis::address_structure(w.trace().flows, w.labels(), idx);
  std::cout << analysis::format_address_structure(a);

  using analysis::TrafficClass;
  std::cout << "\nsource /8 concentration (1/256 = uniform):\n";
  static const TrafficClass kClasses[] = {TrafficClass::kBogon,
                                          TrafficClass::kUnrouted,
                                          TrafficClass::kInvalid};
  static const char* kNames[] = {"Bogon", "Unrouted", "Invalid"};
  for (int c = 0; c < 3; ++c) {
    std::cout << "  " << util::pad_right(kNames[c], 9) << "src "
              << util::fixed(a.src_concentration(kClasses[c]), 4) << "   dst "
              << util::fixed(a.dst_concentration(kClasses[c]), 4) << "\n";
  }
  std::cout << "  RFC1918 10/8 share of Bogon sources: "
            << util::percent(a.src_fraction(TrafficClass::kBogon, 10))
            << " (paper: dominant spike)\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
