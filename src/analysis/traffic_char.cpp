#include "analysis/traffic_char.hpp"

#include <cmath>
#include <numbers>

namespace spoofscope::analysis {

std::array<std::vector<util::DistPoint>, kNumClasses> packet_size_cdfs(
    std::span<const net::FlowRecord> flows, std::span<const Label> labels,
    std::size_t space_idx) {
  std::array<std::vector<double>, kNumClasses> sizes;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto c = static_cast<int>(classify::Classifier::unpack(labels[i], space_idx));
    if (flows[i].packets == 0) continue;
    // Weight by sampled packets, capped to keep memory in check.
    const std::uint32_t w = std::min(flows[i].packets, 16u);
    for (std::uint32_t k = 0; k < w; ++k) {
      sizes[c].push_back(flows[i].mean_packet_size());
    }
  }
  std::array<std::vector<util::DistPoint>, kNumClasses> out;
  for (int c = 0; c < kNumClasses; ++c) out[c] = util::empirical_cdf(sizes[c]);
  return out;
}

double small_packet_fraction(std::span<const net::FlowRecord> flows,
                             std::span<const Label> labels,
                             std::size_t space_idx, TrafficClass cls,
                             double threshold) {
  double total = 0, small = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (classify::Classifier::unpack(labels[i], space_idx) != cls) continue;
    total += flows[i].packets;
    if (flows[i].mean_packet_size() < threshold) small += flows[i].packets;
  }
  return total > 0 ? small / total : 0.0;
}

ClassTimeSeries class_time_series(std::span<const net::FlowRecord> flows,
                                  std::span<const Label> labels,
                                  std::size_t space_idx,
                                  std::uint32_t window_seconds,
                                  std::uint32_t bin_seconds) {
  ClassTimeSeries out;
  out.bin_seconds = bin_seconds;
  const std::size_t bins = (window_seconds + bin_seconds - 1) / bin_seconds;
  for (auto& s : out.series) s.assign(bins, 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto c = static_cast<int>(classify::Classifier::unpack(labels[i], space_idx));
    const std::size_t bin = std::min<std::size_t>(flows[i].ts / bin_seconds, bins - 1);
    out.series[c][bin] += flows[i].packets;
  }
  return out;
}

double burstiness(std::span<const double> series) {
  const util::Summary s = util::summarize(series);
  return s.mean > 0 ? s.stddev / s.mean : 0.0;
}

double diurnality(std::span<const double> series, std::uint32_t bin_seconds) {
  if (series.empty() || bin_seconds == 0) return 0.0;
  std::vector<double> reference(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double hour =
        std::fmod(static_cast<double>(i) * bin_seconds / 3600.0, 24.0);
    // Evening-peak reference matching the generator's profile (peak ~20h).
    reference[i] = std::cos((hour - 20.0) / 24.0 * 2.0 * std::numbers::pi);
  }
  return util::pearson(series, reference);
}

}  // namespace spoofscope::analysis
