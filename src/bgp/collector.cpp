#include "bgp/collector.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "util/rng.hpp"

namespace spoofscope::bgp {

std::size_t AnnouncementPlan::prefix_count() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.prefixes.size();
  return n;
}

AnnouncementPlan make_announcement_plan(const topo::Topology& topo,
                                        const PlanParams& params,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  AnnouncementPlan plan;

  for (const auto& as : topo.ases()) {
    const std::size_t n_announced = topo::announced_prefix_count(as);
    if (n_announced == 0) continue;

    AnnouncementGroup stable;
    stable.origin = as.asn;

    const auto providers = topo.providers_of(as.asn);
    for (std::size_t i = 0; i < n_announced; ++i) {
      const net::Prefix& p = as.prefixes[i];

      // Traffic-engineering deaggregation: replace (or complement) the
      // aggregate with its two halves, occasionally one level deeper.
      if (p.length() <= 22 && rng.chance(params.deaggregate_prob)) {
        if (rng.chance(0.5)) stable.prefixes.push_back(p);  // keep aggregate
        const int extra_levels = rng.chance(0.3) ? 2 : 1;
        std::vector<net::Prefix> pieces{p.child(0), p.child(1)};
        for (int lvl = 1; lvl < extra_levels; ++lvl) {
          std::vector<net::Prefix> next;
          for (const auto& piece : pieces) {
            next.push_back(piece.child(0));
            next.push_back(piece.child(1));
          }
          pieces = std::move(next);
        }
        for (const auto& piece : pieces) stable.prefixes.push_back(piece);
        continue;
      }

      // Selective announcement requires at least two providers to choose
      // a strict subset from.
      if (providers.size() >= 2 && rng.chance(params.selective_prob)) {
        AnnouncementGroup g;
        g.origin = as.asn;
        g.prefixes.push_back(p);
        const std::size_t keep = 1 + rng.index(providers.size() - 1);
        std::vector<Asn> hops(providers.begin(), providers.end());
        rng.shuffle(hops);
        hops.resize(keep);
        std::sort(hops.begin(), hops.end());
        g.first_hops = std::move(hops);
        plan.groups.push_back(std::move(g));
        continue;
      }

      if (rng.chance(params.transient_prob)) {
        AnnouncementGroup g;
        g.origin = as.asn;
        g.prefixes.push_back(p);
        g.transient = true;
        g.announce_ts = rng.uniform_u32(1, params.window_seconds / 2);
        // Half of the transient prefixes get withdrawn again inside the
        // window; either way they count as routed for the whole period.
        g.withdraw_ts = rng.chance(0.5)
                            ? g.announce_ts +
                                  rng.uniform_u32(3600, params.window_seconds / 4)
                            : 0;
        plan.groups.push_back(std::move(g));
        continue;
      }

      stable.prefixes.push_back(p);
    }
    if (!stable.prefixes.empty()) plan.groups.push_back(std::move(stable));
  }
  return plan;
}

namespace {

/// Per-spec state resolved once up front: feeder dense indices and the
/// dump schedule (a single t=0 dump by default, or RIS/RouteViews-style
/// periodic snapshots).
struct SpecView {
  std::vector<std::size_t> feeder_idx;
  std::vector<std::uint32_t> dump_times;
};

SpecView resolve_spec(const topo::Topology& topo, const CollectorSpec& spec) {
  SpecView view;
  view.feeder_idx.reserve(spec.feeders.size());
  for (const Asn f : spec.feeders) {
    const auto idx = topo.index_of(f);
    if (!idx) {
      throw std::invalid_argument("collect_records: unknown feeder AS " +
                                  std::to_string(f) + " (collector '" +
                                  spec.name + "')");
    }
    view.feeder_idx.push_back(*idx);
  }
  view.dump_times.push_back(0);
  if (spec.dump_interval_seconds > 0) {
    for (std::uint32_t t = spec.dump_interval_seconds; t < spec.window_seconds;
         t += spec.dump_interval_seconds) {
      view.dump_times.push_back(t);
    }
  }
  return view;
}

/// Emits everything `spec` collects for one plan group.
void render_group(const AnnouncementGroup& group, const PropagationResult& res,
                  const CollectorSpec& spec, const SpecView& view,
                  const std::function<void(const MrtRecord&)>& sink) {
  for (std::size_t fi = 0; fi < view.feeder_idx.size(); ++fi) {
    const std::size_t idx = view.feeder_idx[fi];
    if (!res.reachable(idx)) continue;
    const RouteClass cls = res.route_class(idx);
    if (!spec.full_feed && cls != RouteClass::kOrigin &&
        cls != RouteClass::kCustomer) {
      continue;  // route servers only see peer-exportable routes
    }
    const AsPath path = res.path_at(idx);
    for (const auto& prefix : group.prefixes) {
      if (group.transient) {
        UpdateMessage a;
        a.kind = UpdateMessage::Kind::kAnnounce;
        a.timestamp = group.announce_ts;
        a.peer = spec.feeders[fi];
        a.prefix = prefix;
        a.path = path;
        sink(MrtRecord{a});
        if (group.withdraw_ts != 0) {
          UpdateMessage w;
          w.kind = UpdateMessage::Kind::kWithdraw;
          w.timestamp = group.withdraw_ts;
          w.peer = spec.feeders[fi];
          w.prefix = prefix;
          sink(MrtRecord{w});
        }
        // Periodic dumps taken while the route was installed also
        // carry it.
        for (const std::uint32_t t : view.dump_times) {
          if (t < group.announce_ts) continue;
          if (group.withdraw_ts != 0 && t >= group.withdraw_ts) continue;
          RibEntry e;
          e.timestamp = t;
          e.peer = spec.feeders[fi];
          e.prefix = prefix;
          e.path = path;
          sink(MrtRecord{e});
        }
      } else {
        for (const std::uint32_t t : view.dump_times) {
          RibEntry e;
          e.timestamp = t;
          e.peer = spec.feeders[fi];
          e.prefix = prefix;
          e.path = path;
          sink(MrtRecord{e});
        }
      }
    }
  }
}

/// True when consecutive plan groups share one propagation result: same
/// origin, same (or equally absent) first-hop restriction.
bool same_propagation(const AnnouncementGroup& a, const AnnouncementGroup& b) {
  return a.origin == b.origin && a.first_hops == b.first_hops;
}

std::shared_ptr<const PropagationResult> propagate_group(
    const Simulator& sim, const AnnouncementPlan& plan, std::size_t g,
    Simulator::Workspace& ws) {
  const auto& group = plan.groups[g];
  try {
    return std::make_shared<PropagationResult>(
        sim.propagate(group.origin, group.first_hops, ws));
  } catch (const std::invalid_argument& e) {
    // Surface which plan group produced the unknown origin — at a
    // million prefixes "unknown origin AS" alone is undebuggable.
    throw std::invalid_argument("plan group #" + std::to_string(g) +
                                " (origin AS " + std::to_string(group.origin) +
                                ", " + std::to_string(group.prefixes.size()) +
                                " prefixes): " + e.what());
  }
}

/// Propagates plan groups [begin, end) into `results` (slot i holds group
/// begin+i) across the pool, sharing results between consecutive
/// identical groups. Deterministic: every slot's content depends only on
/// its group.
void propagate_chunk(
    const Simulator& sim, const AnnouncementPlan& plan, std::size_t begin,
    std::size_t end, util::ThreadPool& pool,
    std::vector<Simulator::Workspace>& workspaces,
    std::vector<std::shared_ptr<const PropagationResult>>& results) {
  results.assign(end - begin, nullptr);
  const auto parts = util::ThreadPool::partition(begin, end, pool.thread_count());
  if (workspaces.size() < parts.size()) workspaces.resize(parts.size());
  pool.parallel_for(0, parts.size(), [&](std::size_t pb, std::size_t pe) {
    for (std::size_t p = pb; p < pe; ++p) {
      auto& ws = workspaces[p];
      for (std::size_t g = parts[p].begin; g < parts[p].end; ++g) {
        if (g > parts[p].begin &&
            same_propagation(plan.groups[g - 1], plan.groups[g])) {
          results[g - begin] = results[g - 1 - begin];
          continue;
        }
        results[g - begin] = propagate_group(sim, plan, g, ws);
      }
    }
  });
}

}  // namespace

RouteFabric::RouteFabric(const Simulator& sim, const AnnouncementPlan& plan)
    : sim_(&sim), plan_(&plan) {
  Simulator::Workspace ws;
  results_.reserve(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    if (g > 0 && same_propagation(plan.groups[g - 1], plan.groups[g])) {
      results_.push_back(results_.back());
      continue;
    }
    results_.push_back(propagate_group(sim, plan, g, ws));
  }
}

RouteFabric::RouteFabric(const Simulator& sim, const AnnouncementPlan& plan,
                         util::ThreadPool& pool)
    : sim_(&sim), plan_(&plan) {
  std::vector<Simulator::Workspace> workspaces;
  propagate_chunk(sim, plan, 0, plan.groups.size(), pool, workspaces, results_);
}

std::vector<MrtRecord> collect_records(const RouteFabric& fabric,
                                       const CollectorSpec& spec) {
  std::vector<MrtRecord> out;
  collect_records(fabric, spec,
                  [&out](const MrtRecord& r) { out.push_back(r); });
  return out;
}

void collect_records(const RouteFabric& fabric, const CollectorSpec& spec,
                     const std::function<void(const MrtRecord&)>& sink) {
  const auto& topo = fabric.simulator().topology();
  const SpecView view = resolve_spec(topo, spec);
  const auto& plan = fabric.plan();
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    render_group(plan.groups[g], fabric.result(g), spec, view, sink);
  }
}

void propagate_collect(const Simulator& sim, const AnnouncementPlan& plan,
                       std::span<const CollectorSpec> specs,
                       util::ThreadPool& pool, const SpecSink& sink,
                       const PropagateOptions& options) {
  const auto& topo = sim.topology();
  std::vector<SpecView> views;
  views.reserve(specs.size());
  for (const auto& spec : specs) views.push_back(resolve_spec(topo, spec));

  // Chunk size bounds retained route state to roughly
  // kChunkStateBudget bytes (one Route per AS per group) while keeping
  // every pool lane busy. The choice never changes the emitted records —
  // rendering always walks groups in plan order.
  std::size_t chunk = options.chunk_groups;
  if (chunk == 0) {
    constexpr std::size_t kChunkStateBudget = 256u << 20;
    const std::size_t per_group =
        std::max<std::size_t>(1, topo.as_count()) * sizeof(Route);
    chunk = std::clamp<std::size_t>(kChunkStateBudget / per_group, 64, 8192);
    chunk = std::max(chunk, pool.thread_count() * 8);
  }

  std::vector<Simulator::Workspace> workspaces;
  std::vector<std::shared_ptr<const PropagationResult>> results;
  for (std::size_t begin = 0; begin < plan.groups.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, plan.groups.size());
    propagate_chunk(sim, plan, begin, end, pool, workspaces, results);
    for (std::size_t g = begin; g < end; ++g) {
      for (std::size_t s = 0; s < specs.size(); ++s) {
        render_group(plan.groups[g], *results[g - begin], specs[s], views[s],
                     [&sink, s](const MrtRecord& r) { sink(s, r); });
      }
    }
  }
}

}  // namespace spoofscope::bgp
