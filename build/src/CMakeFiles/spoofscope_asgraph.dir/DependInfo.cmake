
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asgraph/customer_cone.cpp" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/customer_cone.cpp.o" "gcc" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/customer_cone.cpp.o.d"
  "/root/repo/src/asgraph/full_cone.cpp" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/full_cone.cpp.o" "gcc" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/full_cone.cpp.o.d"
  "/root/repo/src/asgraph/graph.cpp" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/graph.cpp.o" "gcc" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/graph.cpp.o.d"
  "/root/repo/src/asgraph/org_merge.cpp" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/org_merge.cpp.o" "gcc" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/org_merge.cpp.o.d"
  "/root/repo/src/asgraph/relationship.cpp" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/relationship.cpp.o" "gcc" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/relationship.cpp.o.d"
  "/root/repo/src/asgraph/scc.cpp" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/scc.cpp.o" "gcc" "src/CMakeFiles/spoofscope_asgraph.dir/asgraph/scc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
