
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bogon.cpp" "src/CMakeFiles/spoofscope_net.dir/net/bogon.cpp.o" "gcc" "src/CMakeFiles/spoofscope_net.dir/net/bogon.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/CMakeFiles/spoofscope_net.dir/net/flow.cpp.o" "gcc" "src/CMakeFiles/spoofscope_net.dir/net/flow.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/CMakeFiles/spoofscope_net.dir/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/spoofscope_net.dir/net/ipv4.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/CMakeFiles/spoofscope_net.dir/net/prefix.cpp.o" "gcc" "src/CMakeFiles/spoofscope_net.dir/net/prefix.cpp.o.d"
  "/root/repo/src/net/protocols.cpp" "src/CMakeFiles/spoofscope_net.dir/net/protocols.cpp.o" "gcc" "src/CMakeFiles/spoofscope_net.dir/net/protocols.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/CMakeFiles/spoofscope_net.dir/net/trace.cpp.o" "gcc" "src/CMakeFiles/spoofscope_net.dir/net/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
