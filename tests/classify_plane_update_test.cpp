// In-place plane patching vs the fresh-compile oracle: apply_updates()
// must leave the DIR-24-8 plane bit-identical (plane_digest()) to a
// from-scratch compile over the same live route set — after hand-built
// announce/withdraw batches, after thousand-step randomized churn
// (including overflow-lane lengths and unaligned valid-space extends),
// and when the starting plane was mmapped out of a PlaneCache entry.
// The oracle classifier shares the source's ValidSpace handles, so any
// digest difference is the patch path's fault, never the inputs'.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bgp/message.hpp"
#include "bgp/routing_table.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/streaming.hpp"
#include "net/prefix.hpp"
#include "scenario/scenario.hpp"
#include "state/plane_cache.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::classify {
namespace {

namespace fs = std::filesystem;
using bgp::UpdateMessage;
using net::Ipv4Addr;
using net::pfx;

UpdateMessage announce(const net::Prefix& p, std::uint32_t ts = 0) {
  UpdateMessage u;
  u.kind = UpdateMessage::Kind::kAnnounce;
  u.timestamp = ts;
  u.prefix = p;
  u.path = bgp::AsPath{65000};
  return u;
}

UpdateMessage withdraw(const net::Prefix& p, std::uint32_t ts = 0) {
  UpdateMessage u;
  u.kind = UpdateMessage::Kind::kWithdraw;
  u.timestamp = ts;
  u.prefix = p;
  return u;
}

/// The correctness oracle: compile a fresh plane over exactly `live`,
/// with a routing table rebuilt in canonical order and the SOURCE
/// classifier's shared ValidSpace handles (bit-identical spaces), then
/// hand it to `probe` and return its plane_digest(). Any divergence
/// from the patched plane is therefore a patching bug by construction.
template <typename Probe>
std::uint64_t fresh_compile_digest(const Classifier& source,
                                   std::vector<net::Prefix> live,
                                   const FlatClassifier::UpdateApplyOptions& w,
                                   util::ThreadPool* pool, Probe&& probe) {
  std::sort(live.begin(), live.end());
  bgp::RoutingTableBuilder::Options topts;
  topts.min_length = w.min_length;
  topts.max_length = w.max_length;
  bgp::RoutingTableBuilder b(topts);
  for (const auto& p : live) b.ingest_route(p, bgp::AsPath{65000});
  const bgp::RoutingTable table = b.build();
  std::vector<std::shared_ptr<const inference::ValidSpace>> spaces;
  spaces.reserve(source.space_count());
  for (std::size_t i = 0; i < source.space_count(); ++i) {
    spaces.push_back(source.shared_space(i));
  }
  const Classifier oracle(table, std::move(spaces));
  const FlatClassifier plane = pool != nullptr
                                   ? FlatClassifier::compile(oracle, *pool)
                                   : FlatClassifier::compile(oracle);
  probe(plane);
  return plane.plane_digest();
}

std::uint64_t fresh_compile_digest(const Classifier& source,
                                   std::vector<net::Prefix> live,
                                   const FlatClassifier::UpdateApplyOptions& w,
                                   util::ThreadPool* pool = nullptr) {
  return fresh_compile_digest(source, std::move(live), w, pool,
                              [](const FlatClassifier&) {});
}

/// Two-member hand fixture (mirrors state_resume_test): member 1 owns
/// 50.0/16 as valid space, 60.0/16 is routed but unowned.
struct Fixture {
  Fixture() {
    bgp::RoutingTableBuilder b;
    b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
    b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{2});
    table = b.build();
    trie::IntervalSet s;
    s.add(pfx("50.0.0.0/16"));
    std::unordered_map<Asn, trie::IntervalSet> spaces;
    spaces.emplace(1, std::move(s));
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

TEST(PlaneUpdate, FirstApplyCanonicalizesAndMatchesFreshCompile) {
  auto params = scenario::ScenarioParams::small();
  const auto w = scenario::build_scenario(params);
  auto& classifier = w->classifier();
  FlatClassifier flat = FlatClassifier::compile(classifier);

  // An empty batch still takes ownership of the route set and renumbers
  // ingest-order pids into canonical order.
  const auto stats = flat.apply_updates({});
  EXPECT_TRUE(flat.live());
  EXPECT_EQ(stats.announced, 0u);
  EXPECT_EQ(stats.withdrawn, 0u);
  EXPECT_TRUE(std::is_sorted(flat.live_prefixes().begin(),
                             flat.live_prefixes().end()));
  EXPECT_EQ(flat.live_prefixes().size(), w->table().prefix_count());

  FlatClassifier::UpdateApplyOptions uopts;
  const auto& flows = w->trace().flows;
  EXPECT_EQ(flat.plane_digest(),
            fresh_compile_digest(classifier, flat.live_prefixes(), uopts,
                                 nullptr, [&](const FlatClassifier& oracle) {
                                   EXPECT_EQ(classify_trace(flat, flows),
                                             classify_trace(oracle, flows));
                                 }));
  // Classification is untouched by pid renumbering: labels carry
  // classes, not pids.
  EXPECT_EQ(classify_trace(flat, flows), classify_trace(classifier, flows));

  // Re-announcing the whole live set is a pure no-op: no epoch bump, no
  // byte changes.
  const std::uint64_t epoch = flat.epoch();
  const std::uint64_t digest = flat.plane_digest();
  std::vector<UpdateMessage> redundant;
  for (const auto& p : flat.live_prefixes()) redundant.push_back(announce(p));
  const auto again = flat.apply_updates(redundant);
  EXPECT_FALSE(again.changed);
  EXPECT_EQ(again.redundant, redundant.size());
  EXPECT_EQ(flat.epoch(), epoch);
  EXPECT_EQ(flat.plane_digest(), digest);
}

TEST(PlaneUpdate, AnnounceWithdrawCountersAndClassifyParity) {
  Fixture fx;
  FlatClassifier flat = FlatClassifier::compile(*fx.classifier);
  FlatClassifier::UpdateApplyOptions uopts;

  std::vector<UpdateMessage> batch = {
      announce(pfx("70.0.0.0/16")),   // new route
      withdraw(pfx("60.0.0.0/16")),   // drops a live route
      announce(pfx("50.0.0.0/16")),   // already live -> redundant
      announce(pfx("10.1.2.0/30")),   // /30 outside the [8,24] window
  };
  const auto stats = flat.apply_updates(batch, uopts);
  EXPECT_EQ(stats.announced, 1u);
  EXPECT_EQ(stats.withdrawn, 1u);
  EXPECT_EQ(stats.redundant, 1u);
  EXPECT_EQ(stats.out_of_range, 1u);
  EXPECT_TRUE(stats.changed);
  EXPECT_EQ(flat.epoch(), 1u);

  const std::vector<net::Prefix> want = {pfx("50.0.0.0/16"),
                                         pfx("70.0.0.0/16")};
  EXPECT_EQ(flat.live_prefixes(), want);
  EXPECT_EQ(flat.plane_digest(),
            fresh_compile_digest(
                *fx.classifier, flat.live_prefixes(), uopts, nullptr,
                [&](const FlatClassifier& oracle) {
                  // Spot probes across the changed ranges and both
                  // members, against the freshly compiled plane.
                  for (const char* addr : {"50.0.1.1", "60.0.0.1", "70.0.3.9",
                                           "10.1.2.1", "99.9.9.9"}) {
                    const Ipv4Addr a = pfx(addr).address();
                    for (const Asn member : {Asn{1}, Asn{2}}) {
                      EXPECT_EQ(flat.classify_all(a, member),
                                oracle.classify_all(a, member))
                          << addr << " member " << member;
                    }
                  }
                }));

  // An announce+withdraw pair inside one batch cancels to nothing.
  const std::uint64_t epoch = flat.epoch();
  const std::uint64_t digest = flat.plane_digest();
  const std::vector<UpdateMessage> cancel = {announce(pfx("80.0.0.0/12")),
                                             withdraw(pfx("80.0.0.0/12"))};
  const auto net0 = flat.apply_updates(cancel, uopts);
  EXPECT_EQ(net0.announced, 0u);
  EXPECT_EQ(net0.withdrawn, 0u);
  EXPECT_FALSE(net0.changed);
  EXPECT_EQ(flat.epoch(), epoch);
  EXPECT_EQ(flat.plane_digest(), digest);

  // Withdrawing everything leaves an empty live set that still matches
  // its (empty) fresh compile.
  const auto gone = flat.apply_updates(
      std::vector<UpdateMessage>{withdraw(pfx("50.0.0.0/16")),
                                 withdraw(pfx("70.0.0.0/16"))},
      uopts);
  EXPECT_EQ(gone.withdrawn, 2u);
  EXPECT_TRUE(flat.live_prefixes().empty());
  EXPECT_EQ(flat.plane_digest(),
            fresh_compile_digest(*fx.classifier, {}, uopts));
}

TEST(PlaneUpdate, MappedCachePlanePatchesWithoutTouchingTheEntry) {
  Fixture fx;
  const std::string dir =
      (fs::temp_directory_path() /
       ("spoofscope_plane_update_cache." + std::to_string(::getpid())))
          .string();
  state::PlaneCache cache(dir);
  util::ThreadPool pool(2);
  {
    const auto stored = cache.load_or_compile(*fx.classifier, &pool);
    ASSERT_TRUE(stored.stored);
  }
  auto loaded = cache.load_or_compile(*fx.classifier, &pool);
  ASSERT_TRUE(loaded.hit);

  // Snapshot the single cache entry's bytes before patching.
  std::string entry;
  for (const auto& e : fs::directory_iterator(dir)) {
    entry = e.path().string();
  }
  ASSERT_FALSE(entry.empty());
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  const std::string before = slurp(entry);

  // Patching the mmapped plane copies it out of the snapshot first
  // (ensure_owned): the entry on disk must never be written through.
  FlatClassifier::UpdateApplyOptions uopts;
  const auto stats = loaded.plane.apply_updates(
      std::vector<UpdateMessage>{announce(pfx("70.0.0.0/16")),
                                 withdraw(pfx("60.0.0.0/16"))},
      uopts);
  EXPECT_TRUE(stats.changed);
  EXPECT_EQ(loaded.plane.plane_digest(),
            fresh_compile_digest(*fx.classifier, loaded.plane.live_prefixes(),
                                 uopts));
  EXPECT_EQ(slurp(entry), before);

  // A second load still validates and serves the original plane.
  const auto reloaded = cache.load_or_compile(*fx.classifier, &pool);
  EXPECT_TRUE(reloaded.hit);
  EXPECT_FALSE(reloaded.plane.live());
  fs::remove_all(dir);
}

TEST(PlaneUpdate, EpochBumpReclassifiesBufferedFlows) {
  Fixture fx;
  FlatClassifier patched_early = FlatClassifier::compile(*fx.classifier);
  FlatClassifier patched_mid = FlatClassifier::compile(*fx.classifier);
  const std::vector<UpdateMessage> batch = {withdraw(pfx("50.0.0.0/16")),
                                            announce(pfx("99.0.0.0/16"))};

  StreamingParams params;
  params.window_seconds = 300;
  params.min_spoofed_packets = 5;
  params.min_share = 0.1;
  params.reorder_skew_seconds = 1000;  // everything stays buffered
  params.max_reorder_records = 4096;

  // Stream short enough to sit in the reorder buffer end-to-end: the
  // mid-stream patch lands while every flow is still pending, so both
  // runs must release every flow under the patched plane.
  util::Rng rng(7);
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 200; ++i) {
    net::FlowRecord f;
    const bool legit = rng.chance(0.5);
    f.src = legit ? Ipv4Addr::from_octets(50, 0, 0, 1)
                  : Ipv4Addr::from_octets(99, 0, 0, 1);
    f.dst = Ipv4Addr::from_octets(60, 0, 0, 1);
    f.ts = static_cast<std::uint32_t>(i);
    f.packets = 2;
    f.bytes = 80;
    f.member_in = 1;
    flows.push_back(f);
  }

  std::vector<SpoofingAlert> mid_alerts, early_alerts;
  const auto mid_sink = [&](const SpoofingAlert& a) { mid_alerts.push_back(a); };
  const auto early_sink = [&](const SpoofingAlert& a) {
    early_alerts.push_back(a);
  };

  StreamingDetector mid(patched_mid, 0, params);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (i == flows.size() / 2) {
      ASSERT_TRUE(patched_mid.apply_updates(batch).changed);
    }
    mid.ingest(flows[i], mid_sink);
  }
  mid.flush(mid_sink);

  ASSERT_TRUE(patched_early.apply_updates(batch).changed);
  StreamingDetector early(patched_early, 0, params);
  for (const auto& f : flows) early.ingest(f, early_sink);
  early.flush(early_sink);

  EXPECT_EQ(mid_alerts, early_alerts);
  EXPECT_EQ(mid.health(), early.health());
  ASSERT_FALSE(early_alerts.empty())
      << "the patch must flip member 1's 50.0/16 traffic to spoofed";
}

// ------------------------------------------------------------- churn fuzz

/// Satellite: 1k-step randomized announce/withdraw churn. After EVERY
/// step the patched plane's digest must equal a fresh compile over the
/// live set — with overflow-lane lengths (/25../28) in the mix, members
/// extended with unaligned interval ranges (partial rows engaged), and
/// pooled/sequential application alternating step to step.
class PlaneChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlaneChurnTest, ChurnMatchesFreshCompileEveryStep) {
  const std::uint64_t seed = GetParam();
  auto params = scenario::ScenarioParams::small();
  params.seed = seed;
  const auto w = scenario::build_scenario(params);
  auto& classifier = w->classifier();
  const auto& table_prefixes = w->table().prefixes();
  const auto members = w->ixp().member_asns();
  ASSERT_FALSE(table_prefixes.empty());

  // Unaligned extends (as in the flat-oracle suite) so churn repaints
  // ranges served by the interval-set fallback lane too.
  for (std::size_t m = 0; m < 4 && m < members.size(); ++m) {
    const auto& p = table_prefixes[(m * 13) % table_prefixes.size()];
    trie::IntervalSet extra;
    if (p.last() - p.first() >= 8) {
      extra.add(p.first() + 1, p.first() + (p.last() - p.first()) / 2);
    }
    classifier.mutable_space(4).extend(members[m], extra);
  }

  util::ThreadPool pool(0);
  FlatClassifier flat = FlatClassifier::compile(classifier, pool);
  EXPECT_GT(flat.stats().partial_rows, 0u);

  FlatClassifier::UpdateApplyOptions uopts;
  uopts.min_length = 8;
  uopts.max_length = 28;  // let announcements land on the overflow lane

  util::Rng rng(seed ^ 0xc4c4c4c4ull);
  // Every step fresh-compiles the 64 MiB oracle plane (~200 ms), so the
  // default tier-1 sweep is trimmed; tools/check.sh runs the full
  // thousand-step sweep via SPOOFSCOPE_CHURN_STEPS=1000.
  int steps = 200;
  if (const char* env = std::getenv("SPOOFSCOPE_CHURN_STEPS")) {
    steps = std::max(1, std::atoi(env));
  }
  std::uint64_t last_epoch = flat.epoch();
  for (int step = 0; step < steps; ++step) {
    std::vector<UpdateMessage> batch;
    const std::size_t ops = 1 + rng.index(8);
    for (std::size_t o = 0; o < ops; ++o) {
      const auto& live =
          flat.live() ? flat.live_prefixes() : table_prefixes;
      if (!live.empty() && rng.chance(0.45)) {
        batch.push_back(withdraw(live[rng.index(live.size())],
                                 static_cast<std::uint32_t>(step)));
      } else {
        // Mostly in-window lengths; a fifth land on the overflow lane.
        const std::uint8_t len =
            rng.chance(0.2)
                ? static_cast<std::uint8_t>(25 + rng.index(4))
                : static_cast<std::uint8_t>(8 + rng.index(17));
        // Bias into the scenario's own address ranges half the time so
        // withdraws/announces collide with routed space.
        const std::uint32_t addr =
            rng.chance(0.5)
                ? table_prefixes[rng.index(table_prefixes.size())].first() +
                      rng.next_u32() % 4096
                : rng.next_u32();
        batch.push_back(announce(net::Prefix(Ipv4Addr(addr), len),
                                 static_cast<std::uint32_t>(step)));
      }
    }
    FlatClassifier::UpdateApplyOptions step_opts = uopts;
    step_opts.pool = (step % 2 == 0) ? &pool : nullptr;
    const auto stats = flat.apply_updates(batch, step_opts);
    if (stats.changed) {
      ASSERT_EQ(flat.epoch(), last_epoch + 1);
      last_epoch = flat.epoch();
    } else {
      ASSERT_EQ(flat.epoch(), last_epoch);
    }
    ASSERT_TRUE(std::is_sorted(flat.live_prefixes().begin(),
                               flat.live_prefixes().end()))
        << "live set must stay canonical, step " << step;

    ASSERT_EQ(flat.plane_digest(),
              fresh_compile_digest(classifier, flat.live_prefixes(), uopts,
                                   &pool))
        << "seed " << seed << " step " << step << " (batch of " << ops
        << " ops, epoch " << flat.epoch() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlaneChurnTest,
                         ::testing::Values(0xA11CEull, 0xB0Bull, 0x5EEDull));

}  // namespace
}  // namespace spoofscope::classify
