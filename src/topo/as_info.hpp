// Per-AS ground-truth metadata for the simulated Internet: business type
// (the paper's Fig 6 categories, derived from PeeringDB in the original),
// organization membership, allocated address space, and the egress
// filtering policy that the traffic generator honours.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/prefix.hpp"

namespace spoofscope::topo {

using net::Asn;

/// Identifier of an organization (multi-AS org handling, Sec 3.2).
using OrgId = std::uint32_t;

/// Business types as used in Fig 6 (PeeringDB-derived in the paper).
enum class BusinessType : std::uint8_t {
  kNsp = 0,      ///< network service provider (tier-1 / transit)
  kIsp = 1,      ///< end-user ISP (eyeball network)
  kHosting = 2,  ///< hosting / cloud provider
  kContent = 3,  ///< content provider / CDN
  kOther = 4,    ///< enterprise, research, misc
};

inline constexpr int kNumBusinessTypes = 5;

/// Display name matching the paper's plot legends.
std::string business_name(BusinessType t);

/// Ground-truth egress filtering policy of an AS. The paper's Fig 5
/// taxonomy (clean / bogon-leaking / unfiltered, ...) emerges from the mix
/// of these policies and the presence of spoofing hosts.
struct FilterPolicy {
  /// Drops egress packets with bogon source addresses (static ACL; the
  /// survey found ~70% of operators filter well-known unroutable ranges).
  bool blocks_bogon = false;

  /// Validates egress sources against own + customer address space
  /// (BCP38/BCP84-style). Implies spoofed (unrouted/invalid) packets are
  /// dropped at the border; bogon leaks are governed separately because
  /// misconfigured NAT gear commonly sits behind otherwise valid space.
  bool blocks_spoofed = false;

  friend bool operator==(const FilterPolicy&, const FilterPolicy&) = default;
};

/// Everything the simulation knows about one AS.
struct AsInfo {
  Asn asn = net::kNoAsn;
  BusinessType type = BusinessType::kOther;
  OrgId org = 0;

  /// Prefixes allocated to (and potentially announced by) this AS.
  std::vector<net::Prefix> prefixes;

  /// Fraction of allocated prefixes this AS actually announces into BGP
  /// (the remainder is allocated-but-unrouted space).
  double announce_fraction = 1.0;

  /// Egress filtering ground truth.
  FilterPolicy filter;

  /// Propensity of hosts in this network to emit intentionally spoofed
  /// traffic (attackers renting VMs at hosters, compromised CPE at ISPs).
  double spoofer_density = 0.0;

  /// Propensity for misconfigured NAT devices leaking RFC1918 sources.
  double nat_leak_density = 0.0;
};

/// Number of prefixes of `info` that are announced into BGP: the first
/// ceil(announce_fraction * n) entries of `prefixes` (allocation order is
/// already randomized by the generator). The remainder is
/// allocated-but-unrouted space.
std::size_t announced_prefix_count(const AsInfo& info);

/// Relationship types between ASes (Gao-Rexford model).
enum class RelType : std::uint8_t {
  kCustomerToProvider = 0,  ///< `from` pays `to` for transit
  kPeerToPeer = 1,          ///< settlement-free peering
  kSibling = 2,             ///< same organization, internal link
};

std::string rel_name(RelType t);

/// A relationship edge. For kCustomerToProvider, `from` is the customer
/// and `to` the provider. For kPeerToPeer and kSibling the direction is
/// irrelevant (stored once, from < to by ASN).
struct AsLink {
  Asn from = net::kNoAsn;
  Asn to = net::kNoAsn;
  RelType type = RelType::kPeerToPeer;

  /// Whether this link is visible in public BGP data. Sibling links of
  /// multi-AS organizations are frequently invisible (Sec 3.2), and some
  /// peerings are invisible too (Sec 4.4, missing links).
  bool visible_in_bgp = true;

  /// Address block used for the point-to-point router interfaces on this
  /// link; routers emitting stray ICMP pick sources from here. Often not
  /// announced in BGP (contributes to Invalid/Unrouted router traffic,
  /// Sec 5.2). A zero-length prefix means "not modelled for this link".
  net::Prefix infra;

  friend bool operator==(const AsLink&, const AsLink&) = default;
};

}  // namespace spoofscope::topo
