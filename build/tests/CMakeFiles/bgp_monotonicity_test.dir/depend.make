# Empty dependencies file for bgp_monotonicity_test.
# This may be replaced when dependencies are built.
