// Sec 4.4 — hunting false positives. Even the conservative Full Cone
// misclassifies traffic when AS relationships are missing from BGP data.
// The workflow: take the members with the highest Invalid share, consult
// WHOIS/looking-glass records for missing relations and provider-assigned
// space, whitelist the recovered ranges, and re-classify.
#pragma once

#include <span>
#include <vector>

#include "classify/classifier.hpp"
#include "data/whois.hpp"
#include "net/trace.hpp"
#include "topo/topology.hpp"

namespace spoofscope::classify {

/// Outcome of the hunt (the paper reports Invalid shrinking by 59.9% of
/// bytes / 40% of packets after whitelisting).
struct FpHuntReport {
  std::size_t members_investigated = 0;
  std::size_t members_with_recovered_ranges = 0;
  std::size_t ranges_whitelisted = 0;
  double invalid_bytes_before = 0;
  double invalid_bytes_after = 0;
  double invalid_packets_before = 0;
  double invalid_packets_after = 0;

  double bytes_reduction() const {
    return invalid_bytes_before == 0
               ? 0.0
               : 1.0 - invalid_bytes_after / invalid_bytes_before;
  }
  double packets_reduction() const {
    return invalid_packets_before == 0
               ? 0.0
               : 1.0 - invalid_packets_after / invalid_packets_before;
  }
};

/// Runs the hunt for the method at `space_idx`: investigates the top_k
/// members by Invalid share of their own traffic, extends their valid
/// space with WHOIS-recoverable ranges and updates `labels` in place.
FpHuntReport hunt_false_positives(Classifier& classifier, std::size_t space_idx,
                                  std::span<const net::FlowRecord> flows,
                                  std::vector<Label>& labels,
                                  const data::WhoisRegistry& whois,
                                  const topo::Topology& topo,
                                  std::size_t top_k = 40);

}  // namespace spoofscope::classify
