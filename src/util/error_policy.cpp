#include "util/error_policy.hpp"

#include <sstream>

namespace spoofscope::util {

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTruncated: return "truncated";
    case ErrorKind::kBadMagic: return "bad-magic";
    case ErrorKind::kBadVersion: return "bad-version";
    case ErrorKind::kChecksum: return "checksum";
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kCountMismatch: return "count-mismatch";
  }
  return "unknown";
}

bool IngestStats::clean() const {
  if (records_skipped != 0 || bytes_dropped != 0) return false;
  for (const auto e : errors) {
    if (e != 0) return false;
  }
  return true;
}

void IngestStats::merge(const IngestStats& other) {
  records_ok += other.records_ok;
  records_skipped += other.records_skipped;
  bytes_dropped += other.bytes_dropped;
  for (std::size_t i = 0; i < kNumErrorKinds; ++i) errors[i] += other.errors[i];
}

std::string IngestStats::summary() const {
  std::ostringstream os;
  os << records_ok << " records ok, " << records_skipped << " skipped";
  bool any = false;
  for (std::size_t i = 0; i < kNumErrorKinds; ++i) {
    if (errors[i] == 0) continue;
    os << (any ? ", " : " (") << errors[i] << ' '
       << error_kind_name(static_cast<ErrorKind>(i));
    any = true;
  }
  if (any) os << ')';
  os << ", " << bytes_dropped << " bytes dropped";
  return os.str();
}

std::string to_json(const IngestStats& stats) {
  std::ostringstream os;
  os << "{\"records_ok\":" << stats.records_ok
     << ",\"records_skipped\":" << stats.records_skipped
     << ",\"bytes_dropped\":" << stats.bytes_dropped << ",\"errors\":{";
  for (std::size_t i = 0; i < kNumErrorKinds; ++i) {
    if (i != 0) os << ',';
    os << '"' << error_kind_name(static_cast<ErrorKind>(i)) << "\":"
       << stats.errors[i];
  }
  os << "}}";
  return os.str();
}

}  // namespace spoofscope::util
