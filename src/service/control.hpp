// Control protocol for the resident service: a line-oriented text
// protocol over a Unix-domain stream socket, human-speakable with
// `nc -U` and trivially scriptable.
//
// Grammar (one request line, LF-terminated; responses are one or more
// LF-terminated lines, the last of which starts with "ok" or "err"):
//
//   request  = verb [" " argument] "\n"
//   verb     = "submit" | "health" | "stats-json" | "alerts"
//            | "checkpoint" | "reload-updates" | "drain" | "shutdown"
//   response = *(payload-line "\n") status-line "\n"
//   status   = "ok" [" " detail] | "err " message
//
// `submit` and `reload-updates` take a server-side file path argument;
// the other verbs take none. Payload lines never start with "ok" or
// "err" (alert lines start "alert:", health lines "health:", stats
// lines "{"), so a client reads lines until the status line.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace spoofscope::service {

enum class Verb {
  kSubmit,
  kHealth,
  kStatsJson,
  kAlerts,
  kCheckpoint,
  kReloadUpdates,
  kDrain,
  kShutdown,
};

struct Request {
  Verb verb = Verb::kHealth;
  std::string arg;  ///< path argument (submit / reload-updates), else empty
};

/// Parses one request line (without the trailing newline). On failure
/// returns nullopt and sets `error` to the "err ..." message body.
std::optional<Request> parse_request(std::string_view line, std::string& error);

/// "submit", "health", ... — the wire name of a verb.
std::string_view verb_name(Verb verb);

}  // namespace spoofscope::service
