// Deterministic fault injection for the durable-state plane. Production
// code marks its fault sites ("snapshot.write", "plane_cache.load", ...)
// with FaultInjector::at(); with no injector installed the call is a
// null-pointer check and every site behaves normally. Tests install one
// (FaultInjector::Scope) and either arm a specific fault at the nth
// occurrence of a site or run a seeded random sweep, so every crash and
// torn-byte scenario the differential suites exercise is replayable from
// (seed, site, occurrence) alone — no timing, no signals, no real disk
// failures.
//
// Crash faults are modelled as InjectedCrash exceptions thrown at the
// site: the process state afterwards (half-written tmp file, renamed but
// unreported snapshot, ...) is exactly the on-disk state a kill at that
// instruction boundary would leave, while the test harness survives to
// restart and verify recovery.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace spoofscope::util {

/// What a fault site is asked to do. Each site passes the kinds it can
/// express; armed or randomly-drawn kinds outside that set are ignored.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kShortWrite,        ///< persist a prefix of the bytes, then crash
  kEnospc,            ///< the write fails cleanly (disk full)
  kCrashBeforeRename, ///< tmp file complete, rename never happens
  kCrashAfterRename,  ///< rename done, caller never learns of it
  kShortRead,         ///< the reader sees a truncated byte span
  kTornPage,          ///< one 4 KiB page of the read reverts to zeros
  kCrash,             ///< plain crash at the site (no I/O half-state)
};

/// "short-write", "enospc", ... for logs and test names.
std::string_view fault_kind_name(FaultKind kind);

/// The modelled crash. Deliberately not a std::runtime_error subclass of
/// SnapshotError or any ingest error: recovery paths that translate
/// "damaged data" must never swallow "the process died here".
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(std::string_view site)
      : std::runtime_error("injected crash at " + std::string(site)) {}
};

class FaultInjector {
 public:
  /// Manual mode: faults fire only where arm() planted them.
  FaultInjector() = default;

  /// Random-sweep mode: every site occurrence draws from a counter-keyed
  /// hash of `seed`, firing with `probability` and picking uniformly
  /// among the kinds the site allows. Same seed, same instrumented run
  /// => same faults.
  FaultInjector(std::uint64_t seed, double probability);

  /// Arms `kind` at the `nth` (1-based) occurrence of `site`.
  void arm(std::string_view site, std::uint64_t nth, FaultKind kind);

  /// Called by instrumented code at each fault site. Counts the
  /// occurrence and returns the fault to apply (almost always kNone).
  FaultKind at(std::string_view site, std::initializer_list<FaultKind> allowed);

  /// Deterministic auxiliary draw in [0, bound) tied to the last fault
  /// returned by at() — sites use it to pick the torn page or the
  /// short-read cut without consulting a global RNG.
  std::uint64_t pick(std::uint64_t bound);

  /// Times `site` was reached so far.
  std::uint64_t occurrences(std::string_view site) const;

  /// Total faults fired (any site, any kind).
  std::uint64_t injected() const;

  /// The installed injector, or nullptr (the common case).
  static FaultInjector* current();

  /// RAII install/uninstall. Nesting restores the previous injector.
  class Scope {
   public:
    explicit Scope(FaultInjector& injector);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FaultInjector* prev_;
  };

 private:
  struct Armed {
    std::uint64_t nth;
    FaultKind kind;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::vector<Armed>, std::less<>> armed_;
  std::map<std::string, std::uint64_t, std::less<>> counts_;
  bool random_ = false;
  std::uint64_t seed_ = 0;
  double probability_ = 0;
  std::uint64_t aux_ = 0;  ///< state behind pick()
  std::uint64_t injected_ = 0;
};

}  // namespace spoofscope::util
