# Empty compiler generated dependencies file for live_filter.
# This may be replaced when dependencies are built.
