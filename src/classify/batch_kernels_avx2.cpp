// AVX2 batch kernel for the flat plane: 8-wide base-table and record
// gathers with a two-phase hot/slow split.
//
// Per tile (kTile rows, thread-local scratch):
//   pass A  gathers base entries for the whole tile with
//           _mm256_i32gather_epi32 over src >> 8, software-prefetching
//           the lines a fixed element distance ahead;
//   pass B  resolves member slots scalar (runs of equal ASNs hit a
//           last-member fast path; the probe table is tiny) and issues
//           record prefetches for routed rows;
//   pass C  re-runs the tile 8-wide: masked record gather for
//           routed+known rows, vector bit-spread of the full-coverage
//           mask into the packed Label, kind-driven blends for
//           bogon/unrouted, and a movemask compaction of every row that
//           needs the slow lane (overflow entries, records with partial
//           bits) into a pending index list;
//   pass D  (phase 2) resolves only the pending rows through the exact
//           scalar classify_overflow / classify_routed paths.
//
// Tails shorter than the vector width fall off the 8-wide loops into the
// scalar per-row path inside the same tile, so any batch size is legal
// and labels never depend on n mod 8. On planes where a 32-bit gather at
// the last record could overread the backing storage (mapped snapshots
// pin the records section flush against the file end),
// records_gather_safe_ is false and pass C loads records scalar into the
// same lanes — identical labels, narrower loads.
#include "classify/batch_kernels.hpp"

#if SPOOFSCOPE_KERNEL_AVX2

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "classify/flat_classifier.hpp"
#include "net/flow_batch.hpp"

namespace spoofscope::classify {

namespace {

/// Rows per scratch tile: big enough to amortize the pass switches,
/// small enough that entry/slot scratch stays L1/L2-resident (48 KiB).
constexpr std::size_t kTile = 4096;

/// Elements of base-table prefetch lookahead in pass A.
constexpr std::size_t kGatherPrefetch = 64;

struct Scratch {
  std::vector<std::uint32_t> entry;
  std::vector<std::uint32_t> slot;
  std::vector<std::uint32_t> pending;
};

Scratch& scratch() {
  thread_local Scratch s;
  if (s.entry.size() != kTile) {
    s.entry.resize(kTile);
    s.slot.resize(kTile);
    s.pending.reserve(kTile);
  }
  return s;
}

inline void prefetch_ro(const void* p) { __builtin_prefetch(p, 0, 1); }

}  // namespace

void FlatClassifier::kernel_avx2(const std::uint32_t* src, const Asn* member,
                                 std::size_t n, Label* out) const {
  Scratch& sc = scratch();
  const std::uint32_t* base = base_view_;
  const std::uint16_t* recs = records_view_;
  const std::uint32_t np = static_cast<std::uint32_t>(num_prefixes_);

  const __m256i v_payload = _mm256_set1_epi32(static_cast<int>(kPayloadMask));
  const __m256i v_np = _mm256_set1_epi32(static_cast<int>(np));
  const __m256i v_noslot = _mm256_set1_epi32(-1);  // MemberView::kNoSlot
  const __m256i v_ones = _mm256_set1_epi32(-1);
  const __m256i v_zero = _mm256_setzero_si256();
  const __m256i v_kind_routed = _mm256_set1_epi32(static_cast<int>(kKindRouted));
  const __m256i v_kind_unrouted =
      _mm256_set1_epi32(static_cast<int>(kKindUnrouted));
  const __m256i v_kind_bogon = _mm256_set1_epi32(static_cast<int>(kKindBogon));
  const __m256i v_all_invalid = _mm256_set1_epi32(all_invalid_);
  const __m256i v_all_unrouted = _mm256_set1_epi32(all_unrouted_);
  const __m256i v_all_bogon = _mm256_set1_epi32(all_bogon_);
  const __m256i v_ff = _mm256_set1_epi32(0xFF);
  const __m256i v_0f0f = _mm256_set1_epi32(0x0F0F);
  const __m256i v_3333 = _mm256_set1_epi32(0x3333);
  const __m256i v_5555 = _mm256_set1_epi32(0x5555);

  Asn last_member = net::kNoAsn;
  std::uint32_t last_slot = MemberView::kNoSlot;
  bool have_last = false;

  for (std::size_t t = 0; t < n; t += kTile) {
    const std::size_t m = std::min(kTile, n - t);
    const std::uint32_t* s = src + t;
    const Asn* mem = member + t;
    Label* lab = out + t;
    sc.pending.clear();

    // --- pass A: 8-wide base-table gather --------------------------------
    const std::size_t vec_end = m & ~std::size_t{7};
    std::size_t i = 0;
    for (; i < vec_end; i += 8) {
      if (i + kGatherPrefetch + 8 <= m) {
        for (std::size_t j = 0; j < 8; ++j) {
          prefetch_ro(base + (s[i + kGatherPrefetch + j] >> 8));
        }
      }
      const __m256i v_src = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(s + i));
      const __m256i v_idx = _mm256_srli_epi32(v_src, 8);
      const __m256i v_entry = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(base), v_idx, 4);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(sc.entry.data() + i),
                          v_entry);
    }
    for (; i < m; ++i) sc.entry[i] = base[s[i] >> 8];

    // --- pass B: member slots + record prefetch --------------------------
    for (i = 0; i < m; ++i) {
      const Asn a = mem[i];
      if (!have_last || a != last_member) {
        last_member = a;
        last_slot = slot_of(a);
        have_last = true;
      }
      sc.slot[i] = last_slot;
      const std::uint32_t e = sc.entry[i];
      if ((e >> kKindShift) == kKindRouted &&
          last_slot != MemberView::kNoSlot) {
        prefetch_ro(recs + std::size_t{last_slot} * np + (e & kPayloadMask));
      }
    }

    // --- pass C: 8-wide record resolve + label pack + compaction ---------
    for (i = 0; i < vec_end; i += 8) {
      const __m256i v_entry = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(sc.entry.data() + i));
      const __m256i v_slot = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(sc.slot.data() + i));
      const __m256i v_kind = _mm256_srli_epi32(v_entry, kKindShift);
      const __m256i v_pid = _mm256_and_si256(v_entry, v_payload);
      const __m256i m_routed = _mm256_cmpeq_epi32(v_kind, v_kind_routed);
      const __m256i m_known =
          _mm256_xor_si256(_mm256_cmpeq_epi32(v_slot, v_noslot), v_ones);
      const __m256i m_gather = _mm256_and_si256(m_routed, m_known);
      const __m256i v_off =
          _mm256_add_epi32(_mm256_mullo_epi32(v_slot, v_np), v_pid);
      __m256i v_rec;
      if (records_gather_safe_) {
        // Masked 32-bit gather over the 16-bit records (scale 2); masked
        // lanes are never dereferenced, the high half is discarded below.
        v_rec = _mm256_mask_i32gather_epi32(
            v_zero, reinterpret_cast<const int*>(recs), v_off, m_gather, 2);
        v_rec = _mm256_and_si256(v_rec, _mm256_set1_epi32(0xFFFF));
      } else {
        alignas(32) std::uint32_t off[8];
        alignas(32) std::uint32_t gm[8];
        alignas(32) std::uint32_t tmp[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(off), v_off);
        _mm256_store_si256(reinterpret_cast<__m256i*>(gm), m_gather);
        for (std::size_t j = 0; j < 8; ++j) {
          tmp[j] = gm[j] ? recs[off[j]] : 0u;
        }
        v_rec = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
      }
      // Bit-spread the full-coverage mask (bit k -> bit 2k) and OR over
      // the all-Invalid pattern: Invalid (0b10) flips to Valid (0b11)
      // per fully-covered method — the vector form of classify_routed.
      __m256i v_valid = _mm256_and_si256(v_rec, v_ff);
      v_valid = _mm256_and_si256(
          _mm256_or_si256(v_valid, _mm256_slli_epi32(v_valid, 4)), v_0f0f);
      v_valid = _mm256_and_si256(
          _mm256_or_si256(v_valid, _mm256_slli_epi32(v_valid, 2)), v_3333);
      v_valid = _mm256_and_si256(
          _mm256_or_si256(v_valid, _mm256_slli_epi32(v_valid, 1)), v_5555);
      __m256i v_label = _mm256_or_si256(v_all_invalid, v_valid);
      v_label = _mm256_blendv_epi8(
          v_label, v_all_unrouted, _mm256_cmpeq_epi32(v_kind, v_kind_unrouted));
      v_label = _mm256_blendv_epi8(
          v_label, v_all_bogon, _mm256_cmpeq_epi32(v_kind, v_kind_bogon));
      const __m128i packed = _mm_packus_epi32(
          _mm256_castsi256_si128(v_label), _mm256_extracti128_si256(v_label, 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(lab + i), packed);
      // Slow-lane rows: overflow entries, or routed+known records with
      // any partial bit — their labels above are provisional.
      const __m256i m_overflow =
          _mm256_cmpeq_epi32(v_kind, _mm256_set1_epi32(3));
      const __m256i v_partial =
          _mm256_and_si256(_mm256_srli_epi32(v_rec, 8), v_ff);
      const __m256i m_partial = _mm256_and_si256(
          m_gather,
          _mm256_xor_si256(_mm256_cmpeq_epi32(v_partial, v_zero), v_ones));
      std::uint32_t bits = static_cast<std::uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_or_si256(m_overflow, m_partial))));
      while (bits != 0) {
        const int j = std::countr_zero(bits);
        bits &= bits - 1;
        sc.pending.push_back(static_cast<std::uint32_t>(i) + j);
      }
    }
    // Ragged tail: full scalar per-row resolution (already slot-resolved).
    for (i = vec_end; i < m; ++i) {
      lab[i] = classify_all(net::Ipv4Addr(s[i]), view_for(mem[i], sc.slot[i]));
    }

    // --- pass D (phase 2): exact slow lane for the compacted rows --------
    resolve_pending(s, mem, sc.entry.data(), sc.slot.data(), sc.pending.data(),
                    sc.pending.size(), lab);
  }
}

}  // namespace spoofscope::classify

#endif  // SPOOFSCOPE_KERNEL_AVX2
