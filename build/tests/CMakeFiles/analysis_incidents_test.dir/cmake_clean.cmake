file(REMOVE_RECURSE
  "CMakeFiles/analysis_incidents_test.dir/analysis_incidents_test.cpp.o"
  "CMakeFiles/analysis_incidents_test.dir/analysis_incidents_test.cpp.o.d"
  "analysis_incidents_test"
  "analysis_incidents_test.pdb"
  "analysis_incidents_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_incidents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
