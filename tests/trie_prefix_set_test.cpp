#include "trie/prefix_set.hpp"

#include <gtest/gtest.h>

#include "net/prefix.hpp"

namespace spoofscope::trie {
namespace {

using net::Ipv4Addr;
using net::pfx;

TEST(PrefixSet, EmptyCoversNothing) {
  PrefixSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.covers(Ipv4Addr::from_octets(10, 0, 0, 1)));
}

TEST(PrefixSet, InsertIdempotent) {
  PrefixSet s;
  EXPECT_TRUE(s.insert(pfx("10.0.0.0/8")));
  EXPECT_FALSE(s.insert(pfx("10.0.0.0/8")));
  EXPECT_EQ(s.size(), 1u);
}

TEST(PrefixSet, CoversInsideOnly) {
  PrefixSet s;
  s.insert(pfx("192.168.0.0/16"));
  EXPECT_TRUE(s.covers(Ipv4Addr::from_octets(192, 168, 44, 5)));
  EXPECT_FALSE(s.covers(Ipv4Addr::from_octets(192, 169, 0, 0)));
}

TEST(PrefixSet, ContainsExactVsCovered) {
  PrefixSet s;
  s.insert(pfx("10.0.0.0/8"));
  EXPECT_TRUE(s.contains_exact(pfx("10.0.0.0/8")));
  EXPECT_FALSE(s.contains_exact(pfx("10.0.0.0/16")));  // covered, not stored
}

TEST(PrefixSet, MatchLongest) {
  PrefixSet s;
  s.insert(pfx("10.0.0.0/8"));
  s.insert(pfx("10.1.0.0/16"));
  const auto m = s.match_longest(Ipv4Addr::from_octets(10, 1, 2, 3));
  ASSERT_TRUE(m);
  EXPECT_EQ(*m, pfx("10.1.0.0/16"));
  EXPECT_FALSE(s.match_longest(Ipv4Addr::from_octets(11, 0, 0, 0)));
}

TEST(PrefixSet, ConstructFromSpan) {
  const std::vector<net::Prefix> ps{pfx("10.0.0.0/8"), pfx("172.16.0.0/12")};
  PrefixSet s{std::span<const net::Prefix>(ps)};
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.covers(Ipv4Addr::from_octets(172, 20, 0, 0)));
}

TEST(PrefixSet, Slash24CountsOverlapOnce) {
  PrefixSet s;
  s.insert(pfx("10.0.0.0/8"));
  s.insert(pfx("10.1.0.0/16"));  // nested, must not double count
  EXPECT_DOUBLE_EQ(s.slash24_equivalents(), 65536.0);
}

TEST(PrefixSet, AggregateMergesSiblings) {
  PrefixSet s;
  s.insert(pfx("10.0.0.0/9"));
  s.insert(pfx("10.128.0.0/9"));
  const auto agg = s.aggregate();
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0], pfx("10.0.0.0/8"));
}

TEST(PrefixSet, PrefixesReturnsInsertionOrder) {
  PrefixSet s;
  s.insert(pfx("20.0.0.0/8"));
  s.insert(pfx("10.0.0.0/8"));
  const auto ps = s.prefixes();
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0], pfx("20.0.0.0/8"));
  EXPECT_EQ(ps[1], pfx("10.0.0.0/8"));
}

TEST(PrefixSet, ToIntervalSetMatchesCoverage) {
  PrefixSet s;
  s.insert(pfx("10.0.0.0/24"));
  s.insert(pfx("10.0.1.0/24"));
  const auto is = s.to_interval_set();
  EXPECT_EQ(is.address_count(), 512u);
}

}  // namespace
}  // namespace spoofscope::trie
