#include "bgp/as_path.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/strings.hpp"

namespace spoofscope::bgp {

std::optional<AsPath> AsPath::parse(std::string_view s) {
  s = util::trim(s);
  if (s.empty()) return AsPath();
  std::vector<Asn> hops;
  for (const auto tok : util::split(s, ' ')) {
    if (tok.empty()) continue;  // tolerate double spaces
    std::uint32_t asn;
    if (!util::parse_u32(tok, asn) || asn == net::kNoAsn) return std::nullopt;
    hops.push_back(asn);
  }
  if (hops.empty()) return std::nullopt;
  return AsPath(std::move(hops));
}

bool AsPath::contains(Asn asn) const {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

bool AsPath::has_duplicates() const {
  std::unordered_set<Asn> seen;
  for (const Asn a : hops_) {
    if (!seen.insert(a).second) return true;
  }
  return false;
}

AsPath AsPath::prepend(Asn asn) const {
  std::vector<Asn> hops;
  hops.reserve(hops_.size() + 1);
  hops.push_back(asn);
  hops.insert(hops.end(), hops_.begin(), hops_.end());
  return AsPath(std::move(hops));
}

std::string AsPath::str() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i) out.push_back(' ');
    out += std::to_string(hops_[i]);
  }
  return out;
}

}  // namespace spoofscope::bgp
