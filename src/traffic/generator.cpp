#include "traffic/context.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "net/bogon.hpp"

namespace spoofscope::traffic {

namespace {

/// Transitive ground-truth downstream of a member: customers (via c2p)
/// and siblings, breadth-first.
std::vector<Asn> downstream_of(const topo::Topology& topo, Asn member) {
  std::vector<Asn> out{member};
  std::vector<bool> seen(topo.as_count(), false);
  seen[*topo.index_of(member)] = true;
  std::queue<Asn> q;
  q.push(member);
  while (!q.empty()) {
    const Asn cur = q.front();
    q.pop();
    const auto push = [&](Asn next) {
      const auto idx = topo.index_of(next);
      if (!idx || seen[*idx]) return;
      seen[*idx] = true;
      out.push_back(next);
      q.push(next);
    };
    for (const Asn c : topo.customers_of(cur)) push(c);
    for (const Asn s : topo.siblings_of(cur)) push(s);
  }
  return out;
}

}  // namespace

TrafficContext::TrafficContext(const topo::Topology& topo, const ixp::Ixp& ixp,
                               const WorkloadParams& params, std::uint64_t seed)
    : topo_(&topo), ixp_(&ixp), params_(&params) {
  // Member selection CDF.
  double acc = 0.0;
  member_cdf_.reserve(ixp.member_count());
  for (const auto& m : ixp.members()) {
    acc += m.traffic_weight;
    member_cdf_.push_back(acc);
  }

  // Ground-truth egress space per member (announced own + downstream).
  for (const auto& m : ixp.members()) {
    std::vector<trie::Interval> ivs;
    for (const Asn asn : downstream_of(topo, m.asn)) {
      const auto* info = topo.find(asn);
      const std::size_t n = topo::announced_prefix_count(*info);
      for (std::size_t i = 0; i < n; ++i) {
        ivs.push_back({info->prefixes[i].first(), info->prefixes[i].last()});
      }
    }
    gt_space_.emplace(m.asn, trie::IntervalSet::from_intervals(std::move(ivs)));
  }

  // Exit member per AS: itself if a member, else nearest member up the
  // provider chain (BFS from all members downwards).
  std::queue<Asn> q;
  for (const auto& m : ixp.members()) {
    exit_member_.emplace(m.asn, m.asn);
    q.push(m.asn);
  }
  while (!q.empty()) {
    const Asn cur = q.front();
    q.pop();
    const Asn exit = exit_member_.at(cur);
    for (const Asn c : topo.customers_of(cur)) {
      if (exit_member_.emplace(c, exit).second) q.push(c);
    }
  }

  // Diurnal profile: flat base + evening peak around 20:00.
  hour_cdf_.resize(24);
  double t = 0.0;
  for (int h = 0; h < 24; ++h) {
    const double peak = std::exp(-0.5 * std::pow((h - 20.0) / 4.5, 2.0));
    t += 0.25 + 1.2 * peak;
    hour_cdf_[h] = t;
  }
  for (auto& c : hour_cdf_) c /= t;

  // NTP server pool spread over announced space.
  util::Rng rng(seed ^ 0x4e545021ULL);  // "NTP!"
  ntp_servers_.reserve(params.ntp_server_pool);
  for (std::size_t i = 0; i < params.ntp_server_pool && topo.as_count() > 0; ++i) {
    const auto& as = topo.ases()[rng.index(topo.as_count())];
    ntp_servers_.emplace_back(announced_addr(as.asn, rng), as.asn);
  }
}

const ixp::Member& TrafficContext::weighted_member(util::Rng& rng) const {
  const double u = rng.uniform() * member_cdf_.back();
  const auto it = std::lower_bound(member_cdf_.begin(), member_cdf_.end(), u);
  const std::size_t i =
      std::min<std::size_t>(it - member_cdf_.begin(), member_cdf_.size() - 1);
  return ixp_->members()[i];
}

const ixp::Member& TrafficContext::uniform_member(util::Rng& rng) const {
  return ixp_->members()[rng.index(ixp_->member_count())];
}

Asn TrafficContext::exit_member_for(net::Ipv4Addr dst, util::Rng& rng) const {
  const Asn owner = topo_->allocation_owner(net::Prefix(dst, 32));
  if (owner != net::kNoAsn) {
    const auto it = exit_member_.find(owner);
    if (it != exit_member_.end()) return it->second;
  }
  return weighted_member(rng).asn;
}

net::Ipv4Addr TrafficContext::addr_in(const net::Prefix& p, util::Rng& rng) {
  if (p.length() >= 32) return p.address();
  return net::Ipv4Addr(p.first() + rng.uniform_u32(0, static_cast<std::uint32_t>(
                                                          p.num_addresses() - 1)));
}

net::Ipv4Addr TrafficContext::announced_addr(Asn asn, util::Rng& rng) const {
  const auto* info = topo_->find(asn);
  if (!info || info->prefixes.empty()) return net::Ipv4Addr(rng.next_u32());
  std::size_t n = topo::announced_prefix_count(*info);
  if (n == 0) n = info->prefixes.size();  // fall back to allocated space
  // Prefix lengths are close enough within one AS that uniform prefix
  // choice is an acceptable size weighting.
  return addr_in(info->prefixes[rng.index(n)], rng);
}

net::Ipv4Addr TrafficContext::legitimate_src(Asn member, util::Rng& rng) const {
  const double u = rng.uniform();
  if (u < 0.82) return announced_addr(member, rng);
  if (u < 0.97) {
    const auto customers = topo_->customers_of(member);
    if (!customers.empty()) {
      return announced_addr(customers[rng.index(customers.size())], rng);
    }
    return announced_addr(member, rng);
  }
  const auto siblings = topo_->siblings_of(member);
  if (!siblings.empty()) {
    return announced_addr(siblings[rng.index(siblings.size())], rng);
  }
  return announced_addr(member, rng);
}

net::Ipv4Addr TrafficContext::dst_behind(Asn member, util::Rng& rng) const {
  const double u = rng.uniform();
  if (u < 0.8) return announced_addr(member, rng);
  const auto customers = topo_->customers_of(member);
  if (!customers.empty()) {
    return announced_addr(customers[rng.index(customers.size())], rng);
  }
  return announced_addr(member, rng);
}

const trie::IntervalSet& TrafficContext::ground_truth_space(Asn member) const {
  const auto it = gt_space_.find(member);
  return it == gt_space_.end() ? empty_ : it->second;
}

bool TrafficContext::egress_allows(const topo::AsInfo& as,
                                   net::Ipv4Addr src) const {
  if (as.filter.blocks_bogon && net::is_bogon(src)) return false;
  if (as.filter.blocks_spoofed) {
    const auto it = gt_space_.find(as.asn);
    // Non-member filtering ASes: approximate with their own allocations.
    if (it != gt_space_.end()) return it->second.contains(src);
    for (const auto& p : as.prefixes) {
      if (p.contains(src)) return true;
    }
    return false;
  }
  return true;
}

std::uint32_t TrafficContext::diurnal_ts(util::Rng& rng) const {
  const std::uint32_t days = std::max(1u, params_->window_seconds / 86400);
  const std::uint32_t day = rng.uniform_u32(0, days - 1);
  const double u = rng.uniform();
  const auto it = std::lower_bound(hour_cdf_.begin(), hour_cdf_.end(), u);
  const std::uint32_t hour =
      std::min<std::uint32_t>(it - hour_cdf_.begin(), 23);
  return std::min(params_->window_seconds - 1,
                  day * 86400 + hour * 3600 + rng.uniform_u32(0, 3599));
}

std::uint32_t TrafficContext::uniform_ts(util::Rng& rng) const {
  return rng.uniform_u32(0, params_->window_seconds - 1);
}

net::FlowRecord make_flow(std::uint32_t ts, net::Ipv4Addr src, net::Ipv4Addr dst,
                          net::Proto proto, std::uint16_t sport,
                          std::uint16_t dport, std::uint32_t packets,
                          std::uint64_t bytes, Asn member_in, Asn member_out) {
  net::FlowRecord f;
  f.ts = ts;
  f.src = src;
  f.dst = dst;
  f.proto = proto;
  f.sport = sport;
  f.dport = dport;
  f.packets = packets;
  f.bytes = bytes;
  f.member_in = member_in;
  f.member_out = member_out;
  return f;
}

}  // namespace spoofscope::traffic
