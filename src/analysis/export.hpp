// CSV export of every reproduced artifact, so the tables/figures can be
// plotted with external tooling (gnuplot, pandas, R) straight from the
// bench scenario.
#pragma once

#include <ostream>
#include <span>

#include "analysis/addr_structure.hpp"
#include "analysis/attack_patterns.hpp"
#include "analysis/business.hpp"
#include "analysis/member_stats.hpp"
#include "analysis/portmix.hpp"
#include "analysis/table1.hpp"
#include "analysis/traffic_char.hpp"
#include "analysis/venn.hpp"

namespace spoofscope::analysis {

/// Table 1 as rows: column,members,member_frac,bytes,bytes_frac,...
void export_table1_csv(std::ostream& out, std::span<const Table1Column> columns);

/// One CDF/CCDF as rows: x,y.
void export_distribution_csv(std::ostream& out,
                             std::span<const util::DistPoint> points);

/// Fig 2 data: asn,slash24 (already sorted ascending by the factory).
void export_valid_sizes_csv(std::ostream& out,
                            std::span<const std::pair<Asn, double>> sizes);

/// Fig 5 regions: region,fraction.
void export_venn_csv(std::ostream& out, const VennCounts& v);

/// Fig 6 scatter: asn,type,total_packets,share_bogon,share_unrouted,share_invalid.
void export_business_csv(std::ostream& out,
                         std::span<const BusinessPoint> points);

/// Fig 8b series: bin_start_seconds,bogon,unrouted,invalid,regular.
void export_time_series_csv(std::ostream& out, const ClassTimeSeries& ts);

/// Fig 9: class,transport,direction,port,fraction ("other" = port 0).
void export_port_mix_csv(std::ostream& out, const PortMix& mix);

/// Fig 10: class,direction,slash8,packets.
void export_address_structure_csv(std::ostream& out, const AddressStructure& a);

/// Fig 11b: victim,rank,packets (one row per victim x amplifier rank).
void export_ntp_victims_csv(std::ostream& out, std::span<const NtpVictim> victims);

/// Fig 11c: bin_start_seconds,pkts_to,pkts_from,bytes_to,bytes_from.
void export_amplification_csv(std::ostream& out,
                              const AmplificationTimeseries& ts);

}  // namespace spoofscope::analysis
