// Fig 1a: the partition of the IPv4 space into bogon / unrouted / routed,
// as derived from the bogon list and the observed routing table.
#include "bench/common.hpp"

#include "net/bogon.hpp"
#include "trie/interval_set.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_RoutedSpaceConstruction(benchmark::State& state) {
  const auto& table = world().table();
  for (auto _ : state) {
    std::vector<trie::Interval> ivs;
    ivs.reserve(table.prefixes().size());
    for (const auto& p : table.prefixes()) ivs.push_back({p.first(), p.last()});
    auto space = trie::IntervalSet::from_intervals(std::move(ivs));
    benchmark::DoNotOptimize(space);
  }
}
BENCHMARK(BM_RoutedSpaceConstruction)->Unit(benchmark::kMillisecond);

void BM_IsRoutedLookup(benchmark::State& state) {
  const auto& table = world().table();
  std::uint32_t addr = 12345;
  for (auto _ : state) {
    addr = addr * 2654435761u + 1;
    benchmark::DoNotOptimize(table.is_routed(net::Ipv4Addr(addr)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IsRoutedLookup);

void print_reproduction() {
  bench::print_header("Fig 1a (IPv4 address categories)",
                      "routed 68.1%, unrouted 18.1%, bogon 13.8%; routable "
                      "86.2%; 11.65M routed /24 equivalents");
  const auto& table = world().table();
  const double bogon = net::bogon_slash24();
  const double routed = table.routed_slash24();
  const double total = net::kTotalSlash24;
  const double unrouted = total - bogon - routed;

  std::cout << "  bogon:    " << util::pad_left(util::human_count(bogon), 9)
            << " /24s (" << util::percent(bogon / total) << " of IPv4)\n"
            << "  routed:   " << util::pad_left(util::human_count(routed), 9)
            << " /24s (" << util::percent(routed / total) << ")\n"
            << "  unrouted: " << util::pad_left(util::human_count(unrouted), 9)
            << " /24s (" << util::percent(unrouted / total) << ")\n"
            << "  routable: " << util::percent((total - bogon) / total)
            << "   routed prefixes observed: " << table.prefixes().size()
            << "\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
