file(REMOVE_RECURSE
  "CMakeFiles/net_bogon_test.dir/net_bogon_test.cpp.o"
  "CMakeFiles/net_bogon_test.dir/net_bogon_test.cpp.o.d"
  "net_bogon_test"
  "net_bogon_test.pdb"
  "net_bogon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_bogon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
