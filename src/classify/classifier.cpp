#include "classify/classifier.hpp"

#include <stdexcept>

#include "net/bogon.hpp"

namespace spoofscope::classify {

std::string class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kBogon: return "Bogon";
    case TrafficClass::kUnrouted: return "Unrouted";
    case TrafficClass::kInvalid: return "Invalid";
    case TrafficClass::kValid: return "Valid";
  }
  return "?";
}

Classifier::Classifier(const bgp::RoutingTable& table,
                       std::vector<inference::ValidSpace> spaces)
    : table_(&table), spaces_(std::move(spaces)) {
  if (spaces_.empty() || spaces_.size() > 8) {
    throw std::invalid_argument("Classifier: need between 1 and 8 valid spaces");
  }
  for (const auto& p : net::bogon_prefixes()) bogons_.insert(p);
}

TrafficClass Classifier::classify(net::Ipv4Addr src, Asn member,
                                  std::size_t space_idx) const {
  if (bogons_.covers(src)) return TrafficClass::kBogon;
  if (!table_->is_routed(src)) return TrafficClass::kUnrouted;
  if (!spaces_[space_idx].valid(member, src)) return TrafficClass::kInvalid;
  return TrafficClass::kValid;
}

Label Classifier::classify_all(net::Ipv4Addr src, Asn member) const {
  TrafficClass shared;
  if (bogons_.covers(src)) {
    shared = TrafficClass::kBogon;
  } else if (!table_->is_routed(src)) {
    shared = TrafficClass::kUnrouted;
  } else {
    Label label = 0;
    for (std::size_t i = 0; i < spaces_.size(); ++i) {
      const TrafficClass c = spaces_[i].valid(member, src)
                                 ? TrafficClass::kValid
                                 : TrafficClass::kInvalid;
      label |= static_cast<Label>(c) << (2 * i);
    }
    return label;
  }
  Label label = 0;
  for (std::size_t i = 0; i < spaces_.size(); ++i) {
    label |= static_cast<Label>(shared) << (2 * i);
  }
  return label;
}

std::vector<Label> classify_trace(const Classifier& classifier,
                                  std::span<const net::FlowRecord> flows) {
  std::vector<Label> labels;
  labels.reserve(flows.size());
  for (const auto& f : flows) {
    labels.push_back(classifier.classify_all(f.src, f.member_in));
  }
  return labels;
}

}  // namespace spoofscope::classify
