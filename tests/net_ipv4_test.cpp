#include "net/ipv4.hpp"

#include <gtest/gtest.h>

namespace spoofscope::net {
namespace {

TEST(Ipv4Addr, FromOctets) {
  const auto a = Ipv4Addr::from_octets(192, 0, 2, 1);
  EXPECT_EQ(a.value(), 0xC0000201u);
}

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv4Addr::from_octets(10, 1, 2, 3));
}

TEST(Ipv4Addr, ParseExtremes) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), ~0u);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Addr::parse("0010.0.0.1"));  // > 3 chars per octet
}

TEST(Ipv4Addr, RoundTripString) {
  const auto a = Ipv4Addr::from_octets(172, 16, 254, 9);
  EXPECT_EQ(a.str(), "172.16.254.9");
  EXPECT_EQ(*Ipv4Addr::parse(a.str()), a);
}

TEST(Ipv4Addr, OctetExtraction) {
  const auto a = Ipv4Addr::from_octets(1, 2, 3, 4);
  EXPECT_EQ(a.octet(0), 1);
  EXPECT_EQ(a.octet(1), 2);
  EXPECT_EQ(a.octet(2), 3);
  EXPECT_EQ(a.octet(3), 4);
  EXPECT_EQ(a.slash8(), 1);
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr::from_octets(9, 255, 255, 255),
            Ipv4Addr::from_octets(10, 0, 0, 0));
}

}  // namespace
}  // namespace spoofscope::net
