// Workload generation: produces the four weeks of sampled IXP flow
// summaries that stand in for the paper's proprietary traces.
//
// The mix mirrors the paper's findings so the classification pipeline and
// every analysis downstream see the same phenomena:
//   - diurnal regular traffic (bimodal packet sizes, HTTP/HTTPS + P2P mix),
//   - RFC1918 NAT leaks (Bogon, user-driven, slight diurnal pattern),
//   - random-spoof flooding attacks (uniform sources, TCP SYN to 80/443),
//   - NTP amplification campaigns (selective spoofing, UDP/123, one
//     dominant attacker member; amplifier responses ~10x in bytes),
//   - Steam (27015) floods,
//   - stray router traffic (ICMP from link-infrastructure addresses) and
//     reflection triggers using router IPs as victims,
//   - BCP38-noncompliant "uncommon setups": provider-assigned space and
//     invisible sibling links (the Sec 4.4 false positives),
//   - low-rate background spoof noise from many members.
//
// Every ground-truth egress filter (AsInfo::filter) is honoured, so which
// members *contribute* to each class emerges from policy + activity.
#pragma once

#include <cstdint>
#include <vector>

#include "data/whois.hpp"
#include "ixp/ixp.hpp"
#include "net/trace.hpp"
#include "topo/topology.hpp"

namespace spoofscope::traffic {

/// Intensities are in *sampled flow records* over the whole window.
struct WorkloadParams {
  std::uint32_t window_seconds = net::kFourWeeks;

  std::size_t regular_flows = 1'200'000;
  std::size_t nat_leak_flows = 6'000;
  std::size_t background_noise_flows = 8'000;
  /// Fraction of members emitting background spoof noise at all.
  double background_noise_member_prob = 0.55;

  std::size_t random_spoof_events = 60;
  std::size_t flood_flows_mean = 250;   ///< per event, heavy-tailed
  std::size_t flood_flows_cap = 4'000;  ///< per-event ceiling

  std::size_t ntp_campaigns = 24;
  std::size_t ntp_flows_mean = 700;    ///< trigger flows per campaign
  std::size_t ntp_flows_cap = 6'000;
  std::size_t ntp_server_pool = 3000;
  /// Share of all NTP trigger volume emitted by the single dominant
  /// attacker member (the paper observed 91.94%).
  double ntp_dominant_share = 0.92;
  /// P(a trigger/response pair is visible in both directions at the IXP).
  double ntp_response_visibility = 0.35;

  std::size_t steam_flood_events = 6;
  std::size_t steam_flows_cap = 2'500;
  std::size_t router_stray_flows = 8'000;
  /// Fraction of member-adjacent transit links whose routers actually
  /// emit stray traffic.
  double router_stray_link_prob = 0.35;
  std::size_t uncommon_setup_flows_per_member = 900;
};

/// Ground-truth component that produced a flow. The real vantage point
/// never sees these labels — they exist so the simulation can score the
/// detection methods (precision/recall), which the paper could not.
enum class Component : std::uint8_t {
  kRegular = 0,
  kNatLeak = 1,
  kBackgroundNoise = 2,
  kRandomSpoof = 3,
  kNtpTrigger = 4,
  kNtpResponse = 5,
  kSteamFlood = 6,
  kRouterStray = 7,
  kReflectionOnRouter = 8,
  kUncommonSetup = 9,
};

/// True if the component forges source addresses with intent (the
/// paper's "spoofed" notion, as opposed to stray/legitimate).
bool is_intentionally_spoofed(Component c);

/// True for misconfiguration/stray components (NAT leaks, router strays).
bool is_stray(Component c);

std::string component_name(Component c);

/// Metadata of one NTP amplification campaign (used by the Fig 11
/// analyses and tests).
struct NtpCampaign {
  net::Ipv4Addr victim;
  net::Asn attacker_member = net::kNoAsn;
  std::size_t amplifiers_contacted = 0;
  bool distributed = false;  ///< uniform spraying vs concentrated strategy
};

/// Ground-truth composition of the generated trace.
struct WorkloadSummary {
  std::size_t regular = 0;
  std::size_t nat_leak = 0;
  std::size_t background_noise = 0;
  std::size_t random_spoof = 0;
  std::size_t ntp_trigger = 0;
  std::size_t ntp_response = 0;
  std::size_t steam_flood = 0;
  std::size_t router_stray = 0;
  std::size_t reflection_on_router = 0;
  std::size_t uncommon_setup = 0;

  std::vector<NtpCampaign> ntp_campaigns;
  /// All amplifier addresses contacted by any campaign.
  std::vector<net::Ipv4Addr> ntp_amplifiers_contacted;

  std::size_t total() const {
    return regular + nat_leak + background_noise + random_spoof + ntp_trigger +
           ntp_response + steam_flood + router_stray + reflection_on_router +
           uncommon_setup;
  }
};

/// A generated trace plus its ground truth.
struct Workload {
  net::Trace trace;
  WorkloadSummary summary;
  /// components[i] is the ground truth of trace.flows[i].
  std::vector<Component> components;
};

/// Generates the full workload. Deterministic in all inputs and `seed`.
/// Flows are sorted by timestamp.
Workload generate_workload(const topo::Topology& topo, const ixp::Ixp& ixp,
                           const data::WhoisRegistry& whois,
                           const WorkloadParams& params, std::uint64_t seed);

}  // namespace spoofscope::traffic
