# Empty dependencies file for classify_oracle_test.
# This may be replaced when dependencies are built.
