#include "topo/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/generator.hpp"

namespace spoofscope::topo {
namespace {

TEST(TopoSerialize, RoundTripGeneratedTopology) {
  TopologyParams params;
  params.num_tier1 = 3;
  params.num_transit = 8;
  params.num_isp = 20;
  params.num_hosting = 12;
  params.num_content = 6;
  params.num_other = 11;
  const auto original = generate_topology(params, 55);

  std::stringstream ss;
  write_topology(ss, original);
  const auto reloaded = read_topology(ss);

  ASSERT_EQ(reloaded.as_count(), original.as_count());
  for (std::size_t i = 0; i < original.as_count(); ++i) {
    const auto& a = original.ases()[i];
    const auto& b = reloaded.ases()[i];
    EXPECT_EQ(a.asn, b.asn);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.org, b.org);
    EXPECT_EQ(a.prefixes, b.prefixes);
    EXPECT_DOUBLE_EQ(a.announce_fraction, b.announce_fraction);
    EXPECT_EQ(a.filter, b.filter);
    EXPECT_DOUBLE_EQ(a.spoofer_density, b.spoofer_density);
    EXPECT_DOUBLE_EQ(a.nat_leak_density, b.nat_leak_density);
  }
  EXPECT_EQ(reloaded.links(), original.links());
  EXPECT_TRUE(reloaded.validate().empty());
}

TEST(TopoSerialize, HandWrittenFile) {
  std::stringstream ss;
  ss << "# tiny hand-written world\n"
     << "topology v1\n"
     << "as 1 type NSP org 1 announce 1.0 bogonfilter 1 spooffilter 1 "
        "spoofer 0 natleak 0\n"
     << "as 2 type ISP org 2 announce 0.5 bogonfilter 0 spooffilter 0 "
        "spoofer 0.3 natleak 0.6\n"
     << "prefix 1 20.0.0.0/16\n"
     << "prefix 2 30.0.0.0/16\n"
     << "prefix 2 30.1.0.0/16\n"
     << "link c2p 2 1 visible 1 infra 20.0.99.0/24\n";
  const auto topo = read_topology(ss);
  EXPECT_EQ(topo.as_count(), 2u);
  EXPECT_EQ(topo.find(1)->type, BusinessType::kNsp);
  EXPECT_TRUE(topo.find(1)->filter.blocks_spoofed);
  EXPECT_EQ(topo.find(2)->prefixes.size(), 2u);
  EXPECT_DOUBLE_EQ(topo.find(2)->nat_leak_density, 0.6);
  ASSERT_EQ(topo.links().size(), 1u);
  EXPECT_EQ(topo.links()[0].infra, net::pfx("20.0.99.0/24"));
  EXPECT_EQ(topo.providers_of(2).size(), 1u);
}

TEST(TopoSerialize, RejectsMalformed) {
  const auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return read_topology(ss);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("not a header\n"), std::runtime_error);
  EXPECT_THROW(parse("topology v1\nas 1 type Bad org 1 announce 1 bogonfilter "
                     "0 spooffilter 0 spoofer 0 natleak 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse("topology v1\nas 1 type NSP org 1\n"), std::runtime_error);
  EXPECT_THROW(parse("topology v1\nprefix 9 10.0.0.0/8\n"), std::runtime_error);
  EXPECT_THROW(parse("topology v1\nas 1 type NSP org 1 announce 1 bogonfilter "
                     "0 spooffilter 0 spoofer 0 natleak 0\nlink c2p 1 9 "
                     "visible 1\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse("topology v1\nas 1 type NSP org 1 announce 1 bogonfilter 0 "
            "spooffilter 0 spoofer 0 natleak 0\nas 1 type ISP org 2 announce "
            "1 bogonfilter 0 spooffilter 0 spoofer 0 natleak 0\n"),
      std::runtime_error);
  EXPECT_THROW(parse("topology v1\nbanana 1 2 3\n"), std::runtime_error);
}

TEST(TopoSerialize, DeterministicOutput) {
  TopologyParams params;
  params.num_tier1 = 2;
  params.num_transit = 5;
  params.num_isp = 8;
  params.num_hosting = 5;
  params.num_content = 3;
  params.num_other = 5;
  const auto topo = generate_topology(params, 77);
  std::stringstream a, b;
  write_topology(a, topo);
  write_topology(b, topo);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace spoofscope::topo
