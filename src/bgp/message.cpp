// Message types are plain aggregates; serialization lives in mrt_lite.cpp.
#include "bgp/message.hpp"
