
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_method_eval.cpp" "bench/CMakeFiles/bench_method_eval.dir/bench_method_eval.cpp.o" "gcc" "bench/CMakeFiles/bench_method_eval.dir/bench_method_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
