#include "classify/streaming.hpp"

#include <algorithm>

#include "classify/flat_classifier.hpp"

namespace spoofscope::classify {

StreamingDetector::StreamingDetector(const Classifier& classifier,
                                     std::size_t space_idx,
                                     StreamingParams params)
    : classifier_(&classifier), space_idx_(space_idx), params_(params) {}

StreamingDetector::StreamingDetector(const FlatClassifier& classifier,
                                     std::size_t space_idx,
                                     StreamingParams params)
    : flat_(&classifier), space_idx_(space_idx), params_(params) {}

void StreamingDetector::ingest(
    const net::FlowRecord& flow,
    const std::function<void(const SpoofingAlert&)>& on_alert) {
  ++processed_;
  const TrafficClass cls =
      flat_ ? flat_->classify(flow.src, flow.member_in, space_idx_)
            : classifier_->classify(flow.src, flow.member_in, space_idx_);
  auto& w = windows_[flow.member_in];

  // Evict samples that left the window.
  const std::uint32_t horizon =
      flow.ts >= params_.window_seconds ? flow.ts - params_.window_seconds : 0;
  while (!w.samples.empty() && w.samples.front().ts < horizon) {
    const Sample& old = w.samples.front();
    w.total -= old.packets;
    w.per_class[static_cast<int>(old.cls)] -= old.packets;
    if (old.cls != TrafficClass::kValid) w.spoofed -= old.packets;
    w.samples.pop_front();
  }

  w.samples.push_back({flow.ts, flow.packets, cls});
  w.total += flow.packets;
  w.per_class[static_cast<int>(cls)] += flow.packets;
  if (cls != TrafficClass::kValid) w.spoofed += flow.packets;

  if (w.spoofed < params_.min_spoofed_packets || w.total <= 0) return;
  const double share = w.spoofed / w.total;
  if (share < params_.min_share) return;
  if (w.alerted_once &&
      flow.ts - w.last_alert_ts < params_.cooldown_seconds) {
    return;
  }

  SpoofingAlert alert;
  alert.member = flow.member_in;
  alert.ts = flow.ts;
  alert.spoofed_packets_in_window = w.spoofed;
  alert.window_share = share;
  // Dominant spoofed class in the window.
  double best = -1;
  for (const int c : {0, 1, 2}) {  // Bogon, Unrouted, Invalid
    if (w.per_class[c] > best) {
      best = w.per_class[c];
      alert.dominant_class = static_cast<TrafficClass>(c);
    }
  }
  w.last_alert_ts = flow.ts;
  w.alerted_once = true;
  on_alert(alert);
}

std::vector<SpoofingAlert> StreamingDetector::run(
    std::span<const net::FlowRecord> flows) {
  std::vector<SpoofingAlert> alerts;
  for (const auto& f : flows) {
    ingest(f, [&alerts](const SpoofingAlert& a) { alerts.push_back(a); });
  }
  return alerts;
}

}  // namespace spoofscope::classify
