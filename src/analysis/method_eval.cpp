#include "analysis/method_eval.hpp"

#include <sstream>

#include "net/bogon.hpp"
#include "util/format.hpp"

namespace spoofscope::analysis {

namespace {

/// Accumulates one flow into the right ground-truth bucket.
void account(DetectionScore& score, const net::FlowRecord& f,
             traffic::Component c, bool flagged) {
  const double pkts = f.packets;
  if (traffic::is_intentionally_spoofed(c)) {
    score.spoofed_packets += pkts;
    if (flagged) score.spoofed_flagged += pkts;
  } else if (traffic::is_stray(c)) {
    score.stray_packets += pkts;
    if (flagged) score.stray_flagged += pkts;
  } else {
    score.legit_packets += pkts;
    if (flagged) score.legit_flagged += pkts;
  }
}

}  // namespace

DetectionScore score_method(std::span<const net::FlowRecord> flows,
                            std::span<const classify::Label> labels,
                            std::size_t space_idx,
                            std::span<const traffic::Component> components,
                            std::string name) {
  DetectionScore score;
  score.name = std::move(name);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const bool flagged = classify::Classifier::unpack(labels[i], space_idx) !=
                         classify::TrafficClass::kValid;
    account(score, flows[i], components[i], flagged);
  }
  return score;
}

DetectionScore score_urpf(std::span<const net::FlowRecord> flows,
                          std::span<const traffic::Component> components,
                          const classify::UrpfFilter& filter, std::string name) {
  DetectionScore score;
  score.name = std::move(name);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const bool flagged = !filter.accepts(flows[i].src, flows[i].member_in);
    account(score, flows[i], components[i], flagged);
  }
  return score;
}

DetectionScore score_bogon_acl(std::span<const net::FlowRecord> flows,
                               std::span<const traffic::Component> components) {
  DetectionScore score;
  score.name = "bogon ACL only";
  for (std::size_t i = 0; i < flows.size(); ++i) {
    account(score, flows[i], components[i], net::is_bogon(flows[i].src));
  }
  return score;
}

std::string format_scores(std::span<const DetectionScore> scores) {
  std::ostringstream os;
  os << util::pad_right("strategy", 16) << util::pad_left("spoofed recall", 16)
     << util::pad_left("legit FP rate", 15) << util::pad_left("stray flagged", 15)
     << "\n";
  for (const auto& s : scores) {
    os << util::pad_right(s.name, 16)
       << util::pad_left(util::percent(s.recall()), 16)
       << util::pad_left(util::percent(s.false_positive_rate()), 15)
       << util::pad_left(util::percent(s.stray_rate()), 15) << "\n";
  }
  return os.str();
}

}  // namespace spoofscope::analysis
