// String helpers shared across parsers and formatters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace spoofscope::util {

/// Splits on a single character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins pieces with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Parses a non-negative decimal integer fitting in uint64.
/// Returns false on empty input, non-digits, or overflow.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Parses a uint32 the same way.
bool parse_u32(std::string_view s, std::uint32_t& out);

/// True if `s` consists only of ASCII digits (and is non-empty).
bool all_digits(std::string_view s);

/// Lowercases ASCII characters.
std::string to_lower(std::string_view s);

}  // namespace spoofscope::util
