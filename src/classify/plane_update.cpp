// Live routing churn: FlatClassifier::apply_updates and its helpers.
//
// The patch path must reproduce, byte for byte, what compile() would
// paint for the post-update route set — plane_digest() equality against
// exactly that compile is the oracle the churn suites assert. The paint
// rules being reproduced (see compile_impl):
//
//   1. routed prefixes paint in ascending length order, so for any /24
//      block the most specific <=24 live cover wins;
//   2. >24 routed prefixes paint kKindOverflow over their first block,
//      after every <=24 routed paint;
//   3. bogons paint last, in bogon_prefixes() order (<=24 -> kKindBogon
//      over the whole range, >24 -> kKindOverflow over the first block).
//
// A /24 block's final entry is therefore a pure function of the live set
// restricted to that block plus the static bogon list — which is what
// compute_block_entry evaluates, so only blocks inside an added or
// removed prefix's range need repainting.
//
// Everything else is renumbering: canonical PrefixIds are ranks in the
// (address, length)-sorted live set, so an insertion or removal shifts
// every later rank. The patch pays for that shift only where it can
// matter:
//
//   - a prefix's id is painted nowhere outside its own blocks, and the
//     canonical order is address-sorted, so shifted ids only occur in
//     base entries at or above the first shifted prefix's first block —
//     the remap scan starts there and is skipped entirely when no rank
//     moved (e.g. a withdraw+announce pair on the same address);
//   - a membership record depends only on (member spaces, prefix), so
//     surviving columns move as contiguous run memcpys — or, when the
//     batch preserves every rank, are not touched at all and only the
//     swapped columns are recomputed in place;
//   - the fallback lane needs "does any column set this partial bit",
//     which partial_counts_ maintains incrementally from the removed and
//     added columns alone.

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "classify/flat_classifier.hpp"
#include "net/bogon.hpp"
#include "net/mapped_trace.hpp"
#include "util/fault_injection.hpp"

namespace spoofscope::classify {

namespace {

constexpr std::uint32_t kNoPid = 0xFFFFFFFFu;
constexpr std::size_t kStripeBlocksU = std::size_t{1} << 16;
constexpr std::size_t kNumStripesU = std::size_t{1} << 8;

}  // namespace

void FlatClassifier::ensure_owned() {
  if (base_ == nullptr) {
    base_.reset(new std::uint32_t[kBaseEntries]);
    std::copy(base_view_, base_view_ + kBaseEntries, base_.get());
    base_view_ = base_.get();
  }
  if (records_.empty()) {
    const std::size_t record_count = members_.size() * num_prefixes_;
    records_.assign(record_count + 1, 0);
    std::copy(records_view_, records_view_ + record_count, records_.data());
    records_view_ = records_.data();
    records_gather_safe_ = true;
  }
  plane_mapping_.reset();
}

void FlatClassifier::rebuild_live_index() {
  live_index_.clear();
  live_index_.reserve(live_prefixes_.size() * 2);
  live_lengths_ = 0;
  live_length_counts_.fill(0);
  live_overflow_blocks_.clear();
  live_overflow_prefixes_ = 0;
  for (std::uint32_t pid = 0; pid < live_prefixes_.size(); ++pid) {
    const net::Prefix& p = live_prefixes_[pid];
    live_index_.emplace(live_key(p), pid);
    live_lengths_ |= std::uint64_t{1} << p.length();
    ++live_length_counts_[p.length()];
    if (p.length() > 24) {
      ++live_overflow_prefixes_;
      ++live_overflow_blocks_[p.first() >> 8];
    }
  }
  if (bogon_block_ops_.empty()) {
    bogon_overflow_prefixes_ = 0;
    for (const auto& p : net::bogon_prefixes()) {
      if (p.length() <= 24) {
        bogon_block_ops_.push_back(
            {p.first() >> 8, p.last() >> 8, kKindBogon << kKindShift});
      } else {
        ++bogon_overflow_prefixes_;
        bogon_block_ops_.push_back(
            {p.first() >> 8, p.first() >> 8, kKindOverflow << kKindShift});
      }
    }
  }
}

std::optional<std::uint32_t> FlatClassifier::live_covering_prefix(
    net::Ipv4Addr a) const {
  const std::uint32_t v = a.value();
  for (int len = 32; len >= 0; --len) {
    if (((live_lengths_ >> len) & 1) == 0) continue;
    const std::uint64_t key =
        std::uint64_t{v & net::Prefix::mask_for(static_cast<std::uint8_t>(len))}
            << 6 |
        static_cast<std::uint64_t>(len);
    if (auto it = live_index_.find(key); it != live_index_.end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

std::uint32_t FlatClassifier::compute_block_entry(std::uint32_t block) const {
  // Bogons paint last: the last bogon op covering the block is final.
  for (auto it = bogon_block_ops_.rbegin(); it != bogon_block_ops_.rend();
       ++it) {
    if (it->begin <= block && block <= it->end) return it->entry;
  }
  // >24 overflow marks paint over every <=24 routed cover.
  if (auto it = live_overflow_blocks_.find(block);
      it != live_overflow_blocks_.end() && it->second > 0) {
    return kKindOverflow << kKindShift;
  }
  // Most specific <=24 live cover; any <=24 prefix covering one address
  // of a /24 block covers (and is aligned to) the whole block.
  const std::uint32_t addr = block << 8;
  for (int len = 24; len >= 0; --len) {
    if (((live_lengths_ >> len) & 1) == 0) continue;
    const std::uint64_t key =
        std::uint64_t{addr &
                      net::Prefix::mask_for(static_cast<std::uint8_t>(len))}
            << 6 |
        static_cast<std::uint64_t>(len);
    if (auto it = live_index_.find(key); it != live_index_.end()) {
      return (kKindRouted << kKindShift) | it->second;
    }
  }
  return kKindUnrouted << kKindShift;
}

std::uint16_t FlatClassifier::fresh_record_bits(
    const trie::IntervalSet* const* member_spaces, const net::Prefix& p) const {
  // Same decision the compile merge scan makes for one (row, prefix)
  // pair: the first interval ending at or after the prefix start is the
  // only one that can fully contain it; any overlap short of full
  // containment is partial.
  std::uint16_t bits = 0;
  for (std::size_t s = 0; s < spaces_.size(); ++s) {
    const trie::IntervalSet* space = member_spaces[s];
    if (space == nullptr) continue;
    const auto& ivs = space->intervals();
    const auto it = std::lower_bound(
        ivs.begin(), ivs.end(), p.first(),
        [](const auto& iv, std::uint32_t v) { return iv.hi < v; });
    if (it == ivs.end() || it->lo > p.last()) continue;
    if (it->lo <= p.first() && it->hi >= p.last()) {
      bits |= static_cast<std::uint16_t>(1u << s);
    } else {
      bits |= static_cast<std::uint16_t>(1u << (8 + s));
    }
  }
  return bits;
}

FlatClassifier::UpdateApplyStats FlatClassifier::apply_updates(
    std::span<const bgp::UpdateMessage> batch, const UpdateApplyOptions& opts) {
  using util::FaultInjector;
  using util::FaultKind;
  if (FaultInjector* inj = FaultInjector::current()) {
    // Consulted before any mutation: a crash here models dying with the
    // batch unapplied — the plane must still be the pre-batch plane.
    if (inj->at("plane.apply_updates", {FaultKind::kCrash}) ==
        FaultKind::kCrash) {
      throw util::InjectedCrash("plane.apply_updates");
    }
  }
  if (opts.min_length > opts.max_length || opts.max_length > 32) {
    throw std::invalid_argument("apply_updates: bad length window");
  }

  UpdateApplyStats result;

  // The pre-batch live view. After the first call the canonical set and
  // its index are maintained in place; the first call collects the
  // source table's ingest-order prefixes (ids need not be sorted yet).
  const bool first = !live_;
  std::vector<net::Prefix> first_prefixes;
  std::unordered_map<std::uint64_t, std::uint32_t> first_index;
  if (first) {
    first_prefixes.resize(num_prefixes_);
    table_->visit_prefixes(
        [&](bgp::RoutingTable::PrefixId pid, const net::Prefix& p) {
          first_prefixes[pid] = p;
        });
    first_index.reserve(first_prefixes.size() * 2);
    for (std::uint32_t pid = 0; pid < first_prefixes.size(); ++pid) {
      first_index.emplace(live_key(first_prefixes[pid]), pid);
    }
  }
  const std::vector<net::Prefix>& old_prefixes =
      first ? first_prefixes : live_prefixes_;
  const auto& old_index = first ? first_index : live_index_;
  const std::size_t old_count = old_prefixes.size();

  // Net effect of the batch: presence semantics with in-batch
  // cancellation (announce+withdraw of the same prefix is a wash).
  std::unordered_map<std::uint64_t, net::Prefix> added;
  std::unordered_set<std::uint64_t> removed;
  for (const bgp::UpdateMessage& u : batch) {
    const std::uint8_t len = u.prefix.length();
    if (len < opts.min_length || len > opts.max_length) {
      ++result.out_of_range;
      continue;
    }
    const std::uint64_t key = live_key(u.prefix);
    const bool in_old = old_index.contains(key);
    if (u.kind == bgp::UpdateMessage::Kind::kAnnounce) {
      if (in_old) {
        removed.erase(key);
      } else {
        added.emplace(key, u.prefix);
      }
    } else {
      if (in_old) {
        removed.insert(key);
      } else {
        added.erase(key);
      }
    }
  }
  // Counters reflect the batch's NET effect: a cancelled announce+
  // withdraw pair lands in redundant, not in announced/withdrawn.
  result.announced = added.size();
  result.withdrawn = removed.size();
  result.redundant =
      batch.size() - result.out_of_range - result.announced - result.withdrawn;

  // Removals by old PrefixId (ascending), additions sorted canonically.
  std::vector<std::uint32_t> removed_pids;
  removed_pids.reserve(removed.size());
  for (const std::uint64_t key : removed) {
    removed_pids.push_back(old_index.find(key)->second);
  }
  std::sort(removed_pids.begin(), removed_pids.end());
  std::vector<net::Prefix> added_sorted;
  added_sorted.reserve(added.size());
  for (const auto& [key, p] : added) {
    (void)key;
    added_sorted.push_back(p);
  }
  std::sort(added_sorted.begin(), added_sorted.end());

  // New canonical order: survivors + additions, sorted (address, length);
  // each entry remembers its old PrefixId (kNoPid for additions). After
  // the first call the survivors are already canonically ordered, so a
  // linear merge replaces the full sort.
  struct NewEntry {
    net::Prefix p;
    std::uint32_t old_pid;
  };
  std::vector<NewEntry> order;
  order.reserve(old_count - removed_pids.size() + added_sorted.size());
  if (first) {
    for (std::uint32_t pid = 0; pid < old_count; ++pid) {
      if (!removed.contains(live_key(old_prefixes[pid]))) {
        order.push_back({old_prefixes[pid], pid});
      }
    }
    for (const net::Prefix& p : added_sorted) order.push_back({p, kNoPid});
    std::sort(order.begin(), order.end(),
              [](const NewEntry& a, const NewEntry& b) { return a.p < b.p; });
  } else {
    std::size_t r = 0;
    std::size_t a = 0;
    for (std::uint32_t pid = 0; pid < old_count; ++pid) {
      if (r < removed_pids.size() && removed_pids[r] == pid) {
        ++r;
        continue;
      }
      while (a < added_sorted.size() && added_sorted[a] < old_prefixes[pid]) {
        order.push_back({added_sorted[a++], kNoPid});
      }
      order.push_back({old_prefixes[pid], pid});
    }
    while (a < added_sorted.size()) order.push_back({added_sorted[a++], kNoPid});
  }

  std::vector<std::uint32_t> old2new(old_count, kNoPid);
  std::vector<std::pair<std::uint32_t, net::Prefix>> added_ranked;
  added_ranked.reserve(added_sorted.size());
  bool renumbered = false;
  std::uint32_t remap_from_block = 0;
  for (std::uint32_t j = 0; j < order.size(); ++j) {
    if (order[j].old_pid == kNoPid) {
      added_ranked.emplace_back(j, order[j].p);
      continue;
    }
    old2new[order[j].old_pid] = j;
    if (order[j].old_pid != j && !renumbered) {
      renumbered = true;
      // Shifted ids belong to survivors at or after this one in the old
      // canonical order; their painted blocks all start at or after this
      // prefix's first block, so the remap scan starts there. The first
      // call has ingest-order ids with no such bound: scan everything.
      remap_from_block = first ? 0 : order[j].p.first() >> 8;
    }
  }

  const bool net_change = !added.empty() || !removed.empty();
  result.changed = net_change || renumbered;
  if (!result.changed) {
    // Plane bytes are already exactly the canonical compile of the live
    // set. First call still takes ownership (overflow lane switches to
    // the live lookup — same answers), without an epoch bump.
    if (first) {
      live_prefixes_ = std::move(first_prefixes);
      rebuild_live_index();
      live_ = true;
      stats_.overflow_prefixes =
          live_overflow_prefixes_ + bogon_overflow_prefixes_;
    }
    return result;
  }

  ensure_owned();

  // What the repaint needs from the pre-batch set, saved before the live
  // metadata mutates under the old_prefixes reference.
  std::vector<net::Prefix> removed_prefixes;
  removed_prefixes.reserve(removed_pids.size());
  for (const std::uint32_t pid : removed_pids) {
    removed_prefixes.push_back(old_prefixes[pid]);
  }

  // Commit the new live metadata first: compute_block_entry resolves
  // against the NEW index during the repaint below. The maintained index
  // only re-ranks survivors when ranks actually shifted.
  if (first) {
    live_prefixes_.clear();
    live_prefixes_.reserve(order.size());
    for (const NewEntry& e : order) live_prefixes_.push_back(e.p);
    rebuild_live_index();
  } else {
    for (const net::Prefix& p : removed_prefixes) {
      live_index_.erase(live_key(p));
      --live_length_counts_[p.length()];
      if (p.length() > 24) {
        --live_overflow_prefixes_;
        const auto it = live_overflow_blocks_.find(p.first() >> 8);
        if (--(it->second) == 0) live_overflow_blocks_.erase(it);
      }
    }
    if (renumbered) {
      for (auto& [key, pid] : live_index_) pid = old2new[pid];
    }
    for (const auto& [rank, p] : added_ranked) {
      live_index_.emplace(live_key(p), rank);
      ++live_length_counts_[p.length()];
      if (p.length() > 24) {
        ++live_overflow_prefixes_;
        ++live_overflow_blocks_[p.first() >> 8];
      }
    }
    live_lengths_ = 0;
    for (int len = 0; len <= 32; ++len) {
      if (live_length_counts_[len] != 0) live_lengths_ |= std::uint64_t{1} << len;
    }
    live_prefixes_.clear();
    live_prefixes_.reserve(order.size());
    for (const NewEntry& e : order) live_prefixes_.push_back(e.p);
  }

  // Affected /24 ranges: everything an added or removed prefix painted.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  ranges.reserve(added_sorted.size() + removed_prefixes.size());
  const auto add_range = [&](const net::Prefix& p) {
    if (p.length() <= 24) {
      ranges.emplace_back(p.first() >> 8, p.last() >> 8);
    } else {
      ranges.emplace_back(p.first() >> 8, p.first() >> 8);
    }
  };
  for (const net::Prefix& p : added_sorted) add_range(p);
  for (const net::Prefix& p : removed_prefixes) add_range(p);
  std::sort(ranges.begin(), ranges.end());
  // Merge overlapping/adjacent ranges so no block is repainted (and its
  // overflow delta counted) twice.
  std::size_t merged = 0;
  for (const auto& r : ranges) {
    if (merged > 0 && r.first <= ranges[merged - 1].second + 1) {
      ranges[merged - 1].second = std::max(ranges[merged - 1].second, r.second);
    } else {
      ranges[merged++] = r;
    }
  }
  ranges.resize(merged);

  // --- base-table remap: shifted PrefixIds only ------------------------
  // Removed ids can only appear inside the repaint ranges (a prefix's id
  // is painted nowhere outside its own blocks), so the remap leaves them
  // for the repaint to overwrite. When no rank shifted this whole pass
  // vanishes — the win that makes rank-preserving churn cheap.
  if (renumbered) {
    const auto remap_stripes = [&](std::size_t stripe_begin,
                                   std::size_t stripe_end) {
      for (std::size_t s = stripe_begin; s < stripe_end; ++s) {
        const std::uint32_t stripe_lo =
            static_cast<std::uint32_t>(s * kStripeBlocksU);
        const std::uint32_t stripe_hi =
            static_cast<std::uint32_t>((s + 1) * kStripeBlocksU - 1);
        const std::uint32_t b0 = std::max(remap_from_block, stripe_lo);
        for (std::uint32_t b = b0; b <= stripe_hi; ++b) {
          const std::uint32_t e = base_[b];
          if ((e >> kKindShift) != kKindRouted) continue;
          const std::uint32_t np = old2new[e & kPayloadMask];
          if (np != kNoPid && np != (e & kPayloadMask)) {
            base_[b] = (kKindRouted << kKindShift) | np;
          }
        }
      }
    };
    const std::size_t stripe_begin = remap_from_block / kStripeBlocksU;
    if (opts.pool != nullptr) {
      opts.pool->parallel_for(stripe_begin, kNumStripesU, remap_stripes);
    } else {
      remap_stripes(stripe_begin, kNumStripesU);
    }
  }

  // --- repaint of the affected ranges ----------------------------------
  std::vector<std::int64_t> overflow_delta(ranges.size(), 0);
  const auto repaint_ranges = [&](std::size_t range_begin,
                                  std::size_t range_end) {
    for (std::size_t ri = range_begin; ri < range_end; ++ri) {
      std::int64_t delta = 0;
      for (std::uint32_t b = ranges[ri].first; b <= ranges[ri].second; ++b) {
        const std::uint32_t old_e = base_[b];
        const std::uint32_t new_e = compute_block_entry(b);
        if ((old_e >> kKindShift) == kKindOverflow) --delta;
        if ((new_e >> kKindShift) == kKindOverflow) ++delta;
        if (new_e != old_e) base_[b] = new_e;
      }
      overflow_delta[ri] = delta;
    }
  };
  if (opts.pool != nullptr && ranges.size() > 1) {
    opts.pool->parallel_for(0, ranges.size(), repaint_ranges);
  } else {
    repaint_ranges(0, ranges.size());
  }
  std::int64_t overflow_total = 0;
  for (const std::int64_t d : overflow_delta) overflow_total += d;

  // --- membership records ----------------------------------------------
  // A record depends only on (member spaces, prefix): surviving columns
  // keep their values at new ranks, added columns get the merge-scan
  // decision via fresh_record_bits. partial_counts_ tracks per (row,
  // space) how many columns set the partial bit, so the fallback lane
  // follows from the removed/added columns without re-scanning rows.
  const std::size_t new_count = order.size();
  const std::size_t num_spaces = spaces_.size();

  if (!partial_counts_ready_) {
    // One-time census of the pre-batch records (value multiset, so the
    // ingest-order layout of a first call counts the same).
    partial_counts_.assign(members_.size() * num_spaces, 0);
    const auto census = [&](std::size_t slot_begin, std::size_t slot_end) {
      for (std::size_t slot = slot_begin; slot < slot_end; ++slot) {
        const std::uint16_t* row = records_.data() + slot * old_count;
        std::uint32_t* counts = partial_counts_.data() + slot * num_spaces;
        for (std::size_t j = 0; j < old_count; ++j) {
          const std::uint16_t v = row[j];
          if ((v & 0xFF00u) == 0) continue;
          for (std::size_t s = 0; s < num_spaces; ++s) {
            counts[s] += (v >> (8 + s)) & 1u;
          }
        }
      }
    };
    if (opts.pool != nullptr) {
      opts.pool->parallel_for(0, members_.size(), census);
    } else {
      census(0, members_.size());
    }
    partial_counts_ready_ = true;
  }

  const auto count_bits = [num_spaces](std::uint32_t* counts, std::uint16_t v,
                                       std::int32_t dir) {
    if ((v & 0xFF00u) == 0) return;
    for (std::size_t s = 0; s < num_spaces; ++s) {
      counts[s] += static_cast<std::uint32_t>(dir * ((v >> (8 + s)) & 1));
    }
  };

  const bool in_place = !first && !renumbered && new_count == old_count;
  if (in_place) {
    // Rank-preserving swap batch (each addition took exactly one removed
    // rank): only the swapped columns change, in place.
    const auto patch_rows = [&](std::size_t slot_begin, std::size_t slot_end) {
      std::array<const trie::IntervalSet*, 8> member_spaces{};
      for (std::size_t slot = slot_begin; slot < slot_end; ++slot) {
        const Asn member = members_[slot];
        bool any_space = false;
        for (std::size_t s = 0; s < num_spaces; ++s) {
          const trie::IntervalSet* space = spaces_[s]->space_of(member);
          member_spaces[s] =
              (space != nullptr && !space->empty()) ? space : nullptr;
          any_space |= member_spaces[s] != nullptr;
        }
        std::uint16_t* row = records_.data() + slot * new_count;
        std::uint32_t* counts = partial_counts_.data() + slot * num_spaces;
        for (const auto& [rank, p] : added_ranked) {
          count_bits(counts, row[rank], -1);
          const std::uint16_t v =
              any_space ? fresh_record_bits(member_spaces.data(), p) : 0;
          row[rank] = v;
          count_bits(counts, v, +1);
        }
        for (std::size_t s = 0; s < num_spaces; ++s) {
          fallback_[slot * num_spaces + s] =
              counts[s] > 0 ? member_spaces[s] : nullptr;
        }
      }
    };
    if (opts.pool != nullptr) {
      opts.pool->parallel_for(0, members_.size(), patch_rows);
    } else {
      patch_rows(0, members_.size());
    }
  } else {
    // Copy mode: surviving columns move as contiguous run memcpys into
    // recycled scratch (rank shifts preserve relative order, so runs of
    // consecutive old ids land at consecutive new ranks).
    struct Run {
      std::uint32_t new_begin;
      std::uint32_t old_begin;
      std::uint32_t len;
    };
    std::vector<Run> runs;
    for (std::uint32_t j = 0; j < order.size(); ++j) {
      if (order[j].old_pid == kNoPid) continue;
      if (!runs.empty() &&
          runs.back().old_begin + runs.back().len == order[j].old_pid &&
          runs.back().new_begin + runs.back().len == j) {
        ++runs.back().len;
      } else {
        runs.push_back({j, order[j].old_pid, 1});
      }
    }
    records_scratch_.resize(members_.size() * new_count + 1);
    const auto rewrite_rows = [&](std::size_t slot_begin,
                                  std::size_t slot_end) {
      std::array<const trie::IntervalSet*, 8> member_spaces{};
      for (std::size_t slot = slot_begin; slot < slot_end; ++slot) {
        const Asn member = members_[slot];
        bool any_space = false;
        for (std::size_t s = 0; s < num_spaces; ++s) {
          const trie::IntervalSet* space = spaces_[s]->space_of(member);
          member_spaces[s] =
              (space != nullptr && !space->empty()) ? space : nullptr;
          any_space |= member_spaces[s] != nullptr;
        }
        const std::uint16_t* old_row = records_.data() + slot * old_count;
        std::uint16_t* new_row = records_scratch_.data() + slot * new_count;
        std::uint32_t* counts = partial_counts_.data() + slot * num_spaces;
        if (!any_space) {
          // The member's record row is all zero with or without the
          // batch; the recycled scratch still needs the explicit zeros.
          std::memset(new_row, 0, new_count * sizeof(std::uint16_t));
          continue;
        }
        for (const Run& run : runs) {
          std::memcpy(new_row + run.new_begin, old_row + run.old_begin,
                      run.len * sizeof(std::uint16_t));
        }
        for (const std::uint32_t pid : removed_pids) {
          count_bits(counts, old_row[pid], -1);
        }
        for (const auto& [rank, p] : added_ranked) {
          const std::uint16_t v = fresh_record_bits(member_spaces.data(), p);
          new_row[rank] = v;
          count_bits(counts, v, +1);
        }
        for (std::size_t s = 0; s < num_spaces; ++s) {
          fallback_[slot * num_spaces + s] =
              counts[s] > 0 ? member_spaces[s] : nullptr;
        }
      }
    };
    if (opts.pool != nullptr) {
      opts.pool->parallel_for(0, members_.size(), rewrite_rows);
    } else {
      rewrite_rows(0, members_.size());
    }
    records_scratch_[members_.size() * new_count] = 0;  // gather sentinel
    std::swap(records_, records_scratch_);
    records_view_ = records_.data();
    records_gather_safe_ = true;
  }
  num_prefixes_ = new_count;

  stats_.prefixes = new_count;
  stats_.bitset_bytes = members_.size() * new_count * sizeof(std::uint16_t);
  stats_.overflow_slots = static_cast<std::size_t>(
      static_cast<std::int64_t>(stats_.overflow_slots) + overflow_total);
  stats_.overflow_prefixes =
      live_overflow_prefixes_ + bogon_overflow_prefixes_;
  stats_.partial_rows = 0;
  for (const auto* fb : fallback_) {
    if (fb != nullptr) ++stats_.partial_rows;
  }

  live_ = true;
  ++epoch_;
  return result;
}

}  // namespace spoofscope::classify
