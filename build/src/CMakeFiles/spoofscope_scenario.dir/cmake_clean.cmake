file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_scenario.dir/scenario/scenario.cpp.o"
  "CMakeFiles/spoofscope_scenario.dir/scenario/scenario.cpp.o.d"
  "libspoofscope_scenario.a"
  "libspoofscope_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
