#include "net/bogon.hpp"

#include <array>

namespace spoofscope::net {

namespace {

// Team Cymru bogon reference (IPv4, aggregated): the ranges reserved by
// RFC 1122, RFC 1918, RFC 3927, RFC 5737, RFC 6598, RFC 2544, RFC 5771 and
// RFC 1112.
const std::array<Prefix, 14> kBogons = {
    Prefix(Ipv4Addr::from_octets(0, 0, 0, 0), 8),        // "this" network
    Prefix(Ipv4Addr::from_octets(10, 0, 0, 0), 8),       // RFC1918
    Prefix(Ipv4Addr::from_octets(100, 64, 0, 0), 10),    // CGN shared space
    Prefix(Ipv4Addr::from_octets(127, 0, 0, 0), 8),      // loopback
    Prefix(Ipv4Addr::from_octets(169, 254, 0, 0), 16),   // link local
    Prefix(Ipv4Addr::from_octets(172, 16, 0, 0), 12),    // RFC1918
    Prefix(Ipv4Addr::from_octets(192, 0, 0, 0), 24),     // IETF protocol
    Prefix(Ipv4Addr::from_octets(192, 0, 2, 0), 24),     // TEST-NET-1
    Prefix(Ipv4Addr::from_octets(192, 168, 0, 0), 16),   // RFC1918
    Prefix(Ipv4Addr::from_octets(198, 18, 0, 0), 15),    // benchmarking
    Prefix(Ipv4Addr::from_octets(198, 51, 100, 0), 24),  // TEST-NET-2
    Prefix(Ipv4Addr::from_octets(203, 0, 113, 0), 24),   // TEST-NET-3
    Prefix(Ipv4Addr::from_octets(224, 0, 0, 0), 4),      // multicast
    Prefix(Ipv4Addr::from_octets(240, 0, 0, 0), 4),      // future use
};

}  // namespace

std::span<const Prefix> bogon_prefixes() { return kBogons; }

bool is_bogon(Ipv4Addr a) {
  for (const auto& p : kBogons) {
    if (p.contains(a)) return true;
  }
  return false;
}

double bogon_slash24() {
  double total = 0.0;
  for (const auto& p : kBogons) total += p.slash24_equivalents();
  return total;
}

}  // namespace spoofscope::net
