#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace spoofscope::util {
namespace {

TEST(ThreadPool, ResolveZeroMeansHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(6), 6u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::resolve(0));
}

TEST(ThreadPool, PartitionIsDeterministicAndCoversRange) {
  // Empty range -> no chunks.
  EXPECT_TRUE(ThreadPool::partition(5, 5, 4).empty());
  EXPECT_TRUE(ThreadPool::partition(7, 3, 4).empty());
  // Range smaller than parts -> one chunk per index.
  const auto small = ThreadPool::partition(0, 3, 8);
  ASSERT_EQ(small.size(), 3u);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], (IndexRange{i, i + 1}));
  }
  // General case: contiguous cover, sizes differ by at most one.
  const auto ranges = ThreadPool::partition(10, 110, 7);
  ASSERT_EQ(ranges.size(), 7u);
  std::size_t at = 10;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, at);
    EXPECT_GT(r.end, r.begin);
    const std::size_t len = r.end - r.begin;
    EXPECT_TRUE(len == 100 / 7 || len == 100 / 7 + 1);
    at = r.end;
  }
  EXPECT_EQ(at, 110u);
  // Same inputs -> same chunks (the determinism the mergers rely on).
  EXPECT_EQ(ranges, ThreadPool::partition(10, 110, 7));
}

TEST(ThreadPool, ParallelForEmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(3, 3, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(9, 2, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForRangeSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(5);
  constexpr std::size_t kN = 10'000;
  std::vector<int> hits(kN, 0);  // disjoint chunks: no two writers per slot
  pool.parallel_for(0, kN, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPool, ExceptionInsideTaskPropagatesWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("chunk 0 died");
                        }),
      std::runtime_error);
  // The pool survives a throwing batch and keeps executing work.
  std::atomic<int> after{0};
  pool.parallel_for(0, 100, [&](std::size_t b, std::size_t e) {
    after += static_cast<int>(e - b);
  });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.enqueue([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
    // Destructor must wait for everything already enqueued.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  std::mutex m;
  pool.parallel_for(0, 1000, [&](std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(m);
    seen.insert(std::this_thread::get_id());
  });
  pool.enqueue([&] {
    std::lock_guard<std::mutex> lock(m);
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

}  // namespace
}  // namespace spoofscope::util
