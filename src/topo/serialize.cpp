#include "topo/serialize.hpp"

#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace spoofscope::topo {

namespace {

[[noreturn]] void fail(std::string_view line, const std::string& why) {
  throw std::runtime_error("topology parse error: " + why + " in line: " +
                           std::string(line));
}

BusinessType type_from(std::string_view line, std::string_view name) {
  for (int t = 0; t < kNumBusinessTypes; ++t) {
    if (business_name(static_cast<BusinessType>(t)) == name) {
      return static_cast<BusinessType>(t);
    }
  }
  fail(line, "unknown business type");
}

RelType rel_from(std::string_view line, std::string_view name) {
  if (name == "c2p") return RelType::kCustomerToProvider;
  if (name == "p2p") return RelType::kPeerToPeer;
  if (name == "sibling") return RelType::kSibling;
  fail(line, "unknown relationship type");
}

double parse_double(std::string_view line, std::string_view tok) {
  try {
    return std::stod(std::string(tok));
  } catch (const std::exception&) {
    fail(line, "bad number");
  }
}

net::Asn parse_asn(std::string_view line, std::string_view tok) {
  std::uint32_t asn;
  if (!util::parse_u32(tok, asn) || asn == net::kNoAsn) fail(line, "bad ASN");
  return asn;
}

}  // namespace

void write_topology(std::ostream& out, const Topology& topo) {
  // Round-trip exactness for the double-valued fields.
  out << std::setprecision(17);
  out << "topology v1\n";
  for (const auto& as : topo.ases()) {
    out << "as " << as.asn << " type " << business_name(as.type) << " org "
        << as.org << " announce " << as.announce_fraction << " bogonfilter "
        << (as.filter.blocks_bogon ? 1 : 0) << " spooffilter "
        << (as.filter.blocks_spoofed ? 1 : 0) << " spoofer "
        << as.spoofer_density << " natleak " << as.nat_leak_density << "\n";
  }
  for (const auto& as : topo.ases()) {
    for (const auto& p : as.prefixes) {
      out << "prefix " << as.asn << " " << p.str() << "\n";
    }
  }
  for (const auto& l : topo.links()) {
    out << "link " << rel_name(l.type) << " " << l.from << " " << l.to
        << " visible " << (l.visible_in_bgp ? 1 : 0);
    if (l.infra.length() != 0) out << " infra " << l.infra.str();
    out << "\n";
  }
}

Topology read_topology(std::istream& in) {
  std::map<net::Asn, AsInfo> ases;
  std::vector<net::Asn> order;
  std::vector<AsLink> links;
  bool header_seen = false;

  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string_view> tok;
    for (const auto t : util::split(line, ' ')) {
      if (!t.empty()) tok.push_back(t);
    }

    if (!header_seen) {
      if (tok.size() != 2 || tok[0] != "topology" || tok[1] != "v1") {
        fail(line, "expected 'topology v1' header");
      }
      header_seen = true;
      continue;
    }

    if (tok[0] == "as") {
      if (tok.size() != 16) fail(line, "as line needs 16 tokens");
      AsInfo info;
      info.asn = parse_asn(line, tok[1]);
      if (tok[2] != "type") fail(line, "expected 'type'");
      info.type = type_from(line, tok[3]);
      if (tok[4] != "org") fail(line, "expected 'org'");
      std::uint32_t org;
      if (!util::parse_u32(tok[5], org)) fail(line, "bad org id");
      info.org = org;
      if (tok[6] != "announce") fail(line, "expected 'announce'");
      info.announce_fraction = parse_double(line, tok[7]);
      if (tok[8] != "bogonfilter") fail(line, "expected 'bogonfilter'");
      info.filter.blocks_bogon = tok[9] == "1";
      if (tok[10] != "spooffilter") fail(line, "expected 'spooffilter'");
      info.filter.blocks_spoofed = tok[11] == "1";
      if (tok[12] != "spoofer") fail(line, "expected 'spoofer'");
      info.spoofer_density = parse_double(line, tok[13]);
      if (tok[14] != "natleak") fail(line, "expected 'natleak'");
      info.nat_leak_density = parse_double(line, tok[15]);
      if (ases.count(info.asn)) fail(line, "duplicate AS");
      ases.emplace(info.asn, info);
      order.push_back(info.asn);
      continue;
    }
    if (tok[0] == "prefix") {
      if (tok.size() != 3) fail(line, "prefix line needs 3 tokens");
      const net::Asn asn = parse_asn(line, tok[1]);
      const auto it = ases.find(asn);
      if (it == ases.end()) fail(line, "prefix for undeclared AS");
      const auto p = net::Prefix::parse(tok[2]);
      if (!p) fail(line, "bad prefix");
      it->second.prefixes.push_back(*p);
      continue;
    }
    if (tok[0] == "link") {
      if (tok.size() != 6 && tok.size() != 8) {
        fail(line, "link line needs 6 or 8 tokens");
      }
      AsLink l;
      l.type = rel_from(line, tok[1]);
      l.from = parse_asn(line, tok[2]);
      l.to = parse_asn(line, tok[3]);
      if (!ases.count(l.from) || !ases.count(l.to)) {
        fail(line, "link references undeclared AS");
      }
      if (tok[4] != "visible") fail(line, "expected 'visible'");
      l.visible_in_bgp = tok[5] == "1";
      if (tok.size() == 8) {
        if (tok[6] != "infra") fail(line, "expected 'infra'");
        const auto p = net::Prefix::parse(tok[7]);
        if (!p) fail(line, "bad infra prefix");
        l.infra = *p;
      }
      links.push_back(l);
      continue;
    }
    fail(line, "unknown record type");
  }
  if (!header_seen) throw std::runtime_error("topology parse error: empty input");

  std::vector<AsInfo> list;
  list.reserve(order.size());
  for (const net::Asn asn : order) list.push_back(std::move(ases.at(asn)));
  return Topology(std::move(list), std::move(links));
}

}  // namespace spoofscope::topo
