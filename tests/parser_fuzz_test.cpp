// Robustness sweeps for every text/binary parser in the library: random
// garbage, truncations and mutations must either parse or throw — never
// crash, hang or silently corrupt. Parameterized over seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "bgp/mrt_lite.hpp"
#include "data/rpsl.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "net/trace.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace spoofscope {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t n = rng.index(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.uniform_u32(0, 255)));
  }
  return s;
}

/// Printable garbage biased towards parser-relevant characters.
std::string random_texty(util::Rng& rng, std::size_t max_len) {
  static const char kAlphabet[] =
      "0123456789abcdefASMNT.:|/ \t%#-\nroute origin import export TABLE_DUMP "
      "UPDATE W A";
  std::string s;
  const std::size_t n = rng.index(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(kAlphabet[rng.index(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

TEST_P(ParserFuzzTest, Ipv4AndPrefixParseNeverCrash) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const auto s = random_texty(rng, 24);
    (void)net::Ipv4Addr::parse(s);
    (void)net::Prefix::parse(s);
  }
}

TEST_P(ParserFuzzTest, Ipv4ParseFormatsRoundTrip) {
  util::Rng rng(GetParam() ^ 0x11);
  for (int i = 0; i < 3000; ++i) {
    const net::Ipv4Addr a(rng.next_u32());
    const auto parsed = net::Ipv4Addr::parse(a.str());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, a);
  }
}

TEST_P(ParserFuzzTest, MrtLineParseThrowsOrSucceeds) {
  util::Rng rng(GetParam() ^ 0x22);
  for (int i = 0; i < 2000; ++i) {
    const auto line = random_texty(rng, 80);
    try {
      const auto rec = bgp::parse_mrt_line(line);
      // Whatever parsed must serialize back to something parseable.
      std::visit(
          [](const auto& r) { (void)bgp::parse_mrt_line(bgp::to_mrt_line(r)); },
          rec);
    } catch (const std::runtime_error&) {
      // expected for garbage
    }
  }
}

TEST_P(ParserFuzzTest, MrtValidLineMutationsHandled) {
  util::Rng rng(GetParam() ^ 0x33);
  const std::string valid = "TABLE_DUMP|123|3356|10.0.0.0/16|3356 1299 64500";
  for (int i = 0; i < 2000; ++i) {
    std::string line = valid;
    const std::size_t edits = 1 + rng.index(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.index(line.size());
      switch (rng.index(3)) {
        case 0: line[pos] = static_cast<char>(rng.uniform_u32(32, 126)); break;
        case 1: line.erase(pos, 1); break;
        default: line.insert(pos, 1, static_cast<char>(rng.uniform_u32(32, 126)));
      }
      if (line.empty()) line = "|";
    }
    try {
      (void)bgp::parse_mrt_line(line);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(ParserFuzzTest, RpslStreamNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x44);
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_texty(rng, 400));
    try {
      (void)data::parse_rpsl(ss);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(ParserFuzzTest, TraceReaderRejectsGarbage) {
  util::Rng rng(GetParam() ^ 0x55);
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_bytes(rng, 300));
    try {
      (void)net::read_trace(ss);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(ParserFuzzTest, TraceTruncationAlwaysThrows) {
  util::Rng rng(GetParam() ^ 0x66);
  net::Trace t;
  for (int i = 0; i < 5; ++i) {
    net::FlowRecord f;
    f.src = net::Ipv4Addr(rng.next_u32());
    f.packets = 1;
    f.bytes = 40;
    f.member_in = 1;
    f.member_out = 2;
    t.flows.push_back(f);
  }
  std::stringstream ss;
  net::write_trace(ss, t);
  const std::string full = ss.str();
  for (int i = 0; i < 100; ++i) {
    // Any strict prefix that cuts into the record stream must throw.
    const std::size_t cut = rng.index(full.size());
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW((void)net::read_trace(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST_P(ParserFuzzTest, MrtSkipModeNeverThrowsAndCountsConsistently) {
  util::Rng rng(GetParam() ^ 0x99);
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_texty(rng, 400));
    util::IngestStats stats;
    const auto out = bgp::read_mrt(ss, util::ErrorPolicy::kSkip, &stats);
    // Skip mode must never throw, and must never claim more surviving
    // records than it returned.
    EXPECT_EQ(stats.records_ok, out.size());
  }
}

TEST_P(ParserFuzzTest, RpslSkipModeNeverThrowsAndCountsConsistently) {
  util::Rng rng(GetParam() ^ 0xaa);
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_texty(rng, 400));
    util::IngestStats stats;
    const auto db = data::parse_rpsl(ss, util::ErrorPolicy::kSkip, &stats);
    EXPECT_EQ(stats.records_ok, db.routes.size() + db.aut_nums.size());
  }
}

TEST_P(ParserFuzzTest, TraceSkipModeNeverThrowsOnGarbage) {
  util::Rng rng(GetParam() ^ 0xbb);
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_bytes(rng, 300));
    util::IngestStats stats;
    const auto t = net::read_trace(ss, util::ErrorPolicy::kSkip, &stats);
    EXPECT_EQ(stats.records_ok, t.flows.size());
  }
}

TEST_P(ParserFuzzTest, TraceSkipModeSurvivorsAreGenuineUnderMutation) {
  // Arbitrary byte mutations of a valid trace: skip mode must terminate,
  // never throw, and every surviving record must be one of the original
  // records (checksums make inventing a record as hard as forging one).
  util::Rng rng(GetParam() ^ 0xcc);
  net::Trace t;
  t.meta.seed = GetParam();
  for (int i = 0; i < 50; ++i) {
    net::FlowRecord f;
    f.ts = static_cast<std::uint32_t>(i);
    f.src = net::Ipv4Addr(rng.next_u32());
    f.packets = 1 + rng.uniform_u32(0, 9);
    f.bytes = 40ull * f.packets;
    f.member_in = 1 + static_cast<net::Asn>(rng.index(5));
    f.member_out = 2;
    t.flows.push_back(f);
  }
  std::stringstream ss;
  net::write_trace(ss, t);
  const std::string full = ss.str();

  for (int i = 0; i < 200; ++i) {
    std::string bad = full;
    const std::size_t edits = 1 + rng.index(8);
    for (std::size_t e = 0; e < edits; ++e) {
      bad[rng.index(bad.size())] =
          static_cast<char>(rng.uniform_u32(0, 255));
    }
    std::stringstream in(bad);
    util::IngestStats stats;
    const auto got = net::read_trace(in, util::ErrorPolicy::kSkip, &stats);
    EXPECT_EQ(stats.records_ok, got.flows.size());
    EXPECT_LE(got.flows.size(), t.flows.size());
    for (const auto& f : got.flows) {
      EXPECT_NE(std::find(t.flows.begin(), t.flows.end(), f), t.flows.end());
    }
  }
}

TEST_P(ParserFuzzTest, TraceSkipModeTruncationNeverThrows) {
  // The skip-mode counterpart of TraceTruncationAlwaysThrows: the same
  // cuts must yield a (possibly empty) prefix of the written records.
  util::Rng rng(GetParam() ^ 0x66);  // same sequence as the strict test
  net::Trace t;
  for (int i = 0; i < 5; ++i) {
    net::FlowRecord f;
    f.src = net::Ipv4Addr(rng.next_u32());
    f.packets = 1;
    f.bytes = 40;
    f.member_in = 1;
    f.member_out = 2;
    t.flows.push_back(f);
  }
  std::stringstream ss;
  net::write_trace(ss, t);
  const std::string full = ss.str();
  for (int i = 0; i < 100; ++i) {
    const std::size_t cut = rng.index(full.size());
    std::stringstream truncated(full.substr(0, cut));
    util::IngestStats stats;
    const auto got =
        net::read_trace(truncated, util::ErrorPolicy::kSkip, &stats);
    EXPECT_EQ(stats.records_ok, got.flows.size());
    EXPECT_FALSE(stats.clean()) << "cut at " << cut;
    ASSERT_LE(got.flows.size(), t.flows.size());
    for (std::size_t k = 0; k < got.flows.size(); ++k) {
      EXPECT_EQ(got.flows[k], t.flows[k]);
    }
  }
}

TEST_P(ParserFuzzTest, CsvParseLineNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x77);
  std::vector<std::string> fields;
  for (int i = 0; i < 3000; ++i) {
    (void)util::csv_parse_line(random_texty(rng, 60), fields);
  }
}

TEST_P(ParserFuzzTest, AsPathParseNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x88);
  for (int i = 0; i < 3000; ++i) {
    (void)bgp::AsPath::parse(random_texty(rng, 40));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace spoofscope
