// Fig 6: per-member total traffic vs. share of Bogon / Invalid, broken
// down by business type — do hosters really leak more than content
// networks?
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/member_stats.hpp"

namespace spoofscope::analysis {

/// One scatter point of Fig 6.
struct BusinessPoint {
  Asn member = net::kNoAsn;
  topo::BusinessType type = topo::BusinessType::kOther;
  double total_packets = 0;     ///< sampled, x-axis
  double share_bogon = 0;       ///< y-axis of Fig 6a
  double share_unrouted = 0;
  double share_invalid = 0;     ///< y-axis of Fig 6b
};

std::vector<BusinessPoint> business_scatter(
    std::span<const MemberClassCounts> counts);

/// Per-business-type aggregates: member count, and the fraction of the
/// type's members with a significant (> 1%) share of each class.
struct BusinessTypeSummary {
  topo::BusinessType type = topo::BusinessType::kOther;
  std::size_t members = 0;
  double significant_bogon = 0;
  double significant_unrouted = 0;
  double significant_invalid = 0;
  double median_total_packets = 0;
};

std::vector<BusinessTypeSummary> business_summary(
    std::span<const BusinessPoint> points, double significant_threshold = 0.01);

std::string format_business_summary(std::span<const BusinessTypeSummary> rows);

}  // namespace spoofscope::analysis
