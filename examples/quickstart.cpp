// Quickstart: build a small simulated Internet, classify four weeks of
// IXP traffic and print the headline result (Table 1 of the paper).
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/table1.hpp"
#include "classify/pipeline.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace spoofscope;

  scenario::ScenarioParams params = scenario::ScenarioParams::small();
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);

  // One call builds the whole world: topology, BGP feeds, inference,
  // IXP workload and the classification labels.
  const auto world = scenario::build_scenario(params);

  const auto agg = classify::aggregate_classes(
      world->classifier(), world->trace().flows, world->labels());
  const auto columns = analysis::table1_columns(
      agg, world->trace().scale(), world->ixp().member_count());

  std::cout << "spoofscope quickstart — " << world->topology().as_count()
            << " ASes, " << world->ixp().member_count() << " IXP members, "
            << world->trace().flows.size() << " sampled flows (1:"
            << world->trace().meta.sampling_rate << " sampling)\n\n";
  std::cout << analysis::format_table1(columns) << "\n";

  // Classify one source by hand to show the per-flow API.
  const auto member = world->ixp().members().front().asn;
  const auto cls = world->classifier().classify(
      net::Ipv4Addr::from_octets(10, 1, 2, 3), member,
      scenario::Scenario::space_index(inference::Method::kFullCone));
  std::cout << "10.1.2.3 sourced by AS" << member << " classifies as "
            << classify::class_name(cls) << "\n";
  return 0;
}
