// Binary trace container and (de)serialization for flow records, so that
// generated workloads can be persisted and re-analyzed without re-running
// the generator. Format: fixed little-endian header + fixed-size records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/flow.hpp"

namespace spoofscope::net {

/// Metadata describing how a trace was captured.
struct TraceMeta {
  std::uint32_t sampling_rate = 10000;       ///< 1-out-of-N packet sampling
  std::uint32_t window_seconds = kFourWeeks; ///< measurement window length
  std::uint64_t seed = 0;                    ///< generator seed (0 = real capture)

  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

/// An in-memory flow trace: metadata plus the sampled flow records.
struct Trace {
  TraceMeta meta;
  std::vector<FlowRecord> flows;

  /// Extrapolation factor from sampled to estimated real counts.
  double scale() const { return static_cast<double>(meta.sampling_rate); }
};

/// Writes a trace in spoofscope binary format. Throws std::runtime_error on
/// stream failure.
void write_trace(std::ostream& out, const Trace& trace);

/// Reads a trace written by write_trace. Throws std::runtime_error on
/// malformed input (bad magic, truncated records, unsupported version).
Trace read_trace(std::istream& in);

}  // namespace spoofscope::net
