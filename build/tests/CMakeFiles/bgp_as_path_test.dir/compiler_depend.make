# Empty compiler generated dependencies file for bgp_as_path_test.
# This may be replaced when dependencies are built.
