// Human-readable formatting used by the bench/report printers (e.g. the
// "31.63T bytes (0.003%)" style values in Table 1).
#pragma once

#include <cstdint>
#include <string>

namespace spoofscope::util {

/// Formats a count with SI-style suffixes: 1234 -> "1.23K", 2e12 -> "2.00T".
/// Values below 1000 are printed as plain integers.
std::string human_count(double v);

/// Same scaling, but suffixed for bytes: "92.65TB".
std::string human_bytes(double v);

/// Percentage with adaptive precision: 1.29 -> "1.29%", 0.000031 -> "3.1e-05%".
std::string percent(double fraction);

/// Fixed-point with `digits` decimals.
std::string fixed(double v, int digits);

/// Left-pads `s` with spaces to width `w`.
std::string pad_left(const std::string& s, std::size_t w);

/// Right-pads `s` with spaces to width `w`.
std::string pad_right(const std::string& s, std::size_t w);

}  // namespace spoofscope::util
