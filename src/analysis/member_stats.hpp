// Per-member classification statistics: the basis of Fig 4 (CCDF of class
// shares), Fig 5 (Venn membership) and Fig 6 (business-type scatter).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "classify/classifier.hpp"
#include "ixp/ixp.hpp"
#include "net/trace.hpp"
#include "util/stats.hpp"

namespace spoofscope::analysis {

using classify::kNumClasses;
using classify::Label;
using classify::TrafficClass;
using net::Asn;

/// Sampled packet/byte counts per class for one member, under one method.
struct MemberClassCounts {
  Asn member = net::kNoAsn;
  topo::BusinessType type = topo::BusinessType::kOther;
  double packets[kNumClasses] = {0, 0, 0, 0};
  double bytes[kNumClasses] = {0, 0, 0, 0};
  double flows[kNumClasses] = {0, 0, 0, 0};

  double total_packets() const {
    return packets[0] + packets[1] + packets[2] + packets[3];
  }
  double total_bytes() const { return bytes[0] + bytes[1] + bytes[2] + bytes[3]; }

  /// Share of the member's own packets falling into class `c`.
  double packet_share(TrafficClass c) const {
    const double t = total_packets();
    return t == 0 ? 0.0 : packets[static_cast<int>(c)] / t;
  }

  bool contributes(TrafficClass c) const {
    return packets[static_cast<int>(c)] > 0;
  }
};

/// Aggregates counts for every member that injected traffic. Members in
/// the trace but absent from `ixp` get type kOther.
std::vector<MemberClassCounts> per_member_counts(
    std::span<const net::FlowRecord> flows, std::span<const Label> labels,
    std::size_t space_idx, const ixp::Ixp& ixp);

/// Fig 4: CCDF over members of the per-member share of `cls` packets.
std::vector<util::DistPoint> class_share_ccdf(
    std::span<const MemberClassCounts> counts, TrafficClass cls);

}  // namespace spoofscope::analysis
