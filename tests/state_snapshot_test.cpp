// Snapshot container: round-trips, layout invariants (alignment, pinned
// total size, zero padding), crash-safe writes, and the corruption
// contract — every truncation and every flipped bit must surface as a
// SnapshotError, never as silently-wrong data. The fuzz loops lean on
// the fact that every byte of a snapshot is covered by some check.
#include "state/snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corruption.hpp"
#include "util/rng.hpp"

namespace spoofscope::state {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> to_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string to_string(const std::vector<std::uint8_t>& v) {
  return {v.begin(), v.end()};
}

/// A representative two-section snapshot exercising every lane type.
SnapshotWriter sample_writer() {
  SnapshotWriter writer(PayloadKind::kDetector, 3);
  SectionBuilder a;
  a.u8(0xAB);
  a.u16(0xBEEF);
  a.u32(0xDEADBEEFu);
  a.u64(0x0123456789ABCDEFull);
  a.f64(-1234.5678);
  writer.add_section(7, a.take());
  SectionBuilder b;
  for (std::uint32_t i = 0; i < 100; ++i) b.u32(i * 2654435761u);
  writer.add_section(9, b.take());
  return writer;
}

TEST(Snapshot, RoundTripsEveryLaneType) {
  const auto bytes = sample_writer().serialize();
  const SnapshotView view = parse_snapshot(bytes, PayloadKind::kDetector, 3);
  EXPECT_EQ(view.kind(), PayloadKind::kDetector);
  EXPECT_EQ(view.payload_version(), 3u);
  EXPECT_EQ(view.section_count(), 2u);
  EXPECT_TRUE(view.has(7));
  EXPECT_TRUE(view.has(9));
  EXPECT_FALSE(view.has(8));

  SectionReader a(view.section(7));
  EXPECT_EQ(a.u8(), 0xAB);
  EXPECT_EQ(a.u16(), 0xBEEF);
  EXPECT_EQ(a.u32(), 0xDEADBEEFu);
  EXPECT_EQ(a.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(a.f64(), -1234.5678);  // bit-exact, not approximate
  EXPECT_EQ(a.remaining(), 0u);

  SectionReader b(view.section(9));
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(b.u32(), i * 2654435761u);
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(Snapshot, SectionPayloadsAreEightByteAligned) {
  SnapshotWriter writer(PayloadKind::kPlane, 1);
  // Deliberately awkward sizes so alignment padding is actually needed.
  for (std::uint32_t id = 1; id <= 5; ++id) {
    SectionBuilder b;
    for (std::uint32_t i = 0; i < id * 3 + 1; ++i) b.u8(static_cast<std::uint8_t>(i));
    writer.add_section(id, b.take());
  }
  const auto bytes = writer.serialize();
  const SnapshotView view = parse_snapshot(bytes, PayloadKind::kPlane, 1);
  for (std::uint32_t id = 1; id <= 5; ++id) {
    const auto sec = view.section(id);
    EXPECT_EQ((sec.data() - bytes.data()) % 8, 0)
        << "section " << id << " payload not 8-byte aligned";
    EXPECT_EQ(sec.size(), id * 3 + 1);
  }
}

TEST(Snapshot, EmptyAndZeroSectionSnapshotsRoundTrip) {
  {
    SnapshotWriter writer(PayloadKind::kDetector, 1);
    const auto bytes = writer.serialize();
    const SnapshotView view = parse_snapshot(bytes, PayloadKind::kDetector, 1);
    EXPECT_EQ(view.section_count(), 0u);
  }
  {
    SnapshotWriter writer(PayloadKind::kDetector, 1);
    writer.add_section(4, {});
    const auto bytes = writer.serialize();
    const SnapshotView view = parse_snapshot(bytes, PayloadKind::kDetector, 1);
    EXPECT_TRUE(view.has(4));
    EXPECT_EQ(view.section(4).size(), 0u);
  }
}

TEST(Snapshot, MissingSectionThrowsParse) {
  const auto bytes = sample_writer().serialize();
  const SnapshotView view = parse_snapshot(bytes, PayloadKind::kDetector, 3);
  try {
    view.section(1234);
    FAIL() << "missing section did not throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kParse);
  }
}

TEST(Snapshot, ReaderUnderrunThrowsTruncated) {
  SectionBuilder b;
  b.u32(42);
  const auto payload = b.take();
  SectionReader r(payload);
  EXPECT_EQ(r.u32(), 42u);
  try {
    r.u8();
    FAIL() << "underrun did not throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kTruncated);
  }
}

TEST(Snapshot, KindAndVersionMismatchesAreTyped) {
  const auto bytes = sample_writer().serialize();
  try {
    parse_snapshot(bytes, PayloadKind::kPlane, 3);
    FAIL() << "kind mismatch did not throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kParse);
  }
  try {
    parse_snapshot(bytes, PayloadKind::kDetector, 4);
    FAIL() << "payload version mismatch did not throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kBadVersion);
  }
  auto magic = bytes;
  magic[0] ^= 0xFF;
  try {
    parse_snapshot(magic, PayloadKind::kDetector, 3);
    FAIL() << "bad magic did not throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kBadMagic);
  }
  auto container = bytes;
  container[4] = 0x7F;  // container version lives at offset 4
  try {
    parse_snapshot(container, PayloadKind::kDetector, 3);
    FAIL() << "container version did not throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kBadVersion);
  }
}

TEST(Snapshot, EveryTruncationIsDetected) {
  const std::string image = to_string(sample_writer().serialize());
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string cut = testing::truncate_bytes(image, rng);
    ASSERT_LT(cut.size(), image.size());
    EXPECT_THROW(
        parse_snapshot(to_bytes(cut), PayloadKind::kDetector, 3),
        SnapshotError)
        << "truncation to " << cut.size() << " bytes went unnoticed";
  }
}

TEST(Snapshot, TrailingGarbageIsDetected) {
  auto bytes = sample_writer().serialize();
  bytes.push_back(0);  // even a single zero byte breaks the pinned size
  EXPECT_THROW(parse_snapshot(bytes, PayloadKind::kDetector, 3), SnapshotError);
}

TEST(Snapshot, EverySingleBitFlipIsDetected) {
  // flips=1 guarantees the image actually changed (an even number of
  // flips can cancel), so the parser has no excuse.
  const std::string image = to_string(sample_writer().serialize());
  util::Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string damaged = testing::flip_bits(image, rng, 1);
    ASSERT_NE(damaged, image);
    EXPECT_THROW(
        parse_snapshot(to_bytes(damaged), PayloadKind::kDetector, 3),
        SnapshotError);
  }
}

TEST(Snapshot, AtomicWriteLeavesNoTempAndReloadsBitIdentical) {
  // Pid-suffixed so concurrent runs from different build trees don't
  // overwrite each other's files mid-test.
  const fs::path dir = fs::temp_directory_path() /
                       ("spoofscope_snap_test." + std::to_string(::getpid()));
  fs::create_directories(dir);
  const fs::path path = dir / "atomic.snap";
  const SnapshotWriter writer = sample_writer();
  writer.write_atomic(path.string());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));

  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> loaded{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  EXPECT_EQ(loaded, writer.serialize());

  // Overwrite: the old snapshot is replaced wholesale, never blended.
  SnapshotWriter other(PayloadKind::kDetector, 3);
  SectionBuilder b;
  b.u64(1);
  other.add_section(1, b.take());
  other.write_atomic(path.string());
  std::ifstream in2(path, std::ios::binary);
  std::vector<std::uint8_t> reloaded{std::istreambuf_iterator<char>(in2),
                                     std::istreambuf_iterator<char>()};
  EXPECT_EQ(reloaded, other.serialize());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace spoofscope::state
