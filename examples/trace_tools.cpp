// Data persistence workflow: generate a scenario once, persist everything
// a later analysis needs — the flow trace (binary), the BGP view
// (MRT-lite text) and the WHOIS registry (RPSL-lite text) — then reload
// the artifacts and verify the classification reproduces bit-for-bit.
// This is how spoofscope would be used against real captured data.
//
//   $ ./trace_tools [output-dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bgp/mrt_lite.hpp"
#include "data/rpsl.hpp"
#include "net/trace.hpp"
#include "scenario/scenario.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace spoofscope;
  namespace fs = std::filesystem;

  const fs::path dir = argc > 1 ? argv[1] : fs::temp_directory_path() / "spoofscope";
  fs::create_directories(dir);

  const auto params = scenario::ScenarioParams::small();
  const auto world = scenario::build_scenario(params);

  // --- persist ---------------------------------------------------------------
  {
    std::ofstream out(dir / "ixp.trace", std::ios::binary);
    net::write_trace(out, world->trace());
  }
  {
    // Export a route-server style MRT-lite view for the record.
    const bgp::Simulator sim(world->topology());
    const auto plan = bgp::make_announcement_plan(world->topology(), {}, 7);
    const bgp::RouteFabric fabric(sim, plan);
    bgp::CollectorSpec rs;
    rs.name = "ixp-rs";
    rs.feeders = world->ixp().route_server_feeders();
    rs.full_feed = false;
    std::ofstream out(dir / "route-server.mrt");
    bgp::collect_records(fabric, rs, [&out](const bgp::MrtRecord& r) {
      std::visit([&out](const auto& rec) { out << bgp::to_mrt_line(rec) << '\n'; },
                 r);
    });
  }
  {
    std::ofstream out(dir / "registry.rpsl");
    out << data::registry_to_rpsl(world->whois());
  }

  // --- reload and verify ------------------------------------------------------
  std::ifstream tin(dir / "ixp.trace", std::ios::binary);
  const net::Trace trace = net::read_trace(tin);
  std::cout << "trace:  " << trace.flows.size() << " flows reloaded, seed "
            << trace.meta.seed << ", 1:" << trace.meta.sampling_rate
            << " sampling — "
            << (trace.flows == world->trace().flows ? "bit-identical" : "MISMATCH")
            << "\n";

  std::ifstream min(dir / "route-server.mrt");
  const auto records = bgp::read_mrt(min);
  bgp::RoutingTableBuilder builder;
  builder.ingest(records);
  const auto table = builder.build();
  std::cout << "mrt:    " << records.size() << " records reloaded -> "
            << table.prefixes().size() << " routed prefixes, "
            << table.edges().size() << " AS edges\n";

  std::ifstream rin(dir / "registry.rpsl");
  const auto rebuilt = data::registry_from_rpsl(data::parse_rpsl(rin));
  std::cout << "rpsl:   " << rebuilt.provider_assigned().size()
            << " provider-assigned ranges, " << rebuilt.documented_link_count()
            << " documented links ("
            << (rebuilt.provider_assigned().size() ==
                        world->whois().provider_assigned().size() &&
                    rebuilt.documented_link_count() ==
                        world->whois().documented_link_count()
                ? "matches original"
                : "MISMATCH")
            << ")\n";

  // Re-run the classification on the reloaded trace; labels must agree.
  const auto labels = classify::classify_trace(world->classifier(), trace.flows);
  std::cout << "labels: "
            << (labels == world->labels() ? "classification reproduced exactly"
                                          : "MISMATCH")
            << "\n";
  std::cout << "artifacts written to " << dir << "\n";
  return 0;
}
