file(REMOVE_RECURSE
  "CMakeFiles/net_flow_test.dir/net_flow_test.cpp.o"
  "CMakeFiles/net_flow_test.dir/net_flow_test.cpp.o.d"
  "net_flow_test"
  "net_flow_test.pdb"
  "net_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
