# Empty dependencies file for spoofscope_classify.
# This may be replaced when dependencies are built.
