file(REMOVE_RECURSE
  "CMakeFiles/asgraph_graph_test.dir/asgraph_graph_test.cpp.o"
  "CMakeFiles/asgraph_graph_test.dir/asgraph_graph_test.cpp.o.d"
  "asgraph_graph_test"
  "asgraph_graph_test.pdb"
  "asgraph_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asgraph_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
