# Empty compiler generated dependencies file for bgp_simulator_test.
# This may be replaced when dependencies are built.
