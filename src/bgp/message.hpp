// BGP data records as seen by route collectors: RIB (table dump) entries
// and update messages. These are the units the MRT-lite files carry and
// the RoutingTableBuilder consumes.
#pragma once

#include <cstdint>

#include "bgp/as_path.hpp"
#include "net/prefix.hpp"

namespace spoofscope::bgp {

/// One routing-table entry at a collector: the route that feeder peer
/// `peer` had installed for `prefix` at dump time.
struct RibEntry {
  std::uint32_t timestamp = 0;  ///< seconds since measurement window start
  Asn peer = net::kNoAsn;       ///< the feeder that exported this route
  net::Prefix prefix;
  AsPath path;  ///< starts at `peer`, ends at the origin AS

  friend bool operator==(const RibEntry&, const RibEntry&) = default;
};

/// One BGP update message received by a collector from a feeder.
struct UpdateMessage {
  enum class Kind : std::uint8_t { kAnnounce, kWithdraw };

  Kind kind = Kind::kAnnounce;
  std::uint32_t timestamp = 0;
  Asn peer = net::kNoAsn;
  net::Prefix prefix;
  AsPath path;  ///< only meaningful for kAnnounce

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

}  // namespace spoofscope::bgp
