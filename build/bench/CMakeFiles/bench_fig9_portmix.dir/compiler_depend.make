# Empty compiler generated dependencies file for bench_fig9_portmix.
# This may be replaced when dependencies are built.
