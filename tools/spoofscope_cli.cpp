// spoofscope — command-line front end.
//
// Operates purely on files, so it works on real captured data just as on
// simulated artifacts:
//
//   spoofscope generate --out DIR [--seed N] [--paper]
//       Simulate a world and write its artifacts: topology.txt,
//       ixp.trace (binary flows), route-server.mrt and collector MRT
//       feeds, registry.rpsl.
//
//   spoofscope classify --mrt FILE[,FILE...] --trace FILE
//              [--rpsl FILE] [--method METHOD] [--labels OUT.csv]
//       Build the routing view from MRT-lite feeds, infer per-member
//       valid space, classify every flow (Fig 3) and print Table-1-style
//       totals. METHOD is one of: naive, cc, cc+org, full, full+org
//       (default full+org). --rpsl whitelists provider-assigned ranges
//       and documented links before classification (Sec 4.4).
//
//   spoofscope report --mrt FILE[,FILE...] --trace FILE [--rpsl FILE]
//       Full study output: Table-1-style totals, Venn, filtering
//       strategies, per-member share quantiles, traffic characteristics,
//       port mix, attack patterns and incidents. Computed in the same
//       single mmap+batch pass classify uses, via the bounded-memory
//       streaming builders (analysis::StreamingReport) — peak RSS is
//       independent of trace length.
//
//   spoofscope detect --mrt FILE[,FILE...] --trace FILE [--rpsl FILE]
//              [--window SECONDS] [--skew SECONDS] [--updates FILE]
//              [--checkpoint PATH [--checkpoint-every N]
//               [--checkpoint-delta] [--resume]]
//       Streaming detection: feed the trace through the online
//       StreamingDetector batch-at-a-time and print every alert plus the
//       detector health counters. --checkpoint persists the detector
//       state (crash-safe atomic snapshot) every N processed flows and
//       at end of stream; --resume restores it first and skips the
//       already-processed records, so a killed run continues with
//       bit-identical alerts and health. --updates (flat engine) plays
//       an MRT-lite announce/withdraw stream into the compiled plane as
//       the trace advances — route churn patches the plane in place
//       (FlatClassifier::apply_updates) instead of recompiling, and
//       checkpoints record the update cursor so a resumed run replays
//       the plane to the exact cut. --checkpoint-delta chains small
//       delta checkpoints off the last full snapshot instead of
//       rewriting the whole state every interval.
//
//   spoofscope serve --mrt FILE[,FILE...] --trace FILE --socket PATH
//              [--rpsl FILE] [--shards N] [--window SECONDS]
//              [--skew SECONDS] [--checkpoint-dir DIR]
//              [--checkpoint-every N] [--resume]
//       Resident multi-vantage detection service: one shared compiled
//       plane, N ingest shards (flows routed by member AS), per-shard
//       delta-checkpoint chains, and a Unix-domain control socket
//       accepting submit/health/stats-json/alerts/checkpoint/
//       reload-updates/drain/shutdown (see src/service/control.hpp for
//       the protocol grammar). --trace here seeds the member universe
//       the valid spaces are built for; traffic arrives via `submit`.
//
// All readers honour --on-error strict|skip: strict (default) fails on
// the first malformed record; skip quarantines bad records, prints an
// ingest report, and analyses the surviving records. The trace is
// mmapped (net::MappedTrace) and decoded into reused SoA batches
// (net::FlowBatch), so classify never materializes the whole trace in
// memory and never copies record bytes. --stats-json PATH writes the
// per-source IngestStats (and, for detect, the DetectorHealth) as JSON
// for monitoring pipelines. Under --engine flat, --plane-cache DIR
// serves the compiled classification plane from a digest-validated
// mmap'd snapshot when one matches the routing view and valid spaces,
// compiling (and storing) only on a miss.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "analysis/streaming.hpp"
#include "bgp/mrt_lite.hpp"
#include "bgp/simulator.hpp"
#include "classify/pipeline.hpp"
#include "classify/streaming.hpp"
#include "data/rpsl.hpp"
#include "inference/builder.hpp"
#include "net/flow_batch.hpp"
#include "net/mapped_trace.hpp"
#include "net/trace.hpp"
#include "scenario/scenario.hpp"
#include "service/merge.hpp"
#include "service/server.hpp"
#include "state/delta_chain.hpp"
#include "state/plane_cache.hpp"
#include "topo/serialize.hpp"
#include "util/error_policy.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace spoofscope;

/// Flows classified per streaming chunk: large enough to amortize the
/// thread-pool fan-out, small enough to keep classify at a few MiB of
/// flow/label memory regardless of trace size.
constexpr std::size_t kChunkFlows = 1u << 17;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  spoofscope generate --out DIR [--seed N] [--threads N]\n"
      "                      [--scale small|ixp|internet] [--scale-factor N]\n"
      "                      [--engine trie|flat] [--simd auto|avx2|neon|scalar]\n"
      "  spoofscope classify --mrt FILES --trace FILE [--rpsl FILE]\n"
      "                      [--method naive|cc|cc+org|full|full+org]\n"
      "                      [--labels OUT.csv] [--threads N]\n"
      "                      [--engine trie|flat] [--plane-cache DIR]\n"
      "                      [--simd auto|avx2|neon|scalar]\n"
      "                      [--on-error strict|skip] [--stats-json PATH]\n"
      "  spoofscope report   --mrt FILES --trace FILE [--rpsl FILE]\n"
      "                      [--threads N] [--engine trie|flat]\n"
      "                      [--plane-cache DIR]\n"
      "                      [--simd auto|avx2|neon|scalar]\n"
      "                      [--on-error strict|skip] [--stats-json PATH]\n"
      "  spoofscope detect   --mrt FILES --trace FILE [--rpsl FILE]\n"
      "                      [--method naive|cc|cc+org|full|full+org]\n"
      "                      [--window SECONDS] [--skew SECONDS]\n"
      "                      [--threads N] [--engine trie|flat]\n"
      "                      [--plane-cache DIR] [--updates FILE]\n"
      "                      [--simd auto|avx2|neon|scalar]\n"
      "                      [--checkpoint PATH] [--checkpoint-every N]\n"
      "                      [--checkpoint-delta] [--resume]\n"
      "                      [--on-error strict|skip] [--stats-json PATH]\n"
      "  spoofscope serve    --mrt FILES --trace FILE --socket PATH\n"
      "                      [--rpsl FILE] [--shards N]\n"
      "                      [--method naive|cc|cc+org|full|full+org]\n"
      "                      [--window SECONDS] [--skew SECONDS]\n"
      "                      [--threads N] [--engine trie|flat]\n"
      "                      [--plane-cache DIR]\n"
      "                      [--simd auto|avx2|neon|scalar]\n"
      "                      [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "                      [--resume] [--on-error strict|skip]\n"
      "\n"
      "--threads N runs valid-space construction and classification on N\n"
      "worker threads (0 = hardware concurrency, default 1 = sequential);\n"
      "results are identical for every N.\n"
      "--scale picks the generated world: small (laptop-quick, default),\n"
      "ixp (the paper-scale vantage, alias --paper) or internet (~80K\n"
      "ASes, ~1M announced prefixes; defaults --threads to hardware\n"
      "concurrency and takes minutes of CPU). --scale-factor N divides\n"
      "the AS population by N — e.g. a sanitizer run exercising every\n"
      "chunk-parallel code path at affordable cost.\n"
      "--engine flat compiles the classifier into the DIR-24-8 flat plane\n"
      "(O(1) per-flow lookups) before classifying; labels are identical\n"
      "to the default trie engine.\n"
      "--simd selects the flat engine's batch kernel (default auto = best\n"
      "this build + CPU supports). Kernels are bit-identical; the knob\n"
      "changes throughput only. Requesting a kernel this host cannot run\n"
      "is an error, not a silent fallback. Ignored under --engine trie.\n"
      "--on-error skip quarantines malformed MRT lines, RPSL objects and\n"
      "corrupt trace records instead of aborting, prints an ingest report\n"
      "and analyses the surviving records (default: strict).\n"
      "--stats-json PATH writes per-source ingest statistics (and, for\n"
      "detect, the detector health counters) as JSON.\n"
      "--plane-cache DIR (flat engine) caches the compiled classification\n"
      "plane on disk keyed by a digest of the routing view + valid spaces;\n"
      "hits mmap the plane instead of recompiling.\n"
      "--checkpoint PATH (detect) saves the detector state atomically\n"
      "every --checkpoint-every N flows (N > 0; and at end of stream);\n"
      "--resume restores PATH first and skips the already-processed\n"
      "records, so a restarted run produces the same alerts and health as\n"
      "an uninterrupted one.\n"
      "--checkpoint-delta (detect) writes small delta checkpoints\n"
      "(PATH.d1, PATH.d2, ...) chained off the last full snapshot instead\n"
      "of rewriting the whole state every interval; each link carries its\n"
      "parent's digest, and --resume replays the chain to the newest\n"
      "consistent cut (strict refuses a broken chain, skip truncates it).\n"
      "--updates FILE (detect, flat engine) streams MRT-lite UPDATE lines\n"
      "into the compiled plane as the trace plays: every announce or\n"
      "withdraw with a timestamp <= the next flow's is patched into the\n"
      "plane in place before that flow is classified. Checkpoints record\n"
      "the update cursor, so a resumed run replays the already-applied\n"
      "updates and continues on a bit-identical plane.\n"
      "serve runs the detection pipeline as a resident daemon: --shards N\n"
      "(1..4096, default 1) ingest shards each own a StreamingDetector;\n"
      "flows route to shards by member AS, so N does not change the\n"
      "alerts — any shard count reproduces the one-shot detect output.\n"
      "--socket PATH is the Unix-domain control socket (submit TRACE,\n"
      "health, stats-json, alerts, checkpoint, reload-updates MRT, drain,\n"
      "shutdown). --checkpoint-dir DIR keeps one delta-checkpoint chain\n"
      "per shard (shard-<i>-of-<n>.ckpt) every --checkpoint-every flows;\n"
      "--resume restores the chains on startup for rolling restart.\n"
      "serve defaults to --engine flat (the shards share one compiled\n"
      "plane; reload-updates requires it).\n";
  std::exit(error.empty() ? 0 : 2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv, int from) {
  std::map<std::string, std::string> flags;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("unexpected argument: " + key);
    key = key.substr(2);
    if (key == "paper" || key == "resume" || key == "checkpoint-delta") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      usage("missing value for --" + key);
    }
  }
  return flags;
}

/// Strictly parsed non-negative integer flag; anything else (garbage,
/// negative, trailing junk) is a usage error rather than a silent 0.
std::uint64_t u64_flag(const std::map<std::string, std::string>& flags,
                       const std::string& key, std::uint64_t fallback) {
  if (!flags.count(key)) return fallback;
  std::uint64_t value = 0;
  if (!util::parse_u64(flags.at(key), value)) {
    usage("--" + key + " expects a non-negative integer, got: '" +
          flags.at(key) + "'");
  }
  return value;
}

std::size_t threads_from(const std::map<std::string, std::string>& flags) {
  return static_cast<std::size_t>(u64_flag(flags, "threads", 1));
}

classify::Engine engine_from(const std::map<std::string, std::string>& flags) {
  if (!flags.count("engine")) return classify::Engine::kTrie;
  const auto engine = classify::parse_engine(flags.at("engine"));
  if (!engine) usage("unknown engine: " + flags.at("engine"));
  return *engine;
}

classify::SimdKernel simd_from(const std::map<std::string, std::string>& flags) {
  if (!flags.count("simd")) return classify::SimdKernel::kAuto;
  const auto kernel = classify::parse_simd_kernel(flags.at("simd"));
  if (!kernel) usage("unknown simd kernel: " + flags.at("simd"));
  if (!classify::simd_kernel_usable(*kernel)) {
    usage("simd kernel not usable on this host: " + flags.at("simd"));
  }
  return *kernel;
}

util::ErrorPolicy policy_from(const std::map<std::string, std::string>& flags) {
  if (!flags.count("on-error")) return util::ErrorPolicy::kStrict;
  const auto& name = flags.at("on-error");
  if (name == "strict") return util::ErrorPolicy::kStrict;
  if (name == "skip") return util::ErrorPolicy::kSkip;
  usage("--on-error expects 'strict' or 'skip', got: '" + name + "'");
}

inference::Method method_from(const std::string& name) {
  if (name == "naive") return inference::Method::kNaive;
  if (name == "cc") return inference::Method::kCustomerCone;
  if (name == "cc+org") return inference::Method::kCustomerConeOrg;
  if (name == "full") return inference::Method::kFullCone;
  if (name == "full+org") return inference::Method::kFullConeOrg;
  usage("unknown method: " + name);
}

/// One line per ingested source, printed in skip mode (or whenever
/// records were actually dropped).
void print_ingest(const std::string& source, const util::IngestStats& stats) {
  std::cout << "ingest: " << source << ": " << stats.summary() << "\n";
}

/// Ingest accounting for every source touched by a command, in ingest
/// order, for the --stats-json report.
using SourceStats = std::vector<std::pair<std::string, util::IngestStats>>;

/// Escapes a path for embedding in a JSON string literal.
std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

/// Opens an output file, failing loudly instead of silently writing to a
/// bad stream.
std::ofstream open_output(const std::string& path,
                          std::ios::openmode mode = std::ios::out) {
  std::ofstream out(path, mode);
  if (!out) throw std::runtime_error("cannot open output file: " + path);
  return out;
}

/// Flush-and-verify before declaring an artifact written.
void finish_output(std::ofstream& out, const std::string& path) {
  out.flush();
  if (!out) throw std::runtime_error("write failure on output file: " + path);
}

/// Writes the --stats-json document: every ingested source's stats plus
/// (detect) the detector health and (report) the streaming-report
/// summary.
void write_stats_json(const std::string& path, const SourceStats& sources,
                      const classify::DetectorHealth* health,
                      const analysis::ReportResult* report = nullptr) {
  auto out = open_output(path);
  out << "{\"sources\":[";
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"path\":\"" << json_escape(sources[i].first)
        << "\",\"stats\":" << util::to_json(sources[i].second) << '}';
  }
  out << ']';
  if (health != nullptr) out << ",\"detector\":" << classify::to_json(*health);
  if (report != nullptr) {
    out << ",\"report\":{\"flows\":" << report->flows
        << ",\"members\":" << report->member_counts.size()
        << ",\"incidents\":" << report->incidents.size()
        << ",\"ntp_trigger_packets\":" << report->ntp.trigger_packets
        << ",\"evictions\":" << report->evictions << '}';
  }
  out << "}\n";
  finish_output(out, path);
}

/// The routing-side inputs for classify/report.
struct RoutingInputs {
  bgp::RoutingTable table;
  std::optional<data::WhoisRegistry> whois;
};

RoutingInputs load_routing(const std::map<std::string, std::string>& flags,
                           util::ErrorPolicy policy, SourceStats& sources) {
  if (!flags.count("mrt")) usage("--mrt is required");

  RoutingInputs inputs;
  bgp::RoutingTableBuilder builder;
  for (const auto part : util::split(flags.at("mrt"), ',')) {
    std::ifstream in{std::string(part)};
    if (!in) usage("cannot open MRT file: " + std::string(part));
    util::IngestStats stats;
    builder.ingest(bgp::read_mrt(in, policy, &stats));
    if (!stats.clean()) print_ingest(std::string(part), stats);
    sources.emplace_back(std::string(part), stats);
  }
  inputs.table = builder.build();

  if (flags.count("rpsl")) {
    std::ifstream rin(flags.at("rpsl"));
    if (!rin) usage("cannot open RPSL file: " + flags.at("rpsl"));
    util::IngestStats stats;
    inputs.whois =
        data::registry_from_rpsl(data::parse_rpsl(rin, policy, &stats));
    if (!stats.clean()) print_ingest(flags.at("rpsl"), stats);
    sources.emplace_back(flags.at("rpsl"), stats);
  }
  return inputs;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  if (!flags.count("out")) usage("--out is required");
  const std::string dir = flags.at("out");
  std::filesystem::create_directories(dir);

  scenario::ScenarioParams params = scenario::ScenarioParams::small();
  std::string scale = flags.count("paper") ? "ixp" : "small";
  if (flags.count("scale")) scale = flags.at("scale");
  if (scale == "ixp" || scale == "paper") {
    params = scenario::ScenarioParams::paper();
  } else if (scale == "internet") {
    params = scenario::ScenarioParams::internet();
  } else if (scale != "small") {
    usage("unknown scale: " + scale);
  }
  if (flags.count("scale-factor")) {
    const std::uint64_t f = u64_flag(flags, "scale-factor", 1);
    if (f == 0) usage("--scale-factor must be positive");
    auto& t = params.topology;
    t.num_tier1 = std::max<std::size_t>(1, t.num_tier1 / f);
    t.num_transit = t.num_transit / f;
    t.num_isp = t.num_isp / f;
    t.num_hosting = t.num_hosting / f;
    t.num_content = t.num_content / f;
    t.num_other = t.num_other / f;
    params.ixp.member_count =
        std::max<std::size_t>(1, params.ixp.member_count / f);
  }
  params.seed = u64_flag(flags, "seed", params.seed);
  if (flags.count("threads")) params.threads = threads_from(flags);
  params.engine = engine_from(flags);
  params.simd = simd_from(flags);
  const auto world = scenario::build_scenario(params);

  {
    auto out = open_output(dir + "/topology.txt");
    topo::write_topology(out, world->topology());
    finish_output(out, dir + "/topology.txt");
  }
  {
    auto out = open_output(dir + "/ixp.trace", std::ios::out | std::ios::binary);
    net::write_trace(out, world->trace());
    finish_output(out, dir + "/ixp.trace");
  }
  {
    // Streamed chunk-at-a-time (never holds internet-scale route state)
    // and fanned over the scenario's pool.
    const bgp::Simulator sim(world->topology());
    const auto plan =
        bgp::make_announcement_plan(world->topology(), params.plan,
                                    params.seed ^ 0xb1a);
    std::vector<bgp::CollectorSpec> specs(1);
    specs[0].name = "ixp-route-server";
    specs[0].feeders = world->ixp().route_server_feeders();
    specs[0].full_feed = false;
    auto out = open_output(dir + "/route-server.mrt");
    bgp::propagate_collect(
        sim, plan, specs, world->pool(),
        [&out](std::size_t, const bgp::MrtRecord& r) {
          std::visit(
              [&out](const auto& rec) { out << bgp::to_mrt_line(rec) << '\n'; },
              r);
        });
    finish_output(out, dir + "/route-server.mrt");
  }
  {
    auto out = open_output(dir + "/registry.rpsl");
    out << data::registry_to_rpsl(world->whois());
    finish_output(out, dir + "/registry.rpsl");
  }
  std::cout << "wrote topology.txt, ixp.trace, route-server.mrt, registry.rpsl"
            << " to " << dir << "\n"
            << "  " << world->topology().as_count() << " ASes, "
            << world->ixp().member_count() << " members, "
            << world->trace().flows.size() << " sampled flows\n";
  return 0;
}

/// First pass over the mapped trace: the distinct injecting members
/// (needed to build valid spaces) without materializing the flows.
/// A strict-mode throw mid-trace is deliberately swallowed here (after
/// harvesting the partial batch): the members of the clean prefix are
/// exactly the members the main ingest loop will see before it aborts
/// at the same damage, and that loop owns the error reporting — so
/// detect can still emit its health line and stats for the records that
/// were delivered. Header validation stays loud (reader construction is
/// outside the catch): an unusable trace aborts everything.
std::vector<net::Asn> scan_members(const net::MappedTrace& trace,
                                   util::ErrorPolicy policy) {
  net::MappedTraceReader reader(trace, policy);
  net::FlowBatch batch;
  std::set<net::Asn> members;
  try {
    while (reader.next_batch(batch, kChunkFlows) > 0) {
      for (const net::Asn m : batch.member_in()) members.insert(m);
      batch.clear();
      reader.drop_consumed();
    }
  } catch (const std::exception&) {
    for (const net::Asn m : batch.member_in()) members.insert(m);
  }
  return {members.begin(), members.end()};
}

/// Everything classify/report/detect share: the routing view (which the
/// classifier points into — keep them together), the injecting members,
/// the classifier with the RPSL whitelist applied and, under --engine
/// flat, the compiled plane.
struct ClassifyContext {
  RoutingInputs routing;
  std::vector<net::Asn> members;
  inference::Method method = inference::Method::kFullConeOrg;
  classify::Engine engine = classify::Engine::kTrie;
  std::unique_ptr<classify::Classifier> classifier;
  std::optional<classify::FlatClassifier> flat;
};

void build_context(const std::map<std::string, std::string>& flags,
                   util::ErrorPolicy policy, const net::MappedTrace& trace,
                   util::ThreadPool& pool, SourceStats& sources,
                   ClassifyContext& ctx) {
  ctx.routing = load_routing(flags, policy, sources);
  ctx.method = method_from(
      flags.count("method") ? flags.at("method") : std::string("full+org"));
  ctx.engine = engine_from(flags);
  ctx.members = scan_members(trace, policy);

  inference::ValidSpaceFactory factory(ctx.routing.table, asgraph::OrgMap{});
  std::vector<inference::ValidSpace> spaces;
  spaces.push_back(factory.build(ctx.method, ctx.members, pool));
  ctx.classifier = std::make_unique<classify::Classifier>(ctx.routing.table,
                                                          std::move(spaces));

  // RPSL whitelist (Sec 4.4) applied up front.
  if (ctx.routing.whois) {
    auto& space = ctx.classifier->mutable_space(0);
    for (const net::Asn m : ctx.members) {
      std::vector<net::Prefix> extra =
          ctx.routing.whois->provider_assigned_of(m);
      if (!extra.empty()) {
        space.extend(m, trie::IntervalSet::from_prefixes(extra));
      }
    }
  }

  // The flat plane is compiled after the RPSL whitelist so the
  // extend()ed spaces are baked in. With --plane-cache the compile is
  // replaced by a digest-validated mmap load whenever a matching
  // snapshot exists (a stale or damaged entry recompiles under skip,
  // throws under strict).
  if (flags.count("plane-cache") && ctx.engine != classify::Engine::kFlat) {
    usage("--plane-cache requires --engine flat");
  }
  if (ctx.engine == classify::Engine::kFlat) {
    if (flags.count("plane-cache")) {
      state::PlaneCache cache(flags.at("plane-cache"));
      util::IngestStats cache_stats;
      auto loaded = cache.load_or_compile(*ctx.classifier, &pool, policy,
                                          &cache_stats);
      std::cout << "plane-cache: "
                << (loaded.hit ? "hit" : "miss (compiled and stored)") << " "
                << cache.entry_path(state::classifier_digest(*ctx.classifier))
                << "\n";
      if (!cache_stats.clean()) {
        print_ingest(flags.at("plane-cache"), cache_stats);
      }
      sources.emplace_back(flags.at("plane-cache"), cache_stats);
      ctx.flat.emplace(std::move(loaded.plane));
    } else {
      ctx.flat.emplace(classify::FlatClassifier::compile(*ctx.classifier, pool));
    }
  }
}

int cmd_classify(const std::map<std::string, std::string>& flags, bool report) {
  if (!flags.count("trace")) usage("--trace is required");
  const auto policy = policy_from(flags);
  const std::string trace_path = flags.at("trace");
  const net::MappedTrace trace(trace_path);

  util::ThreadPool pool(threads_from(flags));
  const classify::SimdKernel simd = simd_from(flags);
  SourceStats sources;
  ClassifyContext ctx;
  build_context(flags, policy, trace, pool, sources, ctx);

  std::optional<std::ofstream> labels_out;
  if (flags.count("labels")) {
    labels_out.emplace(open_output(flags.at("labels")));
    *labels_out << "ts,src,dst,member,class\n";
  }

  // Second pass over the mapping: classify and aggregate batch-at-a-time
  // (SoA lanes and the label buffer are reused across batches). `report`
  // feeds the same batches to the bounded-memory streaming builders
  // instead of materializing flows: every analysis is incremental, so
  // peak RSS is independent of trace length.
  util::IngestStats trace_stats;
  net::MappedTraceReader reader(trace, policy, &trace_stats);
  classify::AggregateBuilder builder(ctx.classifier->space_count());
  std::optional<analysis::StreamingReport> streaming;
  if (report) {
    analysis::ReportOptions opts;
    opts.limits = analysis::ReportLimits::production();
    streaming.emplace(ctx.classifier->space_count(), opts);
  }
  net::FlowBatch batch;
  std::vector<classify::Label> labels;
  std::uint64_t flow_count = 0;
  while (reader.next_batch(batch, kChunkFlows) > 0) {
    labels.resize(batch.size());
    if (ctx.flat) {
      ctx.flat->classify_batch(batch, labels, pool, simd);
    } else {
      ctx.classifier->classify_batch(batch, labels, pool);
    }
    if (streaming) {
      streaming->add(batch, labels);
    } else {
      builder.add(batch, labels);
    }
    flow_count += batch.size();
    reader.drop_consumed();
    if (labels_out) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto f = batch.record(i);
        *labels_out << f.ts << ',' << f.src.str() << ',' << f.dst.str() << ','
                    << f.member_in << ','
                    << classify::class_name(
                           classify::Classifier::unpack(labels[i], 0))
                    << '\n';
      }
    }
  }
  if (!trace_stats.clean()) print_ingest(trace_path, trace_stats);
  sources.emplace_back(trace_path, trace_stats);

  // Totals (report: from the streaming pass's own aggregate).
  std::optional<analysis::ReportResult> result;
  if (streaming) result = streaming->finish();
  const auto agg = result ? result->aggregate : builder.build();
  std::cout << "classified " << flow_count << " flows from "
            << ctx.members.size() << " members under "
            << inference::method_name(ctx.method) << " (routing view: "
            << ctx.routing.table.prefixes().size() << " prefixes, "
            << classify::engine_name(ctx.engine) << " engine)\n\n";
  static const char* kClassNames[] = {"Bogon", "Unrouted", "Invalid", "Valid"};
  for (int c = 0; c < classify::kNumClasses; ++c) {
    const auto& cell = agg.totals[0][c];
    std::cout << "  " << util::pad_right(kClassNames[c], 9)
              << util::pad_left(std::to_string(cell.members) + " members", 14)
              << util::pad_left(util::human_count(cell.packets) + " pkts", 15)
              << util::pad_left(util::percent(cell.packets / agg.total_packets),
                                10)
              << util::pad_left(util::human_bytes(cell.bytes), 12) << "\n";
  }

  if (labels_out) {
    finish_output(*labels_out, flags.at("labels"));
    std::cout << "\nper-flow labels written to " << flags.at("labels") << "\n";
  }

  if (result) {
    // All analyses come out of the one streaming pass (no IXP metadata
    // available from files: member types default to Other).
    std::cout << "\n" << analysis::format_report(*result);
  }

  if (flags.count("stats-json")) {
    write_stats_json(flags.at("stats-json"), sources, nullptr,
                     result ? &*result : nullptr);
    std::cout << "\ningest stats written to " << flags.at("stats-json") << "\n";
  }
  return 0;
}

int cmd_detect(const std::map<std::string, std::string>& flags) {
  if (!flags.count("trace")) usage("--trace is required");
  const auto policy = policy_from(flags);
  const std::string trace_path = flags.at("trace");
  const net::MappedTrace trace(trace_path);

  util::ThreadPool pool(threads_from(flags));
  SourceStats sources;
  ClassifyContext ctx;
  build_context(flags, policy, trace, pool, sources, ctx);

  classify::StreamingParams params;
  params.window_seconds =
      static_cast<std::uint32_t>(u64_flag(flags, "window", params.window_seconds));
  params.reorder_skew_seconds =
      static_cast<std::uint32_t>(u64_flag(flags, "skew", 0));
  params.simd = simd_from(flags);
  classify::StreamingDetector detector =
      ctx.flat ? classify::StreamingDetector(*ctx.flat, 0, params)
               : classify::StreamingDetector(*ctx.classifier, 0, params);

  const std::string ckpt =
      flags.count("checkpoint") ? flags.at("checkpoint") : std::string();
  const std::uint64_t ckpt_every = u64_flag(flags, "checkpoint-every", 0);
  if (flags.count("checkpoint-every") && ckpt_every == 0) {
    usage("--checkpoint-every must be > 0, got: '" +
          flags.at("checkpoint-every") + "'");
  }
  const bool resume = flags.count("resume") != 0;
  const bool delta_mode = flags.count("checkpoint-delta") != 0;
  if (ckpt.empty() && (ckpt_every != 0 || resume || delta_mode)) {
    usage("--checkpoint-every/--checkpoint-delta/--resume require --checkpoint");
  }

  // --updates: a route-churn feed patched into the compiled plane as the
  // trace plays. Loaded up front (update streams are small next to
  // traces); stably sorted by timestamp so the firing rule below is a
  // pure function of (updates, flow timestamps).
  std::vector<bgp::UpdateMessage> updates;
  if (flags.count("updates")) {
    if (!ctx.flat) usage("--updates requires --engine flat");
    std::ifstream uin(flags.at("updates"));
    if (!uin) usage("cannot open updates file: " + flags.at("updates"));
    util::IngestStats ustats;
    std::size_t rib_lines = 0;
    for (auto& rec : bgp::read_mrt(uin, policy, &ustats)) {
      if (auto* u = std::get_if<bgp::UpdateMessage>(&rec)) {
        updates.push_back(*u);
      } else {
        ++rib_lines;  // TABLE_DUMP lines carry no churn; ignored
      }
    }
    std::stable_sort(updates.begin(), updates.end(),
                     [](const bgp::UpdateMessage& a, const bgp::UpdateMessage& b) {
                       return a.timestamp < b.timestamp;
                     });
    std::cout << "updates: " << updates.size() << " route updates from "
              << flags.at("updates");
    if (rib_lines != 0) std::cout << " (" << rib_lines << " rib lines ignored)";
    std::cout << "\n";
    if (!ustats.clean()) print_ingest(flags.at("updates"), ustats);
    sources.emplace_back(flags.at("updates"), ustats);
  }
  classify::FlatClassifier::UpdateApplyOptions uopts;
  uopts.pool = &pool;
  std::uint64_t ucursor = 0;  ///< updates already applied to the plane

  std::optional<state::DeltaChain> chain;
  if (!ckpt.empty() && delta_mode) chain.emplace(ckpt);

  // Resuming restores the detector then fast-forwards the trace past
  // the flows the checkpoint already processed. Skip-mode survivor
  // selection is a pure function of the input bytes, so the records
  // skipped here are exactly the records the checkpointed run ingested.
  std::uint64_t skip_records = 0;
  if (resume) {
    classify::DetectorCheckpointExtra extra;
    bool restored = false;
    if (chain) {
      util::IngestStats ckpt_stats;
      const state::DeltaResume res = chain->resume(detector, policy, &ckpt_stats);
      restored = res.restored;
      extra = res.extra;
      if (restored) {
        std::cout << "resume: restored detector state ("
                  << detector.processed() << " flows processed, "
                  << res.deltas_applied << " delta links) from " << ckpt
                  << "\n";
      } else {
        std::cout << "resume: no usable checkpoint chain at " << ckpt
                  << ", starting fresh\n";
      }
      if (res.deltas_dropped != 0) {
        std::cout << "resume: dropped " << res.deltas_dropped
                  << " damaged or stale delta links\n";
      }
      if (!ckpt_stats.clean()) print_ingest(ckpt, ckpt_stats);
      sources.emplace_back(ckpt, ckpt_stats);
    } else if (std::filesystem::exists(ckpt)) {
      util::IngestStats ckpt_stats;
      restored = detector.restore(ckpt, policy, &ckpt_stats, &extra);
      if (restored) {
        std::cout << "resume: restored detector state ("
                  << detector.processed() << " flows processed) from " << ckpt
                  << "\n";
      } else {
        std::cout << "resume: checkpoint unusable, starting fresh\n";
      }
      if (!ckpt_stats.clean()) print_ingest(ckpt, ckpt_stats);
      sources.emplace_back(ckpt, ckpt_stats);
    } else {
      std::cout << "resume: no checkpoint at " << ckpt
                << ", starting fresh\n";
    }
    if (restored) {
      skip_records = detector.processed();
      // Replay the plane to the cut: the checkpoint's update cursor says
      // how many updates the interrupted run had applied. Presence
      // semantics make one batched replay equivalent to the original
      // one-at-a-time application.
      if (extra.updates_applied != 0) {
        if (extra.updates_applied > updates.size()) {
          throw std::runtime_error(
              "checkpoint is ahead of the --updates stream (cursor " +
              std::to_string(extra.updates_applied) + " of " +
              std::to_string(updates.size()) + " updates)");
        }
        ctx.flat->apply_updates(
            std::span<const bgp::UpdateMessage>(updates).first(
                extra.updates_applied),
            uopts);
        ucursor = extra.updates_applied;
        std::cout << "resume: replayed " << ucursor
                  << " route updates into the plane\n";
      }
    }
  }

  std::uint64_t alert_count = 0;
  const auto on_alert = [&alert_count](const classify::SpoofingAlert& a) {
    ++alert_count;
    std::cout << service::format_alert(a) << "\n";
  };

  util::IngestStats trace_stats;
  net::MappedTraceReader reader(trace, policy, &trace_stats);
  net::FlowBatch batch;
  std::uint64_t last_saved = detector.processed();
  // Applies every not-yet-applied update with timestamp <= ts (one
  // apply_updates call per trigger point: the firing points, and hence
  // the plane every flow sees, are a pure function of the update and
  // flow timestamp sequences — identical for resumed and uninterrupted
  // runs).
  const auto fire_updates_through = [&](std::uint32_t ts) {
    const std::uint64_t begin = ucursor;
    while (ucursor < updates.size() && updates[ucursor].timestamp <= ts) {
      ++ucursor;
    }
    if (ucursor != begin) {
      ctx.flat->apply_updates(
          std::span<const bgp::UpdateMessage>(updates).subspan(
              begin, ucursor - begin),
          uopts);
    }
  };
  const auto save_checkpoint = [&] {
    const classify::DetectorCheckpointExtra extra{
        ucursor, ctx.flat ? ctx.flat->epoch() : 0};
    if (chain) {
      chain->append(detector, extra);
    } else {
      detector.save(ckpt, extra);
    }
  };
  // An ingest abort (--on-error strict hitting damage) must not swallow
  // the partial detector state: catch it, emit the health line, the
  // checkpoint and the --stats-json report, then rethrow so the exit
  // code and error: line are unchanged.
  bool aborted = false;
  std::string abort_reason;
  try {
    while (reader.next_batch(batch, kChunkFlows) > 0) {
      std::size_t start = 0;
      if (skip_records > 0) {
        start = static_cast<std::size_t>(
            std::min<std::uint64_t>(skip_records, batch.size()));
        skip_records -= start;
      }
      if (start == 0 && ucursor >= updates.size()) {
        detector.ingest_batch(batch, on_alert);
      } else {
        // Per-record path: live route churn interleaves with the flows
        // (and a resume fast-forward may start mid-batch).
        for (std::size_t i = start; i < batch.size(); ++i) {
          const net::FlowRecord rec = batch.record(i);
          if (ucursor < updates.size()) fire_updates_through(rec.ts);
          detector.ingest(rec, on_alert);
        }
      }
      batch.clear();  // records not yet ingested stay visible to the catch
      reader.drop_consumed();
      if (!ckpt.empty() && ckpt_every != 0 &&
          detector.processed() - last_saved >= ckpt_every) {
        save_checkpoint();
        last_saved = detector.processed();
      }
    }
    detector.flush(on_alert);
  } catch (const std::exception& e) {
    // A strict-mode throw mid-batch leaves the records decoded before
    // the damage in the batch; ingest them so the reported state covers
    // everything the reader actually delivered.
    std::size_t start = 0;
    if (skip_records > 0) {
      start = static_cast<std::size_t>(
          std::min<std::uint64_t>(skip_records, batch.size()));
      skip_records -= start;
    }
    for (std::size_t i = start; i < batch.size(); ++i) {
      const net::FlowRecord rec = batch.record(i);
      if (ucursor < updates.size()) fire_updates_through(rec.ts);
      detector.ingest(rec, on_alert);
    }
    aborted = true;
    abort_reason = e.what();
  }
  // The end-of-stream (or last-consistent-state) checkpoint.
  if (!ckpt.empty()) save_checkpoint();
  if (!trace_stats.clean()) print_ingest(trace_path, trace_stats);
  sources.emplace_back(trace_path, trace_stats);

  // The one-shot run is the single-shard case of the service merge: a
  // one-element merge_health is the identity, and routing the health
  // line and --stats-json through the same service::merge code path
  // keeps the schema bit-identical between `detect` and `serve`.
  const classify::DetectorHealth shard_health = detector.health();
  const classify::DetectorHealth health = service::merge_health(
      std::span<const classify::DetectorHealth>(&shard_health, 1));
  std::cout << "detect: " << detector.processed() << " flows from "
            << ctx.members.size() << " members, " << alert_count
            << " alerts (" << classify::engine_name(ctx.engine)
            << " engine, window " << params.window_seconds << "s, skew "
            << params.reorder_skew_seconds << "s)\n"
            << service::format_health(health) << "\n";

  if (flags.count("stats-json")) {
    write_stats_json(flags.at("stats-json"), sources, &health);
    std::cout << "stats written to " << flags.at("stats-json") << "\n";
  }
  if (aborted) throw std::runtime_error(abort_reason);
  return 0;
}

int cmd_serve(const std::map<std::string, std::string>& flags_in) {
  // serve defaults to the flat engine: the shared compiled plane is the
  // point of the resident service (and reload-updates requires it).
  // --engine trie stays available as the oracle configuration.
  auto flags = flags_in;
  if (!flags.count("engine")) flags["engine"] = "flat";

  if (!flags.count("trace")) {
    usage("--trace is required (it seeds the member universe the valid "
          "spaces are built for)");
  }
  if (!flags.count("socket")) usage("--socket is required");
  const std::uint64_t shards = u64_flag(flags, "shards", 1);
  if (flags.count("shards") && (shards == 0 || shards > 4096)) {
    usage("--shards must be between 1 and 4096, got: '" + flags.at("shards") +
          "'");
  }
  const auto policy = policy_from(flags);
  const net::MappedTrace trace(flags.at("trace"));

  util::ThreadPool pool(threads_from(flags));
  SourceStats sources;
  ClassifyContext ctx;
  build_context(flags, policy, trace, pool, sources, ctx);

  service::ServerConfig scfg;
  scfg.shards = static_cast<std::size_t>(shards);
  scfg.params.window_seconds = static_cast<std::uint32_t>(
      u64_flag(flags, "window", scfg.params.window_seconds));
  scfg.params.reorder_skew_seconds =
      static_cast<std::uint32_t>(u64_flag(flags, "skew", 0));
  scfg.params.simd = simd_from(flags);
  scfg.policy = policy;
  scfg.pool = &pool;
  if (flags.count("checkpoint-dir")) {
    scfg.checkpoint_dir = flags.at("checkpoint-dir");
  }
  scfg.checkpoint_every = u64_flag(flags, "checkpoint-every", 0);
  if (flags.count("checkpoint-every") && scfg.checkpoint_every == 0) {
    usage("--checkpoint-every must be > 0, got: '" +
          flags.at("checkpoint-every") + "'");
  }
  scfg.resume = flags.count("resume") != 0;
  if (scfg.checkpoint_dir.empty() &&
      (scfg.checkpoint_every != 0 || scfg.resume)) {
    usage("--checkpoint-every/--resume require --checkpoint-dir");
  }

  std::optional<service::Server> server;
  if (ctx.flat) {
    // The hub takes the compiled plane by shared_ptr so reload-updates
    // can patch it in place and republish to every shard.
    server.emplace(
        std::make_shared<classify::FlatClassifier>(std::move(*ctx.flat)),
        scfg);
  } else {
    server.emplace(*ctx.classifier, scfg);
  }

  const auto info = server->start();
  if (scfg.resume) {
    if (info.shards_restored != 0) {
      std::cout << "resume: restored " << info.shards_restored
                << " shard chains (" << info.flows << " flows processed) from "
                << scfg.checkpoint_dir << "\n";
    } else {
      std::cout << "resume: no usable shard chains in " << scfg.checkpoint_dir
                << ", starting fresh\n";
    }
  }
  std::cout << "serve: listening on " << flags.at("socket") << " (" << shards
            << " shard" << (shards == 1 ? "" : "s") << ", "
            << classify::engine_name(ctx.engine) << " engine, "
            << ctx.members.size() << " members, window "
            << scfg.params.window_seconds << "s, skew "
            << scfg.params.reorder_skew_seconds << "s)\n";
  std::cout.flush();  // daemonized callers wait for this line
  return service::run_control_loop(*server, flags.at("socket"), std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "classify") return cmd_classify(flags, /*report=*/false);
    if (cmd == "report") return cmd_classify(flags, /*report=*/true);
    if (cmd == "detect") return cmd_detect(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "help" || cmd == "--help") usage();
    usage("unknown command: " + cmd);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
