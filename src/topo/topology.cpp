#include "topo/topology.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace spoofscope::topo {

Topology::Topology(std::vector<AsInfo> ases, std::vector<AsLink> links)
    : ases_(std::move(ases)), links_(std::move(links)) {
  index_.reserve(ases_.size());
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    const Asn asn = ases_[i].asn;
    if (asn == net::kNoAsn) throw std::invalid_argument("Topology: ASN 0 is reserved");
    if (!index_.emplace(asn, i).second) {
      throw std::invalid_argument("Topology: duplicate ASN " + std::to_string(asn));
    }
    orgs_[ases_[i].org].push_back(asn);
  }

  neighbors_.resize(ases_.size());
  for (const auto& l : links_) {
    const auto fi = index_.find(l.from);
    const auto ti = index_.find(l.to);
    if (fi == index_.end() || ti == index_.end()) {
      throw std::invalid_argument("Topology: link references unknown AS");
    }
    switch (l.type) {
      case RelType::kCustomerToProvider:
        neighbors_[fi->second].providers.push_back(l.to);
        neighbors_[ti->second].customers.push_back(l.from);
        break;
      case RelType::kPeerToPeer:
        neighbors_[fi->second].peers.push_back(l.to);
        neighbors_[ti->second].peers.push_back(l.from);
        break;
      case RelType::kSibling:
        neighbors_[fi->second].siblings.push_back(l.to);
        neighbors_[ti->second].siblings.push_back(l.from);
        break;
    }
  }

  for (const auto& info : ases_) {
    for (const auto& p : info.prefixes) alloc_.emplace_back(p, info.asn);
  }
  std::sort(alloc_.begin(), alloc_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

const AsInfo* Topology::find(Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &ases_[it->second];
}

std::optional<std::size_t> Topology::index_of(Asn asn) const {
  const auto it = index_.find(asn);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

namespace {
const std::vector<net::Asn> kEmpty;
}

std::span<const Asn> Topology::providers_of(Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? kEmpty : neighbors_[it->second].providers;
}

std::span<const Asn> Topology::customers_of(Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? kEmpty : neighbors_[it->second].customers;
}

std::span<const Asn> Topology::peers_of(Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? kEmpty : neighbors_[it->second].peers;
}

std::span<const Asn> Topology::siblings_of(Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? kEmpty : neighbors_[it->second].siblings;
}

std::span<const Asn> Topology::org_members(OrgId org) const {
  const auto it = orgs_.find(org);
  return it == orgs_.end() ? kEmpty : it->second;
}

Asn Topology::allocation_owner(const net::Prefix& p) const {
  // Find the last allocation starting at or before p.
  auto it = std::upper_bound(
      alloc_.begin(), alloc_.end(), p,
      [](const net::Prefix& x, const auto& entry) { return x < entry.first; });
  while (it != alloc_.begin()) {
    --it;
    if (it->first.contains(p)) return it->second;
    // Allocations are disjoint, so once we are before any possible cover
    // (first address of candidate below p's first and not covering) we can
    // stop unless an earlier shorter prefix might still cover; walk while
    // candidate.first() block could contain p.
    if (it->first.last() < p.first()) break;
  }
  return net::kNoAsn;
}

double Topology::allocated_slash24() const {
  double total = 0.0;
  for (const auto& [p, asn] : alloc_) total += p.slash24_equivalents();
  return total;
}

std::vector<std::string> Topology::validate() const {
  std::vector<std::string> problems;

  // Allocations must be disjoint.
  for (std::size_t i = 1; i < alloc_.size(); ++i) {
    if (alloc_[i - 1].first.overlaps(alloc_[i].first)) {
      problems.push_back("overlapping allocations: " + alloc_[i - 1].first.str() +
                         " (AS" + std::to_string(alloc_[i - 1].second) + ") and " +
                         alloc_[i].first.str() + " (AS" +
                         std::to_string(alloc_[i].second) + ")");
    }
  }

  // No duplicate links (same unordered pair with same type).
  std::set<std::tuple<Asn, Asn, int>> seen;
  for (const auto& l : links_) {
    const Asn a = std::min(l.from, l.to);
    const Asn b = std::max(l.from, l.to);
    if (l.from == l.to) problems.push_back("self-link at AS" + std::to_string(l.from));
    if (!seen.emplace(a, b, static_cast<int>(l.type)).second) {
      problems.push_back("duplicate link AS" + std::to_string(a) + "-AS" +
                         std::to_string(b));
    }
  }

  // Siblings must share an organization.
  for (const auto& l : links_) {
    if (l.type != RelType::kSibling) continue;
    const AsInfo* fa = find(l.from);
    const AsInfo* ta = find(l.to);
    if (fa && ta && fa->org != ta->org) {
      problems.push_back("sibling link between different orgs: AS" +
                         std::to_string(l.from) + " and AS" + std::to_string(l.to));
    }
  }

  // Customer-provider graph must be acyclic (no provider loops).
  // Kahn's algorithm over c2p edges.
  std::vector<int> outdeg(ases_.size(), 0);  // number of providers
  std::vector<std::vector<std::size_t>> customers_idx(ases_.size());
  for (const auto& l : links_) {
    if (l.type != RelType::kCustomerToProvider) continue;
    const std::size_t c = index_.at(l.from);
    const std::size_t p = index_.at(l.to);
    ++outdeg[c];
    customers_idx[p].push_back(c);
  }
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    if (outdeg[i] == 0) queue.push_back(i);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const std::size_t p = queue.back();
    queue.pop_back();
    ++processed;
    for (const std::size_t c : customers_idx[p]) {
      if (--outdeg[c] == 0) queue.push_back(c);
    }
  }
  if (processed != ases_.size()) {
    problems.push_back("customer-provider hierarchy contains a cycle");
  }

  return problems;
}

}  // namespace spoofscope::topo
