// Fixed-size thread pool with a chunk-based parallel_for — the execution
// layer behind parallel classification and valid-space construction.
// Deliberately work-stealing-free: ranges are split into contiguous
// chunks whose boundaries depend only on (range, thread count), so every
// parallel caller can stay deterministic by writing results to
// pre-assigned indices and merging partials in chunk order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spoofscope::util {

/// A contiguous index subrange [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  friend bool operator==(const IndexRange&, const IndexRange&) = default;
};

/// Fixed-size pool of worker threads.
///
/// `threads == 0` resolves to the hardware concurrency; `threads == 1`
/// spawns no workers at all — every task runs inline on the calling
/// thread, giving an exact sequential fallback path (same stack, same
/// order, no synchronization).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);

  /// Finishes all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (>= 1; 1 means inline execution).
  std::size_t thread_count() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Queues a fire-and-forget task (runs inline when the pool has no
  /// workers). Exceptions escaping a queued task terminate; prefer
  /// parallel_for, which propagates them.
  void enqueue(std::function<void()> task);

  /// Splits [begin, end) into at most thread_count() contiguous chunks
  /// and invokes `body(chunk_begin, chunk_end)` for each across the
  /// pool. Blocks until every chunk finished. If any chunk throws, the
  /// first exception (in chunk order) is rethrown on the caller after
  /// all chunks completed — never a deadlock, never a partial wait.
  /// Not reentrant: a chunk body must not call parallel_for on the same
  /// pool (all workers could end up blocked waiting on queued chunks).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// 0 -> hardware concurrency (at least 1), anything else unchanged.
  static std::size_t resolve(std::size_t requested);

  /// Deterministic chunking: splits [begin, end) into min(parts, size)
  /// contiguous ranges whose lengths differ by at most one (earlier
  /// chunks take the remainder). Empty range -> no chunks.
  static std::vector<IndexRange> partition(std::size_t begin, std::size_t end,
                                           std::size_t parts);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace spoofscope::util
