// Fig 4: CCDF of each member's Bogon / Unrouted / Invalid share of its own
// traffic — bounded shares for Bogon/Unrouted, a near-100% tail for
// Invalid (the false-positive candidates of Sec 4.4).
#include "bench/common.hpp"

#include "analysis/member_stats.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_PerMemberCounts(benchmark::State& state) {
  const auto& w = world();
  const auto idx = scenario::Scenario::space_index(inference::Method::kFullCone);
  for (auto _ : state) {
    auto counts = analysis::per_member_counts(w.trace().flows, w.labels(), idx,
                                              w.ixp());
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_PerMemberCounts)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "Fig 4 (CCDF of per-member class shares)",
      "max Bogon share ~10%, max Unrouted ~9%; a few members near 100% "
      "Invalid");
  const auto counts = world().member_counts(inference::Method::kFullCone);

  static const analysis::TrafficClass kClasses[] = {
      analysis::TrafficClass::kBogon, analysis::TrafficClass::kUnrouted,
      analysis::TrafficClass::kInvalid};
  static const char* kNames[] = {"Bogon", "Unrouted", "Invalid"};

  std::cout << util::pad_right("class", 10)
            << util::pad_left("members>0", 11) << util::pad_left("share p50", 11)
            << util::pad_left("share p90", 11) << util::pad_left("max share", 11)
            << "\n";
  for (int c = 0; c < 3; ++c) {
    std::vector<double> shares;
    std::size_t nonzero = 0;
    for (const auto& mc : counts) {
      const double s = mc.packet_share(kClasses[c]);
      shares.push_back(s);
      nonzero += s > 0;
    }
    std::cout << util::pad_right(kNames[c], 10)
              << util::pad_left(std::to_string(nonzero), 11)
              << util::pad_left(util::percent(util::quantile(shares, 0.5)), 11)
              << util::pad_left(util::percent(util::quantile(shares, 0.9)), 11)
              << util::pad_left(util::percent(util::quantile(shares, 1.0)), 11)
              << "\n";
  }

  // The CCDF curves themselves (10 sample points each).
  for (int c = 0; c < 3; ++c) {
    const auto ccdf = analysis::class_share_ccdf(counts, kClasses[c]);
    std::cout << kNames[c] << " CCDF (x=share, y=fraction of members > x):\n  ";
    const std::size_t step = std::max<std::size_t>(1, ccdf.size() / 10);
    for (std::size_t i = 0; i < ccdf.size(); i += step) {
      std::cout << "(" << util::percent(ccdf[i].x) << ", "
                << util::fixed(ccdf[i].y, 3) << ") ";
    }
    std::cout << "\n";
  }
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
