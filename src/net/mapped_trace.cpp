#include "net/mapped_trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "net/flow_batch.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SPOOFSCOPE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace spoofscope::net {

namespace {

/// read()-style fallback: slurps the whole file through an ifstream.
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("MappedTrace: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  char chunk[1 << 16];
  for (;;) {
    in.read(chunk, sizeof(chunk));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  if (in.bad()) {
    throw std::runtime_error("MappedTrace: read failure on " + path);
  }
  return bytes;
}

}  // namespace

MappedTrace::MappedTrace(const std::string& path) {
#ifdef SPOOFSCOPE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const std::size_t size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        // mmap rejects zero-length mappings; an empty file is simply an
        // empty (fallback) buffer.
        ::close(fd);
        return;
      }
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
        ::madvise(map, size, MADV_SEQUENTIAL);
#endif
        map_ = map;
        data_ = static_cast<const std::uint8_t*>(map);
        size_ = size;
        return;
      }
    } else {
      ::close(fd);
    }
  }
#endif
  fallback_ = slurp(path);
  data_ = fallback_.data();
  size_ = fallback_.size();
}

MappedTrace MappedTrace::from_buffer(std::vector<std::uint8_t> bytes) {
  MappedTrace t;
  t.fallback_ = std::move(bytes);
  t.data_ = t.fallback_.data();
  t.size_ = t.fallback_.size();
  return t;
}

void MappedTrace::drop_pages(std::size_t begin, std::size_t end) const {
#if defined(SPOOFSCOPE_HAVE_MMAP) && defined(MADV_DONTNEED)
  if (map_ == nullptr) return;
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  // Align outward-safe: begin rounds down (re-advising an already
  // released page is free; skipping a completed boundary page is a
  // leak), end rounds down so no unconsumed byte loses its page.
  begin &= ~(page - 1);
  end = std::min(end, size_) & ~(page - 1);
  if (begin >= end) return;
  ::madvise(static_cast<std::uint8_t*>(map_) + begin, end - begin,
            MADV_DONTNEED);
#else
  (void)begin;
  (void)end;
#endif
}

void MappedTrace::release() {
#ifdef SPOOFSCOPE_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
  map_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  fallback_.clear();
}

MappedTrace::~MappedTrace() { release(); }

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      map_(other.map_),
      fallback_(std::move(other.fallback_)) {
  if (!fallback_.empty()) data_ = fallback_.data();
  other.map_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    map_ = other.map_;
    fallback_ = std::move(other.fallback_);
    if (!fallback_.empty()) data_ = fallback_.data();
    other.map_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedTraceReader::MappedTraceReader(const MappedTrace& trace,
                                     util::ErrorPolicy policy,
                                     util::IngestStats* stats)
    : policy_(policy), trace_(&trace), stats_(stats ? stats : &own_stats_) {
  const std::span<const std::uint8_t> all = trace.bytes();
  const format::Header h = format::parse_header(all, policy_, *stats_);
  if (!h.ok) {
    done_ = true;
    return;
  }
  meta_.sampling_rate = h.sampling_rate;
  meta_.window_seconds = h.window_seconds;
  meta_.seed = h.seed;
  declared_ = h.declared;
  header_ok_ = true;
  scanner_ = format::RecordScanner(h, policy_, stats_);
  rest_ = all.subspan(h.size);
}

void MappedTraceReader::finish_if_exhausted(std::size_t got, std::size_t want) {
  if (got >= want || scanner_.done()) {
    done_ = scanner_.done();
    return;
  }
  // The scanner stopped short of the request with bytes exhausted — the
  // mapping is the whole file, so this is end of input.
  const std::size_t tail = rest_.size();
  rest_ = {};
  scanner_.finish(tail);  // throws in strict mode if records are owed
  done_ = true;
}

void MappedTraceReader::drop_consumed() {
  // rest_ is the unconsumed suffix of the whole mapping (empty once the
  // stream is finished), so the consumed prefix falls out by size.
  const std::size_t consumed = trace_->bytes().size() - rest_.size();
  if (consumed > dropped_) {
    trace_->drop_pages(dropped_, consumed);
    dropped_ = consumed;
  }
}

std::optional<FlowRecord> MappedTraceReader::next() {
  if (done_) return std::nullopt;
  std::optional<FlowRecord> result;
  const auto sink = [&result](const std::uint8_t* p) {
    result = format::decode_record(p);
  };
  rest_ = rest_.subspan(scanner_.scan(rest_, 1, sink));
  finish_if_exhausted(result ? 1 : 0, 1);
  return result;
}

std::size_t MappedTraceReader::next_batch(FlowBatch& out,
                                          std::size_t max_records) {
  out.clear();
  if (done_ || max_records == 0) return 0;
  const auto sink = [&out](const std::uint8_t* p) {
    out.push_back(format::decode_record(p));
  };
  rest_ = rest_.subspan(scanner_.scan(rest_, max_records, sink));
  finish_if_exhausted(out.size(), max_records);
  return out.size();
}

}  // namespace spoofscope::net
