#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace spoofscope::util {

namespace {

std::string scaled(double v, const char* suffix_tail) {
  static constexpr std::array<const char*, 7> kSuffix = {"", "K", "M", "G", "T", "P", "E"};
  double a = std::fabs(v);
  std::size_t i = 0;
  while (a >= 1000.0 && i + 1 < kSuffix.size()) {
    a /= 1000.0;
    v /= 1000.0;
    ++i;
  }
  char buf[64];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", v, suffix_tail);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s%s", v, kSuffix[i], suffix_tail);
  }
  return buf;
}

}  // namespace

std::string human_count(double v) { return scaled(v, ""); }

std::string human_bytes(double v) { return scaled(v, "B"); }

std::string percent(double fraction) {
  const double p = fraction * 100.0;
  char buf[64];
  if (p == 0.0) {
    return "0.00%";
  }
  if (std::fabs(p) < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.1e%%", p);
  } else if (std::fabs(p) < 0.1) {
    std::snprintf(buf, sizeof(buf), "%.4f%%", p);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%%", p);
  }
  return buf;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t w) {
  return s.size() >= w ? s : std::string(w - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t w) {
  return s.size() >= w ? s : s + std::string(w - s.size(), ' ');
}

}  // namespace spoofscope::util
