#include "classify/batch_kernels.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace spoofscope::classify {

namespace {

bool cpu_has_avx2() {
#if SPOOFSCOPE_KERNEL_AVX2
  // GCC/clang resolve this to a cached cpuid probe; the kernel TU is
  // compiled with -mavx2 but only ever entered behind this check.
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

SimdKernel best_usable() {
  if (simd_kernel_usable(SimdKernel::kAvx2)) return SimdKernel::kAvx2;
  if (simd_kernel_usable(SimdKernel::kNeon)) return SimdKernel::kNeon;
  return SimdKernel::kScalar;
}

SimdKernel auto_kernel() {
  const char* env = std::getenv("SPOOFSCOPE_SIMD");
  if (env == nullptr || *env == '\0') return best_usable();
  const auto parsed = parse_simd_kernel(env);
  if (!parsed) {
    throw std::runtime_error(std::string("SPOOFSCOPE_SIMD: unknown kernel '") +
                             env + "' (want auto|scalar|avx2|neon)");
  }
  if (*parsed == SimdKernel::kAuto) return best_usable();
  if (!simd_kernel_usable(*parsed)) {
    throw std::runtime_error(std::string("SPOOFSCOPE_SIMD: kernel '") + env +
                             "' not usable on this build/CPU");
  }
  return *parsed;
}

}  // namespace

const char* simd_kernel_name(SimdKernel kernel) {
  switch (kernel) {
    case SimdKernel::kAuto: return "auto";
    case SimdKernel::kScalar: return "scalar";
    case SimdKernel::kAvx2: return "avx2";
    case SimdKernel::kNeon: return "neon";
  }
  return "auto";
}

std::optional<SimdKernel> parse_simd_kernel(std::string_view name) {
  if (name == "auto") return SimdKernel::kAuto;
  if (name == "scalar") return SimdKernel::kScalar;
  if (name == "avx2") return SimdKernel::kAvx2;
  if (name == "neon") return SimdKernel::kNeon;
  return std::nullopt;
}

bool simd_kernel_compiled(SimdKernel kernel) {
  switch (kernel) {
    case SimdKernel::kAuto:
    case SimdKernel::kScalar:
      return true;
    case SimdKernel::kAvx2:
      return SPOOFSCOPE_KERNEL_AVX2 != 0;
    case SimdKernel::kNeon:
      return SPOOFSCOPE_KERNEL_NEON != 0;
  }
  return false;
}

bool simd_kernel_usable(SimdKernel kernel) {
  if (!simd_kernel_compiled(kernel)) return false;
  if (kernel == SimdKernel::kAvx2) return cpu_has_avx2();
  return true;
}

std::vector<SimdKernel> usable_simd_kernels() {
  std::vector<SimdKernel> kernels{SimdKernel::kScalar};
  if (simd_kernel_usable(SimdKernel::kAvx2)) kernels.push_back(SimdKernel::kAvx2);
  if (simd_kernel_usable(SimdKernel::kNeon)) kernels.push_back(SimdKernel::kNeon);
  return kernels;
}

SimdKernel resolve_simd_kernel(SimdKernel requested) {
  if (requested == SimdKernel::kAuto) return auto_kernel();
  if (!simd_kernel_usable(requested)) {
    throw std::runtime_error(
        std::string("simd kernel '") + simd_kernel_name(requested) +
        "' not usable on this build/CPU (try --simd auto)");
  }
  return requested;
}

}  // namespace spoofscope::classify
