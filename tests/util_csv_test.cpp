#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spoofscope::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b,c"});
  w.row_of("x", 42, 2.5);
  const std::string expected_prefix = "a,\"b,c\"\nx,42,";
  EXPECT_EQ(os.str().substr(0, expected_prefix.size()), expected_prefix);
}

TEST(CsvParse, SimpleLine) {
  std::vector<std::string> fields;
  ASSERT_TRUE(csv_parse_line("a,b,c", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParse, EmptyFields) {
  std::vector<std::string> fields;
  ASSERT_TRUE(csv_parse_line("a,,c,", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(CsvParse, QuotedCommaAndEscapedQuote) {
  std::vector<std::string> fields;
  ASSERT_TRUE(csv_parse_line("\"a,b\",\"x\"\"y\"", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "x\"y"}));
}

TEST(CsvParse, UnterminatedQuoteFails) {
  std::vector<std::string> fields;
  EXPECT_FALSE(csv_parse_line("\"abc", fields));
}

TEST(CsvParse, RoundTripThroughEscape) {
  const std::vector<std::string> original{"plain", "with,comma", "with\"quote", ""};
  std::string line;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(original[i]);
  }
  std::vector<std::string> parsed;
  ASSERT_TRUE(csv_parse_line(line, parsed));
  EXPECT_EQ(parsed, original);
}

}  // namespace
}  // namespace spoofscope::util
