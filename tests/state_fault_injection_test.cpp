// Deterministic fault injection across the durable-state plane: every
// modelled crash, torn page, short write/read and disk-full error —
// alone or stacked, armed at a chosen occurrence or drawn from a seeded
// random sweep — must leave the pipeline able to restart and finish the
// stream with EXACTLY the alerts, health counters and final checkpoint
// bytes of the uninterrupted run. The harness mirrors `detect
// --updates --checkpoint-delta`: plane patches fire from a BGP update
// stream, checkpoints chain deltas off a base, and a crash restarts
// from the newest durable cut (recompiled plane + replayed update
// cursor + skipped flows).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bgp/message.hpp"
#include "classify/flat_classifier.hpp"
#include "classify/streaming.hpp"
#include "net/prefix.hpp"
#include "state/delta_chain.hpp"
#include "state/plane_cache.hpp"
#include "state/snapshot.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace spoofscope::state {
namespace {

namespace fs = std::filesystem;
using classify::Classifier;
using classify::DetectorCheckpointExtra;
using classify::FlatClassifier;
using classify::SpoofingAlert;
using classify::StreamingDetector;
using classify::StreamingParams;
using net::Asn;
using net::Ipv4Addr;
using net::pfx;
using util::FaultInjector;
using util::FaultKind;
using util::InjectedCrash;

struct Fixture {
  Fixture() {
    bgp::RoutingTableBuilder b;
    b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
    b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{2});
    table = b.build();
    trie::IntervalSet s;
    s.add(pfx("50.0.0.0/16"));
    std::unordered_map<Asn, trie::IntervalSet> spaces;
    spaces.emplace(1, std::move(s));
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

StreamingParams pressured_params() {
  StreamingParams p;
  p.window_seconds = 300;
  p.min_spoofed_packets = 20;
  p.min_share = 0.1;
  p.cooldown_seconds = 120;
  p.reorder_skew_seconds = 30;
  p.max_reorder_records = 64;
  p.max_members = 2;
  p.max_window_samples = 50;
  return p;
}

std::vector<net::FlowRecord> make_stream(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<net::FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::FlowRecord f;
    const bool via_member3 = rng.chance(0.02);
    const bool via_member2 = !via_member3 && rng.chance(0.3);
    const bool spoof = via_member2 || via_member3 || rng.chance(0.35);
    f.src = spoof ? Ipv4Addr::from_octets(99, 0, 0, static_cast<std::uint8_t>(1 + rng.index(250)))
                  : Ipv4Addr::from_octets(50, 0, 1, static_cast<std::uint8_t>(1 + rng.index(250)));
    f.dst = Ipv4Addr::from_octets(60, 0, 0, 1);
    const std::uint32_t base = static_cast<std::uint32_t>(i / 2);
    const std::uint32_t jitter = rng.uniform_u32(0, 40);
    f.ts = base + 40 - jitter;
    f.packets = 1 + rng.uniform_u32(0, 3);
    f.bytes = 40ull * f.packets;
    f.member_in = via_member3 ? 3 : via_member2 ? 2 : 1;
    flows.push_back(f);
  }
  return flows;
}

/// Route churn that flips classifications mid-stream: member 1's valid
/// prefix vanishes and returns, and the spoof source range 99.0/16
/// becomes briefly routed.
std::vector<bgp::UpdateMessage> make_updates() {
  const auto msg = [](bgp::UpdateMessage::Kind kind, const char* p,
                      std::uint32_t ts) {
    bgp::UpdateMessage u;
    u.kind = kind;
    u.timestamp = ts;
    u.prefix = pfx(p);
    u.path = bgp::AsPath{65000};
    return u;
  };
  using K = bgp::UpdateMessage::Kind;
  return {
      msg(K::kAnnounce, "99.0.0.0/16", 120),
      msg(K::kWithdraw, "50.0.0.0/16", 250),
      msg(K::kAnnounce, "50.0.0.0/16", 380),
      msg(K::kWithdraw, "99.0.0.0/16", 380),
      msg(K::kAnnounce, "70.7.0.0/16", 500),
  };
}

class ScratchDir {
 public:
  explicit ScratchDir(const char* name)
      : path_(fs::temp_directory_path() /
              (std::string(name) + "." + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

struct RunResult {
  std::vector<SpoofingAlert> alerts;
  classify::DetectorHealth health;
  std::string final_save;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

/// The detect-style pipeline under test: flat plane patched by a BGP
/// update stream (one apply per trigger point), delta checkpoints every
/// `every` flows, crash anywhere -> restart from the newest durable cut.
struct Pipeline {
  const Fixture* fx;
  StreamingParams params;
  std::vector<net::FlowRecord> flows;
  std::vector<bgp::UpdateMessage> updates = make_updates();
  std::string base;        ///< delta-chain base checkpoint path
  std::string final_ckpt;  ///< where the end-of-run full save lands
  std::size_t every = 150;

  /// Applies every not-yet-applied update with timestamp <= ts as one
  /// batch — a pure function of (update ts, flow ts), so resumed and
  /// uninterrupted runs fire identical patches.
  void fire_updates_through(FlatClassifier& flat, std::size_t& cursor,
                            std::uint32_t ts) const {
    std::size_t end = cursor;
    while (end < updates.size() && updates[end].timestamp <= ts) ++end;
    if (end == cursor) return;
    flat.apply_updates(
        std::span<const bgp::UpdateMessage>(updates).subspan(cursor,
                                                             end - cursor));
    cursor = end;
  }

  RunResult reference() const {
    RunResult r;
    FlatClassifier flat = FlatClassifier::compile(*fx->classifier);
    StreamingDetector d(flat, 0, params);
    const auto sink = [&r](const SpoofingAlert& a) { r.alerts.push_back(a); };
    std::size_t cursor = 0;
    for (const auto& f : flows) {
      fire_updates_through(flat, cursor, f.ts);
      d.ingest(f, sink);
    }
    d.flush(sink);
    r.health = d.health();
    // The final save pins plane_epoch to 0: the epoch is a run-local
    // patch counter (a resumed run collapses replayed batches into one
    // apply), so embedding it would make bit-identity vacuously fail.
    d.save(final_ckpt, DetectorCheckpointExtra{cursor, 0});
    r.final_save = slurp(final_ckpt);
    return r;
  }

  /// One crash-to-crash attempt: resume from the chain, replay the
  /// update cursor into a fresh plane, skip processed flows, finish.
  /// Returns normally on completion; InjectedCrash propagates to the
  /// caller's restart loop. `alerts_at_cut` maps a durable cut (flow
  /// count) to the alert count at that cut so re-emitted alerts after a
  /// restart replace their first delivery instead of duplicating it.
  void run_attempt(RunResult& r,
                   std::map<std::size_t, std::size_t>& alerts_at_cut) const {
    FlatClassifier flat = FlatClassifier::compile(*fx->classifier);
    StreamingDetector d(flat, 0, params);
    DeltaChain chain(base);
    const DeltaResume res = chain.resume(d, util::ErrorPolicy::kSkip);
    std::size_t cursor = 0;
    if (res.extra.updates_applied > 0) {
      ASSERT_LE(res.extra.updates_applied, updates.size());
      flat.apply_updates(std::span<const bgp::UpdateMessage>(updates).first(
          res.extra.updates_applied));
      cursor = res.extra.updates_applied;
    }
    const std::size_t start = d.processed();
    r.alerts.resize(alerts_at_cut.at(start));
    const auto sink = [&r](const SpoofingAlert& a) { r.alerts.push_back(a); };

    const auto checkpoint = [&](std::size_t cut) {
      // Record the rollback point BEFORE the write: if the write crashes
      // after rename, the cut is durable though we never hear back.
      alerts_at_cut[cut] = r.alerts.size();
      try {
        chain.append(d, DetectorCheckpointExtra{cursor, flat.epoch()});
      } catch (const InjectedCrash&) {
        throw;
      } catch (const std::runtime_error&) {
        // Modelled ENOSPC: the checkpoint is lost but the in-memory
        // detector is fine — keep streaming, try again at the next cut.
      }
    };

    for (std::size_t i = start; i < flows.size(); ++i) {
      fire_updates_through(flat, cursor, flows[i].ts);
      d.ingest(flows[i], sink);
      if ((i + 1) % every == 0) checkpoint(i + 1);
    }
    checkpoint(flows.size());
    d.flush(sink);
    r.health = d.health();
    for (;;) {
      try {
        d.save(final_ckpt, DetectorCheckpointExtra{cursor, 0});
        break;
      } catch (const InjectedCrash&) {
        throw;
      } catch (const std::runtime_error&) {
        continue;  // injected ENOSPC on the final save: retry
      }
    }
    r.final_save = slurp(final_ckpt);
  }

  /// Runs the pipeline under `inj`, restarting on every injected crash,
  /// until it completes. Asserts it converges within `max_attempts`.
  RunResult faulted(FaultInjector& inj, int max_attempts = 200) const {
    RunResult r;
    std::map<std::size_t, std::size_t> alerts_at_cut{{0, 0}};
    FaultInjector::Scope scope(inj);
    for (int attempt = 0;; ++attempt) {
      if (attempt >= max_attempts) {
        ADD_FAILURE() << "pipeline did not converge in " << max_attempts
                      << " attempts";
        break;
      }
      try {
        run_attempt(r, alerts_at_cut);
        break;
      } catch (const InjectedCrash&) {
        continue;  // modelled process death: restart from durable state
      }
    }
    return r;
  }
};

// ------------------------------------------------------- injector basics

TEST(FaultInjector, ArmedFaultFiresAtTheNthOccurrenceOnly) {
  FaultInjector inj;
  inj.arm("x", 3, FaultKind::kCrash);
  inj.arm("y", 1, FaultKind::kEnospc);
  EXPECT_EQ(inj.at("x", {FaultKind::kCrash}), FaultKind::kNone);
  EXPECT_EQ(inj.at("x", {FaultKind::kCrash}), FaultKind::kNone);
  EXPECT_EQ(inj.at("x", {FaultKind::kCrash}), FaultKind::kCrash);
  EXPECT_EQ(inj.at("x", {FaultKind::kCrash}), FaultKind::kNone);
  EXPECT_EQ(inj.occurrences("x"), 4u);
  // A kind the site cannot express is ignored.
  EXPECT_EQ(inj.at("y", {FaultKind::kShortRead}), FaultKind::kNone);
  EXPECT_EQ(inj.injected(), 1u);
}

TEST(FaultInjector, RandomSweepIsReplayableFromTheSeed) {
  const auto draw = [](std::uint64_t seed) {
    FaultInjector inj(seed, 0.5);
    std::vector<FaultKind> seq;
    for (int i = 0; i < 64; ++i) {
      seq.push_back(inj.at("site", {FaultKind::kShortWrite, FaultKind::kEnospc,
                                    FaultKind::kCrash}));
    }
    return seq;
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));
  FaultInjector inj(42, 0.5);
  std::uint64_t fired = 0;
  for (int i = 0; i < 64; ++i) {
    if (inj.at("site", {FaultKind::kCrash}) != FaultKind::kNone) ++fired;
  }
  EXPECT_GT(fired, 16u);
  EXPECT_LT(fired, 48u);
  EXPECT_EQ(inj.injected(), fired);
}

TEST(FaultInjector, ScopeInstallsAndRestores) {
  EXPECT_EQ(FaultInjector::current(), nullptr);
  FaultInjector outer;
  {
    FaultInjector::Scope a(outer);
    EXPECT_EQ(FaultInjector::current(), &outer);
    FaultInjector inner;
    {
      FaultInjector::Scope b(inner);
      EXPECT_EQ(FaultInjector::current(), &inner);
    }
    EXPECT_EQ(FaultInjector::current(), &outer);
  }
  EXPECT_EQ(FaultInjector::current(), nullptr);
}

// ---------------------------------------------------- write-side faults

TEST(WriteFaults, EveryWriteFaultLeavesTheContractedDiskState) {
  Fixture fx;
  ScratchDir dir("spoofscope_write_faults");
  const std::string ckpt = dir.file("det.ckpt");
  const std::string tmp = ckpt + ".tmp";
  StreamingDetector d(*fx.classifier, 0, pressured_params());
  const auto flows = make_stream(3, 200);
  for (const auto& f : flows) d.ingest(f, [](const SpoofingAlert&) {});

  // Short write: a torn tmp file survives, the target never appears.
  {
    FaultInjector inj;
    inj.arm("snapshot.write", 1, FaultKind::kShortWrite);
    FaultInjector::Scope scope(inj);
    EXPECT_THROW(d.save(ckpt), InjectedCrash);
  }
  EXPECT_FALSE(fs::exists(ckpt));
  EXPECT_TRUE(fs::exists(tmp)) << "modelled kill mid-write leaves the tmp";

  // A clean save plows through the leftover tmp.
  d.save(ckpt);
  ASSERT_TRUE(fs::exists(ckpt));
  EXPECT_FALSE(fs::exists(tmp));
  const std::string good = slurp(ckpt);

  // ENOSPC: clean failure, tmp removed, the old checkpoint untouched.
  {
    FaultInjector inj;
    inj.arm("snapshot.write", 1, FaultKind::kEnospc);
    FaultInjector::Scope scope(inj);
    try {
      d.save(ckpt);
      FAIL() << "injected ENOSPC must surface";
    } catch (const InjectedCrash&) {
      FAIL() << "ENOSPC is an error, not a crash";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(ckpt), std::string::npos);
    }
  }
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_EQ(slurp(ckpt), good);

  // Crash before rename: the old checkpoint is still the visible one.
  {
    FaultInjector inj;
    inj.arm("snapshot.rename", 1, FaultKind::kCrashBeforeRename);
    FaultInjector::Scope scope(inj);
    EXPECT_THROW(d.save(ckpt), InjectedCrash);
  }
  EXPECT_EQ(slurp(ckpt), good);
  EXPECT_TRUE(fs::exists(tmp)) << "the completed tmp was never renamed";

  // Crash after rename: the NEW checkpoint is durable even though the
  // caller never heard back — restore must accept it.
  for (const auto& f : make_stream(4, 100)) {
    d.ingest(f, [](const SpoofingAlert&) {});
  }
  {
    FaultInjector inj;
    inj.arm("snapshot.rename", 1, FaultKind::kCrashAfterRename);
    FaultInjector::Scope scope(inj);
    EXPECT_THROW(d.save(ckpt), InjectedCrash);
  }
  EXPECT_NE(slurp(ckpt), good) << "rename happened: new bytes are visible";
  StreamingDetector r(*fx.classifier, 0, pressured_params());
  EXPECT_TRUE(r.restore(ckpt));
  EXPECT_EQ(r.processed(), d.processed());
}

// ----------------------------------------------------- read-side faults

TEST(ReadFaults, DetectorRestoreShortReadAndTornPage) {
  Fixture fx;
  ScratchDir dir("spoofscope_read_faults");
  const std::string ckpt = dir.file("det.ckpt");
  StreamingDetector d(*fx.classifier, 0, pressured_params());
  const auto flows = make_stream(5, 300);
  for (const auto& f : flows) d.ingest(f, [](const SpoofingAlert&) {});
  d.save(ckpt);

  for (const FaultKind kind : {FaultKind::kShortRead, FaultKind::kTornPage}) {
    // Strict: loud refusal naming the file.
    {
      FaultInjector inj;
      inj.arm("detector.restore", 1, kind);
      FaultInjector::Scope scope(inj);
      StreamingDetector strict(*fx.classifier, 0, pressured_params());
      try {
        strict.restore(ckpt, util::ErrorPolicy::kStrict, nullptr, nullptr);
        FAIL() << "damaged read must throw in strict mode";
      } catch (const SnapshotError& e) {
        EXPECT_NE(std::string(e.what()).find(ckpt), std::string::npos)
            << e.what();
      }
    }
    // Skip: clean fresh start, damage accounted.
    {
      FaultInjector inj;
      inj.arm("detector.restore", 1, kind);
      FaultInjector::Scope scope(inj);
      StreamingDetector skip(*fx.classifier, 0, pressured_params());
      util::IngestStats stats;
      EXPECT_FALSE(
          skip.restore(ckpt, util::ErrorPolicy::kSkip, &stats, nullptr));
      EXPECT_EQ(skip.processed(), 0u);
    }
  }
  // The file itself was never damaged: a clean restore still works.
  StreamingDetector clean(*fx.classifier, 0, pressured_params());
  EXPECT_TRUE(clean.restore(ckpt));
  EXPECT_EQ(clean.processed(), flows.size());
}

TEST(ReadFaults, PlaneCacheLoadFaultRecompilesInSkipMode) {
  Fixture fx;
  ScratchDir dir("spoofscope_cache_faults");
  PlaneCache cache(dir.file("plane_cache"));
  const std::uint64_t want =
      FlatClassifier::compile(*fx.classifier).plane_digest();
  {
    const auto first = cache.load_or_compile(*fx.classifier, nullptr);
    ASSERT_TRUE(first.stored);
  }
  {
    FaultInjector inj;
    inj.arm("plane_cache.load", 1, FaultKind::kShortRead);
    FaultInjector::Scope scope(inj);
    // Strict refuses the damaged read...
    EXPECT_THROW(cache.load_or_compile(*fx.classifier, nullptr,
                                       util::ErrorPolicy::kStrict),
                 SnapshotError);
  }
  {
    FaultInjector inj;
    inj.arm("plane_cache.load", 1, FaultKind::kShortRead);
    FaultInjector::Scope scope(inj);
    util::IngestStats stats;
    // ...skip degrades around it: recompile, engine-identical plane.
    const auto res = cache.load_or_compile(*fx.classifier, nullptr,
                                           util::ErrorPolicy::kSkip, &stats);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.plane.plane_digest(), want);
  }
  // The rewritten entry serves clean hits again.
  const auto again = cache.load_or_compile(*fx.classifier, nullptr);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(again.plane.plane_digest(), want);
}

TEST(ReadFaults, ApplyUpdatesCrashLeavesThePlaneUntouched) {
  Fixture fx;
  FlatClassifier flat = FlatClassifier::compile(*fx.classifier);
  const std::uint64_t digest = flat.plane_digest();
  const std::uint64_t epoch = flat.epoch();
  std::vector<bgp::UpdateMessage> batch;
  bgp::UpdateMessage u;
  u.kind = bgp::UpdateMessage::Kind::kWithdraw;
  u.prefix = pfx("50.0.0.0/16");
  batch.push_back(u);
  {
    FaultInjector inj;
    inj.arm("plane.apply_updates", 1, FaultKind::kCrash);
    FaultInjector::Scope scope(inj);
    EXPECT_THROW(flat.apply_updates(batch), InjectedCrash);
  }
  EXPECT_EQ(flat.plane_digest(), digest)
      << "a crash at the apply site must model dying with the batch unapplied";
  EXPECT_EQ(flat.epoch(), epoch);
  // The batch applies cleanly afterwards.
  EXPECT_TRUE(flat.apply_updates(batch).changed);
}

// ----------------------------------------------- crash/churn differential

/// Armed-fault scenarios: each entry is a set of (site, nth, kind)
/// triples installed together, covering every fault site the pipeline
/// crosses — alone and stacked (a crash whose recovery then hits a read
/// fault).
struct ArmedFault {
  const char* site;
  std::uint64_t nth;
  FaultKind kind;
};

TEST(CrashChurnDifferential, EveryArmedFaultScenarioConvergesBitIdentically) {
  Fixture fx;
  ScratchDir dir("spoofscope_crash_churn");
  const std::vector<std::vector<ArmedFault>> scenarios = {
      {{"snapshot.write", 1, FaultKind::kShortWrite}},
      {{"snapshot.write", 2, FaultKind::kEnospc}},
      {{"snapshot.write", 4, FaultKind::kShortWrite}},
      {{"snapshot.rename", 1, FaultKind::kCrashBeforeRename}},
      {{"snapshot.rename", 2, FaultKind::kCrashAfterRename}},
      {{"snapshot.rename", 5, FaultKind::kCrashBeforeRename}},
      {{"plane.apply_updates", 1, FaultKind::kCrash}},
      {{"plane.apply_updates", 3, FaultKind::kCrash}},
      // Crash, then the restart's base restore is torn: skip falls back
      // to a fresh start and the whole stream is reprocessed.
      {{"snapshot.rename", 1, FaultKind::kCrashBeforeRename},
       {"detector.restore", 1, FaultKind::kShortRead}},
      // Crash with deltas on disk, then the restart's delta read is
      // short: the chain truncates and the run continues from the base.
      {{"snapshot.rename", 3, FaultKind::kCrashBeforeRename},
       {"delta.load", 1, FaultKind::kShortRead}},
      // Stacked write faults across several checkpoints.
      {{"snapshot.write", 1, FaultKind::kShortWrite},
       {"snapshot.write", 3, FaultKind::kEnospc},
       {"snapshot.rename", 4, FaultKind::kCrashAfterRename}},
  };

  Pipeline p{&fx, pressured_params(), make_stream(21, 1200)};
  p.final_ckpt = dir.file("final.ckpt");
  const RunResult want = [&] {
    Pipeline ref = p;
    ref.base = dir.file("ref.ckpt");  // unused: reference never checkpoints
    return ref.reference();
  }();
  ASSERT_FALSE(want.alerts.empty());

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    Pipeline run = p;
    run.base = dir.file("det" + std::to_string(s) + ".ckpt");
    run.final_ckpt = dir.file("final" + std::to_string(s) + ".ckpt");
    FaultInjector inj;
    for (const ArmedFault& f : scenarios[s]) inj.arm(f.site, f.nth, f.kind);
    const RunResult got = run.faulted(inj);
    EXPECT_GT(inj.injected(), 0u) << "scenario " << s << " armed a dead site";
    EXPECT_EQ(got.alerts, want.alerts) << "scenario " << s;
    EXPECT_EQ(got.health, want.health) << "scenario " << s;
    EXPECT_EQ(got.final_save, want.final_save)
        << "scenario " << s << ": recovered state must be bit-identical";
  }
}

TEST(CrashChurnDifferential, SeededRandomFaultSweepsConverge) {
  Fixture fx;
  ScratchDir dir("spoofscope_random_faults");
  Pipeline p{&fx, pressured_params(), make_stream(33, 1200)};
  p.final_ckpt = dir.file("final.ckpt");
  const RunResult want = [&] {
    Pipeline ref = p;
    return ref.reference();
  }();

  // tools/check.sh widens the sweep via SPOOFSCOPE_FAULT_SEEDS.
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  if (const char* env = std::getenv("SPOOFSCOPE_FAULT_SEEDS")) {
    seeds.clear();
    for (const char* c = env; *c != '\0';) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(c, &end, 10);
      if (end == c) break;
      seeds.push_back(v);
      c = end;
      while (*c == ' ' || *c == ',') ++c;
    }
    ASSERT_FALSE(seeds.empty()) << "unparsable SPOOFSCOPE_FAULT_SEEDS";
  }

  for (const std::uint64_t seed : seeds) {
    Pipeline run = p;
    run.base = dir.file("det" + std::to_string(seed) + ".ckpt");
    run.final_ckpt = dir.file("final" + std::to_string(seed) + ".ckpt");
    FaultInjector inj(seed, 0.04);
    const RunResult got = run.faulted(inj);
    EXPECT_EQ(got.alerts, want.alerts) << "seed " << seed;
    EXPECT_EQ(got.health, want.health) << "seed " << seed;
    EXPECT_EQ(got.final_save, want.final_save) << "seed " << seed;
  }
}

}  // namespace
}  // namespace spoofscope::state
