#include "net/trace.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace spoofscope::net {

namespace {

constexpr std::uint32_t kMagic = 0x53504F46;  // "SPOF"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRecordSize = 36;

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t(p[1]) << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void encode_record(const FlowRecord& f, std::uint8_t* p) {
  put_u32(p + 0, f.ts);
  put_u32(p + 4, f.src.value());
  put_u32(p + 8, f.dst.value());
  p[12] = static_cast<std::uint8_t>(f.proto);
  p[13] = 0;  // reserved
  put_u16(p + 14, f.sport);
  put_u16(p + 16, f.dport);
  p[18] = 0;
  p[19] = 0;  // padding for alignment in the on-disk layout
  put_u32(p + 20, f.packets);
  put_u64(p + 24, f.bytes);
  // member ASNs fit in 16 bits in our simulations but are stored as-is
  // truncated to 16 bits to keep the record compact; values above 65535
  // are rejected at write time.
  put_u16(p + 32, static_cast<std::uint16_t>(f.member_in));
  put_u16(p + 34, static_cast<std::uint16_t>(f.member_out));
}

FlowRecord decode_record(const std::uint8_t* p) {
  FlowRecord f;
  f.ts = get_u32(p + 0);
  f.src = Ipv4Addr(get_u32(p + 4));
  f.dst = Ipv4Addr(get_u32(p + 8));
  f.proto = static_cast<Proto>(p[12]);
  f.sport = get_u16(p + 14);
  f.dport = get_u16(p + 16);
  f.packets = get_u32(p + 20);
  f.bytes = get_u64(p + 24);
  f.member_in = get_u16(p + 32);
  f.member_out = get_u16(p + 34);
  return f;
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  std::array<std::uint8_t, 32> header{};
  put_u32(header.data() + 0, kMagic);
  put_u32(header.data() + 4, kVersion);
  put_u32(header.data() + 8, trace.meta.sampling_rate);
  put_u32(header.data() + 12, trace.meta.window_seconds);
  put_u64(header.data() + 16, trace.meta.seed);
  put_u64(header.data() + 24, trace.flows.size());
  out.write(reinterpret_cast<const char*>(header.data()), header.size());

  std::array<std::uint8_t, kRecordSize> rec;
  for (const auto& f : trace.flows) {
    if (f.member_in > 0xffff || f.member_out > 0xffff) {
      throw std::runtime_error("write_trace: member ASN exceeds 16-bit record field");
    }
    encode_record(f, rec.data());
    out.write(reinterpret_cast<const char*>(rec.data()), rec.size());
  }
  if (!out) throw std::runtime_error("write_trace: stream failure");
}

Trace read_trace(std::istream& in) {
  std::array<std::uint8_t, 32> header;
  in.read(reinterpret_cast<char*>(header.data()), header.size());
  if (!in || in.gcount() != static_cast<std::streamsize>(header.size())) {
    throw std::runtime_error("read_trace: truncated header");
  }
  if (get_u32(header.data()) != kMagic) throw std::runtime_error("read_trace: bad magic");
  if (get_u32(header.data() + 4) != kVersion) {
    throw std::runtime_error("read_trace: unsupported version");
  }
  Trace trace;
  trace.meta.sampling_rate = get_u32(header.data() + 8);
  trace.meta.window_seconds = get_u32(header.data() + 12);
  trace.meta.seed = get_u64(header.data() + 16);
  const std::uint64_t n = get_u64(header.data() + 24);

  trace.flows.reserve(n);
  std::array<std::uint8_t, kRecordSize> rec;
  for (std::uint64_t i = 0; i < n; ++i) {
    in.read(reinterpret_cast<char*>(rec.data()), rec.size());
    if (!in || in.gcount() != static_cast<std::streamsize>(rec.size())) {
      throw std::runtime_error("read_trace: truncated record");
    }
    trace.flows.push_back(decode_record(rec.data()));
  }
  return trace;
}

}  // namespace spoofscope::net
