// Small statistics toolkit used by the analysis modules: summary stats,
// empirical CDF/CCDF construction, and linear/log-binned histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace spoofscope::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double sum = 0.0;
};

/// Computes summary statistics; returns a zeroed Summary for empty input.
Summary summarize(std::span<const double> xs);

/// Returns the q-quantile (0 <= q <= 1) of `xs` using linear interpolation
/// between order statistics. `xs` need not be sorted. Empty input -> 0.
double quantile(std::span<const double> xs, double q);

/// One point of an empirical distribution function.
struct DistPoint {
  double x = 0.0;  ///< sample value
  double y = 0.0;  ///< cumulative fraction
};

/// Empirical CDF: for each distinct sorted value x, the fraction of samples
/// <= x. Suitable for direct plotting (Fig 8a style).
std::vector<DistPoint> empirical_cdf(std::span<const double> xs);

/// Empirical CCDF: fraction of samples strictly greater than x
/// (Fig 4 style).
std::vector<DistPoint> empirical_ccdf(std::span<const double> xs);

/// Fixed-width linear histogram over [lo, hi); values outside are clamped
/// into the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

  /// Fraction of total mass in bin i (0 if the histogram is empty).
  double fraction(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Base-`base` logarithmic histogram for heavy-tailed quantities
/// (per-member traffic volumes, packet counts).
class LogHistogram {
 public:
  /// Bins: [0,1), [1,base), [base,base^2), ...
  explicit LogHistogram(double base = 10.0, std::size_t bins = 12);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double base_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Pearson correlation of two equal-length samples; 0 for degenerate input.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Gini coefficient of non-negative values: 0 = perfectly even,
/// -> 1 = fully concentrated. Used to characterize attack amplifier
/// distribution strategies (Fig 11b).
double gini(std::span<const double> xs);

}  // namespace spoofscope::util
