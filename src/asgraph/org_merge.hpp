// Multi-AS organization handling (Sec 3.2): ASes of the same organization
// exchange traffic freely even when no BGP link between them is visible.
// OrgMap groups ASes by organization; mesh_edges() produces the full mesh
// of directed links to inject into cone graphs.
#pragma once

#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/flow.hpp"

namespace spoofscope::asgraph {

using net::Asn;

/// Groups of ASes belonging to the same organization. Single-member
/// groups may be omitted by the caller — they change nothing.
class OrgMap {
 public:
  OrgMap() = default;
  explicit OrgMap(std::vector<std::vector<Asn>> groups);

  /// All ASes of the organization `asn` belongs to (including `asn`), or
  /// an empty span if the AS is in no known multi-AS organization.
  std::span<const Asn> group_of(Asn asn) const;

  const std::vector<std::vector<Asn>>& groups() const { return groups_; }

  /// Directed full mesh inside each group, both directions — ready to be
  /// fed to AsGraph::with_extra_edges.
  std::vector<std::pair<Asn, Asn>> mesh_edges() const;

  std::size_t group_count() const { return groups_.size(); }

 private:
  std::vector<std::vector<Asn>> groups_;
  std::unordered_map<Asn, std::size_t> group_index_;
};

}  // namespace spoofscope::asgraph
