// Fig 8: qualitative traffic characteristics per class — packet size
// distributions and time-of-day behaviour.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "analysis/member_stats.hpp"

namespace spoofscope::analysis {

/// Fig 8a: empirical CDF of mean packet sizes, weighted by packets, per
/// class (index by TrafficClass; kValid plays the role of "Regular").
std::array<std::vector<util::DistPoint>, kNumClasses> packet_size_cdfs(
    std::span<const net::FlowRecord> flows, std::span<const Label> labels,
    std::size_t space_idx);

/// Fraction of a class's packets below `threshold` bytes mean size
/// (paper: > 80% of spoofed packets are < 60 bytes).
double small_packet_fraction(std::span<const net::FlowRecord> flows,
                             std::span<const Label> labels,
                             std::size_t space_idx, TrafficClass cls,
                             double threshold = 60.0);

/// Fig 8b: sampled packets per time bin, per class.
struct ClassTimeSeries {
  std::uint32_t bin_seconds = 3600;
  /// series[class][bin] = sampled packets.
  std::array<std::vector<double>, kNumClasses> series;
};

ClassTimeSeries class_time_series(std::span<const net::FlowRecord> flows,
                                  std::span<const Label> labels,
                                  std::size_t space_idx,
                                  std::uint32_t window_seconds,
                                  std::uint32_t bin_seconds = 3600);

/// Burstiness measure for Fig 8b's "unsteady pattern" claim: the
/// coefficient of variation (stddev/mean) of a series' non-empty bins.
double burstiness(std::span<const double> series);

/// Diurnality measure: correlation between a series and a 24h reference
/// sine anchored at the evening peak. Regular traffic scores visibly
/// higher than attack classes.
double diurnality(std::span<const double> series, std::uint32_t bin_seconds);

}  // namespace spoofscope::analysis
