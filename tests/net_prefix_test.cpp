#include "net/prefix.hpp"

#include <gtest/gtest.h>

namespace spoofscope::net {
namespace {

TEST(Prefix, DefaultIsWholeSpace) {
  const Prefix p;
  EXPECT_EQ(p.length(), 0);
  EXPECT_EQ(p.first(), 0u);
  EXPECT_EQ(p.last(), ~0u);
  EXPECT_EQ(p.num_addresses(), std::uint64_t(1) << 32);
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(Ipv4Addr::from_octets(10, 1, 2, 3), 8);
  EXPECT_EQ(p.address(), Ipv4Addr::from_octets(10, 0, 0, 0));
}

TEST(Prefix, ParseBasics) {
  const auto p = Prefix::parse("192.168.0.0/16");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->str(), "192.168.0.0/16");
}

TEST(Prefix, ParseBareAddressIsSlash32) {
  const auto p = Prefix::parse("10.0.0.1");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->num_addresses(), 1u);
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1"));
  EXPECT_FALSE(Prefix::parse("bad/8"));
}

TEST(Prefix, FirstAndLast) {
  const auto p = pfx("10.0.0.0/8");
  EXPECT_EQ(p.first(), Ipv4Addr::from_octets(10, 0, 0, 0).value());
  EXPECT_EQ(p.last(), Ipv4Addr::from_octets(10, 255, 255, 255).value());
}

TEST(Prefix, Slash24Equivalents) {
  EXPECT_DOUBLE_EQ(pfx("10.0.0.0/8").slash24_equivalents(), 65536.0);
  EXPECT_DOUBLE_EQ(pfx("10.0.0.0/24").slash24_equivalents(), 1.0);
  EXPECT_DOUBLE_EQ(pfx("10.0.0.0/25").slash24_equivalents(), 0.5);
  EXPECT_DOUBLE_EQ(pfx("0.0.0.0/0").slash24_equivalents(), kTotalSlash24);
}

TEST(Prefix, ContainsAddress) {
  const auto p = pfx("172.16.0.0/12");
  EXPECT_TRUE(p.contains(Ipv4Addr::from_octets(172, 16, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Addr::from_octets(172, 31, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Addr::from_octets(172, 32, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Addr::from_octets(171, 16, 0, 0)));
}

TEST(Prefix, ContainsPrefix) {
  EXPECT_TRUE(pfx("10.0.0.0/8").contains(pfx("10.5.0.0/16")));
  EXPECT_TRUE(pfx("10.0.0.0/8").contains(pfx("10.0.0.0/8")));
  EXPECT_FALSE(pfx("10.5.0.0/16").contains(pfx("10.0.0.0/8")));
  EXPECT_FALSE(pfx("10.0.0.0/8").contains(pfx("11.0.0.0/16")));
}

TEST(Prefix, Overlaps) {
  EXPECT_TRUE(pfx("10.0.0.0/8").overlaps(pfx("10.1.0.0/16")));
  EXPECT_TRUE(pfx("10.1.0.0/16").overlaps(pfx("10.0.0.0/8")));
  EXPECT_FALSE(pfx("10.0.0.0/16").overlaps(pfx("10.1.0.0/16")));
}

TEST(Prefix, ParentAndChildren) {
  const auto p = pfx("10.0.0.0/9");
  EXPECT_EQ(p.parent(), pfx("10.0.0.0/8"));
  EXPECT_EQ(pfx("10.0.0.0/8").child(0), pfx("10.0.0.0/9"));
  EXPECT_EQ(pfx("10.0.0.0/8").child(1), pfx("10.128.0.0/9"));
}

TEST(Prefix, BitAccess) {
  const auto p = pfx("128.0.0.0/1");
  EXPECT_EQ(p.bit(0), 1);
  EXPECT_EQ(pfx("0.0.0.0/1").bit(0), 0);
}

TEST(Prefix, OrderingGroupsCoversFirst) {
  EXPECT_LT(pfx("10.0.0.0/8"), pfx("10.0.0.0/16"));
  EXPECT_LT(pfx("10.0.0.0/16"), pfx("10.1.0.0/16"));
}

TEST(Prefix, PfxThrowsOnGarbage) {
  EXPECT_THROW(pfx("not-a-prefix"), std::invalid_argument);
}

TEST(Prefix, MaskFor) {
  EXPECT_EQ(Prefix::mask_for(0), 0u);
  EXPECT_EQ(Prefix::mask_for(8), 0xFF000000u);
  EXPECT_EQ(Prefix::mask_for(32), 0xFFFFFFFFu);
}

}  // namespace
}  // namespace spoofscope::net
