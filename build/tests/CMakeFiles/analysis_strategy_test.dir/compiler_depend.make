# Empty compiler generated dependencies file for analysis_strategy_test.
# This may be replaced when dependencies are built.
