file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_topo.dir/topo/as_info.cpp.o"
  "CMakeFiles/spoofscope_topo.dir/topo/as_info.cpp.o.d"
  "CMakeFiles/spoofscope_topo.dir/topo/generator.cpp.o"
  "CMakeFiles/spoofscope_topo.dir/topo/generator.cpp.o.d"
  "CMakeFiles/spoofscope_topo.dir/topo/serialize.cpp.o"
  "CMakeFiles/spoofscope_topo.dir/topo/serialize.cpp.o.d"
  "CMakeFiles/spoofscope_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/spoofscope_topo.dir/topo/topology.cpp.o.d"
  "libspoofscope_topo.a"
  "libspoofscope_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
