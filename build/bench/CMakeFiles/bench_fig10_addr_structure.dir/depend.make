# Empty dependencies file for bench_fig10_addr_structure.
# This may be replaced when dependencies are built.
