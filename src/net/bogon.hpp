// The static bogon reference: address ranges that must never appear as
// source addresses in the inter-domain Internet. Mirrors the Team Cymru
// bogon list the paper uses (14 non-overlapping prefixes, ~2.3M /24
// equivalents including multicast and future-use space).
#pragma once

#include <span>

#include "net/prefix.hpp"

namespace spoofscope::net {

/// The 14 bogon prefixes (RFC1918, loopback, link-local, shared address
/// space, documentation/test ranges, multicast, future use, ...).
std::span<const Prefix> bogon_prefixes();

/// True if `a` falls in any bogon range. Linear over the 14 entries; for
/// bulk classification use a PrefixSet/PrefixTrie built from
/// bogon_prefixes() instead.
bool is_bogon(Ipv4Addr a);

/// Total bogon space in /24 equivalents (~2.32M; 13.8% of IPv4, Fig 1a).
double bogon_slash24();

}  // namespace spoofscope::net
