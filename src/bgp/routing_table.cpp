#include "bgp/routing_table.hpp"

#include <algorithm>

namespace spoofscope::bgp {

std::optional<Asn> RoutingTable::origin_of(net::Ipv4Addr a) const {
  const auto* m = routed_.match_longest(a);
  if (!m) return std::nullopt;
  return prefix_origins_[m->second].front();
}

std::optional<RoutingTable::PrefixId> RoutingTable::covering_prefix(
    net::Ipv4Addr a) const {
  const auto* m = routed_.match_longest(a);
  if (!m) return std::nullopt;
  return m->second;
}

std::optional<RoutingTable::PrefixId> RoutingTable::prefix_id(
    const net::Prefix& p) const {
  const auto* id = routed_.find_exact(p);
  if (!id) return std::nullopt;
  return *id;
}

std::span<const Asn> RoutingTable::origins_of(PrefixId pid) const {
  return prefix_origins_[pid];
}

std::span<const RoutingTable::PathId> RoutingTable::paths_of(PrefixId pid) const {
  return prefix_paths_[pid];
}

std::span<const RoutingTable::PrefixId> RoutingTable::prefixes_on_paths_of(
    Asn asn) const {
  static const std::vector<PrefixId> kEmpty;
  const auto it = as_prefixes_.find(asn);
  return it == as_prefixes_.end() ? kEmpty : it->second;
}

std::size_t RoutingTableBuilder::PathKey::operator()(
    const std::vector<Asn>& hops) const {
  std::size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Asn a : hops) {
    h ^= a + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

RoutingTableBuilder::RoutingTableBuilder(Options options) : options_(options) {}

void RoutingTableBuilder::ingest(const MrtRecord& record) {
  if (const auto* rib = std::get_if<RibEntry>(&record)) {
    ingest_route(rib->prefix, rib->path);
    return;
  }
  const auto& upd = std::get<UpdateMessage>(record);
  if (upd.kind == UpdateMessage::Kind::kAnnounce) {
    ingest_route(upd.prefix, upd.path);
  } else {
    ++table_.ingested_;  // withdrawals are observed but change nothing
  }
}

void RoutingTableBuilder::ingest(std::span<const MrtRecord> records) {
  for (const auto& r : records) ingest(r);
}

void RoutingTableBuilder::ingest_route(const net::Prefix& prefix,
                                       const AsPath& path) {
  ++table_.ingested_;
  if (path.empty()) return;
  if (prefix.length() < options_.min_length ||
      prefix.length() > options_.max_length) {
    ++table_.dropped_;
    return;
  }

  // Intern the prefix.
  RoutingTable::PrefixId pid;
  if (const auto* existing = table_.routed_.find_exact(prefix)) {
    pid = *existing;
  } else {
    pid = static_cast<RoutingTable::PrefixId>(table_.prefixes_.size());
    table_.routed_.insert(prefix, pid);
    table_.prefixes_.push_back(prefix);
    table_.prefix_origins_.emplace_back();
    table_.prefix_paths_.emplace_back();
  }

  // Intern the path.
  const auto [it, inserted] = path_ids_.try_emplace(
      path.hops(), static_cast<RoutingTable::PathId>(table_.paths_.size()));
  if (inserted) table_.paths_.push_back(path);
  const RoutingTable::PathId path_id = it->second;

  auto& pp = table_.prefix_paths_[pid];
  if (std::find(pp.begin(), pp.end(), path_id) == pp.end()) {
    pp.push_back(path_id);
    auto& origins = table_.prefix_origins_[pid];
    if (std::find(origins.begin(), origins.end(), path.origin()) == origins.end()) {
      origins.push_back(path.origin());
    }
  }
}

RoutingTable RoutingTableBuilder::build() {
  RoutingTable out = std::move(table_);
  table_ = RoutingTable{};
  path_ids_.clear();

  // Directed edges and AS set from the distinct paths.
  std::vector<std::uint64_t> edge_keys;
  std::vector<Asn> ases;
  for (const auto& path : out.paths_) {
    const auto& hops = path.hops();
    for (std::size_t i = 0; i < hops.size(); ++i) {
      ases.push_back(hops[i]);
      if (i + 1 < hops.size() && hops[i] != hops[i + 1]) {
        edge_keys.push_back((std::uint64_t(hops[i]) << 32) | hops[i + 1]);
      }
    }
  }
  std::sort(edge_keys.begin(), edge_keys.end());
  edge_keys.erase(std::unique(edge_keys.begin(), edge_keys.end()), edge_keys.end());
  out.edges_.reserve(edge_keys.size());
  for (const std::uint64_t k : edge_keys) {
    out.edges_.emplace_back(static_cast<Asn>(k >> 32),
                            static_cast<Asn>(k & 0xffffffffu));
  }
  std::sort(ases.begin(), ases.end());
  ases.erase(std::unique(ases.begin(), ases.end()), ases.end());
  out.ases_ = std::move(ases);

  // Per-AS prefix sets for the Naive method.
  for (RoutingTable::PrefixId pid = 0; pid < out.prefixes_.size(); ++pid) {
    for (const auto path_id : out.prefix_paths_[pid]) {
      for (const Asn asn : out.paths_[path_id].hops()) {
        out.as_prefixes_[asn].push_back(pid);
      }
    }
  }
  for (auto& [asn, pids] : out.as_prefixes_) {
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  }

  // Routed space.
  std::vector<trie::Interval> ivs;
  ivs.reserve(out.prefixes_.size());
  for (const auto& p : out.prefixes_) ivs.push_back({p.first(), p.last()});
  out.routed_space_ = trie::IntervalSet::from_intervals(std::move(ivs));

  return out;
}

}  // namespace spoofscope::bgp
