// Attack traffic generators (Sec 7): random-spoof flooding, NTP
// amplification with selective spoofing, and Steam floods.
#pragma once

#include <vector>

#include "traffic/context.hpp"

namespace spoofscope::traffic {

/// Flooding attacks with uniformly random spoofed sources (TCP SYN to
/// HTTP/HTTPS of single victims). Each event honours the attacking
/// member's ground-truth egress filters.
void generate_random_spoof_floods(const TrafficContext& ctx, util::Rng& rng,
                                  std::vector<net::FlowRecord>& out,
                                  std::vector<Component>& components,
                                  WorkloadSummary& summary);

/// NTP amplification: trigger flows carry the victim's address as source
/// (UDP, DST port 123) towards amplifiers from the global pool; a subset
/// of amplifier responses (~10x bytes, SRC port 123) is visible too. One
/// member dominates the trigger volume, as in the paper (91.94%).
void generate_ntp_amplification(const TrafficContext& ctx, util::Rng& rng,
                                std::vector<net::FlowRecord>& out,
                                std::vector<Component>& components,
                                WorkloadSummary& summary);

/// Floods against game servers (UDP 27015), sources uniformly random.
void generate_steam_floods(const TrafficContext& ctx, util::Rng& rng,
                           std::vector<net::FlowRecord>& out,
                           std::vector<Component>& components,
                           WorkloadSummary& summary);

}  // namespace spoofscope::traffic
