file(REMOVE_RECURSE
  "libspoofscope_asgraph.a"
)
