#include "data/rpsl.hpp"
#include <map>

#include <algorithm>
#include <istream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace spoofscope::data {

namespace {

[[noreturn]] void fail(std::string_view line, const std::string& why) {
  throw std::runtime_error("RPSL parse error: " + why + " in line: " +
                           std::string(line));
}

/// Parses "AS64500" (case-insensitive prefix).
net::Asn parse_as_ref(std::string_view line, std::string_view tok) {
  tok = util::trim(tok);
  if (tok.size() < 3 || (tok[0] != 'A' && tok[0] != 'a') ||
      (tok[1] != 'S' && tok[1] != 's')) {
    fail(line, "expected ASxxxx reference");
  }
  std::uint32_t asn;
  if (!util::parse_u32(tok.substr(2), asn) || asn == net::kNoAsn) {
    fail(line, "bad ASN");
  }
  return asn;
}

/// Parses "from AS64501 accept ANY" / "to AS64501 announce ANY" — we only
/// need the peer AS.
net::Asn parse_policy_peer(std::string_view line, std::string_view value) {
  const auto parts = util::split(util::trim(value), ' ');
  if (parts.size() < 2) fail(line, "policy line too short");
  return parse_as_ref(line, parts[1]);
}

std::string mnt_name(net::Asn asn) { return "AS" + std::to_string(asn) + "-MNT"; }

/// Extracts the ASN from "AS64499-MNT"; kNoAsn for foreign maintainers.
net::Asn maintainer_asn(std::string_view value) {
  value = util::trim(value);
  if (value.size() < 7) return net::kNoAsn;
  if (value.substr(value.size() - 4) != "-MNT") return net::kNoAsn;
  if (value[0] != 'A' || value[1] != 'S') return net::kNoAsn;
  std::uint32_t asn;
  if (!util::parse_u32(value.substr(2, value.size() - 6), asn)) return net::kNoAsn;
  return asn;
}

}  // namespace

std::string to_rpsl(const RouteObject& r) {
  std::ostringstream os;
  os << "route:      " << r.prefix.str() << "\n"
     << "origin:     AS" << r.origin << "\n";
  if (!r.descr.empty()) os << "descr:      " << r.descr << "\n";
  if (r.maintainer != net::kNoAsn && r.maintainer != r.origin) {
    os << "mnt-by:     " << mnt_name(r.maintainer) << "\n";
  }
  os << "\n";
  return os.str();
}

std::string to_rpsl(const AutNumObject& a) {
  std::ostringstream os;
  os << "aut-num:    AS" << a.asn << "\n";
  for (const net::Asn p : a.import_peers) {
    os << "import:     from AS" << p << " accept ANY\n";
  }
  for (const net::Asn p : a.export_peers) {
    os << "export:     to AS" << p << " announce ANY\n";
  }
  os << "\n";
  return os.str();
}

std::string registry_to_rpsl(const WhoisRegistry& registry) {
  std::ostringstream os;
  os << "% spoofscope RPSL-lite export\n\n";
  for (const auto& pa : registry.provider_assigned()) {
    RouteObject r;
    r.prefix = pa.range;
    r.origin = pa.provider;
    r.maintainer = pa.customer;
    r.descr = "provider-assigned to AS" + std::to_string(pa.customer);
    os << to_rpsl(r);
  }
  // Documented links, grouped into one aut-num object per AS.
  std::set<std::pair<net::Asn, net::Asn>> links;
  for (const auto& [a, b] : registry.documented_links()) {
    links.emplace(std::min(a, b), std::max(a, b));
  }
  std::map<net::Asn, AutNumObject> auts;
  for (const auto& [a, b] : links) {
    auto& oa = auts[a];
    oa.asn = a;
    oa.import_peers.push_back(b);
    oa.export_peers.push_back(b);
    auto& ob = auts[b];
    ob.asn = b;
    ob.import_peers.push_back(a);
    ob.export_peers.push_back(a);
  }
  for (const auto& [asn, a] : auts) os << to_rpsl(a);
  return os.str();
}

RpslDatabase parse_rpsl(std::istream& in) {
  return parse_rpsl(in, util::ErrorPolicy::kStrict, nullptr);
}

RpslDatabase parse_rpsl(std::istream& in, util::ErrorPolicy policy,
                        util::IngestStats* stats) {
  util::IngestStats local;
  if (!stats) stats = &local;
  RpslDatabase db;
  RouteObject route;
  AutNumObject aut;
  enum class Kind { kNone, kRoute, kAutNum } kind = Kind::kNone;
  // Skip mode quarantines at object granularity: one bad attribute
  // poisons the object it belongs to, and parsing resumes at the next
  // blank-line boundary.
  bool poisoned = false;
  std::uint64_t poisoned_bytes = 0;

  const auto reset = [&] {
    route = RouteObject{};
    aut = AutNumObject{};
    kind = Kind::kNone;
  };

  const auto flush = [&] {
    if (poisoned) {
      stats->skip(util::ErrorKind::kParse, poisoned_bytes);
      poisoned = false;
      poisoned_bytes = 0;
      reset();
      return;
    }
    switch (kind) {
      case Kind::kRoute:
        if (route.origin == net::kNoAsn) {
          if (policy == util::ErrorPolicy::kStrict) {
            throw std::runtime_error(
                "RPSL parse error: route object without origin");
          }
          stats->skip(util::ErrorKind::kParse, 0);
          break;
        }
        db.routes.push_back(route);
        stats->ok();
        break;
      case Kind::kAutNum:
        db.aut_nums.push_back(aut);
        stats->ok();
        break;
      case Kind::kNone:
        break;
    }
    reset();
  };

  const auto handle_line = [&](std::string_view line) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) fail(line, "missing attribute colon");
    const auto attr = util::to_lower(util::trim(line.substr(0, colon)));
    const auto value = util::trim(line.substr(colon + 1));

    if (attr == "route") {
      flush();
      kind = Kind::kRoute;
      const auto p = net::Prefix::parse(value);
      if (!p) fail(line, "bad prefix");
      route.prefix = *p;
    } else if (attr == "origin") {
      if (kind != Kind::kRoute) fail(line, "origin outside route object");
      route.origin = parse_as_ref(line, value);
    } else if (attr == "descr") {
      if (kind == Kind::kRoute) route.descr = std::string(value);
    } else if (attr == "mnt-by") {
      if (kind == Kind::kRoute) route.maintainer = maintainer_asn(value);
    } else if (attr == "aut-num") {
      flush();
      kind = Kind::kAutNum;
      aut.asn = parse_as_ref(line, value);
    } else if (attr == "import") {
      if (kind != Kind::kAutNum) fail(line, "import outside aut-num object");
      aut.import_peers.push_back(parse_policy_peer(line, value));
    } else if (attr == "export") {
      if (kind != Kind::kAutNum) fail(line, "export outside aut-num object");
      aut.export_peers.push_back(parse_policy_peer(line, value));
    }
    // Unknown attributes: ignored, as real IRR data is full of them.
  };

  std::string raw;
  while (std::getline(in, raw)) {
    const auto line = util::trim(raw);
    if (line.empty()) {
      flush();
      continue;
    }
    if (line.front() == '%' || line.front() == '#') continue;
    if (poisoned) {
      // Rest of a quarantined object: swallowed until the blank line.
      poisoned_bytes += line.size();
      continue;
    }
    if (policy == util::ErrorPolicy::kStrict) {
      handle_line(line);
      continue;
    }
    try {
      handle_line(line);
    } catch (const std::runtime_error&) {
      // A `route:`/`aut-num:` line flushes the previous object before it
      // can fail, so the poisoned state always covers only the object
      // the bad line belongs to.
      poisoned = true;
      poisoned_bytes += line.size();
    }
  }
  flush();
  return db;
}

WhoisRegistry registry_from_rpsl(const RpslDatabase& db) {
  std::vector<ProviderAssignedRange> pa;
  for (const auto& r : db.routes) {
    if (r.maintainer == net::kNoAsn || r.maintainer == r.origin) continue;
    pa.push_back({r.maintainer, r.origin, r.prefix});
  }
  // A documented link requires mutual policy: A imports from and exports
  // to B, and B does the same towards A.
  std::set<std::pair<net::Asn, net::Asn>> mutual;
  const auto has = [](const std::vector<net::Asn>& v, net::Asn x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  for (const auto& a : db.aut_nums) {
    for (const net::Asn peer : a.import_peers) {
      if (!has(a.export_peers, peer)) continue;
      for (const auto& b : db.aut_nums) {
        if (b.asn != peer) continue;
        if (has(b.import_peers, a.asn) && has(b.export_peers, a.asn)) {
          mutual.emplace(std::min(a.asn, peer), std::max(a.asn, peer));
        }
      }
    }
  }
  std::vector<std::pair<net::Asn, net::Asn>> links(mutual.begin(), mutual.end());
  return WhoisRegistry(std::move(pa), std::move(links));
}

}  // namespace spoofscope::data
