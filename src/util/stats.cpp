#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace spoofscope::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= v.size()) return v.back();
  return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

namespace {

std::vector<DistPoint> edf(std::span<const double> xs, bool complementary) {
  std::vector<DistPoint> out;
  if (xs.empty()) return out;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double n = static_cast<double>(v.size());
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t j = i;
    while (j < v.size() && v[j] == v[i]) ++j;
    const double cum = static_cast<double>(j) / n;
    out.push_back({v[i], complementary ? 1.0 - cum : cum});
    i = j;
  }
  return out;
}

}  // namespace

std::vector<DistPoint> empirical_cdf(std::span<const double> xs) {
  return edf(xs, /*complementary=*/false);
}

std::vector<DistPoint> empirical_ccdf(std::span<const double> xs) {
  return edf(xs, /*complementary=*/true);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x, double weight) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  counts_[i] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::fraction(std::size_t i) const {
  return total_ > 0 ? counts_[i] / total_ : 0.0;
}

LogHistogram::LogHistogram(double base, std::size_t bins)
    : base_(base), counts_(bins, 0.0) {
  if (base <= 1.0 || bins == 0) throw std::invalid_argument("LogHistogram: bad parameters");
}

void LogHistogram::add(double x, double weight) {
  std::size_t i = 0;
  if (x >= 1.0) {
    i = static_cast<std::size_t>(std::log(x) / std::log(base_)) + 1;
    i = std::min(i, counts_.size() - 1);
  }
  counts_[i] += weight;
  total_ += weight;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return i == 0 ? 0.0 : std::pow(base_, static_cast<double>(i - 1));
}

QuantileSketch::QuantileSketch(std::size_t k) : k_(std::max<std::size_t>(k, 8)) {
  if (k_ % 2 != 0) ++k_;
  levels_.emplace_back();
  parity_.push_back(0);
}

void QuantileSketch::add(double x, std::uint64_t weight) {
  for (std::uint64_t i = 0; i < weight; ++i) {
    levels_[0].push_back(x);
    ++count_;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      if (levels_[l].size() >= k_) compact(l);
    }
  }
}

void QuantileSketch::compact(std::size_t level) {
  std::sort(levels_[level].begin(), levels_[level].end());
  // Promote every other element of the sorted even-length prefix with
  // doubled weight; an odd straggler (possible after merge) stays put.
  const std::size_t pairs = levels_[level].size() / 2;
  if (pairs == 0) return;
  if (level + 1 >= levels_.size()) {
    levels_.emplace_back();  // may reallocate levels_: take refs after
    parity_.push_back(0);
  }
  auto& buf = levels_[level];
  auto& up = levels_[level + 1];
  const std::size_t offset = parity_[level];
  parity_[level] ^= 1;
  for (std::size_t i = 0; i < pairs; ++i) up.push_back(buf[2 * i + offset]);
  if (buf.size() % 2 != 0) {
    buf[0] = buf.back();
    buf.resize(1);
  } else {
    buf.clear();
  }
  // Keeping one of each weight-w pair shifts any rank by at most w.
  error_bound_ += std::uint64_t{1} << level;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.k_ != k_) {
    throw std::invalid_argument("QuantileSketch::merge: mismatched k");
  }
  count_ += other.count_;
  error_bound_ += other.error_bound_;
  for (std::size_t l = 0; l < other.levels_.size(); ++l) {
    if (l >= levels_.size()) {
      levels_.emplace_back();
      parity_.push_back(0);
    }
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                      other.levels_[l].end());
  }
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    while (levels_[l].size() >= k_) compact(l);
  }
}

std::vector<std::pair<double, std::uint64_t>> QuantileSketch::weighted() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  out.reserve(retained());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t w = std::uint64_t{1} << l;
    for (const double x : levels_[l]) out.emplace_back(x, w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (exact()) return util::quantile(levels_[0], q);
  q = std::clamp(q, 0.0, 1.0);
  const auto items = weighted();
  const double pos = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (const auto& [x, w] : items) {
    if (static_cast<double>(cum + w) > pos) return x;
    cum += w;
  }
  return items.back().first;
}

std::uint64_t QuantileSketch::rank(double x) const {
  std::uint64_t r = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t w = std::uint64_t{1} << l;
    for (const double v : levels_[l]) {
      if (v <= x) r += w;
    }
  }
  return r;
}

std::size_t QuantileSketch::retained() const {
  std::size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  }
  cov /= static_cast<double>(xs.size());
  return cov / (sx.stddev * sy.stddev);
}

double gini(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  double sum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sum += v[i];
    weighted += static_cast<double>(i + 1) * v[i];
  }
  if (sum <= 0.0) return 0.0;
  const double n = static_cast<double>(v.size());
  return (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
}

}  // namespace spoofscope::util
