// Shared classification plane for the resident service. All shards
// classify against one compiled FlatClassifier; the hub owns it behind
// a shared_ptr and a generation counter so `reload-updates` can patch
// routing churn into the plane and republish it to every shard:
//
//   - in-place patch (apply_updates): the object stays put, its epoch()
//     bumps, the hub's generation bumps. Shards notice the generation
//     move and re-sync; the detector's sync_plane_epoch() reclassifies
//     any buffered flows against the patched plane.
//   - wholesale publish(): a different compiled plane object (e.g. a
//     fresh compile) replaces the current one; shards rebind their
//     detectors to the new object.
//
// Mutation requires the shards quiesced (Server::quiesce barriers every
// worker before touching the hub): the detector hot path reads the
// plane without locks, and the idle-barrier mutex handoff is what
// orders the patch before the next batch — the same discipline the
// one-shot detect command gets for free by being single-threaded.
#pragma once

#include <cstdint>
#include <memory>

#include "classify/flat_classifier.hpp"

namespace spoofscope::service {

class PlaneHub {
 public:
  PlaneHub() = default;
  explicit PlaneHub(std::shared_ptr<classify::FlatClassifier> plane)
      : plane_(std::move(plane)), generation_(plane_ ? 1 : 0) {}

  bool has_plane() const { return plane_ != nullptr; }

  /// The current plane (shards hold a copy of this shared_ptr across a
  /// batch, so a wholesale publish never frees a plane under a reader).
  const std::shared_ptr<classify::FlatClassifier>& current() const {
    return plane_;
  }

  /// Bumped on every republish (in-place or wholesale). Shards compare
  /// against the generation they last synced at.
  std::uint64_t generation() const { return generation_; }

  /// Applies a route-churn batch in place and republishes. Caller must
  /// have quiesced the shards.
  classify::FlatClassifier::UpdateApplyStats apply_updates(
      std::span<const bgp::UpdateMessage> batch,
      const classify::FlatClassifier::UpdateApplyOptions& opts) {
    const auto stats = plane_->apply_updates(batch, opts);
    ++generation_;
    return stats;
  }

  /// Replaces the plane wholesale. Caller must have quiesced the shards.
  void publish(std::shared_ptr<classify::FlatClassifier> plane) {
    plane_ = std::move(plane);
    ++generation_;
  }

 private:
  std::shared_ptr<classify::FlatClassifier> plane_;
  std::uint64_t generation_ = 0;
};

}  // namespace spoofscope::service
