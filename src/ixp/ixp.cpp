#include "ixp/ixp.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace spoofscope::ixp {

namespace {

/// Median traffic weight by business type: content and big ISPs dominate
/// IXP traffic; "other" members are small.
double weight_scale(topo::BusinessType t) {
  switch (t) {
    case topo::BusinessType::kNsp: return 30.0;
    case topo::BusinessType::kIsp: return 20.0;
    case topo::BusinessType::kHosting: return 8.0;
    case topo::BusinessType::kContent: return 60.0;
    case topo::BusinessType::kOther: return 1.0;
  }
  return 1.0;
}

}  // namespace

Ixp Ixp::build(const topo::Topology& topo, const IxpParams& params,
               std::uint64_t seed) {
  util::Rng rng(seed);

  // Weighted sampling without replacement over all ASes.
  std::vector<std::size_t> candidates(topo.as_count());
  for (std::size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
  std::vector<double> weights(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    // Member ASNs must fit the trace format's 16-bit member fields
    // (net::format::encode_record); at internet scale the AS population
    // extends past that, so those ASes simply do not join this IXP.
    weights[i] = topo.ases()[i].asn > 0xffff
                     ? 0.0
                     : params.join_weight[static_cast<int>(topo.ases()[i].type)];
  }

  Ixp out;
  out.sampling_rate_ = params.sampling_rate;
  const std::size_t want = std::min(params.member_count, candidates.size());
  while (out.members_.size() < want) {
    double total = 0.0;
    for (const double w : weights) total += w;
    if (total <= 0.0) break;
    double pick = rng.uniform() * total;
    std::size_t chosen = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      pick -= weights[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    const auto& info = topo.ases()[candidates[chosen]];
    Member m;
    m.asn = info.asn;
    m.type = info.type;
    m.traffic_weight = weight_scale(info.type) * rng.lognormal(0.0, 1.3);
    m.uses_route_server = rng.chance(params.route_server_fraction);
    out.index_.emplace(m.asn, out.members_.size());
    out.members_.push_back(m);
    weights[chosen] = 0.0;  // without replacement
  }
  return out;
}

const Member* Ixp::find(Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &members_[it->second];
}

std::vector<Asn> Ixp::member_asns() const {
  std::vector<Asn> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m.asn);
  return out;
}

std::vector<Asn> Ixp::route_server_feeders() const {
  std::vector<Asn> out;
  for (const auto& m : members_) {
    if (m.uses_route_server) out.push_back(m.asn);
  }
  return out;
}

}  // namespace spoofscope::ixp
