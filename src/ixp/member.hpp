// One IXP member: an AS connected to the switching fabric.
#pragma once

#include "topo/as_info.hpp"

namespace spoofscope::ixp {

using net::Asn;

/// Membership record. The traffic generator uses `traffic_weight` to
/// apportion the member's share of the fabric's volume (heavy-tailed, as
/// at real IXPs).
struct Member {
  Asn asn = net::kNoAsn;
  topo::BusinessType type = topo::BusinessType::kOther;

  /// Relative share of fabric traffic injected by this member.
  double traffic_weight = 1.0;

  /// True if the member peers via the IXP route server (multilateral
  /// peering); its routes then appear in the route-server feed.
  bool uses_route_server = true;

  friend bool operator==(const Member&, const Member&) = default;
};

}  // namespace spoofscope::ixp
