#include "topo/generator.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <tuple>

#include "net/bogon.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace spoofscope::topo {

namespace {

using net::Ipv4Addr;
using net::Prefix;
using util::IndexRange;
using util::Rng;
using util::ThreadPool;

/// First ASN handed out; drafts are numbered densely from here, so
/// asn - kFirstAsn recovers the dense index without a lookup table.
constexpr Asn kFirstAsn = 100;

/// Per-(phase, chunk) PRNG stream labels. Every randomized phase draws
/// from its own family of streams so chunks are communication-free: a
/// worker seeds chunk_stream(seed, phase, c) and never touches another
/// chunk's generator state.
enum Stream : std::uint64_t {
  kStreamSpace = 1,
  kStreamOrg,
  kStreamSize,
  kStreamAlloc,
  kStreamTransit,
  kStreamEdge,
  kStreamContentPeer,
  kStreamIspPeer,
  kStreamInfra,
  kStreamFilter,
};

/// Independent generator for (phase, chunk): the golden-ratio odd
/// multiplier spreads chunk ids across the seed space and Rng's
/// SplitMix64 initialization decorrelates the rest.
Rng chunk_stream(std::uint64_t seed, std::uint64_t phase, std::uint64_t chunk) {
  return Rng(seed ^ ((phase << 56) + 0x9e3779b97f4a7c15ULL * (chunk + 1)));
}

/// Runs fn(chunk_id) for every chunk across the pool. Chunks must be
/// mutually independent (each writes only its own slots).
void for_each_chunk(ThreadPool& pool, std::size_t num_chunks,
                    const std::function<void(std::size_t)>& fn) {
  pool.parallel_for(0, num_chunks, [&](std::size_t b, std::size_t e) {
    for (std::size_t c = b; c < e; ++c) fn(c);
  });
}

/// All non-bogon /16 blocks, shuffled once. Allocation phases consume
/// disjoint contiguous slices of this list, so parallel chunks can never
/// hand out overlapping space.
std::vector<Prefix> build_free16(Rng& rng) {
  std::vector<Prefix> free16;
  free16.reserve(1 << 16);
  for (std::uint32_t block = 0; block < (1u << 16); ++block) {
    const Prefix p(Ipv4Addr(block << 16), 16);
    bool bogon = false;
    for (const auto& b : net::bogon_prefixes()) {
      if (b.overlaps(p)) {
        bogon = true;
        break;
      }
    }
    if (!bogon) free16.push_back(p);
  }
  rng.shuffle(free16);
  return free16;
}

/// Buddy allocator carving aligned blocks (lengths in [16, 24]) out of
/// /16s pulled on demand from `source`. The /16 source is a callback so
/// the counting pass (which measures a chunk's exact /16 demand against
/// dummy blocks) and the real pass (which consumes the chunk's slice of
/// the shuffled free list) share one code path — and therefore produce
/// the same take-from-source sequence, making the measured demand exact.
class BlockAllocator {
 public:
  explicit BlockAllocator(std::function<Prefix()> source)
      : source_(std::move(source)) {}

  Prefix take(std::uint8_t len) {
    assert(len >= 16 && len <= 24);
    if (len == 16) return source_();
    // Find the shortest free sub-block with length <= len; split down.
    for (std::uint8_t l = len; l > 16; --l) {
      auto& pool = sub_free_[l];
      if (!pool.empty()) {
        const Prefix block = pool.back();
        pool.pop_back();
        return split_down(block, len);
      }
    }
    return split_down(source_(), len);
  }

 private:
  Prefix split_down(Prefix block, std::uint8_t len) {
    while (block.length() < len) {
      sub_free_[static_cast<std::uint8_t>(block.length() + 1)].push_back(
          block.child(1));
      block = block.child(0);
    }
    return block;
  }

  std::function<Prefix()> source_;
  std::array<std::vector<Prefix>, 25> sub_free_{};
};

/// Counts how many /16s a request sequence consumes (the pass-A side of
/// the two-pass allocation). The dummy /16s are never compared or stored
/// beyond the buddy pools, only split.
class CountingSource {
 public:
  BlockAllocator allocator() {
    return BlockAllocator([this] {
      return Prefix(Ipv4Addr(static_cast<std::uint32_t>(taken_++) << 16), 16);
    });
  }
  std::size_t taken() const { return taken_; }

 private:
  std::size_t taken_ = 0;
};

/// Role during generation (finer than BusinessType: tier-1 vs transit).
enum class Role { kTier1, kTransit, kIsp, kHosting, kContent, kOther };

BusinessType role_type(Role r) {
  switch (r) {
    case Role::kTier1:
    case Role::kTransit: return BusinessType::kNsp;
    case Role::kIsp: return BusinessType::kIsp;
    case Role::kHosting: return BusinessType::kHosting;
    case Role::kContent: return BusinessType::kContent;
    case Role::kOther: return BusinessType::kOther;
  }
  return BusinessType::kOther;
}

/// Median allocation size in /24 equivalents by role (before global
/// scaling to the routed-space target).
double median_size24(Role r) {
  switch (r) {
    case Role::kTier1: return 16384.0;
    case Role::kTransit: return 2048.0;
    case Role::kIsp: return 512.0;
    case Role::kHosting: return 192.0;
    case Role::kContent: return 96.0;
    case Role::kOther: return 24.0;
  }
  return 24.0;
}

double size_sigma(Role r) {
  switch (r) {
    case Role::kTier1: return 0.5;
    case Role::kTransit: return 0.8;
    default: return 1.0;
  }
}

struct Draft {
  AsInfo info;
  Role role = Role::kOther;
  double desired24 = 0.0;
};

/// Emits the block lengths one AS's allocation is built from: whole
/// blocks of `block_len`, then the remainder rounded up to a power of
/// two. Shared by the counting and the allocating pass.
template <typename Emit>
void allocation_shape(std::uint64_t want_units, std::uint8_t block_len,
                      std::uint64_t block_units, Emit&& emit) {
  while (want_units >= block_units) {
    emit(block_len);
    want_units -= block_units;
  }
  if (want_units > 0) {
    std::uint8_t len = 24;
    std::uint64_t blocks = 1;
    while (blocks < want_units && len > block_len + 1) {
      blocks <<= 1;
      --len;
    }
    emit(len);
  }
}

/// Draws up to k distinct pool members != self (uniform, or weighted when
/// `dist` is provided). Bounded attempts keep degenerate pools finite.
std::vector<std::size_t> pick_distinct(
    Rng& rng, const std::vector<std::size_t>& pool,
    const util::DiscreteDistribution* dist, std::size_t k, std::size_t self) {
  std::vector<std::size_t> out;
  if (pool.empty()) return out;
  int attempts = 0;
  while (out.size() < k && attempts < 200) {
    ++attempts;
    const std::size_t cand = dist ? pool[(*dist)(rng)] : pool[rng.index(pool.size())];
    if (cand == self) continue;
    if (std::find(out.begin(), out.end(), cand) != out.end()) continue;
    out.push_back(cand);
  }
  return out;
}

}  // namespace

Topology generate_topology(const TopologyParams& params, std::uint64_t seed) {
  ThreadPool pool(1);  // inline execution: no workers are spawned
  return generate_topology(params, seed, pool);
}

Topology generate_topology(const TopologyParams& params, std::uint64_t seed,
                           ThreadPool& pool) {
  const std::size_t block_units = params.alloc_block_slash24;
  if (block_units < 2 || block_units > 256 ||
      (block_units & (block_units - 1)) != 0) {
    throw std::invalid_argument(
        "generate_topology: alloc_block_slash24 must be a power of two in "
        "[2, 256], got " +
        std::to_string(block_units));
  }
  std::uint8_t block_len = 24;
  for (std::uint64_t u = block_units; u > 1; u >>= 1) --block_len;

  // ---- population (serial, draw-free) ------------------------------------
  std::vector<Draft> drafts;
  drafts.reserve(params.total_ases());
  Asn next_asn = kFirstAsn;
  const auto add_group = [&](std::size_t n, Role role) {
    for (std::size_t i = 0; i < n; ++i) {
      Draft d;
      d.role = role;
      d.info.asn = next_asn++;
      d.info.type = role_type(role);
      drafts.push_back(std::move(d));
    }
  };
  add_group(params.num_tier1, Role::kTier1);
  add_group(params.num_transit, Role::kTransit);
  add_group(params.num_isp, Role::kIsp);
  add_group(params.num_hosting, Role::kHosting);
  add_group(params.num_content, Role::kContent);
  add_group(params.num_other, Role::kOther);
  if (drafts.empty()) throw std::invalid_argument("generate_topology: no ASes requested");

  // Fixed chunk grid over the AS population. The same granularity chunks
  // the link-indexed phases below.
  const std::size_t chunk_len = std::max<std::size_t>(1, params.chunk_ases);
  const auto chunk_grid = [&](std::size_t count) {
    const std::size_t n = std::max<std::size_t>(1, (count + chunk_len - 1) / chunk_len);
    return ThreadPool::partition(0, count, n);
  };
  const std::vector<IndexRange> as_chunks = chunk_grid(drafts.size());

  // ---- organizations (chunk-parallel) ------------------------------------
  // Walk each chunk's AS slice; every unassigned AS founds an org, which
  // with some probability absorbs a few of the following unassigned ASes
  // of the same chunk (absorption never crosses a chunk boundary — that
  // is what makes the phase communication-free). The org id is the
  // founder's dense index + 1: globally unique without coordination.
  std::vector<std::vector<AsLink>> org_links(as_chunks.size());
  for_each_chunk(pool, as_chunks.size(), [&](std::size_t c) {
    Rng rng = chunk_stream(seed, kStreamOrg, c);
    const auto [cb, ce] = as_chunks[c];
    std::vector<bool> assigned(ce - cb, false);
    for (std::size_t i = cb; i < ce; ++i) {
      if (assigned[i - cb]) continue;
      const OrgId org = static_cast<OrgId>(i + 1);
      drafts[i].info.org = org;
      assigned[i - cb] = true;
      if (!rng.chance(params.multi_as_org_fraction)) continue;

      const std::size_t extra =
          rng.uniform_u32(1, static_cast<std::uint32_t>(
                                 std::max<std::size_t>(1, params.max_org_size - 1)));
      std::vector<std::size_t> members{i};
      std::size_t j = i + 1;
      while (members.size() < extra + 1 && j < ce) {
        if (!assigned[j - cb]) {
          drafts[j].info.org = org;
          assigned[j - cb] = true;
          members.push_back(j);
        }
        ++j;
      }
      // Full sibling mesh, with partial BGP visibility (Sec 3.2: internal
      // peerings of multi-AS orgs are often not exposed).
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          AsLink l;
          l.from = drafts[members[a]].info.asn;
          l.to = drafts[members[b]].info.asn;
          l.type = RelType::kSibling;
          l.visible_in_bgp = rng.chance(params.sibling_link_visible_prob);
          org_links[c].push_back(l);
        }
      }
    }
  });

  // ---- desired allocation sizes (chunk-parallel) --------------------------
  for_each_chunk(pool, as_chunks.size(), [&](std::size_t c) {
    Rng rng = chunk_stream(seed, kStreamSize, c);
    for (std::size_t i = as_chunks[c].begin; i < as_chunks[c].end; ++i) {
      drafts[i].desired24 =
          rng.lognormal(std::log(median_size24(drafts[i].role)),
                        size_sigma(drafts[i].role));
    }
  });
  double raw_sum = 0.0;
  for (const auto& d : drafts) raw_sum += d.desired24;

  // ---- address space ------------------------------------------------------
  Rng space_rng = chunk_stream(seed, kStreamSpace, 0);
  const std::vector<Prefix> free16 = build_free16(space_rng);

  // Hold back enough /16s for the worst-case dark router-infrastructure
  // demand (every possible c2p link drawing a never-announced /24), plus
  // one partially-used /16 per chunk of either phase.
  const std::size_t edge_population = params.num_isp + params.num_hosting +
                                      params.num_content + params.num_other;
  const std::size_t max_c2p =
      (params.num_transit + edge_population) * (params.max_providers + 1);
  const std::size_t reserve16 = max_c2p / 256 + 2 * as_chunks.size() + 2;
  if (free16.size() <= reserve16) {
    throw std::runtime_error("generate_topology: population too large for the "
                             "available address space");
  }

  const double target_alloc24 = std::min(
      params.target_routed_fraction * net::kTotalSlash24 /
          std::max(0.05, 1.0 - params.unannounced_fraction),
      static_cast<double>(free16.size() - reserve16) * 256.0 * 0.95);
  // Water-fill: find the scale factor such that sum(min(raw*scale, cap))
  // hits the target, so the per-AS cap does not starve small topologies.
  const double per_as_cap =
      std::max(900.0 * 256.0,
               2.5 * target_alloc24 / static_cast<double>(drafts.size()));
  const auto total_at = [&](double s) {
    double sum = 0.0;
    for (const auto& d : drafts) sum += std::min(d.desired24 * s, per_as_cap);
    return sum;
  };
  double scale = target_alloc24 / raw_sum;
  if (total_at(scale) < target_alloc24) {
    double lo = scale, hi = scale;
    while (total_at(hi) < target_alloc24 && hi < 1e12) hi *= 2.0;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      (total_at(mid) < target_alloc24 ? lo : hi) = mid;
    }
    scale = hi;
  }

  // ---- address allocation (two-pass, chunk-parallel) ----------------------
  // Pass A simulates every chunk's allocation sequence against a counting
  // buddy allocator, yielding the chunk's exact /16 demand; a serial
  // prefix sum then assigns each chunk a disjoint slice of the shuffled
  // free list, and pass B performs the identical sequence for real. The
  // power-of-two remainder rounding can overshoot the water-fill target,
  // so the scale is shrunk (deterministically) until the demand fits.
  const auto want_units_of = [&](const Draft& d, double s) {
    const double want = std::min(d.desired24 * s, per_as_cap);
    return static_cast<std::uint64_t>(std::max(1.0, std::round(want)));
  };
  std::vector<std::size_t> demand16(as_chunks.size(), 0);
  std::vector<std::size_t> slice_off(as_chunks.size() + 1, 0);
  for (int attempt = 0;; ++attempt) {
    for_each_chunk(pool, as_chunks.size(), [&](std::size_t c) {
      CountingSource counter;
      BlockAllocator alloc = counter.allocator();
      for (std::size_t i = as_chunks[c].begin; i < as_chunks[c].end; ++i) {
        allocation_shape(want_units_of(drafts[i], scale), block_len, block_units,
                         [&](std::uint8_t len) { alloc.take(len); });
      }
      demand16[c] = counter.taken();
    });
    for (std::size_t c = 0; c < as_chunks.size(); ++c) {
      slice_off[c + 1] = slice_off[c] + demand16[c];
    }
    if (slice_off.back() + reserve16 <= free16.size()) break;
    if (attempt >= 8) {
      throw std::runtime_error(
          "generate_topology: address space exhausted (demand " +
          std::to_string(slice_off.back()) + " /16s of " +
          std::to_string(free16.size()) + ")");
    }
    scale *= 0.95 * static_cast<double>(free16.size() - reserve16) /
             static_cast<double>(slice_off.back());
  }

  for_each_chunk(pool, as_chunks.size(), [&](std::size_t c) {
    Rng rng = chunk_stream(seed, kStreamAlloc, c);
    const std::span<const Prefix> slice(free16.data() + slice_off[c], demand16[c]);
    std::size_t used = 0;
    BlockAllocator alloc([&slice, &used] {
      assert(used < slice.size() && "pass A demand must cover pass B");
      return slice[used++];
    });
    for (std::size_t i = as_chunks[c].begin; i < as_chunks[c].end; ++i) {
      auto& d = drafts[i];
      allocation_shape(want_units_of(d, scale), block_len, block_units,
                       [&](std::uint8_t len) {
                         d.info.prefixes.push_back(alloc.take(len));
                       });
      rng.shuffle(d.info.prefixes);
      d.info.announce_fraction = std::clamp(
          1.0 - params.unannounced_fraction * rng.uniform(0.3, 2.0), 0.5, 1.0);
    }
  });

  // ---- connectivity -------------------------------------------------------
  const auto asn_of = [&](std::size_t idx) { return drafts[idx].info.asn; };
  std::vector<std::size_t> tier1s, transits, isps, hostings, contents, others;
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    switch (drafts[i].role) {
      case Role::kTier1: tier1s.push_back(i); break;
      case Role::kTransit: transits.push_back(i); break;
      case Role::kIsp: isps.push_back(i); break;
      case Role::kHosting: hostings.push_back(i); break;
      case Role::kContent: contents.push_back(i); break;
      case Role::kOther: others.push_back(i); break;
    }
  }

  // Tier-1 clique (settlement-free mesh) — serial, draw-free.
  std::vector<AsLink> t1_links;
  for (std::size_t a = 0; a < tier1s.size(); ++a) {
    for (std::size_t b = a + 1; b < tier1s.size(); ++b) {
      t1_links.push_back({asn_of(tier1s[a]), asn_of(tier1s[b]),
                          RelType::kPeerToPeer, /*visible=*/true, Prefix()});
    }
  }

  // Weight transits by allocation size for provider selection. Built once
  // serially; the chunk workers below only read it.
  std::vector<double> transit_weight;
  transit_weight.reserve(transits.size());
  for (const std::size_t t : transits) transit_weight.push_back(drafts[t].desired24 + 1.0);
  std::optional<util::DiscreteDistribution> transit_dist;
  if (!transit_weight.empty()) transit_dist.emplace(transit_weight);

  // Transit providers and the sparse transit peering mesh, chunked over
  // the transit list. Providers are tier-1s or strictly earlier transits
  // (keeps the hierarchy acyclic); both lists are immutable here, so
  // cross-chunk reads are safe.
  const std::vector<IndexRange> transit_chunks = chunk_grid(transits.size());
  std::vector<std::vector<AsLink>> transit_links(transit_chunks.size());
  for_each_chunk(pool, transit_chunks.size(), [&](std::size_t c) {
    Rng rng = chunk_stream(seed, kStreamTransit, c);
    auto& out = transit_links[c];
    for (std::size_t ti = transit_chunks[c].begin; ti < transit_chunks[c].end; ++ti) {
      const std::size_t self = transits[ti];
      const std::size_t nprov =
          1 + rng.index(std::max<std::size_t>(1, params.max_providers));
      std::vector<std::size_t> provs;
      // Mostly tier-1s; sometimes an earlier (bigger-index == arbitrary) transit.
      for (std::size_t k = 0; k < nprov; ++k) {
        if (ti > 0 && rng.chance(0.3)) {
          const std::size_t other = transits[rng.index(ti)];
          if (other != self &&
              std::find(provs.begin(), provs.end(), other) == provs.end()) {
            provs.push_back(other);
            continue;
          }
        }
        if (tier1s.empty()) continue;
        const std::size_t t1 = tier1s[rng.index(tier1s.size())];
        if (std::find(provs.begin(), provs.end(), t1) == provs.end()) provs.push_back(t1);
      }
      for (const std::size_t p : provs) {
        out.push_back({asn_of(self), asn_of(p), RelType::kCustomerToProvider,
                       /*visible=*/true, Prefix()});
      }
      // Peering among transits (sparse mesh).
      for (std::size_t tj = ti + 1; tj < transits.size(); ++tj) {
        if (rng.chance(params.transit_peering_prob)) {
          out.push_back({asn_of(self), asn_of(transits[tj]), RelType::kPeerToPeer,
                         rng.chance(params.peer_link_visible_prob), Prefix()});
        }
      }
    }
  });

  // Edge networks: 1-3 providers drawn from transits (weighted), rarely a
  // tier-1 directly. Chunked over the concatenated edge list.
  std::vector<std::size_t> edge_list;
  edge_list.insert(edge_list.end(), isps.begin(), isps.end());
  edge_list.insert(edge_list.end(), hostings.begin(), hostings.end());
  edge_list.insert(edge_list.end(), contents.begin(), contents.end());
  edge_list.insert(edge_list.end(), others.begin(), others.end());
  const std::vector<IndexRange> edge_chunks = chunk_grid(edge_list.size());
  std::vector<std::vector<AsLink>> edge_links(edge_chunks.size());
  for_each_chunk(pool, edge_chunks.size(), [&](std::size_t c) {
    Rng rng = chunk_stream(seed, kStreamEdge, c);
    auto& out = edge_links[c];
    for (std::size_t ei = edge_chunks[c].begin; ei < edge_chunks[c].end; ++ei) {
      const std::size_t self = edge_list[ei];
      const std::size_t nprov =
          1 + rng.index(std::max<std::size_t>(1, params.max_providers));
      auto provs = pick_distinct(rng, transits,
                                 transit_dist ? &*transit_dist : nullptr, nprov,
                                 self);
      if (provs.empty() && !tier1s.empty()) provs.push_back(tier1s[rng.index(tier1s.size())]);
      if (rng.chance(0.08) && !tier1s.empty()) {
        const std::size_t t1 = tier1s[rng.index(tier1s.size())];
        if (std::find(provs.begin(), provs.end(), t1) == provs.end()) provs.push_back(t1);
      }
      for (const std::size_t p : provs) {
        out.push_back({asn_of(self), asn_of(p), RelType::kCustomerToProvider,
                       /*visible=*/true, Prefix()});
      }
    }
  });

  // Peering at the edge: content networks peer broadly with ISPs; ISPs
  // peer moderately among themselves and with hosting.
  const auto edge_peerings = [&](const std::vector<std::size_t>& who,
                                 const std::vector<std::size_t>& peer_pool,
                                 double mean, Stream stream) {
    const std::vector<IndexRange> chunks = chunk_grid(who.size());
    std::vector<std::vector<AsLink>> out(chunks.size());
    if (peer_pool.empty() || who.empty()) return out;
    for_each_chunk(pool, chunks.size(), [&](std::size_t c) {
      Rng rng = chunk_stream(seed, stream, c);
      for (std::size_t wi = chunks[c].begin; wi < chunks[c].end; ++wi) {
        const std::size_t self = who[wi];
        const auto n = static_cast<std::size_t>(
            rng.exponential(1.0 / std::max(0.1, mean)));
        auto ps = pick_distinct(rng, peer_pool, nullptr,
                                std::min<std::size_t>(n, peer_pool.size() / 2 + 1),
                                self);
        for (const std::size_t p : ps) {
          // store once with from < to to avoid duplicate mesh entries
          const Asn a = std::min(asn_of(self), asn_of(p));
          const Asn b = std::max(asn_of(self), asn_of(p));
          out[c].push_back({a, b, RelType::kPeerToPeer,
                            rng.chance(params.peer_link_visible_prob), Prefix()});
        }
      }
    });
    return out;
  };
  const auto content_peer_links =
      edge_peerings(contents, isps, params.content_peering_mean, kStreamContentPeer);
  std::vector<std::size_t> isp_pool;
  isp_pool.insert(isp_pool.end(), isps.begin(), isps.end());
  isp_pool.insert(isp_pool.end(), hostings.begin(), hostings.end());
  const auto isp_peer_links =
      edge_peerings(isps, isp_pool, params.isp_peering_mean, kStreamIspPeer);

  // Merge all link sources in fixed chunk order — the only order-sensitive
  // step, and it depends on the chunk grid alone.
  std::vector<AsLink> links;
  {
    std::size_t total = t1_links.size();
    const auto count = [&total](const std::vector<std::vector<AsLink>>& vs) {
      for (const auto& v : vs) total += v.size();
    };
    count(org_links);
    count(transit_links);
    count(edge_links);
    count(content_peer_links);
    count(isp_peer_links);
    links.reserve(total);
    const auto append = [&links](const std::vector<std::vector<AsLink>>& vs) {
      for (const auto& v : vs) links.insert(links.end(), v.begin(), v.end());
    };
    append(org_links);
    links.insert(links.end(), t1_links.begin(), t1_links.end());
    append(transit_links);
    append(edge_links);
    append(content_peer_links);
    append(isp_peer_links);
  }

  // Deduplicate links (same unordered pair may have been generated twice).
  {
    std::sort(links.begin(), links.end(), [](const AsLink& x, const AsLink& y) {
      const auto kx = std::tuple(std::min(x.from, x.to), std::max(x.from, x.to));
      const auto ky = std::tuple(std::min(y.from, y.to), std::max(y.from, y.to));
      if (kx != ky) return kx < ky;
      return static_cast<int>(x.type) < static_cast<int>(y.type);
    });
    links.erase(std::unique(links.begin(), links.end(),
                            [](const AsLink& x, const AsLink& y) {
                              return std::min(x.from, x.to) == std::min(y.from, y.to) &&
                                     std::max(x.from, x.to) == std::max(y.from, y.to);
                            }),
                links.end());
  }

  // ---- router infrastructure prefixes (two-pass, chunk-parallel) ----------
  // Each c2p link gets a /24 for its point-to-point router interfaces:
  // usually from the provider's space (stray router traffic then lands in
  // Invalid), otherwise from never-announced space (-> Unrouted). The
  // provider-sourced picks happen in pass A (links are partitioned, so
  // writing l.infra is race-free); dark /24s are counted per chunk and
  // carved in pass B from slices past the allocation phase's high-water
  // mark.
  const std::vector<IndexRange> link_chunks = chunk_grid(links.size());
  std::vector<std::vector<std::size_t>> dark_idx(link_chunks.size());
  for_each_chunk(pool, link_chunks.size(), [&](std::size_t c) {
    Rng rng = chunk_stream(seed, kStreamInfra, c);
    for (std::size_t li = link_chunks[c].begin; li < link_chunks[c].end; ++li) {
      AsLink& l = links[li];
      if (l.type != RelType::kCustomerToProvider) continue;
      assert(l.to >= kFirstAsn && l.to < kFirstAsn + drafts.size());
      const AsInfo& provider = drafts[l.to - kFirstAsn].info;
      if (rng.chance(params.infra_from_provider_prob) && !provider.prefixes.empty()) {
        const Prefix& base = provider.prefixes[rng.index(provider.prefixes.size())];
        if (base.length() >= 24) {
          l.infra = base;
        } else {
          const std::uint32_t slots = std::uint32_t(1) << (24 - base.length());
          const std::uint32_t pick = rng.uniform_u32(0, slots - 1);
          l.infra = Prefix(Ipv4Addr(base.first() + (pick << 8)), 24);
        }
      } else {
        dark_idx[c].push_back(li);  // carve from never-announced space in pass B
      }
    }
  });
  {
    std::vector<std::size_t> dark_off(link_chunks.size() + 1, slice_off.back());
    for (std::size_t c = 0; c < link_chunks.size(); ++c) {
      dark_off[c + 1] = dark_off[c] + (dark_idx[c].size() + 255) / 256;
    }
    if (dark_off.back() > free16.size()) {
      throw std::runtime_error(
          "generate_topology: address space exhausted by router infrastructure");
    }
    for_each_chunk(pool, link_chunks.size(), [&](std::size_t c) {
      const std::span<const Prefix> slice(free16.data() + dark_off[c],
                                          dark_off[c + 1] - dark_off[c]);
      std::size_t used = 0;
      BlockAllocator alloc([&slice, &used] {
        assert(used < slice.size());
        return slice[used++];
      });
      for (const std::size_t li : dark_idx[c]) links[li].infra = alloc.take(24);
    });
  }

  // ---- filtering ground truth (chunk-parallel) ----------------------------
  for_each_chunk(pool, as_chunks.size(), [&](std::size_t c) {
    Rng rng = chunk_stream(seed, kStreamFilter, c);
    for (std::size_t i = as_chunks[c].begin; i < as_chunks[c].end; ++i) {
      auto& d = drafts[i];
      const int t = static_cast<int>(d.info.type);
      d.info.filter.blocks_bogon = rng.chance(params.bogon_filter_prob[t]);
      d.info.filter.blocks_spoofed = rng.chance(params.spoof_filter_prob[t]);
      d.info.spoofer_density =
          std::max(0.0, params.spoofer_density[t] * rng.lognormal(0.0, 0.6));
      d.info.nat_leak_density =
          std::max(0.0, params.nat_leak_density[t] * rng.lognormal(0.0, 0.6));
    }
  });

  std::vector<AsInfo> ases;
  ases.reserve(drafts.size());
  for (auto& d : drafts) ases.push_back(std::move(d.info));

  Topology topo(std::move(ases), std::move(links));
  if (const auto problems = topo.validate(); !problems.empty()) {
    for (const auto& p : problems) util::log_error() << "generated topology: " << p;
    throw std::runtime_error("generate_topology: inconsistent topology: " + problems.front());
  }
  util::log_info() << "generated topology: " << topo.as_count() << " ASes, "
                   << topo.links().size() << " links, "
                   << topo.allocated_slash24() << " /24s allocated ("
                   << as_chunks.size() << " chunks)";
  return topo;
}

}  // namespace spoofscope::topo
