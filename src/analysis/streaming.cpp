#include "analysis/streaming.hpp"

#include <algorithm>
#include <sstream>

#include "net/protocols.hpp"
#include "util/format.hpp"

namespace spoofscope::analysis {

namespace {

constexpr const char* kClassNames[] = {"bogon", "unrouted", "invalid", "regular"};

inline bool is_udp(std::uint8_t proto) {
  return proto == static_cast<std::uint8_t>(net::Proto::kUdp);
}

/// Element-wise `dst += src`, growing dst as needed.
void add_series(std::vector<double>& dst, const std::vector<double>& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0.0);
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
}

/// Grows `v` so index `bin` is addressable.
inline void grow_to(std::vector<double>& v, std::size_t bin) {
  if (bin >= v.size()) v.resize(bin + 1, 0.0);
}

}  // namespace

ReportLimits ReportLimits::production() {
  ReportLimits l;
  l.max_members = 1 << 16;
  l.max_destinations = 1 << 16;
  l.max_sources_per_destination = 1 << 12;
  l.max_victims = 1 << 14;
  l.max_amplifiers_per_victim = 1 << 12;
  l.max_amplifiers = 1 << 16;
  l.max_pairs = 1 << 16;
  l.max_clusters = 1 << 14;
  l.max_counterparts_per_cluster = 1 << 12;
  l.sketch_k = 256;
  return l;
}

// ---------------------------------------------------------------- members

void MemberStatsBuilder::add(const net::FlowBatch& batch,
                             std::span<const Label> labels) {
  const auto member_in = batch.member_in();
  const auto packets = batch.packets();
  const auto bytes = batch.bytes();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& mc = members_.touch(member_in[i]);
    if (mc.member == net::kNoAsn) {
      mc.member = member_in[i];
      if (ixp_ != nullptr) {
        if (const auto* m = ixp_->find(member_in[i])) mc.type = m->type;
      }
    }
    const auto c =
        static_cast<int>(classify::Classifier::unpack(labels[i], space_idx_));
    mc.packets[c] += packets[i];
    mc.bytes[c] += static_cast<double>(bytes[i]);
    mc.flows[c] += 1;
  }
}

void MemberStatsBuilder::merge(const MemberStatsBuilder& other) {
  members_.merge(other.members_,
                 [](MemberClassCounts& ours, const MemberClassCounts& theirs) {
                   if (ours.member == net::kNoAsn) {
                     ours.member = theirs.member;
                     ours.type = theirs.type;
                   }
                   for (int c = 0; c < kNumClasses; ++c) {
                     ours.packets[c] += theirs.packets[c];
                     ours.bytes[c] += theirs.bytes[c];
                     ours.flows[c] += theirs.flows[c];
                   }
                 });
}

std::vector<MemberClassCounts> MemberStatsBuilder::finish() const {
  std::vector<MemberClassCounts> out;
  out.reserve(members_.size());
  for (const Asn asn : members_.sorted_keys()) out.push_back(*members_.find(asn));
  return out;
}

// ------------------------------------------------------------------- venn

void VennBuilder::add(const net::FlowBatch& batch,
                      std::span<const Label> labels) {
  const auto member_in = batch.member_in();
  const auto packets = batch.packets();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& mask = members_.touch(member_in[i]);
    if (packets[i] == 0) continue;  // contributes() requires packets > 0
    const auto c =
        static_cast<int>(classify::Classifier::unpack(labels[i], space_idx_));
    if (c != static_cast<int>(TrafficClass::kValid)) {
      mask = static_cast<std::uint8_t>(mask | (1u << c));
    }
  }
}

void VennBuilder::merge(const VennBuilder& other) {
  members_.merge(other.members_, [](std::uint8_t& ours, const std::uint8_t& theirs) {
    ours = static_cast<std::uint8_t>(ours | theirs);
  });
}

VennCounts VennBuilder::finish() const {
  VennCounts v;
  v.member_count = members_.size();
  if (v.member_count == 0) return v;

  double unrouted_members = 0, unrouted_with_other = 0;
  for (const Asn asn : members_.sorted_keys()) {
    const std::uint8_t mask = *members_.find(asn);
    const bool b = mask & (1u << static_cast<int>(TrafficClass::kBogon));
    const bool u = mask & (1u << static_cast<int>(TrafficClass::kUnrouted));
    const bool i = mask & (1u << static_cast<int>(TrafficClass::kInvalid));
    if (!b && !u && !i) v.clean += 1;
    if (b && !u && !i) v.only_bogon += 1;
    if (!b && u && !i) v.only_unrouted += 1;
    if (!b && !u && i) v.only_invalid += 1;
    if (b && u && !i) v.bogon_unrouted += 1;
    if (b && !u && i) v.bogon_invalid += 1;
    if (!b && u && i) v.unrouted_invalid += 1;
    if (b && u && i) v.all_three += 1;
    if (u) {
      unrouted_members += 1;
      if (b || i) unrouted_with_other += 1;
    }
  }
  const double n = static_cast<double>(v.member_count);
  for (double* f : {&v.clean, &v.only_bogon, &v.only_unrouted, &v.only_invalid,
                    &v.bogon_unrouted, &v.bogon_invalid, &v.unrouted_invalid,
                    &v.all_three}) {
    *f /= n;
  }
  v.unrouted_also_other =
      unrouted_members > 0 ? unrouted_with_other / unrouted_members : 0.0;
  return v;
}

// --------------------------------------------------------------- port mix

void PortMixBuilder::add(const net::FlowBatch& batch,
                         std::span<const Label> labels) {
  const auto proto = batch.proto();
  const auto sport = batch.sport();
  const auto dport = batch.dport();
  const auto packets = batch.packets();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    int transport;
    if (proto[i] == static_cast<std::uint8_t>(net::Proto::kTcp)) {
      transport = static_cast<int>(Transport::kTcp);
    } else if (is_udp(proto[i])) {
      transport = static_cast<int>(Transport::kUdp);
    } else {
      continue;  // Fig 9 covers TCP/UDP only
    }
    const auto c =
        static_cast<int>(classify::Classifier::unpack(labels[i], space_idx_));
    const auto bucket = [](std::uint16_t port) -> std::uint16_t {
      return net::is_tracked_port(port) ? port : 0;
    };
    counts_[c][transport][static_cast<int>(Direction::kDst)][bucket(dport[i])] +=
        packets[i];
    counts_[c][transport][static_cast<int>(Direction::kSrc)][bucket(sport[i])] +=
        packets[i];
    totals_[c][transport][static_cast<int>(Direction::kDst)] += packets[i];
    totals_[c][transport][static_cast<int>(Direction::kSrc)] += packets[i];
  }
}

void PortMixBuilder::merge(const PortMixBuilder& other) {
  for (int c = 0; c < kNumClasses; ++c) {
    for (int t = 0; t < 2; ++t) {
      for (int d = 0; d < 2; ++d) {
        for (const auto& [port, pkts] : other.counts_[c][t][d]) {
          counts_[c][t][d][port] += pkts;
        }
        totals_[c][t][d] += other.totals_[c][t][d];
      }
    }
  }
}

PortMix PortMixBuilder::finish() const {
  PortMix out;
  for (int c = 0; c < kNumClasses; ++c) {
    for (int t = 0; t < 2; ++t) {
      for (int d = 0; d < 2; ++d) {
        auto& dst = out.shares[c][t][d];
        const double total = totals_[c][t][d];
        for (const auto& [port, pkts] : counts_[c][t][d]) {
          if (total > 0) dst.push_back({port, pkts / total});
        }
        std::sort(dst.begin(), dst.end(),
                  [](const PortShare& a, const PortShare& b) {
                    return a.fraction > b.fraction;
                  });
      }
    }
  }
  return out;
}

// ----------------------------------------------------- traffic character

TrafficCharBuilder::TrafficCharBuilder(std::size_t space_idx,
                                       std::uint32_t window_seconds,
                                       std::uint32_t bin_seconds,
                                       std::size_t sketch_k,
                                       double small_threshold)
    : space_idx_(space_idx),
      window_seconds_(window_seconds),
      bin_seconds_(bin_seconds),
      small_threshold_(small_threshold) {
  for (auto& s : sketches_) s = util::QuantileSketch(sketch_k);
  if (window_seconds_ > 0) {
    const std::size_t bins = (window_seconds_ + bin_seconds_ - 1) / bin_seconds_;
    for (auto& s : series_) s.assign(bins, 0.0);
  }
}

std::size_t TrafficCharBuilder::bin_of(std::uint32_t ts) {
  if (window_seconds_ > 0) {
    return std::min<std::size_t>(ts / bin_seconds_, series_[0].size() - 1);
  }
  const std::size_t bin = ts / bin_seconds_;
  if (bin >= series_[0].size()) {
    for (auto& s : series_) s.resize(bin + 1, 0.0);
  }
  return bin;
}

void TrafficCharBuilder::add(const net::FlowBatch& batch,
                             std::span<const Label> labels) {
  const auto ts = batch.ts();
  const auto packets = batch.packets();
  const auto bytes = batch.bytes();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto c =
        static_cast<int>(classify::Classifier::unpack(labels[i], space_idx_));
    series_[c][bin_of(ts[i])] += packets[i];
    if (packets[i] == 0) continue;
    const double mean = static_cast<double>(bytes[i]) / packets[i];
    total_[c] += packets[i];
    if (mean < small_threshold_) small_[c] += packets[i];
    // Weight by sampled packets, capped — same rule as packet_size_cdfs.
    sketches_[c].add(mean, std::min(packets[i], 16u));
  }
}

void TrafficCharBuilder::merge(const TrafficCharBuilder& other) {
  for (int c = 0; c < kNumClasses; ++c) {
    small_[c] += other.small_[c];
    total_[c] += other.total_[c];
    add_series(series_[c], other.series_[c]);
    sketches_[c].merge(other.sketches_[c]);
  }
  // Keep the dynamic-mode invariant that all four series share a length.
  std::size_t bins = 0;
  for (const auto& s : series_) bins = std::max(bins, s.size());
  for (auto& s : series_) s.resize(bins, 0.0);
}

TrafficCharSummary TrafficCharBuilder::finish() const {
  TrafficCharSummary out;
  out.series.bin_seconds = bin_seconds_;
  out.series.series = series_;
  for (int c = 0; c < kNumClasses; ++c) {
    out.small_packet_fraction[c] = total_[c] > 0 ? small_[c] / total_[c] : 0.0;
  }
  out.size_sketch = sketches_;
  return out;
}

// --------------------------------------------------------- attack patterns

AttackPatternsBuilder::AttackPatternsBuilder(std::size_t space_idx,
                                             const ReportLimits& limits)
    : space_idx_(space_idx),
      limits_(limits),
      victims_(limits.max_victims),
      amplifiers_(limits.max_amplifiers) {
  for (auto& t : by_dst_) t.set_cap(limits.max_destinations);
}

void AttackPatternsBuilder::add(const net::FlowBatch& batch,
                                std::span<const Label> labels) {
  const auto src = batch.src();
  const auto dst = batch.dst();
  const auto proto = batch.proto();
  const auto dport = batch.dport();
  const auto packets = batch.packets();
  const auto member_in = batch.member_in();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto c =
        static_cast<int>(classify::Classifier::unpack(labels[i], space_idx_));
    if (c == static_cast<int>(TrafficClass::kValid)) continue;

    // Fig 11a: per-destination source uniqueness.
    auto& info = by_dst_[c].touch(dst[i]);
    info.sources.set_cap(limits_.max_sources_per_destination);
    info.packets += packets[i];
    info.sources.touch(src[i]);

    // NTP amplification: Invalid UDP towards port 123.
    if (c != static_cast<int>(TrafficClass::kInvalid)) continue;
    if (!is_udp(proto[i])) continue;
    invalid_udp_ += packets[i];
    if (dport[i] != net::ports::kNtp) continue;
    invalid_udp_ntp_ += packets[i];
    trigger_packets_ += packets[i];
    auto& v = victims_.touch(src[i]);
    v.per_amplifier.set_cap(limits_.max_amplifiers_per_victim);
    v.packets += packets[i];
    v.per_amplifier.touch(dst[i]) += packets[i];
    member_packets_[member_in[i]] += packets[i];
    amplifiers_.touch(dst[i]);
  }
}

void AttackPatternsBuilder::merge(const AttackPatternsBuilder& other) {
  for (int c = 0; c < kNumClasses; ++c) {
    by_dst_[c].merge(other.by_dst_[c], [this](DstInfo& ours, const DstInfo& theirs) {
      ours.sources.set_cap(limits_.max_sources_per_destination);
      ours.packets += theirs.packets;
      ours.sources.merge(theirs.sources, [](char&, const char&) {});
    });
  }
  victims_.merge(other.victims_, [this](VictimAgg& ours, const VictimAgg& theirs) {
    ours.per_amplifier.set_cap(limits_.max_amplifiers_per_victim);
    ours.packets += theirs.packets;
    ours.per_amplifier.merge(
        theirs.per_amplifier,
        [](std::uint64_t& a, const std::uint64_t& b) { a += b; });
  });
  amplifiers_.merge(other.amplifiers_, [](char&, const char&) {});
  for (const auto& [asn, pkts] : other.member_packets_) {
    member_packets_[asn] += pkts;
  }
  trigger_packets_ += other.trigger_packets_;
  invalid_udp_ += other.invalid_udp_;
  invalid_udp_ntp_ += other.invalid_udp_ntp_;
}

SrcRatioHistogram AttackPatternsBuilder::ratio(std::uint32_t min_sampled_packets,
                                               std::size_t bins) const {
  SrcRatioHistogram out;
  out.bins = bins;
  for (int c = 0; c < kNumClasses; ++c) {
    out.fractions[c].assign(bins, 0.0);
    std::size_t qualifying = 0;
    for (const std::uint32_t dst : by_dst_[c].sorted_keys()) {
      const DstInfo& info = *by_dst_[c].find(dst);
      if (info.packets < min_sampled_packets) continue;
      ++qualifying;
      const double r = static_cast<double>(info.sources.size()) /
                       static_cast<double>(info.packets);
      const std::size_t bin = std::min(
          bins - 1, static_cast<std::size_t>(r * static_cast<double>(bins)));
      out.fractions[c][bin] += 1.0;
    }
    out.destinations[c] = qualifying;
    if (qualifying > 0) {
      for (auto& f : out.fractions[c]) f /= static_cast<double>(qualifying);
    }
  }
  return out;
}

NtpAnalysis AttackPatternsBuilder::ntp(std::size_t top_victims) const {
  NtpAnalysis out;
  out.trigger_packets = trigger_packets_;
  out.distinct_victims = victims_.size();
  out.contributing_members = member_packets_.size();
  out.amplifiers_contacted = amplifiers_.size();
  out.invalid_udp_ntp_share =
      invalid_udp_ > 0 ? invalid_udp_ntp_ / invalid_udp_ : 0.0;

  if (out.trigger_packets > 0 && !member_packets_.empty()) {
    std::vector<std::uint64_t> per_member;
    per_member.reserve(member_packets_.size());
    for (const auto& [asn, pkts] : member_packets_) per_member.push_back(pkts);
    std::sort(per_member.rbegin(), per_member.rend());
    out.top_member_share =
        static_cast<double>(per_member[0]) / out.trigger_packets;
    std::uint64_t top5 = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, per_member.size());
         ++i) {
      top5 += per_member[i];
    }
    out.top5_member_share = static_cast<double>(top5) / out.trigger_packets;
  }

  std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
  ranked.reserve(victims_.size());
  for (const std::uint32_t addr : victims_.sorted_keys()) {
    ranked.emplace_back(victims_.find(addr)->packets, addr);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < std::min(top_victims, ranked.size()); ++i) {
    const VictimAgg& agg = *victims_.find(ranked[i].second);
    NtpVictim v;
    v.victim = net::Ipv4Addr(ranked[i].second);
    v.trigger_packets = agg.packets;
    v.amplifiers = agg.per_amplifier.size();
    for (const std::uint32_t amp : agg.per_amplifier.sorted_keys()) {
      v.packets_per_amplifier.push_back(*agg.per_amplifier.find(amp));
    }
    std::sort(v.packets_per_amplifier.rbegin(), v.packets_per_amplifier.rend());
    std::vector<double> d(v.packets_per_amplifier.begin(),
                          v.packets_per_amplifier.end());
    v.concentration = util::gini(d);
    out.top_victims.push_back(std::move(v));
  }
  return out;
}

std::uint64_t AttackPatternsBuilder::evictions() const {
  std::uint64_t n = victims_.evictions() + amplifiers_.evictions();
  for (const auto& t : by_dst_) n += t.evictions();
  return n;
}

// ------------------------------------------------------ amplification effect

AmplificationBuilder::AmplificationBuilder(std::size_t space_idx,
                                           std::uint32_t window_seconds,
                                           std::uint32_t bin_seconds,
                                           std::size_t max_pairs)
    : space_idx_(space_idx),
      window_seconds_(window_seconds),
      bin_seconds_(bin_seconds),
      pairs_(max_pairs) {}

std::size_t AmplificationBuilder::bin_of(std::uint32_t ts) const {
  const std::size_t bin = ts / bin_seconds_;
  if (window_seconds_ == 0) return bin;
  const std::size_t bins = (window_seconds_ + bin_seconds_ - 1) / bin_seconds_;
  return std::min(bin, bins - 1);
}

void AmplificationBuilder::add(const net::FlowBatch& batch,
                               std::span<const Label> labels) {
  const auto ts = batch.ts();
  const auto src = batch.src();
  const auto dst = batch.dst();
  const auto proto = batch.proto();
  const auto sport = batch.sport();
  const auto dport = batch.dport();
  const auto packets = batch.packets();
  const auto bytes = batch.bytes();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!is_udp(proto[i])) continue;
    const std::uint64_t fwd = (std::uint64_t(src[i]) << 32) | dst[i];
    const std::uint64_t rev = (std::uint64_t(dst[i]) << 32) | src[i];

    // Pair-qualification evidence (the oracle's pass 1).
    if (dport[i] == net::ports::kNtp &&
        classify::Classifier::unpack(labels[i], space_idx_) ==
            TrafficClass::kInvalid) {
      pairs_.touch(fwd).trigger = true;
    } else if (sport[i] == net::ports::kNtp) {
      pairs_.touch(rev).response = true;
    }

    // Volume lanes (the oracle's pass 2, which is label-agnostic). A
    // flow with both ports NTP contributes "to" if its forward pair
    // qualifies, else "from" if its reverse pair does — deferred to
    // finish() via the dual lanes.
    const std::size_t bin = bin_of(ts[i]);
    if (dport[i] == net::ports::kNtp) {
      PairState& p = pairs_.touch(fwd);
      if (sport[i] == net::ports::kNtp) {
        grow_to(p.dual_packets, bin);
        grow_to(p.dual_bytes, bin);
        p.dual_packets[bin] += packets[i];
        p.dual_bytes[bin] += static_cast<double>(bytes[i]);
      } else {
        grow_to(p.to_packets, bin);
        grow_to(p.to_bytes, bin);
        p.to_packets[bin] += packets[i];
        p.to_bytes[bin] += static_cast<double>(bytes[i]);
      }
    } else if (sport[i] == net::ports::kNtp) {
      PairState& p = pairs_.touch(rev);
      grow_to(p.from_packets, bin);
      grow_to(p.from_bytes, bin);
      p.from_packets[bin] += packets[i];
      p.from_bytes[bin] += static_cast<double>(bytes[i]);
    }
  }
}

void AmplificationBuilder::merge(const AmplificationBuilder& other) {
  pairs_.merge(other.pairs_, [](PairState& ours, const PairState& theirs) {
    ours.trigger = ours.trigger || theirs.trigger;
    ours.response = ours.response || theirs.response;
    add_series(ours.to_packets, theirs.to_packets);
    add_series(ours.to_bytes, theirs.to_bytes);
    add_series(ours.from_packets, theirs.from_packets);
    add_series(ours.from_bytes, theirs.from_bytes);
    add_series(ours.dual_packets, theirs.dual_packets);
    add_series(ours.dual_bytes, theirs.dual_bytes);
  });
}

AmplificationTimeseries AmplificationBuilder::finish() const {
  AmplificationTimeseries out;
  out.bin_seconds = bin_seconds_;
  std::size_t bins = 0;
  if (window_seconds_ > 0) {
    bins = (window_seconds_ + bin_seconds_ - 1) / bin_seconds_;
  } else {
    for (const std::uint64_t key : pairs_.sorted_keys()) {
      const PairState& p = *pairs_.find(key);
      for (const auto* v : {&p.to_packets, &p.from_packets, &p.dual_packets}) {
        bins = std::max(bins, v->size());
      }
    }
  }
  out.packets_to_amplifier.assign(bins, 0.0);
  out.packets_from_amplifier.assign(bins, 0.0);
  out.bytes_to_amplifier.assign(bins, 0.0);
  out.bytes_from_amplifier.assign(bins, 0.0);

  const auto qualified = [this](std::uint64_t key) {
    const PairState* p = pairs_.find(key);
    return p != nullptr && p->trigger && p->response;
  };
  for (const std::uint64_t key : pairs_.sorted_keys()) {
    const PairState& p = *pairs_.find(key);
    if (qualified(key)) {
      for (std::size_t b = 0; b < p.to_packets.size(); ++b) {
        out.packets_to_amplifier[b] += p.to_packets[b];
        out.bytes_to_amplifier[b] += p.to_bytes[b];
      }
      for (std::size_t b = 0; b < p.from_packets.size(); ++b) {
        out.packets_from_amplifier[b] += p.from_packets[b];
        out.bytes_from_amplifier[b] += p.from_bytes[b];
      }
      for (std::size_t b = 0; b < p.dual_packets.size(); ++b) {
        out.packets_to_amplifier[b] += p.dual_packets[b];
        out.bytes_to_amplifier[b] += p.dual_bytes[b];
      }
    } else {
      // Dual-port flows stored on an unqualified forward pair fall back
      // to the reverse ("from") direction, like the oracle's else-if.
      const std::uint64_t rev = (key << 32) | (key >> 32);
      if (!p.dual_packets.empty() && qualified(rev)) {
        for (std::size_t b = 0; b < p.dual_packets.size(); ++b) {
          out.packets_from_amplifier[b] += p.dual_packets[b];
          out.bytes_from_amplifier[b] += p.dual_bytes[b];
        }
      }
    }
  }
  return out;
}

// -------------------------------------------------------------- incidents

IncidentsBuilder::IncidentsBuilder(std::size_t space_idx, IncidentParams params,
                                   std::size_t max_clusters,
                                   std::size_t max_counterparts)
    : space_idx_(space_idx),
      params_(params),
      max_counterparts_(max_counterparts),
      by_dst_(max_clusters),
      by_trigger_src_(max_clusters) {}

void IncidentsBuilder::add(const net::FlowBatch& batch,
                           std::span<const Label> labels) {
  const auto ts = batch.ts();
  const auto src = batch.src();
  const auto dst = batch.dst();
  const auto proto = batch.proto();
  const auto dport = batch.dport();
  const auto packets = batch.packets();
  const auto bytes = batch.bytes();
  const auto member_in = batch.member_in();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto cls = classify::Classifier::unpack(labels[i], space_idx_);
    if (cls == TrafficClass::kValid) continue;
    const bool trigger_shaped =
        is_udp(proto[i]) && dport[i] == net::ports::kNtp;
    ClusterState& c = trigger_shaped ? by_trigger_src_.touch(src[i])
                                     : by_dst_.touch(dst[i]);
    c.counterparts.set_cap(max_counterparts_);
    c.start_ts = std::min(c.start_ts, ts[i]);
    c.end_ts = std::max(c.end_ts, ts[i]);
    c.packets += packets[i];
    c.bytes += bytes[i];
    c.counterparts.touch(trigger_shaped ? dst[i] : src[i]);
    c.members.insert(member_in[i]);
  }
}

void IncidentsBuilder::merge(const IncidentsBuilder& other) {
  const auto fold = [this](ClusterState& ours, const ClusterState& theirs) {
    ours.counterparts.set_cap(max_counterparts_);
    ours.start_ts = std::min(ours.start_ts, theirs.start_ts);
    ours.end_ts = std::max(ours.end_ts, theirs.end_ts);
    ours.packets += theirs.packets;
    ours.bytes += theirs.bytes;
    ours.counterparts.merge(theirs.counterparts, [](char&, const char&) {});
    ours.members.insert(theirs.members.begin(), theirs.members.end());
  };
  by_dst_.merge(other.by_dst_, fold);
  by_trigger_src_.merge(other.by_trigger_src_, fold);
}

std::vector<Incident> IncidentsBuilder::finish() const {
  std::vector<Incident> out;
  const auto emit = [&](IncidentKind kind, std::uint32_t victim,
                        const ClusterState& c, bool counterparts_are_sources) {
    Incident inc;
    inc.kind = kind;
    inc.victim = net::Ipv4Addr(victim);
    inc.start_ts = c.start_ts;
    inc.end_ts = c.end_ts;
    inc.packets = c.packets;
    inc.bytes = c.bytes;
    if (counterparts_are_sources) {
      inc.distinct_sources = c.counterparts.size();
    } else {
      inc.distinct_destinations = c.counterparts.size();
    }
    inc.members.assign(c.members.begin(), c.members.end());
    out.push_back(std::move(inc));
  };
  for (const std::uint32_t dst : by_dst_.sorted_keys()) {
    const ClusterState& c = *by_dst_.find(dst);
    if (c.packets < params_.min_packets) continue;
    const double uniqueness = static_cast<double>(c.counterparts.size()) /
                              static_cast<double>(c.packets);
    const IncidentKind kind = uniqueness >= params_.flood_uniqueness
                                  ? IncidentKind::kRandomSpoofFlood
                                  : IncidentKind::kOther;
    emit(kind, dst, c, /*counterparts_are_sources=*/true);
  }
  for (const std::uint32_t src : by_trigger_src_.sorted_keys()) {
    const ClusterState& c = *by_trigger_src_.find(src);
    if (c.packets < params_.min_packets) continue;
    emit(IncidentKind::kAmplification, src, c,
         /*counterparts_are_sources=*/false);
  }
  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    if (a.packets != b.packets) return a.packets > b.packets;
    return a.victim.value() < b.victim.value();
  });
  return out;
}

// -------------------------------------------------------- the full report

StreamingReport::StreamingReport(std::size_t space_count, ReportOptions opts)
    : opts_(opts),
      aggregate_(space_count),
      members_(opts.space_idx, opts.ixp, opts.limits.max_members),
      venn_(opts.space_idx, opts.limits.max_members),
      ports_(opts.space_idx),
      traffic_(opts.space_idx, opts.window_seconds, opts.bin_seconds,
               opts.limits.sketch_k, opts.small_packet_threshold),
      attacks_(opts.space_idx, opts.limits),
      amplification_(opts.space_idx, opts.window_seconds, opts.bin_seconds,
                     opts.limits.max_pairs),
      incidents_(opts.space_idx, opts.incident_params, opts.limits.max_clusters,
                 opts.limits.max_counterparts_per_cluster) {}

void StreamingReport::add(const net::FlowBatch& batch,
                          std::span<const classify::Label> labels) {
  aggregate_.add(batch, labels);
  members_.add(batch, labels);
  venn_.add(batch, labels);
  ports_.add(batch, labels);
  traffic_.add(batch, labels);
  attacks_.add(batch, labels);
  amplification_.add(batch, labels);
  incidents_.add(batch, labels);
  flows_ += batch.size();
}

void StreamingReport::merge(const StreamingReport& other) {
  aggregate_.merge(other.aggregate_);
  members_.merge(other.members_);
  venn_.merge(other.venn_);
  ports_.merge(other.ports_);
  traffic_.merge(other.traffic_);
  attacks_.merge(other.attacks_);
  amplification_.merge(other.amplification_);
  incidents_.merge(other.incidents_);
  flows_ += other.flows_;
}

std::uint64_t StreamingReport::evictions() const {
  return members_.evictions() + venn_.evictions() + attacks_.evictions() +
         amplification_.evictions() + incidents_.evictions();
}

ReportResult StreamingReport::finish() const {
  ReportResult r;
  r.aggregate = aggregate_.build();
  r.member_counts = members_.finish();
  r.venn = venn_.finish();
  for (const auto& mc : r.member_counts) {
    ++r.strategy_counts[static_cast<int>(deduce_strategy(mc))];
  }
  r.ports = ports_.finish();
  r.traffic = traffic_.finish();
  r.src_ratio = attacks_.ratio(opts_.ratio_min_packets, opts_.ratio_bins);
  r.ntp = attacks_.ntp(opts_.top_victims);
  r.amplification = amplification_.finish();
  r.incidents = incidents_.finish();
  r.flows = flows_;
  r.evictions = evictions();
  return r;
}

std::string format_report(const ReportResult& r, std::size_t top_incidents) {
  std::ostringstream os;
  os << format_venn(r.venn);

  os << "Filtering strategies (Sec 5.1):\n";
  for (int s = 0; s < kNumStrategies; ++s) {
    os << "  "
       << util::pad_right(strategy_name(static_cast<FilteringStrategy>(s)), 28)
       << util::pad_left(std::to_string(r.strategy_counts[s]), 6) << "\n";
  }

  {
    std::vector<double> shares;
    shares.reserve(r.member_counts.size());
    for (const auto& mc : r.member_counts) {
      shares.push_back(1.0 - mc.packet_share(TrafficClass::kValid));
    }
    os << "Per-member spoofed packet share (Fig 4): p50 "
       << util::percent(util::quantile(shares, 0.5)) << ", p90 "
       << util::percent(util::quantile(shares, 0.9)) << ", p99 "
       << util::percent(util::quantile(shares, 0.99)) << ", max "
       << util::percent(util::quantile(shares, 1.0)) << "\n";
  }

  os << "Traffic characteristics (Fig 8):\n";
  for (int c = 0; c < kNumClasses; ++c) {
    const auto& sk = r.traffic.size_sketch[c];
    os << "  " << util::pad_right(kClassNames[c], 9) << " median pkt size "
       << util::pad_left(util::fixed(sk.quantile(0.5), 1), 7) << " B, <60B "
       << util::pad_left(util::percent(r.traffic.small_packet_fraction[c]), 8)
       << ", burstiness "
       << util::fixed(burstiness(r.traffic.series.series[c]), 2)
       << ", diurnality "
       << util::fixed(
              diurnality(r.traffic.series.series[c], r.traffic.series.bin_seconds),
              2)
       << "\n";
  }

  os << format_port_mix(r.ports);

  os << "Src-per-dst uniqueness (Fig 11a), qualifying destinations:";
  for (int c = 0; c < kNumClasses; ++c) {
    if (c == static_cast<int>(TrafficClass::kValid)) continue;
    os << " " << kClassNames[c] << "=" << r.src_ratio.destinations[c];
  }
  os << "\n";

  os << "NTP amplification: " << r.ntp.trigger_packets << " trigger pkts from "
     << r.ntp.distinct_victims << " victim IPs towards "
     << r.ntp.amplifiers_contacted << " amplifiers; top member share "
     << util::percent(r.ntp.top_member_share) << "\n";
  os << "Amplification effect (Fig 11c): byte factor x"
     << util::fixed(r.amplification.amplification_factor(), 2)
     << ", packet ratio "
     << util::fixed(r.amplification.packet_ratio(), 2) << "\n";

  os << format_incidents(r.incidents, top_incidents);

  if (r.evictions > 0) {
    os << "note: " << r.evictions
       << " bounded-table evictions; tail entries are approximate\n";
  }
  return os.str();
}

}  // namespace spoofscope::analysis
