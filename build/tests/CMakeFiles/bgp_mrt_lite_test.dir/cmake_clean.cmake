file(REMOVE_RECURSE
  "CMakeFiles/bgp_mrt_lite_test.dir/bgp_mrt_lite_test.cpp.o"
  "CMakeFiles/bgp_mrt_lite_test.dir/bgp_mrt_lite_test.cpp.o.d"
  "bgp_mrt_lite_test"
  "bgp_mrt_lite_test.pdb"
  "bgp_mrt_lite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_mrt_lite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
