#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spoofscope::util {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, BasicMoments) {
  const std::vector<double> xs{1, 2, 3, 4};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.stddev, 1.118, 1e-3);
}

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> xs{5, 1, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs{7, 2, 9};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(Cdf, StepsAtDistinctValues) {
  const std::vector<double> xs{1, 1, 2, 3};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].y, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].y, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].y, 1.0);
}

TEST(Ccdf, ComplementOfCdf) {
  const std::vector<double> xs{1, 2, 3, 4};
  const auto ccdf = empirical_ccdf(xs);
  ASSERT_EQ(ccdf.size(), 4u);
  EXPECT_DOUBLE_EQ(ccdf[0].y, 0.75);
  EXPECT_DOUBLE_EQ(ccdf[3].y, 0.0);
}

TEST(Cdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
  EXPECT_TRUE(empirical_ccdf({}).empty());
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(-5.0);   // clamps into first bin
  h.add(100.0);  // clamps into last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, PowersLandInExpectedBins) {
  LogHistogram h(10.0, 6);
  h.add(0.0);    // bin 0: [0,1)
  h.add(5.0);    // bin 1: [1,10)
  h.add(50.0);   // bin 2: [10,100)
  h.add(1e9);    // clamps into last bin
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
}

TEST(LogHistogram, BinLowerEdges) {
  LogHistogram h(10.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 100.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{3, 2, 1};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsReturnZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Gini, UniformIsZero) {
  const std::vector<double> xs{5, 5, 5, 5};
  EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(Gini, FullConcentrationApproachesOne) {
  std::vector<double> xs(100, 0.0);
  xs[0] = 1000.0;
  EXPECT_GT(gini(xs), 0.98);
}

TEST(Gini, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(gini(zeros), 0.0);
}

}  // namespace
}  // namespace spoofscope::util
