// Checkpoint/resume differential: a detector killed at ANY record k and
// restored from its checkpoint must finish the stream with exactly the
// alerts and health counters of the uninterrupted run — across seeds,
// both engines (trie and flat, at several compile thread counts), and
// degraded-mode pressure (reorder buffer, member and sample caps), so
// the checkpoint has to carry every piece of state that can influence a
// future decision. Corrupted checkpoints must be rejected (strict) or
// degraded around into a clean fresh start (skip), never half-loaded.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <span>
#include <fstream>
#include <string>
#include <vector>

#include "classify/flat_classifier.hpp"
#include "classify/streaming.hpp"
#include "corruption.hpp"
#include "net/prefix.hpp"
#include "state/snapshot.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::classify {
namespace {

namespace fs = std::filesystem;
using net::Ipv4Addr;
using net::pfx;

/// Two-member routing view: member 1 owns 50.0/16, member 2 has routed
/// space but no valid space, so its traffic classifies spoofed and both
/// members grow windows (exercising the multi-member serialization).
struct Fixture {
  Fixture() {
    bgp::RoutingTableBuilder b;
    b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
    b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{2});
    table = b.build();
    trie::IntervalSet s;
    s.add(pfx("50.0.0.0/16"));
    std::unordered_map<Asn, trie::IntervalSet> spaces;
    spaces.emplace(1, std::move(s));
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

/// Degraded-mode pressure on every axis the checkpoint must carry:
/// reorder buffer with a hard cap, member cap (evictions), sample cap.
StreamingParams pressured_params() {
  StreamingParams p;
  p.window_seconds = 300;
  p.min_spoofed_packets = 20;
  p.min_share = 0.1;
  p.cooldown_seconds = 120;
  p.reorder_skew_seconds = 30;
  p.max_reorder_records = 64;
  p.max_members = 2;
  p.max_window_samples = 50;
  return p;
}

/// Jittered two-member mixed stream: timestamps wander within (and
/// occasionally beyond) the reorder skew, so checkpoints land with a
/// populated reorder buffer and some late drops.
std::vector<net::FlowRecord> make_stream(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<net::FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::FlowRecord f;
    // A third, rare member occasionally pushes past max_members=2 and
    // forces LRU evictions without starving the main windows.
    const bool via_member3 = rng.chance(0.02);
    const bool via_member2 = !via_member3 && rng.chance(0.3);
    const bool spoof = via_member2 || via_member3 || rng.chance(0.35);
    f.src = spoof ? Ipv4Addr::from_octets(99, 0, 0, static_cast<std::uint8_t>(1 + rng.index(250)))
                  : Ipv4Addr::from_octets(50, 0, 1, static_cast<std::uint8_t>(1 + rng.index(250)));
    f.dst = Ipv4Addr::from_octets(60, 0, 0, 1);
    const std::uint32_t base = static_cast<std::uint32_t>(i / 2);
    const std::uint32_t jitter = rng.uniform_u32(0, 40);  // can exceed skew
    f.ts = base + 40 - jitter;
    f.packets = 1 + rng.uniform_u32(0, 3);
    f.bytes = 40ull * f.packets;
    f.member_in = via_member3 ? 3 : via_member2 ? 2 : 1;
    flows.push_back(f);
  }
  return flows;
}

struct RunResult {
  std::vector<SpoofingAlert> alerts;
  DetectorHealth health;
};

template <typename MakeDetector>
RunResult uninterrupted(MakeDetector make, std::span<const net::FlowRecord> flows) {
  RunResult r;
  StreamingDetector d = make();
  r.alerts = d.run(flows);
  r.health = d.health();
  return r;
}

/// Kill-at-k: ingest k flows, checkpoint, drop the detector (the
/// "crash"), restore into a fresh one, finish. Alerts accumulate across
/// the boundary exactly as a monitoring pipeline would see them.
template <typename MakeDetector>
RunResult interrupted_at(MakeDetector make, std::span<const net::FlowRecord> flows,
                         std::size_t k, const std::string& ckpt) {
  RunResult r;
  const auto sink = [&r](const SpoofingAlert& a) { r.alerts.push_back(a); };
  {
    StreamingDetector before = make();
    for (std::size_t i = 0; i < k; ++i) before.ingest(flows[i], sink);
    before.save(ckpt);
  }
  StreamingDetector after = make();
  EXPECT_TRUE(after.restore(ckpt));
  EXPECT_EQ(after.processed(), k);
  for (std::size_t i = k; i < flows.size(); ++i) after.ingest(flows[i], sink);
  after.flush(sink);
  r.health = after.health();
  return r;
}

std::vector<std::size_t> cut_points(std::size_t n) {
  return {0, 1, n / 3, n / 2, n - 1, n};
}

class ScratchDir {
 public:
  // The pid suffix keeps concurrent runs from different build trees
  // (sanitizer sweeps, parallel ctest) from truncating each other's
  // mapped snapshots.
  explicit ScratchDir(const char* name)
      : path_(fs::temp_directory_path() /
              (std::string(name) + "." + std::to_string(::getpid()))) {
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string file(const char* name) const { return (path_ / name).string(); }

 private:
  fs::path path_;
};

TEST(StateResume, TrieEngineResumesBitIdenticallyAtEveryCut) {
  Fixture fx;
  ScratchDir dir("spoofscope_resume_trie");
  const auto params = pressured_params();
  const auto make = [&] { return StreamingDetector(*fx.classifier, 0, params); };
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const auto flows = make_stream(seed, 1200);
    const RunResult straight = uninterrupted(make, flows);
    ASSERT_FALSE(straight.alerts.empty()) << "seed " << seed << " raised no alerts";
    EXPECT_GT(straight.health.member_evictions, 0u);
    for (const std::size_t k : cut_points(flows.size())) {
      const RunResult resumed =
          interrupted_at(make, flows, k, dir.file("det.ckpt"));
      EXPECT_EQ(resumed.alerts, straight.alerts) << "seed " << seed << " k=" << k;
      EXPECT_EQ(resumed.health, straight.health) << "seed " << seed << " k=" << k;
    }
  }
}

TEST(StateResume, FlatEngineResumesAcrossCompileThreadCounts) {
  Fixture fx;
  ScratchDir dir("spoofscope_resume_flat");
  const auto params = pressured_params();
  const std::size_t hw = std::max<std::size_t>(2, util::ThreadPool(0).thread_count());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    util::ThreadPool pool(threads);
    const FlatClassifier flat = FlatClassifier::compile(*fx.classifier, pool);
    const auto make = [&] { return StreamingDetector(flat, 0, params); };
    for (const std::uint64_t seed : {11u, 22u}) {
      const auto flows = make_stream(seed, 1200);
      const RunResult straight = uninterrupted(make, flows);
      ASSERT_FALSE(straight.alerts.empty());
      for (const std::size_t k : cut_points(flows.size())) {
        const RunResult resumed =
            interrupted_at(make, flows, k, dir.file("det.ckpt"));
        EXPECT_EQ(resumed.alerts, straight.alerts)
            << "threads=" << threads << " seed " << seed << " k=" << k;
        EXPECT_EQ(resumed.health, straight.health)
            << "threads=" << threads << " seed " << seed << " k=" << k;
      }
    }
  }
}

TEST(StateResume, CheckpointsArePortableAcrossEngines) {
  Fixture fx;
  ScratchDir dir("spoofscope_resume_cross");
  const auto params = pressured_params();
  const FlatClassifier flat = FlatClassifier::compile(*fx.classifier);
  const auto flows = make_stream(11, 1200);
  const auto make_trie = [&] { return StreamingDetector(*fx.classifier, 0, params); };
  const RunResult straight = uninterrupted(make_trie, flows);
  const std::size_t k = flows.size() / 2;

  // Save from the trie engine, resume on the flat engine (and back).
  RunResult cross;
  const auto sink = [&cross](const SpoofingAlert& a) { cross.alerts.push_back(a); };
  {
    StreamingDetector before(*fx.classifier, 0, params);
    for (std::size_t i = 0; i < k; ++i) before.ingest(flows[i], sink);
    before.save(dir.file("trie.ckpt"));
  }
  StreamingDetector after(flat, 0, params);
  ASSERT_TRUE(after.restore(dir.file("trie.ckpt")));
  for (std::size_t i = k; i < flows.size(); ++i) after.ingest(flows[i], sink);
  after.flush(sink);
  cross.health = after.health();
  EXPECT_EQ(cross.alerts, straight.alerts);
  EXPECT_EQ(cross.health, straight.health);
}

TEST(StateResume, ConfigMismatchRefusesTheCheckpoint) {
  Fixture fx;
  ScratchDir dir("spoofscope_resume_cfg");
  const auto flows = make_stream(11, 400);
  const std::string ckpt = dir.file("det.ckpt");
  {
    StreamingDetector d(*fx.classifier, 0, pressured_params());
    for (const auto& f : flows) d.ingest(f, [](const SpoofingAlert&) {});
    d.save(ckpt);
  }
  StreamingParams other = pressured_params();
  other.min_share = 0.2;  // different detection semantics
  StreamingDetector d(*fx.classifier, 0, other);
  try {
    d.restore(ckpt);
    FAIL() << "config mismatch did not throw in strict mode";
  } catch (const state::SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::ErrorKind::kParse);
  }
  util::IngestStats st;
  EXPECT_FALSE(d.restore(ckpt, util::ErrorPolicy::kSkip, &st));
  EXPECT_EQ(st.errors[static_cast<std::size_t>(util::ErrorKind::kParse)], 1u);
  EXPECT_EQ(d.processed(), 0u);  // fresh state, not half-loaded
}

TEST(StateResume, MissingCheckpointThrowsStrictSkipsClean) {
  Fixture fx;
  StreamingDetector d(*fx.classifier, 0, pressured_params());
  EXPECT_THROW(d.restore("/nonexistent/dir/none.ckpt"), std::runtime_error);
  util::IngestStats st;
  EXPECT_FALSE(d.restore("/nonexistent/dir/none.ckpt",
                         util::ErrorPolicy::kSkip, &st));
  EXPECT_EQ(st.errors[static_cast<std::size_t>(util::ErrorKind::kTruncated)], 1u);
}

TEST(StateResume, CorruptedCheckpointsAreNeverSilentlyWrong) {
  Fixture fx;
  ScratchDir dir("spoofscope_resume_fuzz");
  const auto params = pressured_params();
  const auto make = [&] { return StreamingDetector(*fx.classifier, 0, params); };
  const auto flows = make_stream(22, 800);
  const RunResult straight = uninterrupted(make, flows);

  const std::string ckpt = dir.file("det.ckpt");
  {
    StreamingDetector d = make();
    for (std::size_t i = 0; i < flows.size() / 2; ++i) {
      d.ingest(flows[i], [](const SpoofingAlert&) {});
    }
    d.save(ckpt);
  }
  std::string image;
  {
    std::ifstream in(ckpt, std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(image.empty());

  util::Rng rng(4242);
  const std::string damaged_path = dir.file("damaged.ckpt");
  for (int trial = 0; trial < 60; ++trial) {
    const std::string damaged = trial % 2 == 0
                                    ? testing::truncate_bytes(image, rng)
                                    : testing::flip_bits(image, rng, 1);
    ASSERT_NE(damaged, image);
    {
      std::ofstream out(damaged_path, std::ios::binary);
      out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    }
    // Strict: loud, typed rejection.
    StreamingDetector strict_det = make();
    EXPECT_THROW(strict_det.restore(damaged_path), state::SnapshotError);

    // Skip: accounted fallback to fresh state — and the fresh detector
    // then reproduces the uninterrupted run exactly.
    StreamingDetector skip_det = make();
    util::IngestStats st;
    EXPECT_FALSE(skip_det.restore(damaged_path, util::ErrorPolicy::kSkip, &st));
    EXPECT_EQ(st.records_skipped, 1u);
    EXPECT_EQ(skip_det.processed(), 0u);
    if (trial < 4) {  // full differential is pricey; spot-check it
      RunResult fresh;
      fresh.alerts = skip_det.run(flows);
      fresh.health = skip_det.health();
      EXPECT_EQ(fresh.alerts, straight.alerts);
      EXPECT_EQ(fresh.health, straight.health);
    }
  }
}

}  // namespace
}  // namespace spoofscope::classify
