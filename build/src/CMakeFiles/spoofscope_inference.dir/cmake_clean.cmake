file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_inference.dir/inference/builder.cpp.o"
  "CMakeFiles/spoofscope_inference.dir/inference/builder.cpp.o.d"
  "CMakeFiles/spoofscope_inference.dir/inference/valid_space.cpp.o"
  "CMakeFiles/spoofscope_inference.dir/inference/valid_space.cpp.o.d"
  "libspoofscope_inference.a"
  "libspoofscope_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
