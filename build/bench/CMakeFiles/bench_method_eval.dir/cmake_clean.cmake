file(REMOVE_RECURSE
  "CMakeFiles/bench_method_eval.dir/bench_method_eval.cpp.o"
  "CMakeFiles/bench_method_eval.dir/bench_method_eval.cpp.o.d"
  "bench_method_eval"
  "bench_method_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_method_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
