file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/customer_cone.cpp.o"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/customer_cone.cpp.o.d"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/full_cone.cpp.o"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/full_cone.cpp.o.d"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/graph.cpp.o"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/graph.cpp.o.d"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/org_merge.cpp.o"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/org_merge.cpp.o.d"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/relationship.cpp.o"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/relationship.cpp.o.d"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/scc.cpp.o"
  "CMakeFiles/spoofscope_asgraph.dir/asgraph/scc.cpp.o.d"
  "libspoofscope_asgraph.a"
  "libspoofscope_asgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_asgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
