file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_business.dir/bench_fig6_business.cpp.o"
  "CMakeFiles/bench_fig6_business.dir/bench_fig6_business.cpp.o.d"
  "bench_fig6_business"
  "bench_fig6_business.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_business.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
