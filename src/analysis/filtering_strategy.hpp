// Sec 5.1: deducing each member's filtering strategy from what it emits.
// The paper derives *lower bounds* ("if we do not observe a member
// emitting flows in a class, we assume it filters that type") and argues
// this is a reasonable approximation over a 4-week window. With ground
// truth available, the simulation can also *score* that deduction.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "analysis/member_stats.hpp"
#include "topo/topology.hpp"

namespace spoofscope::analysis {

/// The strategies the paper distinguishes in its Fig 5 discussion.
enum class FilteringStrategy : std::uint8_t {
  /// Emits nothing illegitimate — "clean" (paper: 18% of members).
  kClean = 0,
  /// Emits only Bogon — presumably filters spoofing but lacks the static
  /// bogon ACL (paper: ~9.6%).
  kBogonLeakOnly = 1,
  /// Emits only Invalid — best-effort semi-static filters, no BCP38/84
  /// (paper: ~7.6%).
  kSemiStaticOnly = 2,
  /// Emits all three classes — no proper filtering (paper: 28%).
  kNoFiltering = 3,
  /// Any other combination — inconsistent/partial filtering.
  kInconsistent = 4,
};

inline constexpr int kNumStrategies = 5;

std::string strategy_name(FilteringStrategy s);

/// The paper's deduction rule applied to one member's observed classes.
FilteringStrategy deduce_strategy(const MemberClassCounts& counts);

/// How well the observation-based deduction matches the ground-truth
/// egress policy (unknowable outside a simulation).
struct StrategyAccuracy {
  std::size_t members = 0;

  /// Members deduced clean whose ground truth really validates sources.
  std::size_t clean_deduced = 0;
  std::size_t clean_truly_filtering = 0;

  /// Members deduced as not filtering whose ground truth indeed has
  /// neither filter enabled.
  std::size_t none_deduced = 0;
  std::size_t none_truly_unfiltered = 0;

  /// Members deduced bogon-leak-only whose ground truth matches
  /// (validates sources, no bogon ACL).
  std::size_t bogonleak_deduced = 0;
  std::size_t bogonleak_match = 0;

  double clean_precision() const {
    return clean_deduced ? double(clean_truly_filtering) / clean_deduced : 0;
  }
  double none_precision() const {
    return none_deduced ? double(none_truly_unfiltered) / none_deduced : 0;
  }
  double bogonleak_precision() const {
    return bogonleak_deduced ? double(bogonleak_match) / bogonleak_deduced : 0;
  }
};

/// Scores the deduction against the topology's ground-truth policies.
StrategyAccuracy strategy_accuracy(std::span<const MemberClassCounts> counts,
                                   const topo::Topology& topo);

std::string format_strategy_accuracy(const StrategyAccuracy& a);

}  // namespace spoofscope::analysis
