# Empty dependencies file for trie_prefix_set_test.
# This may be replaced when dependencies are built.
