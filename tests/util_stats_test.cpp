#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace spoofscope::util {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, BasicMoments) {
  const std::vector<double> xs{1, 2, 3, 4};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.stddev, 1.118, 1e-3);
}

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> xs{5, 1, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs{7, 2, 9};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(Cdf, StepsAtDistinctValues) {
  const std::vector<double> xs{1, 1, 2, 3};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].y, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].y, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].y, 1.0);
}

TEST(Ccdf, ComplementOfCdf) {
  const std::vector<double> xs{1, 2, 3, 4};
  const auto ccdf = empirical_ccdf(xs);
  ASSERT_EQ(ccdf.size(), 4u);
  EXPECT_DOUBLE_EQ(ccdf[0].y, 0.75);
  EXPECT_DOUBLE_EQ(ccdf[3].y, 0.0);
}

TEST(Cdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
  EXPECT_TRUE(empirical_ccdf({}).empty());
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(-5.0);   // clamps into first bin
  h.add(100.0);  // clamps into last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, PowersLandInExpectedBins) {
  LogHistogram h(10.0, 6);
  h.add(0.0);    // bin 0: [0,1)
  h.add(5.0);    // bin 1: [1,10)
  h.add(50.0);   // bin 2: [10,100)
  h.add(1e9);    // clamps into last bin
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
}

TEST(LogHistogram, BinLowerEdges) {
  LogHistogram h(10.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 100.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{3, 2, 1};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsReturnZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Gini, UniformIsZero) {
  const std::vector<double> xs{5, 5, 5, 5};
  EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(Gini, FullConcentrationApproachesOne) {
  std::vector<double> xs(100, 0.0);
  xs[0] = 1000.0;
  EXPECT_GT(gini(xs), 0.98);
}

TEST(Gini, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(gini(zeros), 0.0);
}

// ---------------------------------------------------------- QuantileSketch

/// True rank (number of samples <= x) in a materialized stream.
std::uint64_t true_rank(const std::vector<double>& xs, double x) {
  std::uint64_t r = 0;
  for (const double v : xs) {
    if (v <= x) ++r;
  }
  return r;
}

/// Every rank estimate must be within the sketch's self-reported bound.
void expect_ranks_within_bound(const QuantileSketch& sk,
                               const std::vector<double>& xs,
                               const char* what) {
  ASSERT_EQ(sk.count(), xs.size()) << what;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t stride = std::max<std::size_t>(1, sorted.size() / 500);
  for (std::size_t i = 0; i < sorted.size(); i += stride) {
    const double x = sorted[i];
    // True rank of sorted[i]: index of the last duplicate + 1.
    const auto last =
        std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin();
    const std::uint64_t exact = static_cast<std::uint64_t>(last);
    const std::uint64_t est = sk.rank(x);
    const std::uint64_t diff = est > exact ? est - exact : exact - est;
    EXPECT_LE(diff, sk.rank_error_bound()) << what << " x=" << x;
  }
}

TEST(QuantileSketch, ExactModeMatchesQuantileBitForBit) {
  QuantileSketch sk(64);
  EXPECT_EQ(sk.exact_threshold(), 64u);
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 63; ++i) {
    xs.push_back(static_cast<double>(rng.uniform_u32(0, 1000)));
    sk.add(xs.back());
  }
  ASSERT_TRUE(sk.exact());
  EXPECT_EQ(sk.rank_error_bound(), 0u);
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(sk.quantile(q), quantile(xs, q)) << "q=" << q;
  }
  for (const double x : xs) EXPECT_EQ(sk.rank(x), true_rank(xs, x));
}

TEST(QuantileSketch, ExactUntilThresholdThenSketched) {
  QuantileSketch sk(16);
  for (int i = 0; i < 15; ++i) sk.add(i);
  EXPECT_TRUE(sk.exact());
  sk.add(15);  // hits k: first compaction
  EXPECT_FALSE(sk.exact());
  EXPECT_GT(sk.rank_error_bound(), 0u);
}

TEST(QuantileSketch, EmptySketch) {
  const QuantileSketch sk;
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_TRUE(sk.exact());
  EXPECT_EQ(sk.quantile(0.5), 0.0);
}

TEST(QuantileSketch, WeightedAddFoldsIdenticalSamples) {
  QuantileSketch a(32), b(32);
  Rng rng(11);
  std::uint64_t total = 0;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(rng.uniform_u32(0, 100));
    const std::uint64_t w = 1 + rng.index(5);
    a.add(x, w);
    for (std::uint64_t j = 0; j < w; ++j) b.add(x);
    total += w;
  }
  EXPECT_EQ(a.count(), total);
  // add(x, w) is defined as w sequential inserts — bit-identical summary.
  EXPECT_EQ(a.rank_error_bound(), b.rank_error_bound());
  EXPECT_EQ(a.retained(), b.retained());
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
}

// The rank-error guarantee must survive adversarial insertion orders —
// the orderings that break naive reservoir/heap schemes.
TEST(QuantileSketch, AdversarialOrderingsStayWithinRankErrorBound) {
  constexpr std::size_t kN = 50000;
  constexpr std::size_t kK = 256;

  std::vector<double> ascending(kN);
  for (std::size_t i = 0; i < kN; ++i) ascending[i] = static_cast<double>(i);
  std::vector<double> descending(ascending.rbegin(), ascending.rend());
  std::vector<double> sawtooth(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    sawtooth[i] = static_cast<double>(i % 2 == 0 ? i / 2 : kN - 1 - i / 2);
  }
  std::vector<double> shuffled = ascending;
  Rng rng(20170205);
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.index(i + 1)]);
  }

  const struct {
    const char* name;
    const std::vector<double>* xs;
  } cases[] = {{"ascending", &ascending},
               {"descending", &descending},
               {"sawtooth", &sawtooth},
               {"shuffled", &shuffled}};
  for (const auto& c : cases) {
    QuantileSketch sk(kK);
    for (const double x : *c.xs) sk.add(x);
    expect_ranks_within_bound(sk, *c.xs, c.name);
    // The bound itself stays a small fraction of the stream (the §12
    // pinned accuracy contract for the report's packet-size quantiles).
    EXPECT_LT(static_cast<double>(sk.rank_error_bound()) / kN, 0.07) << c.name;
  }
}

TEST(QuantileSketch, DeterministicAcrossIdenticalStreams) {
  QuantileSketch a(64), b(64);
  Rng ra(3), rb(3);
  for (int i = 0; i < 10000; ++i) a.add(ra.uniform_u32(0, 1 << 20));
  for (int i = 0; i < 10000; ++i) b.add(rb.uniform_u32(0, 1 << 20));
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.retained(), b.retained());
  EXPECT_EQ(a.rank_error_bound(), b.rank_error_bound());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.999, 1.0}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
}

// merge() must keep every estimate within the combined bound no matter
// how the partial sketches are grouped — the property the chunk-order
// report reduction relies on.
TEST(QuantileSketch, MergeGroupingsAllStayWithinCombinedBounds) {
  constexpr std::size_t kN = 20000;
  constexpr std::size_t kParts = 4;
  std::vector<double> xs(kN);
  Rng rng(42);
  for (auto& x : xs) x = static_cast<double>(rng.uniform_u32(0, 1 << 16));

  std::vector<QuantileSketch> parts(kParts, QuantileSketch(128));
  for (std::size_t i = 0; i < kN; ++i) parts[i % kParts].add(xs[i]);

  // Left fold: ((p0 + p1) + p2) + p3.
  QuantileSketch left = parts[0];
  for (std::size_t p = 1; p < kParts; ++p) left.merge(parts[p]);
  // Right fold: p0 + (p1 + (p2 + p3)).
  QuantileSketch right = parts[kParts - 1];
  for (std::size_t p = kParts - 1; p-- > 0;) {
    QuantileSketch acc = parts[p];
    acc.merge(right);
    right = acc;
  }
  // Balanced: (p0 + p1) + (p2 + p3).
  QuantileSketch lo = parts[0], hi = parts[2];
  lo.merge(parts[1]);
  hi.merge(parts[3]);
  QuantileSketch balanced = lo;
  balanced.merge(hi);

  expect_ranks_within_bound(left, xs, "left fold");
  expect_ranks_within_bound(right, xs, "right fold");
  expect_ranks_within_bound(balanced, xs, "balanced");
}

TEST(QuantileSketch, MergeRejectsMismatchedK) {
  QuantileSketch a(64), b(128);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, RetainedMemoryStaysBounded) {
  constexpr std::size_t kN = 200000;
  constexpr std::size_t kK = 128;
  QuantileSketch sk(kK);
  Rng rng(9);
  for (std::size_t i = 0; i < kN; ++i) sk.add(rng.uniform_u32(0, 1u << 30));
  const double levels = std::log2(static_cast<double>(kN) / kK);
  EXPECT_LE(sk.retained(),
            kK * (static_cast<std::size_t>(std::ceil(levels)) + 2));
}

}  // namespace
}  // namespace spoofscope::util
