file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_util.dir/util/csv.cpp.o"
  "CMakeFiles/spoofscope_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/spoofscope_util.dir/util/format.cpp.o"
  "CMakeFiles/spoofscope_util.dir/util/format.cpp.o.d"
  "CMakeFiles/spoofscope_util.dir/util/log.cpp.o"
  "CMakeFiles/spoofscope_util.dir/util/log.cpp.o.d"
  "CMakeFiles/spoofscope_util.dir/util/rng.cpp.o"
  "CMakeFiles/spoofscope_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/spoofscope_util.dir/util/stats.cpp.o"
  "CMakeFiles/spoofscope_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/spoofscope_util.dir/util/strings.cpp.o"
  "CMakeFiles/spoofscope_util.dir/util/strings.cpp.o.d"
  "libspoofscope_util.a"
  "libspoofscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
