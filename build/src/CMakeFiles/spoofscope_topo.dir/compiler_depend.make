# Empty compiler generated dependencies file for spoofscope_topo.
# This may be replaced when dependencies are built.
