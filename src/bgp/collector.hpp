// Route collectors and the announcement plan.
//
// The paper consumes table dumps and updates from RIPE RIS / RouteViews
// collectors plus the IXP's route server. Here:
//  - an AnnouncementPlan decides which prefixes each AS announces, which
//    are announced only selectively (to a subset of providers — a source
//    of Naive/CC false positives) and which are transient (visible only
//    in update messages, not in table dumps);
//  - a RouteFabric runs the propagation once per plan group;
//  - collect_records() renders what one collector would record during the
//    measurement window, as MRT-lite records.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bgp/mrt_lite.hpp"
#include "bgp/simulator.hpp"
#include "topo/topology.hpp"
#include "util/thread_pool.hpp"

namespace spoofscope::bgp {

/// One group of identically-announced prefixes of a single origin.
struct AnnouncementGroup {
  Asn origin = net::kNoAsn;
  std::vector<net::Prefix> prefixes;
  /// Empty = export to all neighbors; otherwise selective announcement.
  std::vector<Asn> first_hops;
  /// Transient prefixes appear only in updates: announced at `announce_ts`
  /// and withdrawn at `withdraw_ts` (0 = never withdrawn).
  bool transient = false;
  std::uint32_t announce_ts = 0;
  std::uint32_t withdraw_ts = 0;
};

/// Everything every AS announces.
struct AnnouncementPlan {
  std::vector<AnnouncementGroup> groups;

  /// Total number of announced prefixes across all groups.
  std::size_t prefix_count() const;
};

/// Knobs for plan generation.
struct PlanParams {
  /// Fraction of announced prefixes announced only to a strict subset of
  /// the origin's providers (multihoming asymmetry, Sec 3.2 Naive pitfall).
  double selective_prob = 0.05;
  /// Fraction of announced prefixes that are transient (update-only).
  double transient_prob = 0.02;
  /// Fraction of announced prefixes deaggregated into more-specifics
  /// (traffic engineering); the paper notes ASes "announce changing sets
  /// of prefixes with varying aggregation levels". The aggregate is kept
  /// alongside its more-specifics half of the time.
  double deaggregate_prob = 0.10;
  /// Measurement window length (bounds transient timestamps).
  std::uint32_t window_seconds = net::kFourWeeks;
};

/// Builds the plan from the topology ground truth: each AS announces the
/// first announced_prefix_count() of its allocations, grouped by identical
/// export behaviour. Deterministic in (topology, params, seed).
AnnouncementPlan make_announcement_plan(const topo::Topology& topo,
                                        const PlanParams& params,
                                        std::uint64_t seed);

/// Precomputed propagation results for every plan group, shared by all
/// collectors (propagation depends only on origin and first-hop policy).
///
/// The pool overload fans the per-group propagations out over the pool's
/// worker threads; results are written to pre-assigned group slots, so
/// they are bit-identical to the sequential construction for every
/// thread count. Consecutive groups of the same origin with the same
/// first-hop policy (an origin's stable group followed by its transient
/// prefixes) share one propagation result instead of recomputing it.
///
/// A RouteFabric retains every group's result — convenient at IXP scale,
/// ruinous at internet scale (~1M prefixes x ~80K ASes of route state).
/// Internet-scale callers use propagate_collect() below, which streams
/// records per origin chunk and never holds more than one chunk of
/// results.
class RouteFabric {
 public:
  RouteFabric(const Simulator& sim, const AnnouncementPlan& plan);
  RouteFabric(const Simulator& sim, const AnnouncementPlan& plan,
              util::ThreadPool& pool);

  const AnnouncementPlan& plan() const { return *plan_; }
  const Simulator& simulator() const { return *sim_; }

  /// Propagation result of plan group `g`.
  const PropagationResult& result(std::size_t g) const { return *results_[g]; }

  std::size_t group_count() const { return results_.size(); }

 private:
  const Simulator* sim_;
  const AnnouncementPlan* plan_;
  std::vector<std::shared_ptr<const PropagationResult>> results_;
};

/// One collector (or route server) configuration.
struct CollectorSpec {
  std::string name;
  /// ASes feeding this collector.
  std::vector<Asn> feeders;
  /// Full-feed collectors (RIS/RouteViews style) receive the feeder's
  /// entire best-path table. Route-server-style collectors (full_feed ==
  /// false) receive only routes the feeder would export to a peer, i.e.
  /// origin/customer-class routes.
  bool full_feed = true;

  /// Table-dump cadence: 0 emits a single dump at t=0 (the default used
  /// by the scenario builder — the aggregated table is identical since
  /// the builder deduplicates); a positive value emits dumps every N
  /// seconds over `window_seconds`, like RIPE RIS (8h) and RouteViews
  /// (2h). Transient prefixes appear in the dumps taken while they were
  /// announced, in addition to their update messages.
  std::uint32_t dump_interval_seconds = 0;
  std::uint32_t window_seconds = net::kFourWeeks;
};

/// Renders the records `spec` collects over the window: TABLE_DUMP lines
/// for stable routes (dumped at t=0) and UPDATE lines for transient ones.
/// Feeders unknown to the topology throw std::invalid_argument.
std::vector<MrtRecord> collect_records(const RouteFabric& fabric,
                                       const CollectorSpec& spec);

/// Streaming variant: invokes `sink(record)` for every record instead of
/// materializing them — full feeds at paper scale produce tens of
/// millions of records, which should go straight into a
/// RoutingTableBuilder (or an MRT writer) without an intermediate vector.
void collect_records(const RouteFabric& fabric, const CollectorSpec& spec,
                     const std::function<void(const MrtRecord&)>& sink);

/// Options for propagate_collect().
struct PropagateOptions {
  /// Plan groups propagated (and retained) per chunk; 0 picks a size
  /// that bounds chunk route state to a few hundred MB. The choice
  /// affects scheduling only, never the records produced.
  std::size_t chunk_groups = 0;
};

/// Receives every record `specs[spec_idx]` collects.
using SpecSink = std::function<void(std::size_t spec_idx, const MrtRecord&)>;

/// Renders, for every spec at once, what it collects over the window —
/// without ever materializing propagation results for more than one
/// chunk of plan groups. Records are emitted in deterministic order
/// (plan-group major, then spec, then feeder) for every thread count and
/// chunk size. Unknown feeders throw std::invalid_argument up front;
/// an unknown plan-group origin throws std::invalid_argument naming the
/// offending group.
void propagate_collect(const Simulator& sim, const AnnouncementPlan& plan,
                       std::span<const CollectorSpec> specs,
                       util::ThreadPool& pool, const SpecSink& sink,
                       const PropagateOptions& options = {});

}  // namespace spoofscope::bgp
