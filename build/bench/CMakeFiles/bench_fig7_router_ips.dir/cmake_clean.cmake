file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_router_ips.dir/bench_fig7_router_ips.cpp.o"
  "CMakeFiles/bench_fig7_router_ips.dir/bench_fig7_router_ips.cpp.o.d"
  "bench_fig7_router_ips"
  "bench_fig7_router_ips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_router_ips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
