// Delta-checkpoint chains: a base full checkpoint plus small delta
// links must resume a detector bit-identically to the uninterrupted
// run, and every way a chain can rot — a damaged middle link, orphaned
// links with no base, reordered links, stale links from an earlier
// chain — must either refuse loudly (strict) or truncate to the newest
// provably-consistent cut (skip), never half-apply. Error messages must
// name the offending file and section so an operator can find the
// damage.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "classify/streaming.hpp"
#include "corruption.hpp"
#include "net/prefix.hpp"
#include "state/delta_chain.hpp"
#include "state/snapshot.hpp"
#include "util/rng.hpp"

namespace spoofscope::state {
namespace {

namespace fs = std::filesystem;
using classify::Classifier;
using classify::DetectorCheckpointExtra;
using classify::SpoofingAlert;
using classify::StreamingDetector;
using classify::StreamingParams;
using net::Asn;
using net::Ipv4Addr;
using net::pfx;

struct Fixture {
  Fixture() {
    bgp::RoutingTableBuilder b;
    b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
    b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{2});
    table = b.build();
    trie::IntervalSet s;
    s.add(pfx("50.0.0.0/16"));
    std::unordered_map<Asn, trie::IntervalSet> spaces;
    spaces.emplace(1, std::move(s));
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

StreamingParams pressured_params() {
  StreamingParams p;
  p.window_seconds = 300;
  p.min_spoofed_packets = 20;
  p.min_share = 0.1;
  p.cooldown_seconds = 120;
  p.reorder_skew_seconds = 30;
  p.max_reorder_records = 64;
  p.max_members = 2;
  p.max_window_samples = 50;
  return p;
}

std::vector<net::FlowRecord> make_stream(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<net::FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::FlowRecord f;
    const bool via_member3 = rng.chance(0.02);
    const bool via_member2 = !via_member3 && rng.chance(0.3);
    const bool spoof = via_member2 || via_member3 || rng.chance(0.35);
    f.src = spoof ? Ipv4Addr::from_octets(99, 0, 0, static_cast<std::uint8_t>(1 + rng.index(250)))
                  : Ipv4Addr::from_octets(50, 0, 1, static_cast<std::uint8_t>(1 + rng.index(250)));
    f.dst = Ipv4Addr::from_octets(60, 0, 0, 1);
    const std::uint32_t base = static_cast<std::uint32_t>(i / 2);
    const std::uint32_t jitter = rng.uniform_u32(0, 40);
    f.ts = base + 40 - jitter;
    f.packets = 1 + rng.uniform_u32(0, 3);
    f.bytes = 40ull * f.packets;
    f.member_in = via_member3 ? 3 : via_member2 ? 2 : 1;
    flows.push_back(f);
  }
  return flows;
}

class ScratchDir {
 public:
  explicit ScratchDir(const char* name)
      : path_(fs::temp_directory_path() /
              (std::string(name) + "." + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string file(const char* name) const { return (path_ / name).string(); }

 private:
  fs::path path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct RunResult {
  std::vector<SpoofingAlert> alerts;
  classify::DetectorHealth health;
  std::string final_save;  ///< bytes of a full checkpoint taken at the end
};

/// Builds a chain by checkpointing at each cut, "crashing" (dropping
/// detector and chain) after the last cut, resuming into fresh ones and
/// finishing. Captures a final full save so the differential asserts
/// bit-identity, not just logical equality.
struct ChainRun {
  Fixture* fx;
  StreamingParams params;
  std::string base;
  std::string final_ckpt;

  RunResult uninterrupted(std::span<const net::FlowRecord> flows) const {
    RunResult r;
    StreamingDetector d(*fx->classifier, 0, params);
    r.alerts = d.run(flows);
    r.health = d.health();
    d.save(final_ckpt);
    r.final_save = slurp(final_ckpt);
    return r;
  }

  RunResult crash_and_resume(std::span<const net::FlowRecord> flows,
                             std::span<const std::size_t> cuts,
                             std::size_t* deltas_applied = nullptr) const {
    RunResult r;
    const auto sink = [&r](const SpoofingAlert& a) { r.alerts.push_back(a); };
    std::size_t crash_at = 0;
    {
      DeltaChain chain(base);
      StreamingDetector before(*fx->classifier, 0, params);
      std::size_t next = 0;
      for (std::size_t cut : cuts) {
        for (; next < cut; ++next) before.ingest(flows[next], sink);
        chain.append(before, DetectorCheckpointExtra{});
      }
      crash_at = next;
    }  // crash: both detector and chain driver state evaporate
    DeltaChain chain(base);
    StreamingDetector after(*fx->classifier, 0, params);
    const DeltaResume res = chain.resume(after);
    EXPECT_TRUE(res.restored);
    EXPECT_EQ(res.deltas_dropped, 0u);
    if (deltas_applied != nullptr) *deltas_applied = res.deltas_applied;
    EXPECT_EQ(after.processed(), crash_at);
    for (std::size_t i = crash_at; i < flows.size(); ++i) {
      after.ingest(flows[i], sink);
    }
    after.flush(sink);
    r.health = after.health();
    after.save(final_ckpt);
    r.final_save = slurp(final_ckpt);
    return r;
  }
};

TEST(DeltaChainTest, FullDeltaDeltaResumesBitIdentically) {
  Fixture fx;
  ScratchDir dir("spoofscope_delta_chain");
  const ChainRun run{&fx, pressured_params(), dir.file("det.ckpt"),
                     dir.file("final.ckpt")};
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const auto flows = make_stream(seed, 1200);
    const RunResult straight = run.uninterrupted(flows);
    ASSERT_FALSE(straight.alerts.empty());

    // First append writes the base, the rest chain deltas off it.
    const std::vector<std::size_t> cuts = {100, 400, 900};
    std::size_t applied = 0;
    const RunResult resumed = run.crash_and_resume(flows, cuts, &applied);
    EXPECT_EQ(applied, cuts.size() - 1) << "seed " << seed;
    EXPECT_EQ(resumed.alerts, straight.alerts) << "seed " << seed;
    EXPECT_EQ(resumed.health, straight.health) << "seed " << seed;
    EXPECT_EQ(resumed.final_save, straight.final_save)
        << "seed " << seed << ": resumed state must serialize bit-identically";
  }
}

TEST(DeltaChainTest, ResumeAtEveryCutDepth) {
  Fixture fx;
  ScratchDir dir("spoofscope_delta_cuts");
  const ChainRun run{&fx, pressured_params(), dir.file("det.ckpt"),
                     dir.file("final.ckpt")};
  const auto flows = make_stream(77, 1200);
  const RunResult straight = run.uninterrupted(flows);
  // Deeper and deeper chains, including a cut with a hot reorder buffer
  // (k=1) and a checkpoint right at the end (k=n).
  for (const std::vector<std::size_t>& cuts :
       {std::vector<std::size_t>{1}, {1, 2}, {300, 600, 900, 1100},
        {200, 400, 600, 800, 1000, 1200}}) {
    const RunResult resumed = run.crash_and_resume(flows, cuts);
    EXPECT_EQ(resumed.alerts, straight.alerts) << "chain depth " << cuts.size();
    EXPECT_EQ(resumed.health, straight.health) << "chain depth " << cuts.size();
    EXPECT_EQ(resumed.final_save, straight.final_save);
  }
}

/// Ingests flows while appending checkpoints at `cuts`, leaving a
/// base + deltas chain on disk.
std::size_t build_chain(const Fixture& fx, const StreamingParams& params,
                        const std::string& base,
                        std::span<const net::FlowRecord> flows,
                        std::span<const std::size_t> cuts) {
  DeltaChain chain(base);
  StreamingDetector d(*fx.classifier, 0, params);
  std::size_t next = 0;
  for (const std::size_t cut : cuts) {
    for (; next < cut; ++next) d.ingest(flows[next], [](const SpoofingAlert&) {});
    chain.append(d, DetectorCheckpointExtra{});
  }
  return next;
}

TEST(DeltaChainTest, DamagedMiddleLinkStrictNamesFileAndSection) {
  Fixture fx;
  ScratchDir dir("spoofscope_delta_damage");
  const std::string base = dir.file("det.ckpt");
  const auto flows = make_stream(5, 900);
  const std::vector<std::size_t> cuts = {100, 400, 800};
  build_chain(fx, pressured_params(), base, flows, cuts);
  const std::string d1 = base + ".d1";
  const std::string d2 = base + ".d2";
  ASSERT_TRUE(fs::exists(d1));
  ASSERT_TRUE(fs::exists(d2));

  // Flip bits deep in d1's payload: a checksum must catch it, and the
  // error must name the file and the damaged section.
  const std::string good = slurp(d1);
  util::Rng rng(99);
  spew(d1, testing::flip_bits(good, rng, 3, good.size() / 2));

  StreamingDetector strict(*fx.classifier, 0, pressured_params());
  DeltaChain chain(base);
  try {
    chain.resume(strict, util::ErrorPolicy::kStrict);
    FAIL() << "damaged link must throw in strict mode";
  } catch (const SnapshotError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(d1), std::string::npos) << msg;
    EXPECT_NE(msg.find("section"), std::string::npos) << msg;
  }

  // Skip: truncate at d1 — the detector settles at the base cut (100
  // flows) and both the damaged link and the now-stale d2 are unlinked.
  StreamingDetector skip(*fx.classifier, 0, pressured_params());
  DeltaChain chain2(base);
  util::IngestStats stats;
  const DeltaResume res = chain2.resume(skip, util::ErrorPolicy::kSkip, &stats);
  EXPECT_TRUE(res.restored);
  EXPECT_EQ(res.deltas_applied, 0u);
  EXPECT_EQ(res.deltas_dropped, 2u);
  EXPECT_EQ(skip.processed(), 100u);
  EXPECT_FALSE(fs::exists(d1));
  EXPECT_FALSE(fs::exists(d2));

  // The truncated chain is immediately appendable again.
  DeltaChain chain3(base);
  StreamingDetector again(*fx.classifier, 0, pressured_params());
  ASSERT_TRUE(chain3.resume(again).restored);
  EXPECT_FALSE(chain3.append(again, DetectorCheckpointExtra{}))
      << "a healthy base takes a delta link, not a rollover";
  EXPECT_TRUE(fs::exists(d1));
}

TEST(DeltaChainTest, DamagedBaseNamesFileAndFallsBackFresh) {
  Fixture fx;
  ScratchDir dir("spoofscope_delta_base_damage");
  const std::string base = dir.file("det.ckpt");
  const auto flows = make_stream(6, 600);
  const std::vector<std::size_t> cuts = {200, 500};
  build_chain(fx, pressured_params(), base, flows, cuts);

  const std::string good = slurp(base);
  util::Rng rng(7);
  spew(base, testing::flip_bits(good, rng, 3, good.size() / 2));

  StreamingDetector strict(*fx.classifier, 0, pressured_params());
  DeltaChain chain(base);
  try {
    chain.resume(strict, util::ErrorPolicy::kStrict);
    FAIL() << "damaged base must throw in strict mode";
  } catch (const SnapshotError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(base), std::string::npos) << msg;
  }

  // Skip: unusable base means a fresh start; trailing links are stale.
  StreamingDetector skip(*fx.classifier, 0, pressured_params());
  DeltaChain chain2(base);
  const DeltaResume res = chain2.resume(skip, util::ErrorPolicy::kSkip);
  EXPECT_FALSE(res.restored);
  EXPECT_EQ(res.deltas_dropped, 1u);
  EXPECT_EQ(skip.processed(), 0u);
  EXPECT_FALSE(fs::exists(base + ".d1"));
}

TEST(DeltaChainTest, OrphanedLinksWithoutBase) {
  Fixture fx;
  ScratchDir dir("spoofscope_delta_orphan");
  const std::string base = dir.file("det.ckpt");
  const auto flows = make_stream(8, 600);
  const std::vector<std::size_t> cuts = {200, 500};
  build_chain(fx, pressured_params(), base, flows, cuts);
  fs::remove(base);
  ASSERT_TRUE(fs::exists(base + ".d1"));

  StreamingDetector strict(*fx.classifier, 0, pressured_params());
  DeltaChain chain(base);
  try {
    chain.resume(strict, util::ErrorPolicy::kStrict);
    FAIL() << "orphaned links must refuse loudly in strict mode";
  } catch (const SnapshotError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no base checkpoint"), std::string::npos) << msg;
    EXPECT_NE(msg.find(base), std::string::npos) << msg;
  }

  StreamingDetector skip(*fx.classifier, 0, pressured_params());
  DeltaChain chain2(base);
  const DeltaResume res = chain2.resume(skip, util::ErrorPolicy::kSkip);
  EXPECT_FALSE(res.restored);
  EXPECT_EQ(res.deltas_dropped, 1u);
  EXPECT_FALSE(fs::exists(base + ".d1"));
}

TEST(DeltaChainTest, ReorderedLinksFailTheChainProof) {
  Fixture fx;
  ScratchDir dir("spoofscope_delta_reorder");
  const std::string base = dir.file("det.ckpt");
  const auto flows = make_stream(9, 900);
  const std::vector<std::size_t> cuts = {100, 400, 800};
  build_chain(fx, pressured_params(), base, flows, cuts);
  const std::string d1 = base + ".d1";
  const std::string d2 = base + ".d2";

  // Swap the two links: both are intact snapshots, but d2-as-d1 carries
  // the wrong sequence number and parent digest.
  const std::string b1 = slurp(d1);
  const std::string b2 = slurp(d2);
  spew(d1, b2);
  spew(d2, b1);

  StreamingDetector strict(*fx.classifier, 0, pressured_params());
  DeltaChain chain(base);
  EXPECT_THROW(chain.resume(strict, util::ErrorPolicy::kStrict),
               SnapshotError);

  StreamingDetector skip(*fx.classifier, 0, pressured_params());
  DeltaChain chain2(base);
  const DeltaResume res = chain2.resume(skip, util::ErrorPolicy::kSkip);
  EXPECT_TRUE(res.restored);
  EXPECT_EQ(res.deltas_applied, 0u);
  EXPECT_EQ(res.deltas_dropped, 2u);
  EXPECT_EQ(skip.processed(), 100u);
}

TEST(DeltaChainTest, StaleLinkFromAnEarlierChainIsRejected) {
  Fixture fx;
  ScratchDir dir("spoofscope_delta_stale");
  const std::string base = dir.file("det.ckpt");
  const auto flows = make_stream(10, 900);
  const std::vector<std::size_t> cuts1 = {100, 400};
  build_chain(fx, pressured_params(), base, flows, cuts1);
  const std::string stale_d1 = slurp(base + ".d1");

  // A new chain from scratch overwrites the base; resurrect the old d1
  // beside it (a crash between base rewrite and unlink could leave it).
  const std::vector<std::size_t> cuts2 = {300};
  build_chain(fx, pressured_params(), base, flows, cuts2);
  ASSERT_FALSE(fs::exists(base + ".d1"));
  spew(base + ".d1", stale_d1);

  // Its parent digest points at the OLD base image: rejected.
  StreamingDetector skip(*fx.classifier, 0, pressured_params());
  DeltaChain chain(base);
  const DeltaResume res = chain.resume(skip, util::ErrorPolicy::kSkip);
  EXPECT_TRUE(res.restored);
  EXPECT_EQ(res.deltas_applied, 0u);
  EXPECT_EQ(res.deltas_dropped, 1u);
  EXPECT_EQ(skip.processed(), 300u);
}

TEST(DeltaChainTest, RolloverCompactsTheChain) {
  Fixture fx;
  ScratchDir dir("spoofscope_delta_rollover");
  const std::string base = dir.file("det.ckpt");
  const auto flows = make_stream(12, 1200);
  const auto params = pressured_params();

  DeltaChain chain(base, /*max_chain=*/2);
  StreamingDetector d(*fx.classifier, 0, params);
  std::size_t next = 0;
  const auto advance = [&](std::size_t upto) {
    for (; next < upto; ++next) d.ingest(flows[next], [](const SpoofingAlert&) {});
  };
  advance(100);
  EXPECT_TRUE(chain.append(d, {}));  // no base yet -> full
  advance(200);
  EXPECT_FALSE(chain.append(d, {}));  // d1
  advance(300);
  EXPECT_FALSE(chain.append(d, {}));  // d2 (chain now at max)
  advance(400);
  EXPECT_TRUE(chain.append(d, {}))   // rollover: fresh full checkpoint
      << "chain at max_chain must roll over into a full checkpoint";
  EXPECT_FALSE(fs::exists(base + ".d1"));
  EXPECT_FALSE(fs::exists(base + ".d2"));
  EXPECT_EQ(chain.chain_length(), 0u);
  advance(500);
  EXPECT_FALSE(chain.append(d, {}));  // new d1 off the new base

  // The compacted chain resumes to the newest cut.
  StreamingDetector r(*fx.classifier, 0, params);
  DeltaChain chain2(base);
  const DeltaResume res = chain2.resume(r);
  EXPECT_TRUE(res.restored);
  EXPECT_EQ(res.deltas_applied, 1u);
  EXPECT_EQ(r.processed(), 500u);
}

}  // namespace
}  // namespace spoofscope::state
