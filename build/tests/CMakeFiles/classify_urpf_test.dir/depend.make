# Empty dependencies file for classify_urpf_test.
# This may be replaced when dependencies are built.
