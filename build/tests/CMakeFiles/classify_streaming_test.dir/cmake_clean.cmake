file(REMOVE_RECURSE
  "CMakeFiles/classify_streaming_test.dir/classify_streaming_test.cpp.o"
  "CMakeFiles/classify_streaming_test.dir/classify_streaming_test.cpp.o.d"
  "classify_streaming_test"
  "classify_streaming_test.pdb"
  "classify_streaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
