file(REMOVE_RECURSE
  "libspoofscope_scenario.a"
)
