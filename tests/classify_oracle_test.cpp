// Oracle check: the production classifier (tries + packed labels) must
// agree with a from-first-principles reimplementation (linear bogon scan,
// interval-set routed check, direct valid-space lookup) on real scenario
// traffic and on adversarial corner addresses.
#include <gtest/gtest.h>

#include "net/bogon.hpp"
#include "util/rng.hpp"
#include "scenario/scenario.hpp"

namespace spoofscope::classify {
namespace {

/// Slow but obviously-correct Fig 3 implementation.
TrafficClass oracle_classify(const scenario::Scenario& w, net::Ipv4Addr src,
                             net::Asn member, std::size_t space_idx) {
  if (net::is_bogon(src)) return TrafficClass::kBogon;
  if (!w.table().routed_space().contains(src)) return TrafficClass::kUnrouted;
  const auto* space = w.classifier().space(space_idx).space_of(member);
  if (!space || !space->contains(src)) return TrafficClass::kInvalid;
  return TrafficClass::kValid;
}

class OracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleTest, ClassifierMatchesOracleOnScenarioTraffic) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam();
  const auto w = scenario::build_scenario(params);
  const auto& flows = w->trace().flows;
  const auto& labels = w->labels();

  for (std::size_t i = 0; i < flows.size(); i += 17) {  // sampled sweep
    for (std::size_t s = 0; s < w->classifier().space_count(); ++s) {
      EXPECT_EQ(Classifier::unpack(labels[i], s),
                oracle_classify(*w, flows[i].src, flows[i].member_in, s))
          << flows[i].str() << " space " << s;
    }
  }
}

TEST_P(OracleTest, ClassifierMatchesOracleOnAdversarialAddresses) {
  auto params = scenario::ScenarioParams::small();
  params.seed = GetParam() ^ 0xabc;
  const auto w = scenario::build_scenario(params);
  const auto member = w->ixp().members().front().asn;

  util::Rng rng(GetParam());
  std::vector<net::Ipv4Addr> probes;
  // Random addresses.
  for (int i = 0; i < 2000; ++i) probes.emplace_back(rng.next_u32());
  // Bogon boundaries (first/last address of every bogon range, +/- 1).
  for (const auto& b : net::bogon_prefixes()) {
    probes.emplace_back(b.first());
    probes.emplace_back(b.last());
    if (b.first() > 0) probes.emplace_back(b.first() - 1);
    if (b.last() < ~0u) probes.emplace_back(b.last() + 1);
  }
  // Routed prefix boundaries (a sample).
  const auto& prefixes = w->table().prefixes();
  for (std::size_t i = 0; i < prefixes.size(); i += 97) {
    probes.emplace_back(prefixes[i].first());
    probes.emplace_back(prefixes[i].last());
    if (prefixes[i].first() > 0) probes.emplace_back(prefixes[i].first() - 1);
    if (prefixes[i].last() < ~0u) probes.emplace_back(prefixes[i].last() + 1);
  }
  // Absolute extremes.
  probes.emplace_back(0u);
  probes.emplace_back(~0u);

  for (const auto src : probes) {
    const Label label = w->classifier().classify_all(src, member);
    for (std::size_t s = 0; s < w->classifier().space_count(); ++s) {
      EXPECT_EQ(Classifier::unpack(label, s), oracle_classify(*w, src, member, s))
          << src.str() << " space " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Values(1, 7, 2026));

}  // namespace
}  // namespace spoofscope::classify
