// Tiny leveled logger. Simulations are long-running; progress/warning
// output goes to stderr so stdout stays clean for report data.
#pragma once

#include <sstream>
#include <string>

namespace spoofscope::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default: kWarn, so library users are not
/// spammed unless they opt in).
void set_log_level(LogLevel level);

LogLevel log_level();

/// Emits a single line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
/// Stream-style one-line logger; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace spoofscope::util
