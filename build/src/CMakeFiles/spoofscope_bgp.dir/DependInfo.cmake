
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/as_path.cpp" "src/CMakeFiles/spoofscope_bgp.dir/bgp/as_path.cpp.o" "gcc" "src/CMakeFiles/spoofscope_bgp.dir/bgp/as_path.cpp.o.d"
  "/root/repo/src/bgp/collector.cpp" "src/CMakeFiles/spoofscope_bgp.dir/bgp/collector.cpp.o" "gcc" "src/CMakeFiles/spoofscope_bgp.dir/bgp/collector.cpp.o.d"
  "/root/repo/src/bgp/message.cpp" "src/CMakeFiles/spoofscope_bgp.dir/bgp/message.cpp.o" "gcc" "src/CMakeFiles/spoofscope_bgp.dir/bgp/message.cpp.o.d"
  "/root/repo/src/bgp/mrt_lite.cpp" "src/CMakeFiles/spoofscope_bgp.dir/bgp/mrt_lite.cpp.o" "gcc" "src/CMakeFiles/spoofscope_bgp.dir/bgp/mrt_lite.cpp.o.d"
  "/root/repo/src/bgp/routing_table.cpp" "src/CMakeFiles/spoofscope_bgp.dir/bgp/routing_table.cpp.o" "gcc" "src/CMakeFiles/spoofscope_bgp.dir/bgp/routing_table.cpp.o.d"
  "/root/repo/src/bgp/simulator.cpp" "src/CMakeFiles/spoofscope_bgp.dir/bgp/simulator.cpp.o" "gcc" "src/CMakeFiles/spoofscope_bgp.dir/bgp/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spoofscope_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spoofscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
