file(REMOVE_RECURSE
  "CMakeFiles/bench_sec45_spoofer.dir/bench_sec45_spoofer.cpp.o"
  "CMakeFiles/bench_sec45_spoofer.dir/bench_sec45_spoofer.cpp.o.d"
  "bench_sec45_spoofer"
  "bench_sec45_spoofer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec45_spoofer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
