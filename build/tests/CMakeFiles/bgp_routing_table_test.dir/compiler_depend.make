# Empty compiler generated dependencies file for bgp_routing_table_test.
# This may be replaced when dependencies are built.
