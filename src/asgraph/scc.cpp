#include "asgraph/scc.hpp"

#include <algorithm>

namespace spoofscope::asgraph {

SccResult strongly_connected_components(const AsGraph& g) {
  const std::size_t n = g.node_count();
  constexpr std::uint32_t kUnvisited = ~0u;

  SccResult res;
  res.component_of.assign(n, kUnvisited);

  std::vector<std::uint32_t> low(n, 0), disc(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  std::uint32_t timer = 0;

  // Iterative Tarjan: explicit DFS frames (node, next-successor index).
  struct Frame {
    std::uint32_t node;
    std::size_t next;
  };
  std::vector<Frame> frames;

  for (std::uint32_t start = 0; start < n; ++start) {
    if (disc[start] != kUnvisited) continue;
    frames.push_back({start, 0});
    disc[start] = low[start] = timer++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto succ = g.successors(f.node);
      if (f.next < succ.size()) {
        const std::uint32_t w = succ[f.next++];
        if (disc[w] == kUnvisited) {
          disc[w] = low[w] = timer++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.node] = std::min(low[f.node], disc[w]);
        }
        continue;
      }
      // All successors explored: close the frame.
      const std::uint32_t v = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] = std::min(low[frames.back().node], low[v]);
      }
      if (low[v] == disc[v]) {
        const auto comp = static_cast<std::uint32_t>(res.component_count++);
        res.members.emplace_back();
        while (true) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          res.component_of[w] = comp;
          res.members[comp].push_back(w);
          if (w == v) break;
        }
      }
    }
  }

  // Condensed DAG edges.
  res.dag_successors.resize(res.component_count);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t cv = res.component_of[v];
    for (const std::uint32_t w : g.successors(v)) {
      const std::uint32_t cw = res.component_of[w];
      if (cv != cw) res.dag_successors[cv].push_back(cw);
    }
  }
  for (auto& s : res.dag_successors) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return res;
}

}  // namespace spoofscope::asgraph
