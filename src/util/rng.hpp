// Deterministic random number generation for reproducible simulations.
//
// Everything in spoofscope that needs randomness takes an explicit Rng&;
// there is no global generator and no wall-clock seeding, so a scenario is
// fully determined by its seed.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cmath>
#include <span>
#include <vector>

namespace spoofscope::util {

/// xoshiro256** 1.0 (Blackman/Vigna), seeded via SplitMix64.
///
/// Fast, high-quality, and — unlike std::mt19937 — with a representation
/// that is identical across standard library implementations, which keeps
/// regression expectations stable.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  /// Re-initializes the state as if constructed with `seed`.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Next raw 32-bit output (upper half of next_u64).
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint32_t uniform_u32(std::uint32_t lo, std::uint32_t hi) {
    return static_cast<std::uint32_t>(uniform_u64(lo, hi));
  }

  /// Uniform size_t in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(uniform_u64(0, n - 1)); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Standard normal via Box-Muller (one value per call; no caching).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Pareto-distributed sample with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> xs) { return xs[index(xs.size())]; }

  template <typename T>
  const T& pick(const std::vector<T>& xs) { return xs[index(xs.size())]; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      std::swap(xs[i - 1], xs[index(i)]);
    }
  }

  /// Derives an independent child generator; children with distinct labels
  /// are statistically independent of each other and of the parent.
  Rng fork(std::uint64_t label);

 private:
  std::uint64_t s_[4];
};

/// Samples integers in [0, n) with probability proportional to 1/(i+1)^s.
///
/// Uses a precomputed inverse CDF (O(log n) per sample). Suitable for the
/// heavy-tailed popularity distributions in the traffic generator (member
/// traffic shares, destination popularity, application mix tails).
class ZipfDistribution {
 public:
  /// Builds the distribution over n ranks with exponent s >= 0.
  /// n must be >= 1. s == 0 degenerates to the uniform distribution.
  ZipfDistribution(std::size_t n, double s);

  /// Draws a rank in [0, n).
  std::size_t operator()(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

  /// Probability mass of rank i.
  double pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

/// Weighted discrete sampling over arbitrary non-negative weights.
class DiscreteDistribution {
 public:
  /// Builds from weights; at least one weight must be positive.
  explicit DiscreteDistribution(std::span<const double> weights);

  /// Draws an index in [0, weights.size()).
  std::size_t operator()(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace spoofscope::util
