# Empty compiler generated dependencies file for bench_method_eval.
# This may be replaced when dependencies are built.
