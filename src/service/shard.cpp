#include "service/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "classify/flat_classifier.hpp"

namespace spoofscope::service {

Shard::Shard(std::shared_ptr<const classify::FlatClassifier> plane,
             ShardConfig cfg)
    : cfg_(std::move(cfg)),
      plane_(std::move(plane)),
      detector_(*plane_, cfg_.space_idx, cfg_.params) {
  if (!cfg_.checkpoint_base.empty()) {
    chain_.emplace(cfg_.checkpoint_base, cfg_.max_chain);
  }
}

Shard::Shard(const classify::Classifier& classifier, ShardConfig cfg)
    : cfg_(std::move(cfg)),
      detector_(classifier, cfg_.space_idx, cfg_.params) {
  if (!cfg_.checkpoint_base.empty()) {
    chain_.emplace(cfg_.checkpoint_base, cfg_.max_chain);
  }
}

Shard::~Shard() { stop(); }

std::uint64_t Shard::resume(util::IngestStats* stats) {
  if (!chain_) return 0;
  const state::DeltaResume res = chain_->resume(detector_, cfg_.policy, stats);
  skip_records_ = res.restored ? detector_.processed() : 0;
  last_saved_ = detector_.processed();
  return skip_records_;
}

void Shard::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { worker(); });
}

void Shard::submit(net::FlowBatch batch) {
  std::unique_lock lk(mu_);
  work_cv_.wait(lk, [this] {
    return dead_ || stopping_ || queue_.size() < cfg_.max_queued_batches;
  });
  if (dead_) std::rethrow_exception(error_);
  if (stopping_) throw std::runtime_error("shard is stopping");
  Task task;
  task.op = Op::kBatch;
  task.batch = std::move(batch);
  queue_.push_back(std::move(task));
  work_cv_.notify_all();
}

void Shard::flush_async() {
  std::unique_lock lk(mu_);
  if (dead_) std::rethrow_exception(error_);
  queue_.push_back(Task{Op::kFlush, {}});
  work_cv_.notify_all();
}

void Shard::checkpoint_async() {
  std::unique_lock lk(mu_);
  if (dead_) std::rethrow_exception(error_);
  queue_.push_back(Task{Op::kCheckpoint, {}});
  work_cv_.notify_all();
}

void Shard::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return dead_ || (!busy_ && queue_.empty()); });
  if (dead_) std::rethrow_exception(error_);
}

void Shard::stop() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Shard::dead() const {
  std::lock_guard lk(mu_);
  return dead_;
}

void Shard::republish(std::shared_ptr<const classify::FlatClassifier> plane) {
  if (plane.get() != plane_.get()) {
    detector_.rebind(*plane);
  }
  plane_ = std::move(plane);
}

void Shard::worker() {
  std::unique_lock lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ with nothing left to drain
    Task task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lk.unlock();
    work_cv_.notify_all();  // a submit() slot freed up
    try {
      run_task(task);
    } catch (...) {
      lk.lock();
      error_ = std::current_exception();
      dead_ = true;
      busy_ = false;
      queue_.clear();
      idle_cv_.notify_all();
      work_cv_.notify_all();
      return;
    }
    lk.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void Shard::run_task(Task& task) {
  const auto on_alert = [this](const classify::SpoofingAlert& alert) {
    alerts_.push_back(alert);
  };
  switch (task.op) {
    case Op::kBatch: {
      ingest(task.batch);
      if (chain_ && cfg_.checkpoint_every != 0 &&
          detector_.processed() - last_saved_ >= cfg_.checkpoint_every) {
        save_checkpoint();
      }
      break;
    }
    case Op::kFlush:
      detector_.flush(on_alert);
      if (chain_) save_checkpoint();
      break;
    case Op::kCheckpoint:
      if (chain_) save_checkpoint();
      break;
  }
}

void Shard::ingest(const net::FlowBatch& batch) {
  const auto on_alert = [this](const classify::SpoofingAlert& alert) {
    alerts_.push_back(alert);
  };
  std::size_t start = 0;
  if (skip_records_ > 0) {
    start = static_cast<std::size_t>(
        std::min<std::uint64_t>(skip_records_, batch.size()));
    skip_records_ -= start;
  }
  if (start == 0) {
    detector_.ingest_batch(batch, on_alert);
  } else {
    // Resume fast-forward ends mid-batch: feed the tail per record.
    for (std::size_t i = start; i < batch.size(); ++i) {
      detector_.ingest(batch.record(i), on_alert);
    }
  }
}

void Shard::save_checkpoint() {
  const classify::DetectorCheckpointExtra extra{
      0, plane_ ? plane_->epoch() : 0};
  chain_->append(detector_, extra);
  last_saved_ = detector_.processed();
}

}  // namespace spoofscope::service
