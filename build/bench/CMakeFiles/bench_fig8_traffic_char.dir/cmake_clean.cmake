file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_traffic_char.dir/bench_fig8_traffic_char.cpp.o"
  "CMakeFiles/bench_fig8_traffic_char.dir/bench_fig8_traffic_char.cpp.o.d"
  "bench_fig8_traffic_char"
  "bench_fig8_traffic_char.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_traffic_char.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
