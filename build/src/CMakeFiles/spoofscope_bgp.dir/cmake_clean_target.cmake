file(REMOVE_RECURSE
  "libspoofscope_bgp.a"
)
