// Table 1: traffic contribution per class for the NAIVE / CC / FULL
// inference methods, plus the multi-AS-organization impact (Sec 4.3).
#include "bench/common.hpp"

#include "analysis/table1.hpp"
#include "classify/pipeline.hpp"
#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_ClassifyTrace(benchmark::State& state) {
  const auto& w = world();
  for (auto _ : state) {
    auto labels = classify::classify_trace(w.classifier(), w.trace().flows);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.trace().flows.size()));
}
BENCHMARK(BM_ClassifyTrace)->Unit(benchmark::kMillisecond);

void BM_AggregateClasses(benchmark::State& state) {
  const auto& w = world();
  for (auto _ : state) {
    auto agg = classify::aggregate_classes(w.classifier(), w.trace().flows,
                                           w.labels());
    benchmark::DoNotOptimize(agg);
  }
}
BENCHMARK(BM_AggregateClasses)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "Table 1 (class contributions per inference method)",
      "Bogon 525 members/0.02% pkts; Unrouted 378/0.02%; Invalid FULL "
      "393/0.03%; Invalid NAIVE 611/1.29%; Invalid CC 602/0.3%");
  const auto& w = world();
  const auto agg =
      classify::aggregate_classes(w.classifier(), w.trace().flows, w.labels());
  std::cout << analysis::format_table1(analysis::table1_columns(
                   agg, w.trace().scale(), w.ixp().member_count()))
            << "\n";

  // Sec 4.3: impact of the multi-AS organization adjustment.
  const auto inv_pkts = [&](inference::Method m) {
    return agg.totals[static_cast<std::size_t>(m)]
                     [static_cast<int>(classify::TrafficClass::kInvalid)]
                         .packets;
  };
  const double full_red =
      1.0 - inv_pkts(inference::Method::kFullConeOrg) /
                std::max(1.0, inv_pkts(inference::Method::kFullCone));
  const double cc_red =
      1.0 - inv_pkts(inference::Method::kCustomerConeOrg) /
                std::max(1.0, inv_pkts(inference::Method::kCustomerCone));
  std::cout << "Multi-AS organization impact (Sec 4.3; paper: FULL -15%, CC -85%):\n"
            << "  Invalid FULL reduced by " << util::percent(full_red) << "\n"
            << "  Invalid CC   reduced by " << util::percent(cc_red) << "\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
