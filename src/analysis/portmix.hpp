// Fig 9: port-based application mix per class, split by transport
// protocol and by direction (SRC vs DST port).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "analysis/member_stats.hpp"

namespace spoofscope::analysis {

/// Share of one port bucket. Port 0 stands for the aggregated "other".
struct PortShare {
  std::uint16_t port = 0;
  double fraction = 0;
};

/// Indexing constants for PortMix.
enum class Transport : int { kTcp = 0, kUdp = 1 };
enum class Direction : int { kDst = 0, kSrc = 1 };

/// Fig 9 data: for each class x transport x direction, the packet share
/// of the six tracked ports plus "other".
struct PortMix {
  /// shares[class][transport][direction], sorted by descending fraction.
  std::array<std::array<std::array<std::vector<PortShare>, 2>, 2>, kNumClasses>
      shares;

  /// Convenience: the fraction of `cls` traffic with this exact port in
  /// the given transport/direction (0 if untracked).
  double fraction_of(TrafficClass cls, Transport t, Direction d,
                     std::uint16_t port) const;
};

PortMix port_mix(std::span<const net::FlowRecord> flows,
                 std::span<const Label> labels, std::size_t space_idx);

std::string format_port_mix(const PortMix& mix);

}  // namespace spoofscope::analysis
