#include "trie/interval_set.hpp"

#include <gtest/gtest.h>

#include "net/prefix.hpp"
#include "util/rng.hpp"

namespace spoofscope::trie {
namespace {

using net::Ipv4Addr;
using net::pfx;

TEST(IntervalSet, EmptySet) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.address_count(), 0u);
  EXPECT_FALSE(s.contains(Ipv4Addr(0)));
}

TEST(IntervalSet, SingleRange) {
  IntervalSet s;
  s.add(10, 20);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.address_count(), 11u);
  EXPECT_TRUE(s.contains(Ipv4Addr(10)));
  EXPECT_TRUE(s.contains(Ipv4Addr(20)));
  EXPECT_FALSE(s.contains(Ipv4Addr(9)));
  EXPECT_FALSE(s.contains(Ipv4Addr(21)));
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.add(10, 20);
  s.add(15, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 30}));
}

TEST(IntervalSet, MergesAdjacent) {
  IntervalSet s;
  s.add(10, 20);
  s.add(21, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.address_count(), 21u);
}

TEST(IntervalSet, KeepsGapsSeparate) {
  IntervalSet s;
  s.add(10, 20);
  s.add(22, 30);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.contains(Ipv4Addr(21)));
}

TEST(IntervalSet, AddSpanningMultipleExisting) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  s.add(50, 60);
  s.add(15, 55);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 60}));
}

TEST(IntervalSet, AddBeforeAll) {
  IntervalSet s;
  s.add(100, 200);
  s.add(1, 2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{1, 2}));
}

TEST(IntervalSet, FullSpaceCount) {
  IntervalSet s;
  s.add(0, ~0u);
  EXPECT_EQ(s.address_count(), std::uint64_t(1) << 32);
  EXPECT_DOUBLE_EQ(s.slash24_equivalents(), 16777216.0);
}

TEST(IntervalSet, BoundaryAtMaxAddress) {
  IntervalSet s;
  s.add(~0u - 1, ~0u);
  s.add(0, 0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(Ipv4Addr(~0u)));
  EXPECT_TRUE(s.contains(Ipv4Addr(0)));
}

TEST(IntervalSet, FromIntervalsNormalizes) {
  const auto s = IntervalSet::from_intervals({{30, 40}, {10, 20}, {18, 32}});
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 40}));
}

TEST(IntervalSet, FromPrefixes) {
  const std::vector<net::Prefix> ps{pfx("10.0.0.0/24"), pfx("10.0.1.0/24")};
  const auto s = IntervalSet::from_prefixes(ps);
  EXPECT_EQ(s.size(), 1u);  // adjacent /24s merge
  EXPECT_EQ(s.address_count(), 512u);
}

TEST(IntervalSet, ContainsRange) {
  IntervalSet s;
  s.add(10, 100);
  EXPECT_TRUE(s.contains_range(10, 100));
  EXPECT_TRUE(s.contains_range(50, 60));
  EXPECT_FALSE(s.contains_range(5, 15));
  EXPECT_FALSE(s.contains_range(90, 110));
  EXPECT_FALSE(s.contains_range(200, 300));
}

TEST(IntervalSet, Unite) {
  IntervalSet a, b;
  a.add(10, 20);
  b.add(15, 30);
  b.add(50, 60);
  const auto u = a.unite(b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.address_count(), 21u + 11u);
}

TEST(IntervalSet, Intersect) {
  IntervalSet a, b;
  a.add(10, 30);
  a.add(50, 70);
  b.add(20, 60);
  const auto i = a.intersect(b);
  ASSERT_EQ(i.size(), 2u);
  EXPECT_EQ(i.intervals()[0], (Interval{20, 30}));
  EXPECT_EQ(i.intervals()[1], (Interval{50, 60}));
}

TEST(IntervalSet, IntersectDisjointIsEmpty) {
  IntervalSet a, b;
  a.add(10, 20);
  b.add(30, 40);
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(IntervalSet, Subtract) {
  IntervalSet a, b;
  a.add(10, 30);
  b.add(15, 20);
  const auto d = a.subtract(b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.intervals()[0], (Interval{10, 14}));
  EXPECT_EQ(d.intervals()[1], (Interval{21, 30}));
}

TEST(IntervalSet, SubtractEverything) {
  IntervalSet a, b;
  a.add(10, 30);
  b.add(0, 100);
  EXPECT_TRUE(a.subtract(b).empty());
}

TEST(IntervalSet, SubtractNothing) {
  IntervalSet a, b;
  a.add(10, 30);
  b.add(50, 60);
  EXPECT_EQ(a.subtract(b), a);
}

TEST(IntervalSet, SubtractAcrossMultiple) {
  IntervalSet a, b;
  a.add(0, 9);
  a.add(20, 29);
  a.add(40, 49);
  b.add(5, 44);
  const auto d = a.subtract(b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.intervals()[0], (Interval{0, 4}));
  EXPECT_EQ(d.intervals()[1], (Interval{45, 49}));
}

TEST(IntervalSet, ToPrefixesExactCover) {
  IntervalSet s;
  s.add(pfx("10.0.0.0/24"));
  const auto ps = s.to_prefixes();
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0], pfx("10.0.0.0/24"));
}

TEST(IntervalSet, ToPrefixesDecomposesUnaligned) {
  IntervalSet s;
  s.add(1, 6);  // {1/32, 2/31, 4/31, 6/32}
  const auto ps = s.to_prefixes();
  std::uint64_t total = 0;
  for (const auto& p : ps) {
    total += p.num_addresses();
    for (std::uint64_t a = p.first(); a <= p.last(); ++a) {
      EXPECT_TRUE(s.contains(Ipv4Addr(static_cast<std::uint32_t>(a))));
    }
  }
  EXPECT_EQ(total, s.address_count());
}

TEST(IntervalSet, ToPrefixesFullSpaceIsDefaultRoute) {
  IntervalSet s;
  s.add(0, ~0u);
  const auto ps = s.to_prefixes();
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0], pfx("0.0.0.0/0"));
}

// The flat classification plane's fallback lane leans on to_prefixes /
// from_prefixes being exact inverses: fuzz the round trip with random
// (overlapping, adjacent, extreme) intervals.
TEST(IntervalSet, ToPrefixesRoundTripUnderRandomIntervalFuzz) {
  util::Rng rng(0xf1a7);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Interval> ivs;
    const int n = 1 + static_cast<int>(rng.next_u32() % 20);
    for (int i = 0; i < n; ++i) {
      std::uint32_t a = rng.next_u32();
      std::uint32_t b = rng.next_u32();
      // Mix full-range chaos with clustered small intervals so merges,
      // adjacency and containment all occur.
      if (i % 3 == 0) {
        a &= 0xFFFF;
        b = a + (b & 0x3FF);
      }
      if (a > b) std::swap(a, b);
      ivs.push_back({a, b});
    }
    // Occasionally pin the extremes.
    if (iter % 5 == 0) ivs.push_back({0, rng.next_u32() & 0xFF});
    if (iter % 7 == 0) ivs.push_back({~0u - (rng.next_u32() & 0xFF), ~0u});

    const IntervalSet s = IntervalSet::from_intervals(std::move(ivs));
    const auto ps = s.to_prefixes();
    const IntervalSet back = IntervalSet::from_prefixes(ps);
    ASSERT_EQ(back, s) << "round trip diverged at iteration " << iter;
    // The decomposition must also be minimal-ish sane: exact address count.
    std::uint64_t total = 0;
    for (const auto& p : ps) total += p.num_addresses();
    ASSERT_EQ(total, s.address_count()) << "iteration " << iter;
  }
}

TEST(IntervalSet, AddAdjacencyMergesAtZero) {
  IntervalSet s;
  s.add(0, 0);
  s.add(1, 5);  // adjacent to [0,0]
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0, 5}));

  IntervalSet t;
  t.add(1, 5);
  t.add(0, 0);  // adjacency probed from the other side; lo == 0 edge
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.intervals()[0], (Interval{0, 5}));
  EXPECT_TRUE(t.contains(Ipv4Addr(0)));
}

TEST(IntervalSet, AddAdjacencyMergesAtMax) {
  IntervalSet s;
  s.add(~0u, ~0u);
  s.add(~0u - 5, ~0u - 1);  // adjacent below the top address
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{~0u - 5, ~0u}));

  IntervalSet t;
  t.add(~0u - 5, ~0u - 1);
  t.add(~0u, ~0u);  // hi == UINT32_MAX: the hi+1 probe must not wrap
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.intervals()[0], (Interval{~0u - 5, ~0u}));
  EXPECT_TRUE(t.contains(Ipv4Addr(~0u)));
  EXPECT_EQ(t.address_count(), 6u);
}

TEST(IntervalSet, AddNonAdjacentExtremesStaySeparate) {
  IntervalSet s;
  s.add(0, 0);
  s.add(~0u, ~0u);  // no wrap-around merge between 0xFFFFFFFF and 0
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.address_count(), 2u);
  s.add(2, ~0u - 2);  // gap of exactly 1 on both sides: no merge
  ASSERT_EQ(s.size(), 3u);
  s.add(1, 1);  // bridges [0,0] and [2, ...]
  s.add(~0u - 1, ~0u - 1);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0, ~0u}));
}

TEST(IntervalSet, IntersectsRangeAgreesWithIntersect) {
  util::Rng rng(0x1e45);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Interval> ivs;
    for (int i = 0; i < 8; ++i) {
      const std::uint32_t a = rng.next_u32() & 0xFFFFF;
      ivs.push_back({a, a + (rng.next_u32() & 0xFFF)});
    }
    const IntervalSet s = IntervalSet::from_intervals(std::move(ivs));
    for (int i = 0; i < 50; ++i) {
      std::uint32_t lo = rng.next_u32() & 0x1FFFFF;
      std::uint32_t hi = lo + (rng.next_u32() & 0x1FFF);
      IntervalSet probe;
      probe.add(lo, hi);
      ASSERT_EQ(s.intersects_range(lo, hi), !s.intersect(probe).empty())
          << "[" << lo << ", " << hi << "] iteration " << iter;
      ASSERT_EQ(s.contains_range(lo, hi),
                s.intersect(probe).address_count() == probe.address_count())
          << "[" << lo << ", " << hi << "] iteration " << iter;
    }
  }
}

}  // namespace
}  // namespace spoofscope::trie
