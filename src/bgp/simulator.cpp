#include "bgp/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace spoofscope::bgp {

using topo::RelType;

AsPath PropagationResult::path_at(std::size_t idx) const {
  if (routes_[idx].cls == RouteClass::kNone) return AsPath();
  std::vector<Asn> hops;
  std::uint32_t cur = static_cast<std::uint32_t>(idx);
  for (std::size_t guard = 0; guard <= routes_.size(); ++guard) {
    hops.push_back(topo_->asn_at(cur));
    if (routes_[cur].cls == RouteClass::kOrigin) return AsPath(std::move(hops));
    cur = routes_[cur].parent;
  }
  assert(false && "parent chain contains a cycle");
  return AsPath();
}

std::size_t PropagationResult::reachable_count() const {
  std::size_t n = 0;
  for (const auto& r : routes_) n += r.cls != RouteClass::kNone;
  return n;
}

Simulator::Simulator(const topo::Topology& topo) : topo_(&topo) {
  const std::size_t n = topo.as_count();
  // Two-pass CSR build: count degrees, then scatter edges into place.
  offsets_.assign(n + 1, 0);
  const auto each_directed = [&](auto&& fn) {
    for (const auto& l : topo.links()) {
      if (!l.visible_in_bgp) continue;  // invisible links never carry routes
      const auto fi = topo.index_of(l.from);
      const auto ti = topo.index_of(l.to);
      assert(fi && ti);
      const auto f = static_cast<std::uint32_t>(*fi);
      const auto t = static_cast<std::uint32_t>(*ti);
      const bool c2p = l.type == RelType::kCustomerToProvider;
      fn(f, Edge{t, l.type, /*up=*/c2p});
      fn(t, Edge{f, l.type, /*up=*/false});
    }
  };
  each_directed([&](std::uint32_t from, const Edge&) { ++offsets_[from + 1]; });
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  edges_.resize(offsets_[n]);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  each_directed([&](std::uint32_t from, const Edge& e) { edges_[cursor[from]++] = e; });
  // Deterministic tie-breaking: scan neighbors in ascending ASN order.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(edges_.begin() + offsets_[v], edges_.begin() + offsets_[v + 1],
              [&](const Edge& a, const Edge& b) {
                return topo.asn_at(a.to) < topo.asn_at(b.to);
              });
  }
}

PropagationResult Simulator::propagate(Asn origin,
                                       std::span<const Asn> allowed_first_hops) const {
  Workspace ws;
  return propagate(origin, allowed_first_hops, ws);
}

PropagationResult Simulator::propagate(Asn origin,
                                       std::span<const Asn> allowed_first_hops,
                                       Workspace& ws) const {
  const auto oi = topo_->index_of(origin);
  if (!oi) throw std::invalid_argument("Simulator: unknown origin AS " + std::to_string(origin));
  const std::uint32_t origin_idx = static_cast<std::uint32_t>(*oi);
  const std::size_t n = topo_->as_count();

  std::vector<Route> routes(n);
  routes[origin_idx] = Route{RouteClass::kOrigin, 0, origin_idx};

  const auto first_hop_allowed = [&](std::uint32_t from, std::uint32_t to) {
    if (from != origin_idx || allowed_first_hops.empty()) return true;
    const Asn asn = topo_->asn_at(to);
    return std::find(allowed_first_hops.begin(), allowed_first_hops.end(), asn) !=
           allowed_first_hops.end();
  };

  // Bucket queue by hop count (paths are at most n hops long). The
  // buckets live in the workspace: run_buckets leaves every bucket
  // cleared, so reuse across origins only recycles their capacity.
  auto& buckets = ws.buckets_;
  if (buckets.size() < n + 2) buckets.resize(n + 2);

  // `hi` tracks the highest occupied bucket so scans and clears touch
  // only the hop counts that actually occur (~topology diameter), not
  // all n of them.
  std::size_t hi = 0;
  const auto seed = [&](std::uint32_t v) {
    buckets[routes[v].hops].push_back(v);
    hi = std::max<std::size_t>(hi, routes[v].hops);
  };

  const auto relax = [&](std::uint32_t v, std::uint32_t t, RouteClass cls) {
    if (!first_hop_allowed(v, t)) return;
    const std::uint16_t nh = static_cast<std::uint16_t>(routes[v].hops + 1);
    Route& r = routes[t];
    if (r.cls == RouteClass::kNone) {
      r = Route{cls, nh, v};
      buckets[nh].push_back(t);
      hi = std::max<std::size_t>(hi, nh);
    } else if (r.cls == cls && r.hops == nh &&
               topo_->asn_at(v) < topo_->asn_at(r.parent)) {
      r.parent = v;  // same cost: prefer the lower next-hop ASN
    }
  };

  const auto run_buckets = [&](auto&& relax_from) {
    for (std::size_t h = 0; h <= hi; ++h) {
      // Buckets above h (and hi itself) can grow while processing hop h;
      // index loops are safe.
      for (std::size_t i = 0; i < buckets[h].size(); ++i) {
        relax_from(buckets[h][i]);
      }
    }
    for (std::size_t h = 0; h <= hi; ++h) buckets[h].clear();
    hi = 0;
  };

  // --- Phase 1: customer-class routes flow up c2p edges (and across
  // siblings, which are transparent).
  buckets[0].push_back(origin_idx);
  run_buckets([&](std::uint32_t v) {
    for (const Edge& e : edges_of(v)) {
      if ((e.rel == RelType::kCustomerToProvider && e.up) ||
          e.rel == RelType::kSibling) {
        relax(v, e.to, RouteClass::kCustomer);
      }
    }
  });

  // --- Phase 2: one peer hop from any customer-class route, then sibling
  // extension (peer-learned routes are shared inside an organization but
  // not re-exported to further peers or providers).
  for (std::uint32_t v = 0; v < n; ++v) {
    if (routes[v].cls == RouteClass::kOrigin || routes[v].cls == RouteClass::kCustomer) {
      seed(v);
    }
  }
  {
    auto& is_source = ws.is_source_;
    is_source.assign(n, 0);
    for (std::size_t h = 0; h <= hi; ++h) {
      for (const std::uint32_t v : buckets[h]) is_source[v] = 1;
    }
    run_buckets([&](std::uint32_t v) {
      if (is_source[v]) {
        for (const Edge& e : edges_of(v)) {
          if (e.rel == RelType::kPeerToPeer) relax(v, e.to, RouteClass::kPeer);
        }
      }
      for (const Edge& e : edges_of(v)) {
        if (e.rel == RelType::kSibling) relax(v, e.to, RouteClass::kPeer);
      }
    });
  }

  // --- Phase 3: provider-class routes flow down to customers (and across
  // siblings) from every AS that has any route.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (routes[v].cls != RouteClass::kNone) seed(v);
  }
  run_buckets([&](std::uint32_t v) {
    for (const Edge& e : edges_of(v)) {
      if (e.rel == RelType::kCustomerToProvider && !e.up) {
        relax(v, e.to, RouteClass::kProvider);
      } else if (e.rel == RelType::kSibling) {
        relax(v, e.to, RouteClass::kProvider);
      }
    }
  });

  return PropagationResult(topo_, origin_idx, std::move(routes));
}

}  // namespace spoofscope::bgp
