// MRT-lite: a line-oriented text serialization of collector data, in the
// spirit of the `bgpdump -m` output the measurement community exchanges.
//
//   TABLE_DUMP|<ts>|<peer_asn>|<prefix>|<as path>
//   UPDATE|A|<ts>|<peer_asn>|<prefix>|<as path>
//   UPDATE|W|<ts>|<peer_asn>|<prefix>
//
// Parsing is strict by default: malformed lines are reported with their
// line number so broken dumps fail loudly instead of silently shrinking
// the dataset. Live feeds can instead pass util::ErrorPolicy::kSkip to
// quarantine malformed lines (accounted in an IngestStats) and keep the
// surviving records — the record granularity is the line, so one corrupt
// line never poisons its neighbours.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "bgp/message.hpp"
#include "util/error_policy.hpp"

namespace spoofscope::bgp {

/// A parsed MRT-lite record.
using MrtRecord = std::variant<RibEntry, UpdateMessage>;

/// Serializes one RIB entry as a TABLE_DUMP line (no trailing newline).
std::string to_mrt_line(const RibEntry& e);

/// Serializes one update as an UPDATE line (no trailing newline).
std::string to_mrt_line(const UpdateMessage& u);

/// Parses one line. Throws std::runtime_error with a descriptive message
/// on malformed input. Empty lines and '#' comments are not accepted here;
/// the stream reader filters them.
MrtRecord parse_mrt_line(std::string_view line);

/// Writes records to a stream, one line each.
void write_mrt(std::ostream& out, const std::vector<MrtRecord>& records);

/// Reads a whole MRT-lite stream; skips blank lines and '#' comments.
/// Throws std::runtime_error naming the offending line on parse failure.
std::vector<MrtRecord> read_mrt(std::istream& in);

/// Policy-aware variant. kStrict behaves exactly like read_mrt(in);
/// kSkip drops malformed lines, accounts them in `stats` (optional) and
/// never throws. Which records survive is a pure per-line function of
/// the input text.
std::vector<MrtRecord> read_mrt(std::istream& in, util::ErrorPolicy policy,
                                util::IngestStats* stats = nullptr);

}  // namespace spoofscope::bgp
