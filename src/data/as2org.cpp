#include "data/as2org.hpp"

#include <map>

#include "util/rng.hpp"

namespace spoofscope::data {

namespace {

std::map<topo::OrgId, std::vector<net::Asn>> org_groups(const topo::Topology& topo) {
  std::map<topo::OrgId, std::vector<net::Asn>> groups;
  for (const auto& as : topo.ases()) groups[as.org].push_back(as.asn);
  return groups;
}

}  // namespace

asgraph::OrgMap build_as2org(const topo::Topology& topo,
                             const As2OrgParams& params, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<net::Asn>> out;
  for (const auto& [org, members] : org_groups(topo)) {
    if (members.size() < 2) continue;
    if (!rng.chance(params.org_coverage)) continue;
    std::vector<net::Asn> listed;
    for (const net::Asn a : members) {
      if (rng.chance(params.member_coverage)) listed.push_back(a);
    }
    if (listed.size() >= 2) out.push_back(std::move(listed));
  }
  return asgraph::OrgMap(std::move(out));
}

asgraph::OrgMap ground_truth_orgs(const topo::Topology& topo) {
  std::vector<std::vector<net::Asn>> out;
  for (const auto& [org, members] : org_groups(topo)) {
    if (members.size() >= 2) out.push_back(members);
  }
  return asgraph::OrgMap(std::move(out));
}

}  // namespace spoofscope::data
