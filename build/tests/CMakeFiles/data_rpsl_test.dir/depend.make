# Empty dependencies file for data_rpsl_test.
# This may be replaced when dependencies are built.
