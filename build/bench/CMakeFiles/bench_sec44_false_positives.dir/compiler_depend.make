# Empty compiler generated dependencies file for bench_sec44_false_positives.
# This may be replaced when dependencies are built.
