# Empty dependencies file for spoofscope_inference.
# This may be replaced when dependencies are built.
