#include "classify/router_tagger.hpp"

#include <map>

#include "net/protocols.hpp"

namespace spoofscope::classify {

std::vector<RouterStats> router_ip_stats(std::span<const net::FlowRecord> flows,
                                         std::span<const Label> labels,
                                         std::size_t space_idx,
                                         const data::ArkDataset& ark) {
  std::map<Asn, RouterStats> by_member;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (Classifier::unpack(labels[i], space_idx) != TrafficClass::kInvalid) {
      continue;
    }
    const auto& f = flows[i];
    auto& st = by_member[f.member_in];
    st.member = f.member_in;
    st.invalid_packets += f.packets;
    if (ark.is_router_ip(f.src)) st.router_invalid_packets += f.packets;
  }
  std::vector<RouterStats> out;
  out.reserve(by_member.size());
  for (const auto& [asn, st] : by_member) out.push_back(st);
  return out;
}

std::unordered_set<Asn> members_to_exclude(std::span<const RouterStats> stats,
                                           double threshold) {
  std::unordered_set<Asn> out;
  for (const auto& st : stats) {
    if (st.invalid_packets > 0 && st.router_fraction() >= threshold) {
      out.insert(st.member);
    }
  }
  return out;
}

RouterProtocolBreakdown router_protocol_breakdown(
    std::span<const net::FlowRecord> flows, const data::ArkDataset& ark) {
  double total = 0, icmp = 0, udp = 0, tcp = 0, udp_ntp = 0;
  for (const auto& f : flows) {
    if (!ark.is_router_ip(f.src)) continue;
    total += f.packets;
    switch (f.proto) {
      case net::Proto::kIcmp: icmp += f.packets; break;
      case net::Proto::kUdp:
        udp += f.packets;
        if (f.dport == net::ports::kNtp) udp_ntp += f.packets;
        break;
      case net::Proto::kTcp: tcp += f.packets; break;
    }
  }
  RouterProtocolBreakdown out;
  if (total > 0) {
    out.icmp = icmp / total;
    out.udp = udp / total;
    out.tcp = tcp / total;
    out.udp_to_ntp = udp > 0 ? udp_ntp / udp : 0.0;
  }
  return out;
}

}  // namespace spoofscope::classify
