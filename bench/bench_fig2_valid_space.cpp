// Fig 2: routed ASes sorted by the size of their valid address space for
// all five inference variants, plus the Sec 3.4 containment checks.
#include "bench/common.hpp"

#include "util/format.hpp"

namespace {

using namespace spoofscope;
using bench::world;

void BM_FullConeValidSizes(benchmark::State& state) {
  const auto& factory = world().factory();
  for (auto _ : state) {
    auto sizes = factory.valid_sizes(inference::Method::kFullCone);
    benchmark::DoNotOptimize(sizes);
  }
}
BENCHMARK(BM_FullConeValidSizes)->Unit(benchmark::kMillisecond);

void BM_BuildValidSpacesForMembers(benchmark::State& state) {
  const auto& factory = world().factory();
  const auto members = world().ixp().member_asns();
  for (auto _ : state) {
    auto vs = factory.build(inference::Method::kFullConeOrg, members);
    benchmark::DoNotOptimize(vs);
  }
}
BENCHMARK(BM_BuildValidSpacesForMembers)->Unit(benchmark::kMillisecond);

void print_reproduction() {
  bench::print_header(
      "Fig 2 (per-AS valid space by inference method)",
      "all methods agree on ~12K stub ASes; Full Cone diverges for the top "
      "ASes; ~5K ASes valid for the whole 11M routed /24s; "
      "Naive & CC contained in Full Cone");
  const auto& factory = world().factory();

  static const inference::Method kMethods[] = {
      inference::Method::kNaive, inference::Method::kCustomerCone,
      inference::Method::kCustomerConeOrg, inference::Method::kFullCone,
      inference::Method::kFullConeOrg};

  // Quantiles of the sorted size distributions (the Fig 2 curves).
  std::cout << util::pad_right("method", 10);
  for (const char* q : {"p10", "p50", "p90", "p99", "max"}) {
    std::cout << util::pad_left(q, 11);
  }
  std::cout << util::pad_left("#ASes@max", 11) << "\n";

  const double routed = world().table().routed_slash24();
  for (const auto m : kMethods) {
    const auto sizes = factory.valid_sizes(m);
    const auto at = [&](double q) {
      return sizes[static_cast<std::size_t>(q * (sizes.size() - 1))].second;
    };
    std::size_t at_max = 0;
    for (const auto& [asn, s] : sizes) at_max += s >= routed * 0.999;
    std::cout << util::pad_right(inference::method_name(m), 10);
    for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
      std::cout << util::pad_left(util::human_count(at(q)), 11);
    }
    std::cout << util::pad_left(std::to_string(at_max), 11) << "\n";
  }

  // Containment (Sec 3.4): Naive is inside the Full Cone by construction;
  // the Customer Cone can escape when the relationship inference gets a
  // link direction wrong (the paper verified containment held for their
  // data; CAIDA's inference is imperfect too).
  std::size_t naive_violations = 0, cc_violations = 0, checked = 0;
  const auto members = world().ixp().member_asns();
  const auto naive = factory.build(inference::Method::kNaive, members);
  const auto cc = factory.build(inference::Method::kCustomerCone, members);
  const auto full = factory.build(inference::Method::kFullCone, members);
  for (const auto asn : members) {
    ++checked;
    naive_violations +=
        !naive.space_of(asn)->subtract(*full.space_of(asn)).empty();
    cc_violations += !cc.space_of(asn)->subtract(*full.space_of(asn)).empty();
  }
  std::cout << "containment: NAIVE within FULL violated for " << naive_violations
            << "/" << checked << " ASes (structural: must be 0); CC within "
            << "FULL violated for " << cc_violations << "/" << checked
            << " ASes (inference direction errors)\n";
}

}  // namespace

SPOOFSCOPE_BENCH_MAIN(print_reproduction)
