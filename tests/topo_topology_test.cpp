#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include "net/prefix.hpp"

namespace spoofscope::topo {
namespace {

using net::pfx;

AsInfo make_as(Asn asn, BusinessType type, OrgId org,
               std::vector<net::Prefix> prefixes = {}) {
  AsInfo a;
  a.asn = asn;
  a.type = type;
  a.org = org;
  a.prefixes = std::move(prefixes);
  return a;
}

/// Small reference topology:
///   AS1 (NSP, org1) provider of AS2 and AS3; AS2 peers AS3;
///   AS3 and AS4 are siblings (org2).
Topology make_small() {
  std::vector<AsInfo> ases;
  ases.push_back(make_as(1, BusinessType::kNsp, 1, {pfx("20.0.0.0/8")}));
  ases.push_back(make_as(2, BusinessType::kIsp, 10, {pfx("30.0.0.0/16")}));
  ases.push_back(make_as(3, BusinessType::kHosting, 2, {pfx("40.0.0.0/16")}));
  ases.push_back(make_as(4, BusinessType::kContent, 2, {pfx("50.0.0.0/24")}));
  std::vector<AsLink> links{
      {2, 1, RelType::kCustomerToProvider, true, {}},
      {3, 1, RelType::kCustomerToProvider, true, {}},
      {2, 3, RelType::kPeerToPeer, true, {}},
      {3, 4, RelType::kSibling, false, {}},
  };
  return Topology(std::move(ases), std::move(links));
}

TEST(Topology, BasicAccessors) {
  const auto t = make_small();
  EXPECT_EQ(t.as_count(), 4u);
  ASSERT_NE(t.find(1), nullptr);
  EXPECT_EQ(t.find(1)->type, BusinessType::kNsp);
  EXPECT_EQ(t.find(99), nullptr);
}

TEST(Topology, IndexRoundTrip) {
  const auto t = make_small();
  for (Asn asn : {1u, 2u, 3u, 4u}) {
    const auto idx = t.index_of(asn);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(t.asn_at(*idx), asn);
  }
  EXPECT_FALSE(t.index_of(1234).has_value());
}

TEST(Topology, NeighborSets) {
  const auto t = make_small();
  const auto p2 = t.providers_of(2);
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(p2[0], 1u);

  const auto c1 = t.customers_of(1);
  EXPECT_EQ(c1.size(), 2u);

  const auto peers2 = t.peers_of(2);
  ASSERT_EQ(peers2.size(), 1u);
  EXPECT_EQ(peers2[0], 3u);

  const auto sib3 = t.siblings_of(3);
  ASSERT_EQ(sib3.size(), 1u);
  EXPECT_EQ(sib3[0], 4u);

  EXPECT_TRUE(t.providers_of(1).empty());
  EXPECT_TRUE(t.providers_of(999).empty());
}

TEST(Topology, OrgMembers) {
  const auto t = make_small();
  const auto org2 = t.org_members(2);
  EXPECT_EQ(org2.size(), 2u);
  EXPECT_EQ(t.org_members(1).size(), 1u);
  EXPECT_TRUE(t.org_members(777).empty());
}

TEST(Topology, AllocationOwner) {
  const auto t = make_small();
  EXPECT_EQ(t.allocation_owner(pfx("20.1.2.0/24")), 1u);
  EXPECT_EQ(t.allocation_owner(pfx("30.0.5.0/24")), 2u);
  EXPECT_EQ(t.allocation_owner(pfx("50.0.0.0/24")), 4u);
  EXPECT_EQ(t.allocation_owner(pfx("60.0.0.0/24")), net::kNoAsn);
  // A query bigger than the allocation is not owned.
  EXPECT_EQ(t.allocation_owner(pfx("30.0.0.0/8")), net::kNoAsn);
}

TEST(Topology, AllocatedSlash24) {
  const auto t = make_small();
  EXPECT_DOUBLE_EQ(t.allocated_slash24(), 65536.0 + 256.0 + 256.0 + 1.0);
}

TEST(Topology, ValidateCleanTopology) {
  EXPECT_TRUE(make_small().validate().empty());
}

TEST(Topology, RejectsDuplicateAsn) {
  std::vector<AsInfo> ases{make_as(1, BusinessType::kNsp, 1),
                           make_as(1, BusinessType::kIsp, 2)};
  EXPECT_THROW(Topology(std::move(ases), {}), std::invalid_argument);
}

TEST(Topology, RejectsAsnZero) {
  std::vector<AsInfo> ases{make_as(0, BusinessType::kNsp, 1)};
  EXPECT_THROW(Topology(std::move(ases), {}), std::invalid_argument);
}

TEST(Topology, RejectsLinkToUnknownAs) {
  std::vector<AsInfo> ases{make_as(1, BusinessType::kNsp, 1)};
  std::vector<AsLink> links{{1, 42, RelType::kPeerToPeer, true, {}}};
  EXPECT_THROW(Topology(std::move(ases), std::move(links)), std::invalid_argument);
}

TEST(Topology, ValidateDetectsOverlappingAllocations) {
  std::vector<AsInfo> ases{
      make_as(1, BusinessType::kNsp, 1, {pfx("10.0.0.0/8")}),
      make_as(2, BusinessType::kIsp, 2, {pfx("10.1.0.0/16")}),
  };
  const Topology t(std::move(ases), {});
  const auto problems = t.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("overlapping"), std::string::npos);
}

TEST(Topology, ValidateDetectsProviderCycle) {
  std::vector<AsInfo> ases{make_as(1, BusinessType::kNsp, 1),
                           make_as(2, BusinessType::kNsp, 2),
                           make_as(3, BusinessType::kNsp, 3)};
  std::vector<AsLink> links{
      {1, 2, RelType::kCustomerToProvider, true, {}},
      {2, 3, RelType::kCustomerToProvider, true, {}},
      {3, 1, RelType::kCustomerToProvider, true, {}},
  };
  const Topology t(std::move(ases), std::move(links));
  const auto problems = t.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("cycle"), std::string::npos);
}

TEST(Topology, ValidateDetectsCrossOrgSibling) {
  std::vector<AsInfo> ases{make_as(1, BusinessType::kNsp, 1),
                           make_as(2, BusinessType::kNsp, 2)};
  std::vector<AsLink> links{{1, 2, RelType::kSibling, true, {}}};
  const Topology t(std::move(ases), std::move(links));
  const auto problems = t.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("sibling"), std::string::npos);
}

TEST(Topology, ValidateDetectsSelfLink) {
  std::vector<AsInfo> ases{make_as(1, BusinessType::kNsp, 1)};
  std::vector<AsLink> links{{1, 1, RelType::kPeerToPeer, true, {}}};
  const Topology t(std::move(ases), std::move(links));
  EXPECT_FALSE(t.validate().empty());
}

TEST(AsInfo, AnnouncedPrefixCount) {
  AsInfo a;
  a.prefixes = {pfx("10.0.0.0/16"), pfx("11.0.0.0/16"), pfx("12.0.0.0/16"),
                pfx("13.0.0.0/16")};
  a.announce_fraction = 1.0;
  EXPECT_EQ(announced_prefix_count(a), 4u);
  a.announce_fraction = 0.5;
  EXPECT_EQ(announced_prefix_count(a), 2u);
  a.announce_fraction = 0.51;
  EXPECT_EQ(announced_prefix_count(a), 3u);
  a.announce_fraction = 0.0;
  EXPECT_EQ(announced_prefix_count(a), 0u);
  a.prefixes.clear();
  EXPECT_EQ(announced_prefix_count(a), 0u);
}

TEST(BusinessType, Names) {
  EXPECT_EQ(business_name(BusinessType::kNsp), "NSP");
  EXPECT_EQ(business_name(BusinessType::kIsp), "ISP");
  EXPECT_EQ(business_name(BusinessType::kHosting), "Hosting");
  EXPECT_EQ(business_name(BusinessType::kContent), "Content");
  EXPECT_EQ(business_name(BusinessType::kOther), "Other");
  EXPECT_EQ(rel_name(RelType::kCustomerToProvider), "c2p");
}

}  // namespace
}  // namespace spoofscope::topo
