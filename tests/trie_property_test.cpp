// Property tests: the trie, the interval set and brute-force linear scans
// must agree on coverage and accounting for randomly generated prefix
// collections. Parameterized over seeds to sweep many random universes.
#include <gtest/gtest.h>

#include <vector>

#include "net/prefix.hpp"
#include "trie/interval_set.hpp"
#include "trie/prefix_set.hpp"
#include "trie/prefix_trie.hpp"
#include "util/rng.hpp"

namespace spoofscope::trie {
namespace {

using net::Ipv4Addr;
using net::Prefix;

std::vector<Prefix> random_prefixes(util::Rng& rng, std::size_t n) {
  std::vector<Prefix> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_u32(4, 28));
    out.emplace_back(Ipv4Addr(rng.next_u32()), len);
  }
  return out;
}

class TriePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriePropertyTest, TrieAgreesWithLinearScanOnCoverage) {
  util::Rng rng(GetParam());
  const auto prefixes = random_prefixes(rng, 200);
  PrefixSet set;
  for (const auto& p : prefixes) set.insert(p);

  for (int i = 0; i < 2000; ++i) {
    const Ipv4Addr a(rng.next_u32());
    bool linear = false;
    for (const auto& p : prefixes) {
      if (p.contains(a)) {
        linear = true;
        break;
      }
    }
    EXPECT_EQ(set.covers(a), linear) << a.str();
  }
}

TEST_P(TriePropertyTest, IntervalSetAgreesWithTrieOnCoverage) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const auto prefixes = random_prefixes(rng, 150);
  PrefixSet set;
  for (const auto& p : prefixes) set.insert(p);
  const IntervalSet ivs = set.to_interval_set();

  for (int i = 0; i < 2000; ++i) {
    const Ipv4Addr a(rng.next_u32());
    EXPECT_EQ(ivs.contains(a), set.covers(a)) << a.str();
  }
  // Also probe prefix boundaries, the most error-prone points.
  for (const auto& p : prefixes) {
    EXPECT_TRUE(ivs.contains(Ipv4Addr(p.first())));
    EXPECT_TRUE(ivs.contains(Ipv4Addr(p.last())));
  }
}

TEST_P(TriePropertyTest, LongestMatchIsMostSpecificCover) {
  util::Rng rng(GetParam() ^ 0x777);
  const auto prefixes = random_prefixes(rng, 100);
  PrefixTrie<int> trie;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    trie.insert(prefixes[i], static_cast<int>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    const Ipv4Addr a(rng.next_u32());
    const auto* m = trie.match_longest(a);
    int best_len = -1;
    for (const auto& p : prefixes) {
      if (p.contains(a)) best_len = std::max(best_len, int(p.length()));
    }
    if (best_len < 0) {
      EXPECT_EQ(m, nullptr);
    } else {
      ASSERT_NE(m, nullptr);
      EXPECT_EQ(int(m->first.length()), best_len);
      EXPECT_TRUE(m->first.contains(a));
    }
  }
}

TEST_P(TriePropertyTest, ToPrefixesRoundTripsExactly) {
  util::Rng rng(GetParam() ^ 0x5151);
  const auto prefixes = random_prefixes(rng, 120);
  const auto ivs = IntervalSet::from_prefixes(prefixes);
  const auto decomposed = ivs.to_prefixes();
  const auto round = IntervalSet::from_prefixes(decomposed);
  EXPECT_EQ(round, ivs);
  // Decomposition must be disjoint.
  std::uint64_t total = 0;
  for (const auto& p : decomposed) total += p.num_addresses();
  EXPECT_EQ(total, ivs.address_count());
}

TEST_P(TriePropertyTest, SetAlgebraIdentities) {
  util::Rng rng(GetParam() ^ 0x9e9e);
  const auto a = IntervalSet::from_prefixes(random_prefixes(rng, 60));
  const auto b = IntervalSet::from_prefixes(random_prefixes(rng, 60));

  // |A| + |B| = |A∪B| + |A∩B|
  EXPECT_EQ(a.address_count() + b.address_count(),
            a.unite(b).address_count() + a.intersect(b).address_count());
  // A \ B = A ∩ complement(B)  (check via counting: |A\B| = |A| - |A∩B|)
  EXPECT_EQ(a.subtract(b).address_count(),
            a.address_count() - a.intersect(b).address_count());
  // (A \ B) ∩ B = ∅
  EXPECT_TRUE(a.subtract(b).intersect(b).empty());
  // (A \ B) ∪ (A ∩ B) = A
  EXPECT_EQ(a.subtract(b).unite(a.intersect(b)), a);
}

TEST_P(TriePropertyTest, IncrementalAddEqualsBulkBuild) {
  util::Rng rng(GetParam() ^ 0x1331);
  std::vector<Interval> ivs;
  IntervalSet incremental;
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t lo = rng.next_u32();
    const std::uint32_t span = rng.uniform_u32(0, 1 << 20);
    const std::uint32_t hi = (lo > ~0u - span) ? ~0u : lo + span;
    ivs.push_back({lo, hi});
    incremental.add(lo, hi);
  }
  EXPECT_EQ(incremental, IntervalSet::from_intervals(ivs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace spoofscope::trie
