#include "bgp/collector.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace spoofscope::bgp {

std::size_t AnnouncementPlan::prefix_count() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.prefixes.size();
  return n;
}

AnnouncementPlan make_announcement_plan(const topo::Topology& topo,
                                        const PlanParams& params,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  AnnouncementPlan plan;

  for (const auto& as : topo.ases()) {
    const std::size_t n_announced = topo::announced_prefix_count(as);
    if (n_announced == 0) continue;

    AnnouncementGroup stable;
    stable.origin = as.asn;

    const auto providers = topo.providers_of(as.asn);
    for (std::size_t i = 0; i < n_announced; ++i) {
      const net::Prefix& p = as.prefixes[i];

      // Traffic-engineering deaggregation: replace (or complement) the
      // aggregate with its two halves, occasionally one level deeper.
      if (p.length() <= 22 && rng.chance(params.deaggregate_prob)) {
        if (rng.chance(0.5)) stable.prefixes.push_back(p);  // keep aggregate
        const int extra_levels = rng.chance(0.3) ? 2 : 1;
        std::vector<net::Prefix> pieces{p.child(0), p.child(1)};
        for (int lvl = 1; lvl < extra_levels; ++lvl) {
          std::vector<net::Prefix> next;
          for (const auto& piece : pieces) {
            next.push_back(piece.child(0));
            next.push_back(piece.child(1));
          }
          pieces = std::move(next);
        }
        for (const auto& piece : pieces) stable.prefixes.push_back(piece);
        continue;
      }

      // Selective announcement requires at least two providers to choose
      // a strict subset from.
      if (providers.size() >= 2 && rng.chance(params.selective_prob)) {
        AnnouncementGroup g;
        g.origin = as.asn;
        g.prefixes.push_back(p);
        const std::size_t keep = 1 + rng.index(providers.size() - 1);
        std::vector<Asn> hops(providers.begin(), providers.end());
        rng.shuffle(hops);
        hops.resize(keep);
        std::sort(hops.begin(), hops.end());
        g.first_hops = std::move(hops);
        plan.groups.push_back(std::move(g));
        continue;
      }

      if (rng.chance(params.transient_prob)) {
        AnnouncementGroup g;
        g.origin = as.asn;
        g.prefixes.push_back(p);
        g.transient = true;
        g.announce_ts = rng.uniform_u32(1, params.window_seconds / 2);
        // Half of the transient prefixes get withdrawn again inside the
        // window; either way they count as routed for the whole period.
        g.withdraw_ts = rng.chance(0.5)
                            ? g.announce_ts +
                                  rng.uniform_u32(3600, params.window_seconds / 4)
                            : 0;
        plan.groups.push_back(std::move(g));
        continue;
      }

      stable.prefixes.push_back(p);
    }
    if (!stable.prefixes.empty()) plan.groups.push_back(std::move(stable));
  }
  return plan;
}

RouteFabric::RouteFabric(const Simulator& sim, const AnnouncementPlan& plan)
    : sim_(&sim), plan_(&plan) {
  results_.reserve(plan.groups.size());
  for (const auto& g : plan.groups) {
    results_.push_back(sim.propagate(g.origin, g.first_hops));
  }
}

std::vector<MrtRecord> collect_records(const RouteFabric& fabric,
                                       const CollectorSpec& spec) {
  std::vector<MrtRecord> out;
  collect_records(fabric, spec,
                  [&out](const MrtRecord& r) { out.push_back(r); });
  return out;
}

void collect_records(const RouteFabric& fabric, const CollectorSpec& spec,
                     const std::function<void(const MrtRecord&)>& sink) {
  const auto& topo = fabric.simulator().topology();

  std::vector<std::size_t> feeder_idx;
  feeder_idx.reserve(spec.feeders.size());
  for (const Asn f : spec.feeders) {
    const auto idx = topo.index_of(f);
    if (!idx) {
      throw std::invalid_argument("collect_records: unknown feeder AS " +
                                  std::to_string(f));
    }
    feeder_idx.push_back(*idx);
  }

  // Dump schedule: a single t=0 dump by default, or RIS/RouteViews-style
  // periodic snapshots.
  std::vector<std::uint32_t> dump_times{0};
  if (spec.dump_interval_seconds > 0) {
    for (std::uint32_t t = spec.dump_interval_seconds; t < spec.window_seconds;
         t += spec.dump_interval_seconds) {
      dump_times.push_back(t);
    }
  }

  const auto& plan = fabric.plan();
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    const auto& group = plan.groups[g];
    const auto& res = fabric.result(g);
    for (std::size_t fi = 0; fi < feeder_idx.size(); ++fi) {
      const std::size_t idx = feeder_idx[fi];
      if (!res.reachable(idx)) continue;
      const RouteClass cls = res.route_class(idx);
      if (!spec.full_feed && cls != RouteClass::kOrigin &&
          cls != RouteClass::kCustomer) {
        continue;  // route servers only see peer-exportable routes
      }
      const AsPath path = res.path_at(idx);
      for (const auto& prefix : group.prefixes) {
        if (group.transient) {
          UpdateMessage a;
          a.kind = UpdateMessage::Kind::kAnnounce;
          a.timestamp = group.announce_ts;
          a.peer = spec.feeders[fi];
          a.prefix = prefix;
          a.path = path;
          sink(MrtRecord{a});
          if (group.withdraw_ts != 0) {
            UpdateMessage w;
            w.kind = UpdateMessage::Kind::kWithdraw;
            w.timestamp = group.withdraw_ts;
            w.peer = spec.feeders[fi];
            w.prefix = prefix;
            sink(MrtRecord{w});
          }
          // Periodic dumps taken while the route was installed also
          // carry it.
          for (const std::uint32_t t : dump_times) {
            if (t < group.announce_ts) continue;
            if (group.withdraw_ts != 0 && t >= group.withdraw_ts) continue;
            RibEntry e;
            e.timestamp = t;
            e.peer = spec.feeders[fi];
            e.prefix = prefix;
            e.path = path;
            sink(MrtRecord{e});
          }
        } else {
          for (const std::uint32_t t : dump_times) {
            RibEntry e;
            e.timestamp = t;
            e.peer = spec.feeders[fi];
            e.prefix = prefix;
            e.path = path;
            sink(MrtRecord{e});
          }
        }
      }
    }
  }
}

}  // namespace spoofscope::bgp
