// Degraded-mode StreamingDetector: bounded reorder buffer, explicit
// timestamp-order contract, and hard memory caps with deterministic
// eviction. Every expectation here is exact — the detector is a pure
// function of the ingested flow sequence.
#include "classify/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/prefix.hpp"
#include "util/rng.hpp"

namespace spoofscope::classify {
namespace {

using net::Ipv4Addr;
using net::pfx;

/// Routing view with 50.0/16 valid for member 1 (same shape as the
/// in-order streaming test).
struct Fixture {
  Fixture() {
    bgp::RoutingTableBuilder b;
    b.ingest_route(pfx("50.0.0.0/16"), bgp::AsPath{1});
    b.ingest_route(pfx("60.0.0.0/16"), bgp::AsPath{2});
    table = b.build();
    trie::IntervalSet s;
    s.add(pfx("50.0.0.0/16"));
    std::unordered_map<Asn, trie::IntervalSet> spaces;
    spaces.emplace(1, std::move(s));
    classifier = std::make_unique<Classifier>(
        table, std::vector<inference::ValidSpace>{
                   inference::ValidSpace(inference::Method::kFullCone,
                                         std::move(spaces))});
  }
  bgp::RoutingTable table;
  std::unique_ptr<Classifier> classifier;
};

net::FlowRecord flow(Ipv4Addr src, std::uint32_t ts, std::uint32_t pkts = 1,
                     Asn member = 1) {
  net::FlowRecord f;
  f.src = src;
  f.dst = Ipv4Addr::from_octets(60, 0, 0, 1);
  f.ts = ts;
  f.packets = pkts;
  f.bytes = 40ull * pkts;
  f.member_in = member;
  return f;
}

Ipv4Addr spoofed_src() { return Ipv4Addr::from_octets(99, 0, 0, 1); }
Ipv4Addr valid_src() { return Ipv4Addr::from_octets(50, 0, 1, 1); }

TEST(StreamingDegraded, ReorderWithinSkewMatchesSortedRun) {
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 20;
  params.min_share = 0.1;
  params.reorder_skew_seconds = 30;

  // A mixed valid/spoofed stream, then locally shuffled within blocks of
  // 10 seconds — strictly less than the skew, so the buffer must restore
  // the exact sorted outcome.
  std::vector<net::FlowRecord> sorted;
  util::Rng rng(99);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const bool spoof = rng.chance(0.3);
    sorted.push_back(flow(spoof ? spoofed_src() : valid_src(), i, 2));
  }
  std::vector<net::FlowRecord> shuffled = sorted;
  for (std::size_t base = 0; base + 10 <= shuffled.size(); base += 10) {
    for (std::size_t i = base + 9; i > base; --i) {
      std::swap(shuffled[i], shuffled[base + rng.index(i - base + 1)]);
    }
  }
  ASSERT_NE(shuffled, sorted);

  StreamingDetector on_sorted(*fx.classifier, 0, params);
  StreamingDetector on_shuffled(*fx.classifier, 0, params);
  const auto a = on_sorted.run(sorted);
  const auto b = on_shuffled.run(shuffled);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  const auto h = on_shuffled.health();
  EXPECT_EQ(h.late_drops, 0u);
  EXPECT_EQ(h.regressions, 0u);
  EXPECT_EQ(h.reorder_depth, 0u);  // flush drained everything
  EXPECT_GT(h.max_reorder_depth, 0u);
}

TEST(StreamingDegraded, FlowLaterThanSkewIsDroppedAndCounted) {
  Fixture fx;
  StreamingParams params;
  params.reorder_skew_seconds = 10;
  StreamingDetector detector(*fx.classifier, 0, params);
  const auto sink = [](const SpoofingAlert&) {};
  for (std::uint32_t ts = 0; ts <= 100; ++ts) {
    detector.ingest(flow(valid_src(), ts), sink);
  }
  detector.ingest(flow(valid_src(), 50), sink);  // 50 < 100 - 10
  detector.ingest(flow(valid_src(), 95), sink);  // within skew: buffered
  detector.flush(sink);
  const auto h = detector.health();
  EXPECT_EQ(h.late_drops, 1u);
  EXPECT_EQ(h.regressions, 0u);
  EXPECT_EQ(detector.processed(), 103u);
}

TEST(StreamingDegraded, RegressionIsCountedNotFoldedIntoWindow) {
  // The timestamp-order contract, buffer disabled (skew 0): a regressed
  // flow is dropped and counted in health().regressions — its packets
  // must not leak into any window.
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 30;
  params.min_share = 0.01;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<SpoofingAlert> alerts;
  const auto sink = [&](const SpoofingAlert& a) { alerts.push_back(a); };

  detector.ingest(flow(spoofed_src(), 500, 20), sink);
  // Regression carrying enough spoofed packets to alert if (wrongly)
  // accounted.
  detector.ingest(flow(spoofed_src(), 100, 1000), sink);
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(detector.health().regressions, 1u);

  // Window accounting is intact: exactly 10 more spoofed packets reach
  // the 30-packet threshold, and the alert reports 30 — not 1030.
  detector.ingest(flow(spoofed_src(), 510, 10), sink);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].spoofed_packets_in_window, 30.0);
  EXPECT_EQ(alerts[0].ts, 510u);
}

TEST(StreamingDegraded, ReorderBufferCapForcesEarlyRelease) {
  Fixture fx;
  StreamingParams params;
  params.reorder_skew_seconds = 1000000;  // nothing matures naturally
  params.max_reorder_records = 16;
  StreamingDetector detector(*fx.classifier, 0, params);
  const auto sink = [](const SpoofingAlert&) {};
  for (std::uint32_t ts = 0; ts < 100; ++ts) {
    detector.ingest(flow(valid_src(), ts), sink);
  }
  const auto h = detector.health();
  EXPECT_EQ(h.forced_releases, 84u);  // every ingest past the cap
  EXPECT_EQ(h.reorder_depth, 16u);
  EXPECT_EQ(h.max_reorder_depth, 17u);  // transiently cap+1 before release
}

TEST(StreamingDegraded, MemberCapEvictsLeastRecentlyActive) {
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 30;
  params.min_share = 0.01;
  params.max_members = 2;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<SpoofingAlert> alerts;
  const auto sink = [&](const SpoofingAlert& a) { alerts.push_back(a); };

  // Member 2 accumulates 25 spoofed packets, member 1 is active later.
  detector.ingest(flow(spoofed_src(), 10, 25, 2), sink);
  detector.ingest(flow(valid_src(), 20, 1, 1), sink);
  // Member 3 arrives at the cap: member 2 (idle since ts 10) is evicted.
  detector.ingest(flow(valid_src(), 30, 1, 3), sink);
  EXPECT_EQ(detector.health().member_evictions, 1u);
  EXPECT_EQ(detector.health().tracked_members, 2u);
  // Member 2 returns with 6 more spoofed packets: had its history
  // survived, 31 > 30 would alert; eviction reset it, so no alert.
  detector.ingest(flow(spoofed_src(), 40, 6, 2), sink);
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(detector.health().member_evictions, 2u);  // 1 went idle-out
}

TEST(StreamingDegraded, MemberEvictionTieBreaksToSmallestAsn) {
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 30;
  params.min_share = 0.01;
  params.max_members = 2;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<SpoofingAlert> alerts;
  const auto sink = [&](const SpoofingAlert& a) { alerts.push_back(a); };

  // Members 5 and 9 are equally idle (both last seen at ts 0).
  detector.ingest(flow(spoofed_src(), 0, 25, 5), sink);
  detector.ingest(flow(spoofed_src(), 0, 25, 9), sink);
  detector.ingest(flow(valid_src(), 5, 1, 7), sink);  // evicts 5, not 9
  // Member 9 kept its history: 6 more spoofed packets cross 30.
  detector.ingest(flow(spoofed_src(), 6, 6, 9), sink);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].member, 9u);
  // Member 5 lost its history: same top-up stays silent.
  detector.ingest(flow(spoofed_src(), 7, 6, 5), sink);
  EXPECT_EQ(alerts.size(), 1u);
}

TEST(StreamingDegraded, SampleCapBoundsWindowDepth) {
  Fixture fx;
  StreamingParams params;
  params.window_seconds = 1000000;  // nothing ages out naturally
  params.max_window_samples = 64;
  StreamingDetector detector(*fx.classifier, 0, params);
  const auto sink = [](const SpoofingAlert&) {};
  for (std::uint32_t ts = 0; ts < 10000; ++ts) {
    detector.ingest(flow(spoofed_src(), ts), sink);
  }
  const auto h = detector.health();
  EXPECT_LE(h.max_window_depth, 64u);
  EXPECT_EQ(h.sample_evictions, 10000u - 64u);
}

TEST(StreamingDegraded, PathologicalMemberScanStaysBounded) {
  // A million distinct members, each seen once: tracked state must stay
  // at the cap, deterministically.
  Fixture fx;
  StreamingParams params;
  params.max_members = 1000;
  params.max_window_samples = 8;
  const auto run_once = [&] {
    StreamingDetector detector(*fx.classifier, 0, params);
    const auto sink = [](const SpoofingAlert&) {};
    for (std::uint32_t i = 0; i < 1000000; ++i) {
      detector.ingest(flow(spoofed_src(), i / 10, 1, 10 + i), sink);
    }
    return detector.health();
  };
  const auto h = run_once();
  EXPECT_EQ(h.tracked_members, 1000u);
  EXPECT_EQ(h.member_evictions, 1000000u - 1000u);
  EXPECT_LE(h.max_window_depth, 8u);
  EXPECT_EQ(h, run_once());  // bit-identical across runs
}

TEST(StreamingDegraded, FlushDrainsBufferedAlerts) {
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 5;
  params.min_share = 0.01;
  params.reorder_skew_seconds = 100;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<SpoofingAlert> alerts;
  const auto sink = [&](const SpoofingAlert& a) { alerts.push_back(a); };
  for (std::uint32_t ts = 0; ts < 10; ++ts) {
    detector.ingest(flow(spoofed_src(), ts), sink);
  }
  // Everything is younger than the skew: still buffered, no alerts yet.
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(detector.health().reorder_depth, 10u);
  detector.flush(sink);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].ts, 4u);
  EXPECT_EQ(detector.health().reorder_depth, 0u);
}

TEST(StreamingDegraded, DefaultParamsPreserveHistoricalBehaviour) {
  // skew 0 and unbounded caps: a sorted stream must see zero degradation
  // events of any kind.
  Fixture fx;
  StreamingParams params;
  params.min_spoofed_packets = 20;
  params.min_share = 0.1;
  StreamingDetector detector(*fx.classifier, 0, params);
  std::vector<net::FlowRecord> flows;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    flows.push_back(flow(i % 3 == 0 ? spoofed_src() : valid_src(), i, 2));
  }
  const auto alerts = detector.run(flows);
  EXPECT_FALSE(alerts.empty());
  const auto h = detector.health();
  EXPECT_EQ(h.regressions, 0u);
  EXPECT_EQ(h.late_drops, 0u);
  EXPECT_EQ(h.forced_releases, 0u);
  EXPECT_EQ(h.member_evictions, 0u);
  EXPECT_EQ(h.sample_evictions, 0u);
  EXPECT_EQ(h.max_reorder_depth, 0u);
}

}  // namespace
}  // namespace spoofscope::classify
