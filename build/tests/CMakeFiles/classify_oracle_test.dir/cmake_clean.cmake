file(REMOVE_RECURSE
  "CMakeFiles/classify_oracle_test.dir/classify_oracle_test.cpp.o"
  "CMakeFiles/classify_oracle_test.dir/classify_oracle_test.cpp.o.d"
  "classify_oracle_test"
  "classify_oracle_test.pdb"
  "classify_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
