#include "service/router.hpp"

#include "net/flow_batch.hpp"

namespace spoofscope::service {

void ShardRouter::route(const net::FlowBatch& batch,
                        std::vector<net::FlowBatch>& lanes) const {
  if (lanes.size() < shards_) lanes.resize(shards_);
  if (shards_ == 1) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      lanes[0].push_back(batch.record(i));
    }
    return;
  }
  const auto members = batch.member_in();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    lanes[shard_of(members[i], shards_)].push_back(batch.record(i));
  }
}

}  // namespace spoofscope::service
