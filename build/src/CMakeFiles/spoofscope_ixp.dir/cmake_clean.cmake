file(REMOVE_RECURSE
  "CMakeFiles/spoofscope_ixp.dir/ixp/ixp.cpp.o"
  "CMakeFiles/spoofscope_ixp.dir/ixp/ixp.cpp.o.d"
  "CMakeFiles/spoofscope_ixp.dir/ixp/member.cpp.o"
  "CMakeFiles/spoofscope_ixp.dir/ixp/member.cpp.o.d"
  "libspoofscope_ixp.a"
  "libspoofscope_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofscope_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
