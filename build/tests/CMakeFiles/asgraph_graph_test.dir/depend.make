# Empty dependencies file for asgraph_graph_test.
# This may be replaced when dependencies are built.
