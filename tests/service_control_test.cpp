// Units for the service plane's deterministic pieces: the control
// protocol parser, the member-AS shard routing, the cross-shard health
// merge and its JSON schema, the shared alert/health formatting, and
// the per-shard checkpoint naming contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "classify/streaming.hpp"
#include "net/flow.hpp"
#include "net/flow_batch.hpp"
#include "service/control.hpp"
#include "service/merge.hpp"
#include "service/router.hpp"
#include "state/delta_chain.hpp"

namespace spoofscope::service {
namespace {

// --- control protocol -------------------------------------------------

TEST(ServiceControl, ParsesEveryVerb) {
  std::string error;
  const struct {
    const char* line;
    Verb verb;
    const char* arg;
  } cases[] = {
      {"submit /tmp/seg1.trace", Verb::kSubmit, "/tmp/seg1.trace"},
      {"health", Verb::kHealth, ""},
      {"stats-json", Verb::kStatsJson, ""},
      {"alerts", Verb::kAlerts, ""},
      {"checkpoint", Verb::kCheckpoint, ""},
      {"reload-updates /tmp/churn.mrt", Verb::kReloadUpdates, "/tmp/churn.mrt"},
      {"drain", Verb::kDrain, ""},
      {"shutdown", Verb::kShutdown, ""},
  };
  for (const auto& c : cases) {
    const auto req = parse_request(c.line, error);
    ASSERT_TRUE(req.has_value()) << c.line << ": " << error;
    EXPECT_EQ(req->verb, c.verb) << c.line;
    EXPECT_EQ(req->arg, c.arg) << c.line;
  }
}

TEST(ServiceControl, TrimsWhitespaceAndCarriageReturns) {
  std::string error;
  const auto req = parse_request("  submit   /tmp/a.trace \r", error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->verb, Verb::kSubmit);
  EXPECT_EQ(req->arg, "/tmp/a.trace");
}

TEST(ServiceControl, RejectsMalformedRequests) {
  std::string error;
  EXPECT_FALSE(parse_request("", error).has_value());
  EXPECT_EQ(error, "empty request");
  EXPECT_FALSE(parse_request("submit", error).has_value());
  EXPECT_EQ(error, "submit requires a path argument");
  EXPECT_FALSE(parse_request("health now", error).has_value());
  EXPECT_EQ(error, "health takes no argument");
  EXPECT_FALSE(parse_request("restart", error).has_value());
  EXPECT_EQ(error, "unknown command: restart");
}

TEST(ServiceControl, VerbNamesRoundTrip) {
  for (const Verb v : {Verb::kSubmit, Verb::kHealth, Verb::kStatsJson,
                       Verb::kAlerts, Verb::kCheckpoint, Verb::kReloadUpdates,
                       Verb::kDrain, Verb::kShutdown}) {
    std::string error;
    std::string line(verb_name(v));
    if (v == Verb::kSubmit || v == Verb::kReloadUpdates) line += " /p";
    const auto req = parse_request(line, error);
    ASSERT_TRUE(req.has_value()) << line;
    EXPECT_EQ(req->verb, v);
  }
}

// --- shard routing ----------------------------------------------------

TEST(ServiceRouter, ShardOfIsDeterministicAndInRange) {
  for (const std::size_t n : {1u, 2u, 7u, 4096u}) {
    for (net::Asn m = 1; m < 2000; ++m) {
      const std::size_t s = shard_of(m, n);
      EXPECT_LT(s, n);
      EXPECT_EQ(s, shard_of(m, n)) << "unstable for AS" << m;
    }
  }
}

TEST(ServiceRouter, ConsecutiveAsnsSpreadAcrossShards) {
  // Member ASNs are typically allocated consecutively; Fibonacci
  // hashing must not stripe them all onto one shard.
  const std::size_t n = 7;
  std::vector<std::size_t> hits(n, 0);
  for (net::Asn m = 100; m < 100 + 700; ++m) ++hits[shard_of(m, n)];
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_GT(hits[s], 700 / n / 2) << "shard " << s << " starved";
    EXPECT_LT(hits[s], 700 / n * 2) << "shard " << s << " overloaded";
  }
}

TEST(ServiceRouter, RoutePreservesPerShardTraceOrder) {
  net::FlowBatch batch;
  for (std::uint32_t i = 0; i < 200; ++i) {
    net::FlowRecord f;
    f.ts = i;
    f.src = net::Ipv4Addr::from_octets(10, 0, 0, 1);
    f.member_in = 1 + (i % 9);
    f.packets = 1;
    batch.push_back(f);
  }
  ShardRouter router(3);
  std::vector<net::FlowBatch> lanes;
  router.route(batch, lanes);
  ASSERT_EQ(lanes.size(), 3u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < lanes.size(); ++s) {
    total += lanes[s].size();
    for (std::size_t i = 0; i < lanes[s].size(); ++i) {
      EXPECT_EQ(shard_of(lanes[s].record(i).member_in, 3), s);
      if (i > 0) {
        EXPECT_LE(lanes[s].record(i - 1).ts, lanes[s].record(i).ts)
            << "shard " << s << " reordered the trace";
      }
    }
  }
  EXPECT_EQ(total, batch.size());
}

// --- health merge + formatting ---------------------------------------

classify::DetectorHealth sample_health(std::uint64_t base) {
  classify::DetectorHealth h;
  h.regressions = base + 1;
  h.late_drops = base + 2;
  h.forced_releases = base + 3;
  h.member_evictions = base + 4;
  h.sample_evictions = base + 5;
  h.reorder_depth = static_cast<std::size_t>(base + 6);
  h.max_reorder_depth = static_cast<std::size_t>(base * 10);
  h.tracked_members = static_cast<std::size_t>(base + 7);
  h.max_window_depth = static_cast<std::size_t>(100 - base);
  return h;
}

TEST(ServiceMerge, SingleElementMergeIsIdentity) {
  const auto h = sample_health(3);
  const auto merged = merge_health({&h, 1});
  EXPECT_EQ(merged, h);
}

TEST(ServiceMerge, CountersSumHighWatersMax) {
  const std::vector<classify::DetectorHealth> parts = {sample_health(1),
                                                       sample_health(5)};
  const auto merged = merge_health(parts);
  EXPECT_EQ(merged.regressions, 2u + 6u);
  EXPECT_EQ(merged.late_drops, 3u + 7u);
  EXPECT_EQ(merged.forced_releases, 4u + 8u);
  EXPECT_EQ(merged.member_evictions, 5u + 9u);
  EXPECT_EQ(merged.sample_evictions, 6u + 10u);
  EXPECT_EQ(merged.reorder_depth, 7u + 11u);
  EXPECT_EQ(merged.tracked_members, 8u + 12u);
  EXPECT_EQ(merged.max_reorder_depth, 50u);  // max(10, 50)
  EXPECT_EQ(merged.max_window_depth, 99u);   // max(99, 95)
}

TEST(ServiceMerge, EmptyMergeIsZero) {
  EXPECT_EQ(merge_health({}), classify::DetectorHealth{});
}

TEST(ServiceMerge, StatsJsonUsesTheDetectorSchema) {
  ServiceStats stats;
  stats.shards = 2;
  stats.processed = 1000;
  stats.alerts = 3;
  stats.segments = 4;
  stats.plane_epoch = 7;
  stats.per_shard = {sample_health(1), sample_health(5)};
  stats.merged = merge_health(stats.per_shard);
  const std::string json = to_json(stats);
  // The "detector" object must be byte-identical to what `detect
  // --stats-json` writes for the same health — one schema, two modes.
  EXPECT_NE(json.find("\"detector\":" + classify::to_json(stats.merged)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(json.find("\"processed\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"per_shard\":[" + classify::to_json(stats.per_shard[0]) +
                      "," + classify::to_json(stats.per_shard[1]) + "]"),
            std::string::npos)
      << json;
}

TEST(ServiceMerge, FormatAlertMatchesTheDetectLine) {
  classify::SpoofingAlert a;
  a.member = 42;
  a.ts = 1234;
  a.dominant_class = classify::TrafficClass::kBogon;
  a.spoofed_packets_in_window = 77;
  a.window_share = 0.5;
  const std::string line = format_alert(a);
  EXPECT_EQ(line.rfind("alert: member AS42 ts=1234 dominant=Bogon", 0), 0u)
      << line;
  EXPECT_NE(line.find("spoofed-pkts=77"), std::string::npos);
  EXPECT_NE(line.find("share=50.00%"), std::string::npos);
}

TEST(ServiceMerge, SortAlertsIsCanonical) {
  classify::SpoofingAlert a;
  a.member = 9;
  a.ts = 100;
  classify::SpoofingAlert b;
  b.member = 2;
  b.ts = 100;
  classify::SpoofingAlert c;
  c.member = 5;
  c.ts = 50;
  std::vector<classify::SpoofingAlert> alerts = {a, b, c};
  sort_alerts(alerts);
  EXPECT_EQ(alerts[0].member, 5u);
  EXPECT_EQ(alerts[1].member, 2u);
  EXPECT_EQ(alerts[2].member, 9u);
}

// --- checkpoint naming ------------------------------------------------

TEST(ServiceCheckpoint, ShardBaseNamesEmbedIndexAndCount) {
  EXPECT_EQ(state::shard_checkpoint_base("/var/lib/spoofscope", 0, 4),
            "/var/lib/spoofscope/shard-0-of-4.ckpt");
  EXPECT_EQ(state::shard_checkpoint_base("ckpt", 6, 7),
            "ckpt/shard-6-of-7.ckpt");
  // The count is part of the name: a restart with a different --shards
  // partitions flows differently and must NOT resume these chains.
  EXPECT_NE(state::shard_checkpoint_base("d", 0, 4),
            state::shard_checkpoint_base("d", 0, 8));
}

}  // namespace
}  // namespace spoofscope::service
