// StreamingDetector checkpoint payload (PayloadKind::kDetector) on the
// snapshot container, plus the delta-checkpoint payload
// (PayloadKind::kDetectorDelta) chained off it. The detector is a pure
// function of the ingested flow sequence, so persisting its explicit
// state — windows, reorder buffer, health counters, stream cursor — and
// the config hash is sufficient for a restored run to continue
// bit-identically.
//
// Serialization choices that bit-identity depends on:
//  - Window aggregates (spoofed/total/per_class) are stored as IEEE-754
//    bit patterns, not recomputed from samples on load: the running
//    sums accumulate in ingest order, and re-summing in any other
//    order could change the low bits and flip a threshold comparison.
//  - Members are written in ascending ASN order and the reorder buffer
//    in its (ts, seq) pop order, so equal states serialize to equal
//    bytes regardless of hash-map iteration order.
//  - Pending FlowRecords carry full-width 32-bit ASNs (the trace
//    format's 16-bit truncation never touches checkpoints).
//  - The idle-eviction index is not stored; it is a pure function of
//    the windows ({(last_seen_ts, member)}) and is rebuilt on load.
//
// Delta checkpoints persist only what moved since the last baseline:
// the stream cursor and health counters (absolute values, not diffs —
// they overwrite on apply), the full windows of members touched since
// the baseline, the members evicted since the baseline, and the whole
// (small, bounded) reorder buffer. Each delta embeds its chain sequence
// number and the FNV-1a-64 digest of its parent's file image, so
// apply_delta() refuses an out-of-order or cross-chain link, and a
// damaged file leaves the detector untouched at the previous cut
// (decode-everything-then-commit).
//
// These member functions live in the state library (not classify) so
// the classify layer stays independent of the persistence layer.
#include <algorithm>
#include <utility>
#include <vector>

#include "classify/flat_classifier.hpp"
#include "classify/streaming.hpp"
#include "net/mapped_trace.hpp"
#include "state/snapshot.hpp"
#include "util/fault_injection.hpp"

namespace spoofscope::classify {

namespace {

constexpr std::uint32_t kDetectorPayloadVersion = 1;

// Full-checkpoint section ids.
constexpr std::uint32_t kSecConfig = 1;        ///< config hash + raw knobs
constexpr std::uint32_t kSecStream = 2;        ///< cursor + health counters
constexpr std::uint32_t kSecWindows = 3;       ///< per-member windows
constexpr std::uint32_t kSecPending = 4;       ///< reorder buffer
constexpr std::uint32_t kSecUpdateCursor = 5;  ///< update-stream cursor (additive)

constexpr std::uint32_t kDeltaPayloadVersion = 1;

// Delta-checkpoint section ids.
constexpr std::uint32_t kDeltaSecMeta = 1;     ///< config/chain/cursor metadata
constexpr std::uint32_t kDeltaSecStream = 2;   ///< cursor + health (absolute)
constexpr std::uint32_t kDeltaSecWindows = 3;  ///< dirty members' windows
constexpr std::uint32_t kDeltaSecRemoved = 4;  ///< members evicted since baseline
constexpr std::uint32_t kDeltaSecPending = 5;  ///< reorder buffer (whole)

std::uint64_t fnv64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

[[noreturn]] void corrupt(const std::string& what, const std::string& ctx = {}) {
  throw state::SnapshotError(util::ErrorKind::kParse, what, ctx);
}

/// "file <origin>, section <id>" — the context woven into decode errors
/// so corruption reports say which file and where.
std::string sec_ctx(const std::string& origin, std::uint32_t id) {
  if (origin.empty()) return {};
  return "file " + origin + ", section " + std::to_string(id);
}

// Window/pending wire helpers, shared verbatim between the full and the
// delta payloads (templates so this file-scope code can traffic in the
// detector's private types without naming them).

template <typename Window>
void put_window(state::SectionBuilder& b, Asn member, const Window& w) {
  b.u32(member);
  b.u32(w.last_alert_ts);
  b.u32(w.last_seen_ts);
  b.u8(w.alerted_once ? 1 : 0);
  b.f64(w.spoofed);
  b.f64(w.total);
  for (const double c : w.per_class) b.f64(c);
  b.u64(w.samples.size());
  for (const auto& s : w.samples) {
    b.u32(s.ts);
    b.u32(s.packets);
    b.u8(static_cast<std::uint8_t>(s.cls));
  }
}

template <typename Window>
Asn get_window(state::SectionReader& r, Window& w, const std::string& ctx) {
  const Asn member = r.u32();
  w.last_alert_ts = r.u32();
  w.last_seen_ts = r.u32();
  w.alerted_once = r.u8() != 0;
  w.spoofed = r.f64();
  w.total = r.f64();
  for (double& c : w.per_class) c = r.f64();
  const std::uint64_t nsamples = r.u64();
  for (std::uint64_t j = 0; j < nsamples; ++j) {
    const std::uint32_t ts = r.u32();
    const std::uint32_t packets = r.u32();
    const std::uint8_t cls = r.u8();
    if (cls >= kNumClasses) corrupt("sample class out of range", ctx);
    w.samples.push_back({ts, packets, static_cast<TrafficClass>(cls)});
  }
  return member;
}

template <typename P>
void put_pending(state::SectionBuilder& b, const P& p) {
  b.u64(p.seq);
  b.u32(p.flow.ts);
  b.u32(p.flow.src.value());
  b.u32(p.flow.dst.value());
  b.u8(static_cast<std::uint8_t>(p.flow.proto));
  b.u16(p.flow.sport);
  b.u16(p.flow.dport);
  b.u32(p.flow.packets);
  b.u64(p.flow.bytes);
  b.u32(p.flow.member_in);
  b.u32(p.flow.member_out);
}

net::FlowRecord get_pending_flow(state::SectionReader& r, std::uint64_t& seq) {
  seq = r.u64();
  net::FlowRecord f;
  f.ts = r.u32();
  f.src = net::Ipv4Addr(r.u32());
  f.dst = net::Ipv4Addr(r.u32());
  f.proto = static_cast<net::Proto>(r.u8());
  f.sport = r.u16();
  f.dport = r.u16();
  f.packets = r.u32();
  f.bytes = r.u64();
  f.member_in = r.u32();
  f.member_out = r.u32();
  return f;
}

}  // namespace

std::uint64_t StreamingDetector::config_hash() const {
  state::SectionBuilder b;
  b.u32(params_.window_seconds);
  b.f64(params_.min_spoofed_packets);
  b.f64(params_.min_share);
  b.u32(params_.cooldown_seconds);
  b.u32(params_.reorder_skew_seconds);
  b.u64(params_.max_reorder_records);
  b.u64(params_.max_members);
  b.u64(params_.max_window_samples);
  b.u64(space_idx_);
  const std::vector<std::uint8_t> bytes = b.take();
  return fnv64({bytes.data(), bytes.size()});
}

void StreamingDetector::save(const std::string& path) const { save(path, {}); }

void StreamingDetector::save(const std::string& path,
                             const DetectorCheckpointExtra& extra) const {
  state::SnapshotWriter writer(state::PayloadKind::kDetector,
                               kDetectorPayloadVersion);
  {
    state::SectionBuilder b;
    b.u64(config_hash());
    // The raw knobs ride along for diagnostics (the hash alone cannot
    // tell an operator *which* knob differs).
    b.u32(params_.window_seconds);
    b.f64(params_.min_spoofed_packets);
    b.f64(params_.min_share);
    b.u32(params_.cooldown_seconds);
    b.u32(params_.reorder_skew_seconds);
    b.u64(params_.max_reorder_records);
    b.u64(params_.max_members);
    b.u64(params_.max_window_samples);
    b.u64(space_idx_);
    writer.add_section(kSecConfig, b.take());
  }
  {
    state::SectionBuilder b;
    b.u32(watermark_);
    b.u32(last_released_ts_);
    b.u64(seq_);
    b.u8(saw_any_ ? 1 : 0);
    b.u8(released_any_ ? 1 : 0);
    b.u64(processed_);
    b.u64(health_.regressions);
    b.u64(health_.late_drops);
    b.u64(health_.forced_releases);
    b.u64(health_.member_evictions);
    b.u64(health_.sample_evictions);
    b.u64(health_.max_reorder_depth);
    b.u64(health_.max_window_depth);
    writer.add_section(kSecStream, b.take());
  }
  {
    std::vector<Asn> members;
    members.reserve(windows_.size());
    for (const auto& [member, w] : windows_) members.push_back(member);
    std::sort(members.begin(), members.end());
    state::SectionBuilder b;
    b.u64(members.size());
    for (const Asn member : members) put_window(b, member, windows_.at(member));
    writer.add_section(kSecWindows, b.take());
  }
  {
    state::SectionBuilder b;
    b.u64(pending_.size());
    // Serialize in the deterministic (ts, seq) pop order, not heap
    // layout order.
    auto sorted = pending_;
    std::sort(sorted.begin(), sorted.end(), [](const Pending& a,
                                               const Pending& b) {
      if (a.flow.ts != b.flow.ts) return a.flow.ts < b.flow.ts;
      return a.seq < b.seq;
    });
    for (const Pending& p : sorted) put_pending(b, p);
    writer.add_section(kSecPending, b.take());
  }
  {
    state::SectionBuilder b;
    b.u64(extra.updates_applied);
    b.u64(extra.plane_epoch);
    writer.add_section(kSecUpdateCursor, b.take());
  }
  writer.write_atomic(path);
}

void StreamingDetector::reset_state() {
  windows_.clear();
  idle_index_.clear();
  pending_.clear();
  watermark_ = 0;
  last_released_ts_ = 0;
  seq_ = 0;
  saw_any_ = false;
  released_any_ = false;
  processed_ = 0;
  health_ = {};
  dirty_members_.clear();
  removed_members_.clear();
  last_plane_epoch_ = flat_ ? flat_->epoch() : 0;
}

bool StreamingDetector::restore(const std::string& path,
                                util::ErrorPolicy policy,
                                util::IngestStats* stats) {
  return restore(path, policy, stats, nullptr);
}

bool StreamingDetector::restore(const std::string& path,
                                util::ErrorPolicy policy,
                                util::IngestStats* stats,
                                DetectorCheckpointExtra* extra_out) {
  util::IngestStats own;
  util::IngestStats& st = stats ? *stats : own;
  const bool strict = policy == util::ErrorPolicy::kStrict;
  try {
    const net::MappedTrace file(path);
    std::vector<std::uint8_t> scratch;
    const std::span<const std::uint8_t> bytes = state::with_injected_read_faults(
        "detector.restore", file.bytes(), scratch);
    const state::SnapshotView snap = state::parse_snapshot(
        bytes, state::PayloadKind::kDetector, kDetectorPayloadVersion, path);

    {
      state::SectionReader r(snap.section(kSecConfig), sec_ctx(path, kSecConfig));
      if (r.u64() != config_hash()) {
        corrupt("checkpoint was taken under a different configuration",
                sec_ctx(path, kSecConfig));
      }
    }

    reset_state();
    {
      state::SectionReader r(snap.section(kSecStream), sec_ctx(path, kSecStream));
      watermark_ = r.u32();
      last_released_ts_ = r.u32();
      seq_ = r.u64();
      saw_any_ = r.u8() != 0;
      released_any_ = r.u8() != 0;
      processed_ = r.u64();
      health_.regressions = r.u64();
      health_.late_drops = r.u64();
      health_.forced_releases = r.u64();
      health_.member_evictions = r.u64();
      health_.sample_evictions = r.u64();
      health_.max_reorder_depth = r.u64();
      health_.max_window_depth = r.u64();
      if (r.remaining() != 0) {
        corrupt("trailing bytes in stream section", sec_ctx(path, kSecStream));
      }
    }
    {
      const std::string ctx = sec_ctx(path, kSecWindows);
      state::SectionReader r(snap.section(kSecWindows), ctx);
      const std::uint64_t count = r.u64();
      windows_.reserve(count);
      Asn prev = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        MemberWindow w;
        const Asn member = get_window(r, w, ctx);
        if (i > 0 && member <= prev) corrupt("windows out of order", ctx);
        prev = member;
        if (params_.max_members != 0) {
          idle_index_.insert({w.last_seen_ts, member});
        }
        windows_.emplace(member, std::move(w));
      }
      if (r.remaining() != 0) corrupt("trailing bytes in windows section", ctx);
    }
    {
      const std::string ctx = sec_ctx(path, kSecPending);
      state::SectionReader r(snap.section(kSecPending), ctx);
      const std::uint64_t count = r.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        Pending p;
        p.flow = get_pending_flow(r, p.seq);
        // The class is not serialized (it is a pure function of the flow
        // and the plane, and keeping it out preserves the checkpoint
        // format across the SIMD work); recompute it on the way in.
        p.cls = classify_one(p.flow);
        pending_.push_back(std::move(p));
      }
      std::make_heap(pending_.begin(), pending_.end(), PendingLater{});
      if (r.remaining() != 0) corrupt("trailing bytes in pending section", ctx);
    }
    if (extra_out != nullptr) {
      *extra_out = {};
      if (snap.has(kSecUpdateCursor)) {
        state::SectionReader r(snap.section(kSecUpdateCursor),
                               sec_ctx(path, kSecUpdateCursor));
        extra_out->updates_applied = r.u64();
        extra_out->plane_epoch = r.u64();
      }
    }
    // pending_ classes were just recomputed against the plane as it
    // stands right now; the caller replays update batches after restore
    // and the next ingest resyncs via the epoch check.
    last_plane_epoch_ = flat_ ? flat_->epoch() : 0;
    clear_dirty();
    st.ok();
    return true;
  } catch (const util::InjectedCrash&) {
    // A modelled crash is a process death, never a recoverable parse
    // error: let it unwind past the policy handling.
    throw;
  } catch (const state::SnapshotError& e) {
    if (strict) throw;
    st.skip(e.kind(), 0);
    reset_state();
    return false;
  } catch (const std::runtime_error&) {
    // MappedTrace open/read failure (missing or unreadable file).
    if (strict) throw;
    st.skip(util::ErrorKind::kTruncated, 0);
    reset_state();
    return false;
  }
}

std::uint64_t StreamingDetector::save_delta(const std::string& path,
                                            const DetectorCheckpointExtra& extra,
                                            std::uint64_t chain_seq,
                                            std::uint64_t parent_digest) {
  state::SnapshotWriter writer(state::PayloadKind::kDetectorDelta,
                               kDeltaPayloadVersion);
  {
    state::SectionBuilder b;
    b.u64(config_hash());
    b.u64(chain_seq);
    b.u64(parent_digest);
    b.u64(extra.updates_applied);
    b.u64(extra.plane_epoch);
    writer.add_section(kDeltaSecMeta, b.take());
  }
  {
    state::SectionBuilder b;
    b.u32(watermark_);
    b.u32(last_released_ts_);
    b.u64(seq_);
    b.u8(saw_any_ ? 1 : 0);
    b.u8(released_any_ ? 1 : 0);
    b.u64(processed_);
    b.u64(health_.regressions);
    b.u64(health_.late_drops);
    b.u64(health_.forced_releases);
    b.u64(health_.member_evictions);
    b.u64(health_.sample_evictions);
    b.u64(health_.max_reorder_depth);
    b.u64(health_.max_window_depth);
    writer.add_section(kDeltaSecStream, b.take());
  }
  {
    std::vector<Asn> members(dirty_members_.begin(), dirty_members_.end());
    std::sort(members.begin(), members.end());
    state::SectionBuilder b;
    b.u64(members.size());
    for (const Asn member : members) put_window(b, member, windows_.at(member));
    writer.add_section(kDeltaSecWindows, b.take());
  }
  {
    std::vector<Asn> members(removed_members_.begin(), removed_members_.end());
    std::sort(members.begin(), members.end());
    state::SectionBuilder b;
    b.u64(members.size());
    for (const Asn member : members) b.u32(member);
    writer.add_section(kDeltaSecRemoved, b.take());
  }
  {
    state::SectionBuilder b;
    b.u64(pending_.size());
    auto sorted = pending_;
    std::sort(sorted.begin(), sorted.end(), [](const Pending& a,
                                               const Pending& b) {
      if (a.flow.ts != b.flow.ts) return a.flow.ts < b.flow.ts;
      return a.seq < b.seq;
    });
    for (const Pending& p : sorted) put_pending(b, p);
    writer.add_section(kDeltaSecPending, b.take());
  }
  // Durable first: if the write (or an injected fault) throws, the dirty
  // baseline is untouched and the next attempt re-captures everything.
  writer.write_atomic(path);
  const std::vector<std::uint8_t> image = writer.serialize();
  clear_dirty();
  return fnv64({image.data(), image.size()});
}

void StreamingDetector::apply_delta(std::span<const std::uint8_t> bytes,
                                    const std::string& origin,
                                    std::uint64_t expected_seq,
                                    std::uint64_t expected_parent_digest,
                                    DetectorCheckpointExtra* extra_out) {
  const state::SnapshotView snap = state::parse_snapshot(
      bytes, state::PayloadKind::kDetectorDelta, kDeltaPayloadVersion, origin);

  DetectorCheckpointExtra extra;
  {
    const std::string ctx = sec_ctx(origin, kDeltaSecMeta);
    state::SectionReader r(snap.section(kDeltaSecMeta), ctx);
    if (r.u64() != config_hash()) {
      corrupt("delta was taken under a different configuration", ctx);
    }
    if (r.u64() != expected_seq) corrupt("delta chain out of sequence", ctx);
    if (r.u64() != expected_parent_digest) {
      corrupt("delta chain broken: parent digest mismatch", ctx);
    }
    extra.updates_applied = r.u64();
    extra.plane_epoch = r.u64();
    if (r.remaining() != 0) corrupt("trailing bytes in meta section", ctx);
  }

  // Decode every section into locals before mutating anything: a
  // truncated or corrupt delta must leave the detector exactly at the
  // previous cut so skip-mode resume can settle on it.
  struct StreamState {
    std::uint32_t watermark, last_released_ts;
    std::uint64_t seq;
    bool saw_any, released_any;
    std::uint64_t processed;
    DetectorHealth health;
  } s{};
  {
    const std::string ctx = sec_ctx(origin, kDeltaSecStream);
    state::SectionReader r(snap.section(kDeltaSecStream), ctx);
    s.watermark = r.u32();
    s.last_released_ts = r.u32();
    s.seq = r.u64();
    s.saw_any = r.u8() != 0;
    s.released_any = r.u8() != 0;
    s.processed = r.u64();
    s.health.regressions = r.u64();
    s.health.late_drops = r.u64();
    s.health.forced_releases = r.u64();
    s.health.member_evictions = r.u64();
    s.health.sample_evictions = r.u64();
    s.health.max_reorder_depth = r.u64();
    s.health.max_window_depth = r.u64();
    if (r.remaining() != 0) corrupt("trailing bytes in stream section", ctx);
  }
  std::vector<std::pair<Asn, MemberWindow>> touched;
  {
    const std::string ctx = sec_ctx(origin, kDeltaSecWindows);
    state::SectionReader r(snap.section(kDeltaSecWindows), ctx);
    const std::uint64_t count = r.u64();
    touched.reserve(count);
    Asn prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      MemberWindow w;
      const Asn member = get_window(r, w, ctx);
      if (i > 0 && member <= prev) corrupt("windows out of order", ctx);
      prev = member;
      touched.emplace_back(member, std::move(w));
    }
    if (r.remaining() != 0) corrupt("trailing bytes in windows section", ctx);
  }
  std::vector<Asn> removed;
  {
    const std::string ctx = sec_ctx(origin, kDeltaSecRemoved);
    state::SectionReader r(snap.section(kDeltaSecRemoved), ctx);
    const std::uint64_t count = r.u64();
    removed.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const Asn member = r.u32();
      if (i > 0 && member <= removed.back()) {
        corrupt("removed members out of order", ctx);
      }
      removed.push_back(member);
    }
    if (r.remaining() != 0) corrupt("trailing bytes in removed section", ctx);
  }
  std::vector<Pending> pend;
  {
    const std::string ctx = sec_ctx(origin, kDeltaSecPending);
    state::SectionReader r(snap.section(kDeltaSecPending), ctx);
    const std::uint64_t count = r.u64();
    pend.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Pending p;
      p.flow = get_pending_flow(r, p.seq);
      p.cls = classify_one(p.flow);
      pend.push_back(std::move(p));
    }
    if (r.remaining() != 0) corrupt("trailing bytes in pending section", ctx);
  }

  // Commit. Removals before replacements is arbitrary (the two member
  // sets are disjoint by construction); the reorder buffer and stream
  // state overwrite wholesale.
  for (const Asn member : removed) windows_.erase(member);
  for (auto& [member, w] : touched) windows_[member] = std::move(w);
  pending_ = std::move(pend);
  std::make_heap(pending_.begin(), pending_.end(), PendingLater{});
  watermark_ = s.watermark;
  last_released_ts_ = s.last_released_ts;
  seq_ = s.seq;
  saw_any_ = s.saw_any;
  released_any_ = s.released_any;
  processed_ = s.processed;
  health_ = s.health;
  idle_index_.clear();
  if (params_.max_members != 0) {
    for (const auto& [member, w] : windows_) {
      idle_index_.insert({w.last_seen_ts, member});
    }
  }
  last_plane_epoch_ = flat_ ? flat_->epoch() : 0;
  clear_dirty();
  if (extra_out != nullptr) *extra_out = extra;
}

}  // namespace spoofscope::classify
