#include "analysis/spoofer_crosscheck.hpp"

#include <sstream>
#include <unordered_map>

#include "util/format.hpp"

namespace spoofscope::analysis {

SpooferCrossCheck cross_check_spoofer(
    std::span<const MemberClassCounts> counts,
    std::span<const data::SpooferRecord> spoofer) {
  std::unordered_map<Asn, bool> passive;  // member -> we saw spoofed traffic
  for (const auto& mc : counts) {
    passive[mc.member] = mc.contributes(TrafficClass::kInvalid) ||
                         mc.contributes(TrafficClass::kUnrouted);
  }

  SpooferCrossCheck out;
  double both = 0, ours = 0, theirs = 0;
  for (const auto& rec : spoofer) {
    const auto it = passive.find(rec.asn);
    if (it == passive.end()) continue;  // no overlap: not a member / no traffic
    ++out.overlapping_ases;
    const bool we = it->second;
    ours += we;
    theirs += rec.spoofable;
    both += we && rec.spoofable;
  }
  if (out.overlapping_ases > 0) {
    const double n = static_cast<double>(out.overlapping_ases);
    out.passive_detection_rate = ours / n;
    out.spoofer_positive_rate = theirs / n;
  }
  if (ours > 0) out.spoofer_agrees_with_passive = both / ours;
  if (theirs > 0) out.passive_detects_spoofer_positives = both / theirs;
  return out;
}

std::string format_cross_check(const SpooferCrossCheck& c) {
  std::ostringstream os;
  os << "Spoofer cross-check (Sec 4.5), " << c.overlapping_ases
     << " overlapping ASes\n";
  os << "  passive detection rate (paper 74%):        "
     << util::percent(c.passive_detection_rate) << "\n";
  os << "  Spoofer spoofable rate (paper 30%):        "
     << util::percent(c.spoofer_positive_rate) << "\n";
  os << "  Spoofer agrees w/ passive (paper 28%):     "
     << util::percent(c.spoofer_agrees_with_passive) << "\n";
  os << "  passive detects Spoofer+ (paper 69%):      "
     << util::percent(c.passive_detects_spoofer_positives) << "\n";
  return os.str();
}

}  // namespace spoofscope::analysis
