#include "util/fault_injection.hpp"

#include <algorithm>
#include <array>

namespace spoofscope::util {

namespace {

FaultInjector* g_current = nullptr;

// splitmix64: full-avalanche mix so (seed, site, occurrence) keys give
// independent-looking draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(std::string_view site) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kShortWrite:
      return "short-write";
    case FaultKind::kEnospc:
      return "enospc";
    case FaultKind::kCrashBeforeRename:
      return "crash-before-rename";
    case FaultKind::kCrashAfterRename:
      return "crash-after-rename";
    case FaultKind::kShortRead:
      return "short-read";
    case FaultKind::kTornPage:
      return "torn-page";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed, double probability)
    : random_(true), seed_(seed), probability_(probability) {}

void FaultInjector::arm(std::string_view site, std::uint64_t nth,
                        FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[std::string(site)].push_back(Armed{nth, kind});
}

FaultKind FaultInjector::at(std::string_view site,
                            std::initializer_list<FaultKind> allowed) {
  std::lock_guard<std::mutex> lock(mu_);
  auto cit = counts_.find(site);
  if (cit == counts_.end()) {
    cit = counts_.emplace(std::string(site), 0).first;
  }
  const std::uint64_t occurrence = ++cit->second;

  auto fire = [&](FaultKind kind) {
    injected_++;
    aux_ = mix64(seed_ ^ hash_site(site) ^ (occurrence * 0x7fb5d329728ea185ULL));
    return kind;
  };

  if (auto ait = armed_.find(site); ait != armed_.end()) {
    for (const Armed& a : ait->second) {
      if (a.nth != occurrence) continue;
      if (std::find(allowed.begin(), allowed.end(), a.kind) == allowed.end()) {
        continue;
      }
      return fire(a.kind);
    }
  }

  if (random_ && allowed.size() > 0) {
    const std::uint64_t draw =
        mix64(seed_ ^ mix64(hash_site(site)) ^ occurrence);
    // Top 53 bits give an unbiased double in [0,1).
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    if (u < probability_) {
      const std::uint64_t which = mix64(draw) % allowed.size();
      return fire(*(allowed.begin() + which));
    }
  }
  return FaultKind::kNone;
}

std::uint64_t FaultInjector::pick(std::uint64_t bound) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bound == 0) return 0;
  aux_ = mix64(aux_);
  return aux_ % bound;
}

std::uint64_t FaultInjector::occurrences(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

FaultInjector* FaultInjector::current() { return g_current; }

FaultInjector::Scope::Scope(FaultInjector& injector) : prev_(g_current) {
  g_current = &injector;
}

FaultInjector::Scope::~Scope() { g_current = prev_; }

}  // namespace spoofscope::util
