// IPv4 address value type. Addresses are stored host-order as uint32 so
// that arithmetic (ranges, tries) is natural; parsing/formatting use the
// usual dotted-quad representation.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace spoofscope::net {

/// An IPv4 address. Trivially copyable value type; totally ordered by
/// numeric value.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : v_(value) {}

  /// Builds from the four dotted-quad octets (a.b.c.d).
  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                        std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                    (std::uint32_t(c) << 8) | std::uint32_t(d));
  }

  /// Parses "a.b.c.d". Rejects extra characters, out-of-range octets and
  /// empty components. Leading zeros are accepted ("010.0.0.1" == 10.0.0.1).
  static std::optional<Ipv4Addr> parse(std::string_view s);

  constexpr std::uint32_t value() const { return v_; }

  /// The i-th octet, 0 = most significant ("a" in a.b.c.d).
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(v_ >> (24 - 8 * i));
  }

  /// The high-order /8 block, e.g. 192 for 192.0.2.1 (Fig 10 binning).
  constexpr std::uint8_t slash8() const { return octet(0); }

  /// Dotted-quad string.
  std::string str() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t v_ = 0;
};

/// The full IPv4 space holds 2^24 /24 blocks; shared constant for
/// "/24-equivalents" accounting used throughout the paper.
inline constexpr double kTotalSlash24 = 16777216.0;

}  // namespace spoofscope::net
