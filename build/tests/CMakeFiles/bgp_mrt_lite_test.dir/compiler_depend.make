# Empty compiler generated dependencies file for bgp_mrt_lite_test.
# This may be replaced when dependencies are built.
