file(REMOVE_RECURSE
  "CMakeFiles/bgp_routing_table_test.dir/bgp_routing_table_test.cpp.o"
  "CMakeFiles/bgp_routing_table_test.dir/bgp_routing_table_test.cpp.o.d"
  "bgp_routing_table_test"
  "bgp_routing_table_test.pdb"
  "bgp_routing_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_routing_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
