// AS relationship inference from observed AS paths — a Gao-style
// degree/clique heuristic in the spirit of CAIDA's AS-rank algorithm
// (Luckie et al. 2013), which the paper's Customer Cone method builds on.
// Deliberately imperfect, exactly like its real-world counterpart: the
// Customer Cone's false positives in the paper stem from peerings and
// sibling relations this inference cannot see or classify.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/routing_table.hpp"

namespace spoofscope::asgraph {

using net::Asn;

/// Relationship classes the inference can assign.
enum class InferredRel : std::uint8_t {
  kC2P,  ///< `a` is a customer of `b`
  kP2P,  ///< settlement-free peers
};

/// One classified link of the observed graph.
struct InferredLink {
  Asn a = net::kNoAsn;
  Asn b = net::kNoAsn;
  InferredRel rel = InferredRel::kP2P;

  friend bool operator==(const InferredLink&, const InferredLink&) = default;
};

/// Inference knobs.
struct RelationshipOptions {
  /// Maximum size of the inferred top clique (greedy, by degree).
  std::size_t clique_size = 10;
  /// If the minority direction of up/down votes on a link exceeds this
  /// fraction, the link is classified as peering.
  double peer_vote_ratio = 0.35;
};

/// Infers relationships for every undirected adjacency observed in
/// `table`. Results are deterministic; each observed link appears exactly
/// once.
std::vector<InferredLink> infer_relationships(const bgp::RoutingTable& table,
                                              const RelationshipOptions& options = {});

/// The inferred top clique (by ASN, sorted) — exposed for diagnostics and
/// tests.
std::vector<Asn> infer_clique(const bgp::RoutingTable& table, std::size_t max_size);

}  // namespace spoofscope::asgraph
